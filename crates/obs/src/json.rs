//! A minimal JSON layer for run manifests.
//!
//! The workspace is fully offline (no serde), and manifests need two
//! properties a generic serializer would not guarantee anyway: counter
//! values round-trip as **exact u64** (never through f64), and the
//! writer output is **deterministic** — object keys are emitted in the
//! order they were inserted, which manifest construction keeps sorted.

use std::fmt::Write as _;

/// A parsed JSON value.
///
/// Numbers split into [`Json::UInt`] (non-negative integers that fit
/// `u64`, kept exact) and [`Json::Float`] (everything else).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, kept exact.
    UInt(u64),
    /// Any other finite number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved (and meaningful to the writer).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Renders with 2-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => write_f64(out, *x),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses `text` as a single JSON value; trailing non-whitespace is
    /// an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after JSON value"));
        }
        Ok(value)
    }

    /// The object's fields, or an error naming `what`.
    pub fn as_obj(&self, what: &str) -> Result<&[(String, Json)], JsonError> {
        match self {
            Json::Obj(fields) => Ok(fields),
            _ => Err(JsonError::shape(what, "object", self)),
        }
    }

    /// The array's items, or an error naming `what`.
    pub fn as_arr(&self, what: &str) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => Err(JsonError::shape(what, "array", self)),
        }
    }

    /// The string value, or an error naming `what`.
    pub fn as_str(&self, what: &str) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(JsonError::shape(what, "string", self)),
        }
    }

    /// The exact u64 value, or an error naming `what`.
    pub fn as_u64(&self, what: &str) -> Result<u64, JsonError> {
        match self {
            Json::UInt(n) => Ok(*n),
            _ => Err(JsonError::shape(what, "unsigned integer", self)),
        }
    }

    /// The boolean value, or an error naming `what`.
    pub fn as_bool(&self, what: &str) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            _ => Err(JsonError::shape(what, "boolean", self)),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::UInt(_) => "unsigned integer",
            Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// A parse or shape error from the JSON layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
}

impl JsonError {
    fn shape(what: &str, expected: &str, got: &Json) -> JsonError {
        JsonError {
            message: format!("{what}: expected {expected}, got {}", got.kind()),
        }
    }

    /// A schema-level error (unknown key, missing field, bad value).
    pub fn schema(message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for JsonError {}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no inf/nan; manifests never emit them, but stay total.
        out.push_str("null");
        return;
    }
    let plain = format!("{x}");
    out.push_str(&plain);
    // `{}` on an integral f64 prints without a decimal point; add one so
    // the value re-parses as Float rather than UInt.
    if !plain.contains('.') && !plain.contains('e') && !plain.contains('E') {
        out.push_str(".0");
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: format!("json parse error at byte {}: {message}", self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the plain run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: manifests only emit \uXXXX
                            // for control chars, but accept pairs anyway.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            match c {
                                Some(c) => s.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !float && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::Float(x)),
            _ => Err(self.err("invalid number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trips_exactly() {
        let v = Json::UInt(u64::MAX);
        let text = v.to_pretty();
        assert_eq!(text, "18446744073709551615\n");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn floats_and_ints_stay_distinct() {
        assert_eq!(Json::parse("3").unwrap(), Json::UInt(3));
        assert_eq!(Json::parse("3.0").unwrap(), Json::Float(3.0));
        assert_eq!(Json::parse("-3").unwrap(), Json::Float(-3.0));
        // An integral Float re-renders with a decimal point.
        assert_eq!(Json::Float(3.0).to_pretty(), "3.0\n");
    }

    #[test]
    fn object_round_trip_preserves_key_order() {
        let v = Json::Obj(vec![
            ("zeta".into(), Json::UInt(1)),
            (
                "alpha".into(),
                Json::Arr(vec![Json::Bool(true), Json::Null]),
            ),
            ("text".into(), Json::Str("line\n\"quote\"".into())),
        ]);
        let text = v.to_pretty();
        assert_eq!(Json::parse(&text).unwrap(), v);
        let again = Json::parse(&text).unwrap().to_pretty();
        assert_eq!(text, again);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "tab\t nl\n cr\r quote\" backslash\\ unicode\u{1}\u{1F600}";
        let v = Json::Str(s.into());
        assert_eq!(Json::parse(&v.to_pretty()).unwrap(), v);
    }
}
