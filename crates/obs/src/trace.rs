//! Span-tree tracing behind a recording [`crate::Obs`] handle.
//!
//! Tracing is opt-in on top of recording ([`crate::Obs::recording_traced`]):
//! every span opened while tracing carries a **deterministic id** (an
//! FNV-1a hash of its parent's id, its key and its per-parent sequence
//! number, so serial runs reproduce the same tree ids run over run), a
//! parent link (the innermost span still open on the same thread), and
//! the **counter deltas** attributed while it was the innermost open
//! span on its thread. The collected tree exports as Chrome
//! trace-event JSON ([`crate::Obs::trace_json`]) and renders as a
//! flamegraph in `chrome://tracing` or Perfetto.
//!
//! Tracing never touches the deterministic counter section: attribution
//! *copies* increments into the trace, it does not reroute them, so a
//! traced run's counters are bit-identical to an untraced one's.
//! Intervals that do not nest on one thread (a request's wait in the
//! serve queue spans an enqueueing handler and a draining scheduler)
//! are recorded as Chrome *async* `b`/`e` pairs correlated by a string
//! id instead of stack position ([`crate::Obs::trace_async`]).

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::thread::ThreadId;
use std::time::Instant;

use crate::json::Json;
use crate::Recorder;

/// FNV-1a 64-bit, local copy: `htd-obs` sits below `htd-store` in the
/// crate graph and cannot borrow its hasher.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One completed span in the trace tree.
#[derive(Debug, Clone)]
struct TraceEvent {
    id: u64,
    parent: Option<u64>,
    key: String,
    tid: u64,
    start_ns: u64,
    dur_ns: u64,
    args: Vec<(String, String)>,
    counters: BTreeMap<String, u64>,
    aborted: bool,
}

/// One non-nesting interval, rendered as a Chrome async `b`/`e` pair.
#[derive(Debug, Clone)]
struct AsyncEvent {
    name: String,
    id: String,
    tid: u64,
    start_ns: u64,
    end_ns: u64,
    args: Vec<(String, String)>,
}

/// A span that has been opened but not yet dropped.
#[derive(Debug)]
struct OpenSpan {
    key: String,
    parent: Option<u64>,
    tid: u64,
    start_ns: u64,
    args: Vec<(String, String)>,
    counters: BTreeMap<String, u64>,
    child_seq: BTreeMap<String, u64>,
}

/// Everything the tracing layer aggregates, behind its own mutex —
/// never held together with the counter/timing state's, so the two
/// lock orders can never deadlock.
#[derive(Debug)]
pub(crate) struct TraceState {
    epoch: Instant,
    next_tid: u64,
    tids: HashMap<ThreadId, u64>,
    root_seq: BTreeMap<String, u64>,
    open: HashMap<u64, OpenSpan>,
    events: Vec<TraceEvent>,
    async_events: Vec<AsyncEvent>,
}

impl TraceState {
    pub(crate) fn new() -> Self {
        TraceState {
            epoch: Instant::now(),
            next_tid: 1,
            tids: HashMap::new(),
            root_seq: BTreeMap::new(),
            open: HashMap::new(),
            events: Vec::new(),
            async_events: Vec::new(),
        }
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// A small stable id for the calling thread (1, 2, 3, … in
    /// first-seen order).
    fn tid(&mut self) -> u64 {
        let thread = std::thread::current().id();
        match self.tids.get(&thread) {
            Some(&tid) => tid,
            None => {
                let tid = self.next_tid;
                self.next_tid += 1;
                self.tids.insert(thread, tid);
                tid
            }
        }
    }
}

thread_local! {
    /// Innermost-last stack of `(recorder identity, span id)` pairs for
    /// spans opened and not yet dropped on this thread. The recorder
    /// identity keeps two simultaneously-tracing handles from adopting
    /// each other's spans as parents.
    static SPAN_STACK: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
}

fn recorder_key(recorder: &Recorder) -> usize {
    std::ptr::from_ref(recorder) as usize
}

fn lock_trace(trace: &Mutex<TraceState>) -> MutexGuard<'_, TraceState> {
    trace.lock().unwrap_or_else(PoisonError::into_inner)
}

fn owned_args(args: &[(&str, &str)]) -> Vec<(String, String)> {
    args.iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

impl Recorder {
    /// Opens a traced span under the innermost span still open on this
    /// thread; `None` when this recorder does not trace.
    pub(crate) fn trace_open(&self, key: &str, args: &[(&str, &str)]) -> Option<u64> {
        let trace = self.trace.as_ref()?;
        let me = recorder_key(self);
        let parent = SPAN_STACK.with(|stack| {
            stack
                .borrow()
                .iter()
                .rev()
                .find(|(rec, _)| *rec == me)
                .map(|&(_, id)| id)
        });
        let mut state = lock_trace(trace);
        let start_ns = state.now_ns();
        let tid = state.tid();
        // The id hashes (parent id, key, per-parent sequence of this
        // key): a serial rerun opens the same spans in the same order
        // and reproduces the exact ids. A sibling guard that outlives
        // its parent falls back to the root sequence — the parent link
        // is kept, only the sequence scope degrades.
        let seq = {
            let slot = match parent.and_then(|pid| state.open.get_mut(&pid)) {
                Some(open) => open.child_seq.entry(key.to_string()).or_insert(0),
                None => state.root_seq.entry(key.to_string()).or_insert(0),
            };
            let seq = *slot;
            *slot += 1;
            seq
        };
        let mut hashed = Vec::with_capacity(key.len() + 17);
        hashed.extend_from_slice(&parent.unwrap_or(0).to_le_bytes());
        hashed.extend_from_slice(key.as_bytes());
        hashed.push(0xff);
        hashed.extend_from_slice(&seq.to_le_bytes());
        let id = fnv1a64(&hashed).max(1);
        state.open.insert(
            id,
            OpenSpan {
                key: key.to_string(),
                parent,
                tid,
                start_ns,
                args: owned_args(args),
                counters: BTreeMap::new(),
                child_seq: BTreeMap::new(),
            },
        );
        drop(state);
        SPAN_STACK.with(|stack| stack.borrow_mut().push((me, id)));
        Some(id)
    }

    /// Closes a traced span opened by [`Recorder::trace_open`].
    pub(crate) fn trace_close(&self, id: u64, aborted: bool) {
        let Some(trace) = self.trace.as_ref() else {
            return;
        };
        let me = recorder_key(self);
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(at) = stack.iter().rposition(|&(rec, sid)| rec == me && sid == id) {
                stack.remove(at);
            }
        });
        let mut state = lock_trace(trace);
        let end_ns = state.now_ns();
        if let Some(open) = state.open.remove(&id) {
            state.events.push(TraceEvent {
                id,
                parent: open.parent,
                key: open.key,
                tid: open.tid,
                start_ns: open.start_ns,
                dur_ns: end_ns.saturating_sub(open.start_ns),
                args: open.args,
                counters: open.counters,
                aborted,
            });
        }
    }

    /// Attributes a counter increment to the innermost span open on the
    /// calling thread. Increments outside any span are simply not in
    /// the trace; the counter totals already carry them.
    pub(crate) fn trace_attribute(&self, name: &str, n: u64) {
        let Some(trace) = self.trace.as_ref() else {
            return;
        };
        let me = recorder_key(self);
        let Some(current) = SPAN_STACK.with(|stack| {
            stack
                .borrow()
                .iter()
                .rev()
                .find(|(rec, _)| *rec == me)
                .map(|&(_, id)| id)
        }) else {
            return;
        };
        let mut state = lock_trace(trace);
        if let Some(open) = state.open.get_mut(&current) {
            let slot = open.counters.entry(name.to_string()).or_insert(0);
            *slot = slot.saturating_add(n);
        }
    }

    /// Nanoseconds since the trace epoch; 0 when not tracing.
    pub(crate) fn trace_now_ns(&self) -> u64 {
        match self.trace.as_ref() {
            Some(trace) => lock_trace(trace).now_ns(),
            None => 0,
        }
    }

    /// Records a non-nesting `[start_ns, end_ns]` interval correlated
    /// by `id`.
    pub(crate) fn trace_async(
        &self,
        name: &str,
        id: &str,
        start_ns: u64,
        end_ns: u64,
        args: &[(&str, &str)],
    ) {
        let Some(trace) = self.trace.as_ref() else {
            return;
        };
        let mut state = lock_trace(trace);
        let tid = state.tid();
        state.async_events.push(AsyncEvent {
            name: name.to_string(),
            id: id.to_string(),
            tid,
            start_ns,
            end_ns: end_ns.max(start_ns),
            args: owned_args(args),
        });
    }

    /// Renders the collected trace as Chrome trace-event JSON; `None`
    /// when not tracing. Spans still open at export time are omitted —
    /// export after the traced work has completed.
    pub(crate) fn trace_json(&self) -> Option<String> {
        let trace = self.trace.as_ref()?;
        let state = lock_trace(trace);
        let mut events = state.events.clone();
        events.sort_by_key(|e| (e.start_ns, e.id));
        let mut rows: Vec<Json> = Vec::with_capacity(events.len());
        for event in &events {
            let mut args: Vec<(String, Json)> =
                vec![("span".into(), Json::Str(format!("{:016x}", event.id)))];
            if let Some(parent) = event.parent {
                args.push(("parent".into(), Json::Str(format!("{parent:016x}"))));
            }
            for (k, v) in &event.args {
                args.push((k.clone(), Json::Str(v.clone())));
            }
            for (k, v) in &event.counters {
                args.push((format!("counter.{k}"), Json::UInt(*v)));
            }
            if event.aborted {
                args.push(("aborted".into(), Json::Bool(true)));
            }
            rows.push(Json::Obj(vec![
                ("name".into(), Json::Str(event.key.clone())),
                ("cat".into(), Json::Str("htd".into())),
                ("ph".into(), Json::Str("X".into())),
                ("ts".into(), micros(event.start_ns)),
                ("dur".into(), micros(event.dur_ns)),
                ("pid".into(), Json::UInt(1)),
                ("tid".into(), Json::UInt(event.tid)),
                ("args".into(), Json::Obj(args)),
            ]));
        }
        let mut asyncs = state.async_events.clone();
        asyncs.sort_by(|a, b| {
            (a.start_ns, a.id.as_str(), a.name.as_str()).cmp(&(
                b.start_ns,
                b.id.as_str(),
                b.name.as_str(),
            ))
        });
        for event in &asyncs {
            let mut begin_args: Vec<(String, Json)> = Vec::with_capacity(event.args.len());
            for (k, v) in &event.args {
                begin_args.push((k.clone(), Json::Str(v.clone())));
            }
            rows.push(Json::Obj(vec![
                ("name".into(), Json::Str(event.name.clone())),
                ("cat".into(), Json::Str("htd".into())),
                ("ph".into(), Json::Str("b".into())),
                ("id".into(), Json::Str(event.id.clone())),
                ("ts".into(), micros(event.start_ns)),
                ("pid".into(), Json::UInt(1)),
                ("tid".into(), Json::UInt(event.tid)),
                ("args".into(), Json::Obj(begin_args)),
            ]));
            rows.push(Json::Obj(vec![
                ("name".into(), Json::Str(event.name.clone())),
                ("cat".into(), Json::Str("htd".into())),
                ("ph".into(), Json::Str("e".into())),
                ("id".into(), Json::Str(event.id.clone())),
                ("ts".into(), micros(event.end_ns)),
                ("pid".into(), Json::UInt(1)),
                ("tid".into(), Json::UInt(event.tid)),
            ]));
        }
        let doc = Json::Obj(vec![
            ("displayTimeUnit".into(), Json::Str("ns".into())),
            ("traceEvents".into(), Json::Arr(rows)),
        ]);
        Some(doc.to_pretty())
    }
}

/// Chrome trace timestamps are microseconds; fractional µs keep the
/// nanosecond resolution of short spans.
fn micros(ns: u64) -> Json {
    // f64 precision comfortably covers any plausible trace duration
    // (2^53 ns ≈ 104 days); the trace is observational either way.
    #[allow(clippy::cast_precision_loss)]
    Json::Float(ns as f64 / 1000.0)
}
