//! The machine-readable run manifest written by `htd --metrics`.
//!
//! A [`RunManifest`] has one deterministic section — `counters`, a
//! sorted name → u64 map that is bit-identical across worker counts and
//! machines for a fixed campaign — and several observational sections
//! (`timings`, `occupancy`) that describe one particular run. CI diffs
//! only the counter section; the parser is strict (unknown or missing
//! keys are errors) so any schema drift fails loudly instead of being
//! silently ignored.
//!
//! **The additive rule**: strictness applies to the *schema* — the
//! top-level keys, the shape of each section — never to the counter
//! *names*. The `counters` object is an open name → u64 map, so a
//! newer build that counts something new produces manifests every
//! older reader still parses (and `htd bench diff` then reports the
//! name-set difference as a regression instead of choking on it).
//! Forward compatibility lives in the names; a changed shape still
//! requires a [`MANIFEST_VERSION`] bump.

use crate::json::{Json, JsonError};
use crate::MetricsSnapshot;

/// Version of the manifest schema itself. Bump only with a migration
/// note in DESIGN.md; the strict parser rejects other versions.
pub const MANIFEST_VERSION: u64 = 1;

/// Provenance of the binary that produced a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ToolInfo {
    /// Binary name (`htd`).
    pub name: String,
    /// Crate version of the binary.
    pub version: String,
    /// `htd-store` artifact format version the binary reads/writes.
    pub format_version: u64,
    /// Enabled feature/capability tokens (sorted).
    pub features: Vec<String>,
}

/// Wall-clock aggregate of one span key. Observational: no field here
/// is deterministic across runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTiming {
    /// Span key (`<stage>` or `<stage>/<detail>`).
    pub stage: String,
    /// Completed span count for this key.
    pub count: u64,
    /// Summed wall-clock nanoseconds.
    pub total_ns: u64,
    /// `total_ns / count` (0 when count is 0).
    pub mean_ns: u64,
    /// Largest single span in nanoseconds.
    pub max_ns: u64,
}

/// Items completed per pool slot for one resolved worker count.
/// Observational: scheduling decides which slot ran what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Occupancy {
    /// The resolved worker count of the fans aggregated here.
    pub workers: u64,
    /// Items completed by each worker slot.
    pub items: Vec<u64>,
}

/// Per-channel campaign health, mirrored from the pipeline's
/// `ChannelHealth` (htd-obs is a leaf crate and cannot depend on
/// htd-core, so the record is re-declared here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthRecord {
    /// Channel name.
    pub channel: String,
    /// Die acquisitions attempted.
    pub attempted: u64,
    /// Die acquisitions that needed at least one retry.
    pub retried: u64,
    /// Dies dropped after exhausting retries.
    pub dropped: u64,
    /// Measurement repetitions attempted.
    pub reps_attempted: u64,
    /// Measurement repetitions dropped by rep-level faults.
    pub reps_dropped: u64,
    /// Whether the whole channel was lost (calibration diverged).
    pub lost: bool,
}

/// A machine-readable record of one `htd` run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Schema version ([`MANIFEST_VERSION`]).
    pub manifest_version: u64,
    /// Provenance of the producing binary.
    pub tool: ToolInfo,
    /// The subcommand that produced this manifest (e.g. `score`).
    pub command: String,
    /// Resolved worker count of the run's engine.
    pub workers: u64,
    /// `fnv1a64:<16 hex>` digest of the campaign plan's store text, or
    /// empty when no plan was involved.
    pub plan_digest: String,
    /// Deterministic event counters, sorted by name. The only section
    /// CI diffs across runs.
    pub counters: Vec<(String, u64)>,
    /// Observational per-stage wall-clock, sorted by stage key.
    pub timings: Vec<StageTiming>,
    /// Observational pool occupancy, sorted by worker count.
    pub occupancy: Vec<Occupancy>,
    /// Per-channel campaign health (deterministic, like counters).
    pub health: Vec<HealthRecord>,
}

impl RunManifest {
    /// Assembles a manifest from a recorder snapshot plus run context.
    pub fn new(
        tool: ToolInfo,
        command: &str,
        workers: usize,
        plan_digest: &str,
        snapshot: &MetricsSnapshot,
        health: Vec<HealthRecord>,
    ) -> RunManifest {
        RunManifest {
            manifest_version: MANIFEST_VERSION,
            tool,
            command: command.to_string(),
            workers: workers as u64,
            plan_digest: plan_digest.to_string(),
            counters: snapshot.counters.clone(),
            timings: snapshot
                .timings
                .iter()
                .map(|t| StageTiming {
                    stage: t.key.clone(),
                    count: t.count,
                    total_ns: t.total_ns,
                    mean_ns: t.total_ns.checked_div(t.count).unwrap_or(0),
                    max_ns: t.max_ns,
                })
                .collect(),
            occupancy: snapshot
                .occupancy
                .iter()
                .map(|o| Occupancy {
                    workers: o.workers,
                    items: o.per_worker.clone(),
                })
                .collect(),
            health,
        }
    }

    /// The deterministic counter section as `name value` lines —
    /// the text CI diffs against the committed fixture.
    pub fn counters_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        out
    }

    /// Renders the manifest as deterministic pretty JSON.
    pub fn to_pretty(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Builds the manifest's JSON tree.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("manifest_version".into(), Json::UInt(self.manifest_version)),
            (
                "tool".into(),
                Json::Obj(vec![
                    ("name".into(), Json::Str(self.tool.name.clone())),
                    ("version".into(), Json::Str(self.tool.version.clone())),
                    (
                        "format_version".into(),
                        Json::UInt(self.tool.format_version),
                    ),
                    (
                        "features".into(),
                        Json::Arr(
                            self.tool
                                .features
                                .iter()
                                .map(|f| Json::Str(f.clone()))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            ("command".into(), Json::Str(self.command.clone())),
            ("workers".into(), Json::UInt(self.workers)),
            ("plan_digest".into(), Json::Str(self.plan_digest.clone())),
            (
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(name, value)| (name.clone(), Json::UInt(*value)))
                        .collect(),
                ),
            ),
            (
                "timings".into(),
                Json::Arr(
                    self.timings
                        .iter()
                        .map(|t| {
                            Json::Obj(vec![
                                ("stage".into(), Json::Str(t.stage.clone())),
                                ("count".into(), Json::UInt(t.count)),
                                ("total_ns".into(), Json::UInt(t.total_ns)),
                                ("mean_ns".into(), Json::UInt(t.mean_ns)),
                                ("max_ns".into(), Json::UInt(t.max_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "occupancy".into(),
                Json::Arr(
                    self.occupancy
                        .iter()
                        .map(|o| {
                            Json::Obj(vec![
                                ("workers".into(), Json::UInt(o.workers)),
                                (
                                    "items".into(),
                                    Json::Arr(o.items.iter().map(|&n| Json::UInt(n)).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "health".into(),
                Json::Arr(
                    self.health
                        .iter()
                        .map(|h| {
                            Json::Obj(vec![
                                ("channel".into(), Json::Str(h.channel.clone())),
                                ("attempted".into(), Json::UInt(h.attempted)),
                                ("retried".into(), Json::UInt(h.retried)),
                                ("dropped".into(), Json::UInt(h.dropped)),
                                ("reps_attempted".into(), Json::UInt(h.reps_attempted)),
                                ("reps_dropped".into(), Json::UInt(h.reps_dropped)),
                                ("lost".into(), Json::Bool(h.lost)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses manifest text, strictly: unknown keys, missing keys and
    /// unexpected versions are all errors ("fails on schema drift").
    pub fn parse(text: &str) -> Result<RunManifest, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }

    /// Strictly decodes a manifest from a JSON tree.
    pub fn from_json(json: &Json) -> Result<RunManifest, JsonError> {
        let mut top = Fields::new("manifest", json)?;
        let manifest_version = top.take("manifest_version")?.as_u64("manifest_version")?;
        if manifest_version != MANIFEST_VERSION {
            return Err(JsonError::schema(format!(
                "unsupported manifest_version {manifest_version} (expected {MANIFEST_VERSION})"
            )));
        }

        let tool_json = top.take("tool")?;
        let mut tool = Fields::new("tool", &tool_json)?;
        let tool = ToolInfo {
            name: tool.take("name")?.as_str("tool.name")?.to_string(),
            version: tool.take("version")?.as_str("tool.version")?.to_string(),
            format_version: tool.take("format_version")?.as_u64("tool.format_version")?,
            features: {
                let features = tool.take("features")?;
                let items = features.as_arr("tool.features")?;
                let parsed: Result<Vec<String>, JsonError> = items
                    .iter()
                    .map(|f| f.as_str("tool.features[]").map(str::to_string))
                    .collect();
                tool.finish()?;
                parsed?
            },
        };

        let command = top.take("command")?.as_str("command")?.to_string();
        let workers = top.take("workers")?.as_u64("workers")?;
        let plan_digest = top.take("plan_digest")?.as_str("plan_digest")?.to_string();

        let counters_json = top.take("counters")?;
        let counters: Result<Vec<(String, u64)>, JsonError> = counters_json
            .as_obj("counters")?
            .iter()
            .map(|(name, value)| Ok((name.clone(), value.as_u64(name)?)))
            .collect();
        let counters = counters?;

        let timings_json = top.take("timings")?;
        let timings: Result<Vec<StageTiming>, JsonError> = timings_json
            .as_arr("timings")?
            .iter()
            .map(|entry| {
                let mut f = Fields::new("timings[]", entry)?;
                let t = StageTiming {
                    stage: f.take("stage")?.as_str("timings[].stage")?.to_string(),
                    count: f.take("count")?.as_u64("timings[].count")?,
                    total_ns: f.take("total_ns")?.as_u64("timings[].total_ns")?,
                    mean_ns: f.take("mean_ns")?.as_u64("timings[].mean_ns")?,
                    max_ns: f.take("max_ns")?.as_u64("timings[].max_ns")?,
                };
                f.finish()?;
                Ok(t)
            })
            .collect();
        let timings = timings?;

        let occupancy_json = top.take("occupancy")?;
        let occupancy: Result<Vec<Occupancy>, JsonError> = occupancy_json
            .as_arr("occupancy")?
            .iter()
            .map(|entry| {
                let mut f = Fields::new("occupancy[]", entry)?;
                let workers = f.take("workers")?.as_u64("occupancy[].workers")?;
                let items_json = f.take("items")?;
                let items: Result<Vec<u64>, JsonError> = items_json
                    .as_arr("occupancy[].items")?
                    .iter()
                    .map(|n| n.as_u64("occupancy[].items[]"))
                    .collect();
                f.finish()?;
                Ok(Occupancy {
                    workers,
                    items: items?,
                })
            })
            .collect();
        let occupancy = occupancy?;

        let health_json = top.take("health")?;
        let health: Result<Vec<HealthRecord>, JsonError> = health_json
            .as_arr("health")?
            .iter()
            .map(|entry| {
                let mut f = Fields::new("health[]", entry)?;
                let h = HealthRecord {
                    channel: f.take("channel")?.as_str("health[].channel")?.to_string(),
                    attempted: f.take("attempted")?.as_u64("health[].attempted")?,
                    retried: f.take("retried")?.as_u64("health[].retried")?,
                    dropped: f.take("dropped")?.as_u64("health[].dropped")?,
                    reps_attempted: f
                        .take("reps_attempted")?
                        .as_u64("health[].reps_attempted")?,
                    reps_dropped: f.take("reps_dropped")?.as_u64("health[].reps_dropped")?,
                    lost: f.take("lost")?.as_bool("health[].lost")?,
                };
                f.finish()?;
                Ok(h)
            })
            .collect();
        let health = health?;

        top.finish()?;
        Ok(RunManifest {
            manifest_version,
            tool,
            command,
            workers,
            plan_digest,
            counters,
            timings,
            occupancy,
            health,
        })
    }
}

/// Strict object-field cursor: every field must be taken exactly once,
/// and leftovers are schema errors.
struct Fields {
    what: &'static str,
    fields: Vec<(String, Json)>,
}

impl Fields {
    fn new(what: &'static str, json: &Json) -> Result<Fields, JsonError> {
        Ok(Fields {
            what,
            fields: json.as_obj(what)?.to_vec(),
        })
    }

    fn take(&mut self, key: &str) -> Result<Json, JsonError> {
        match self.fields.iter().position(|(k, _)| k == key) {
            Some(i) => Ok(self.fields.remove(i).1),
            None => Err(JsonError::schema(format!(
                "{}: missing key \"{key}\"",
                self.what
            ))),
        }
    }

    fn finish(self) -> Result<(), JsonError> {
        if let Some((key, _)) = self.fields.first() {
            return Err(JsonError::schema(format!(
                "{}: unknown key \"{key}\"",
                self.what
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    fn sample() -> RunManifest {
        let obs = Obs::recording();
        obs.add("cache.settle.hit", 40);
        obs.add("cache.settle.miss", 8);
        obs.incr("span.score");
        obs.record_fan(8, 2, &[5, 3]);
        {
            let _s = obs.span("score");
        }
        RunManifest::new(
            ToolInfo {
                name: "htd".into(),
                version: "0.1.0".into(),
                format_version: 1,
                features: vec!["delay".into(), "em".into()],
            },
            "score",
            2,
            "fnv1a64:00deadbeef001122",
            &obs.snapshot().unwrap(),
            vec![HealthRecord {
                channel: "EM".into(),
                attempted: 8,
                retried: 1,
                dropped: 0,
                reps_attempted: 24,
                reps_dropped: 0,
                lost: false,
            }],
        )
    }

    #[test]
    fn manifest_round_trips() {
        let m = sample();
        let text = m.to_pretty();
        let back = RunManifest::parse(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.to_pretty(), text);
    }

    #[test]
    fn counters_text_is_sorted_name_value_lines() {
        let m = sample();
        let text = m.counters_text();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.contains(&"cache.settle.hit 40"));
        assert!(lines.contains(&"engine.tasks 8"));
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn unknown_key_is_schema_drift() {
        let m = sample();
        let text = m.to_pretty();
        let drifted = text.replacen("\"command\"", "\"commandx\"", 1);
        let err = RunManifest::parse(&drifted).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("missing key") || msg.contains("unknown key"),
            "{msg}"
        );
    }

    #[test]
    fn unknown_counter_names_parse_under_the_additive_rule() {
        // A v1 manifest from a newer build that counts something this
        // build has never heard of must still parse: counter names are
        // an open vocabulary, only the schema shape is strict.
        let m = sample();
        let text = m.to_pretty().replacen(
            "\"cache.settle.hit\": 40",
            "\"aaa.counter.from.the.future\": 7,\n    \"cache.settle.hit\": 40",
            1,
        );
        let back = RunManifest::parse(&text).expect("additive counters must parse");
        assert!(back
            .counters
            .iter()
            .any(|(name, value)| name == "aaa.counter.from.the.future" && *value == 7));
        assert_eq!(back.counters.len(), m.counters.len() + 1);

        // The openness is values too: any u64 is fine — but a counter
        // whose value is not a u64 is malformed, not "additive".
        let bad = m.to_pretty().replacen(
            "\"cache.settle.hit\": 40",
            "\"cache.settle.hit\": \"40\"",
            1,
        );
        assert!(RunManifest::parse(&bad).is_err());
    }

    #[test]
    fn wrong_manifest_version_is_rejected() {
        let m = sample();
        let text = m
            .to_pretty()
            .replacen("\"manifest_version\": 1", "\"manifest_version\": 2", 1);
        assert!(RunManifest::parse(&text)
            .unwrap_err()
            .to_string()
            .contains("unsupported manifest_version"));
    }

    #[test]
    fn timing_counts_never_leak_into_counters_text() {
        let m = sample();
        assert!(!m.counters_text().contains("_ns"));
        // The deterministic section carries only counter names.
        for (name, _) in &m.counters {
            assert!(
                name.starts_with("cache.")
                    || name.starts_with("span.")
                    || name.starts_with("engine.")
            );
        }
    }
}
