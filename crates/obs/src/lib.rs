//! # htd-obs — observability for the measurement pipeline
//!
//! Lightweight spans, counters and histograms threaded through the
//! engine, the channels and the artifact store, with one hard rule: the
//! **no-op default costs nothing on the hot path** and recording changes
//! no measured value. An [`Obs`] handle is either disabled (the default —
//! every call returns immediately without formatting, hashing or
//! locking) or carries an [`Arc<Recorder>`] that aggregates:
//!
//! * **counters** — monotonically increasing event counts (span entries,
//!   cache hits/misses, fault fires, retries, store bytes). Counter
//!   values are *deterministic*: in the campaign pipeline they are pure
//!   functions of the plan, bit-identical at any worker count.
//! * **timings** — per-stage wall-clock aggregates keyed by span name
//!   (and optional detail such as the die index). Durations are
//!   *observational only*: they vary run to run and must never enter
//!   checksummed artifacts or seed derivations.
//! * **occupancy** — per-worker item counts reported by the `htd-par`
//!   pool. Scheduling-dependent, hence observational like durations.
//!
//! The split is load-bearing: [`RunManifest`]'s `counters` section is
//! diffable across machines and worker counts, while `timings` and
//! `occupancy` describe one particular run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
mod manifest;
mod trace;

pub use json::Json;
pub use manifest::{HealthRecord, Occupancy, RunManifest, StageTiming, ToolInfo, MANIFEST_VERSION};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// A saturating atomic event counter.
///
/// Additions that would overflow clamp at [`u64::MAX`] instead of
/// wrapping, so a runaway counter can never masquerade as a small one.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n`, saturating at [`u64::MAX`].
    pub fn add(&self, n: u64) {
        // `fetch_update` with a total function never returns `Err`.
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(n))
            });
    }

    /// Adds one, saturating at [`u64::MAX`].
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of buckets in a [`Histogram`]: bucket 0 holds zeros, bucket
/// `i ≥ 1` holds values in `[2^(i-1), 2^i)`, with the top bucket
/// absorbing everything from `2^63` up.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-shape log2 histogram of `u64` samples (duration nanoseconds,
/// byte counts). The bucket layout is static, so merging and comparing
/// histograms never depends on the data that filled them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    total: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; HISTOGRAM_BUCKETS],
            total: 0,
        }
    }

    /// The bucket index `value` falls into: 0 for 0, else
    /// `1 + floor(log2(value))`.
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The smallest value landing in bucket `index` (0 for bucket 0,
    /// `2^(index-1)` otherwise).
    ///
    /// # Panics
    ///
    /// If `index >= HISTOGRAM_BUCKETS`.
    pub fn bucket_floor(index: usize) -> u64 {
        assert!(index < HISTOGRAM_BUCKETS, "bucket {index} out of range");
        if index == 0 {
            0
        } else {
            1u64 << (index - 1)
        }
    }

    /// Records one sample, saturating the bucket and total counts.
    pub fn record(&mut self, value: u64) {
        let i = Self::bucket_index(value);
        self.counts[i] = self.counts[i].saturating_add(1);
        self.total = self.total.saturating_add(1);
    }

    /// The count in bucket `index`.
    ///
    /// # Panics
    ///
    /// If `index >= HISTOGRAM_BUCKETS`.
    pub fn count(&self, index: usize) -> u64 {
        self.counts[index]
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// All bucket counts, lowest bucket first.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The value at quantile `q` (clamped to `[0, 1]`), resolved to
    /// bucket granularity: the inclusive upper bound of the bucket
    /// holding the sample of rank `ceil(q · total)` — 0 for the zero
    /// bucket, `2^i − 1` for bucket `i`, [`u64::MAX`] for the top
    /// bucket. An empty histogram reports 0. This is the one shared
    /// p50/p99 derivation; callers must not re-derive percentiles from
    /// raw bucket counts.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // `total` is a count of real samples, far below 2^53.
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cumulative = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            cumulative = cumulative.saturating_add(count);
            if cumulative >= rank {
                return match index {
                    0 => 0,
                    64 => u64::MAX,
                    i => (1u64 << i) - 1,
                };
            }
        }
        u64::MAX
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Wall-clock aggregate of one span key.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TimingAgg {
    count: u64,
    total_ns: u64,
    max_ns: u64,
    hist: Histogram,
}

impl TimingAgg {
    fn new() -> Self {
        TimingAgg {
            count: 0,
            total_ns: 0,
            max_ns: 0,
            hist: Histogram::new(),
        }
    }

    fn record(&mut self, ns: u64) {
        self.count = self.count.saturating_add(1);
        self.total_ns = self.total_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
        self.hist.record(ns);
    }
}

/// The recorder's aggregation state, behind one mutex. Counters live in
/// a sorted map so snapshots (and manifests built from them) render in a
/// deterministic order without a sort pass.
#[derive(Debug, Default)]
struct RecorderState {
    counters: BTreeMap<String, u64>,
    timings: BTreeMap<String, TimingAgg>,
    occupancy: BTreeMap<u64, Vec<u64>>,
}

/// The recording sink behind an enabled [`Obs`] handle.
#[derive(Debug, Default)]
pub struct Recorder {
    state: Mutex<RecorderState>,
    /// Span-tree collection ([`Obs::recording_traced`]); `None` for
    /// plain recording handles, which then skip every tracing branch.
    trace: Option<Mutex<trace::TraceState>>,
}

/// Locks the recorder state, recovering from poisoning: the state holds
/// only monotone aggregates, so the data behind a poisoned lock is still
/// a valid (partial) record of the run.
fn lock_state(recorder: &Recorder) -> MutexGuard<'_, RecorderState> {
    recorder
        .state
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

impl Recorder {
    fn traced() -> Self {
        Recorder {
            state: Mutex::default(),
            trace: Some(Mutex::new(trace::TraceState::new())),
        }
    }

    fn add(&self, name: &str, n: u64) {
        {
            let mut state = lock_state(self);
            match state.counters.get_mut(name) {
                Some(v) => *v = v.saturating_add(n),
                None => {
                    state.counters.insert(name.to_string(), n);
                }
            }
        }
        // Attribution copies the increment into the open span's delta
        // set; the counter totals above are the source of truth and are
        // identical with tracing on or off.
        if self.trace.is_some() {
            self.trace_attribute(name, n);
        }
    }

    fn record_duration(&self, key: &str, ns: u64) {
        let mut state = lock_state(self);
        match state.timings.get_mut(key) {
            Some(agg) => agg.record(ns),
            None => {
                let mut agg = TimingAgg::new();
                agg.record(ns);
                state.timings.insert(key.to_string(), agg);
            }
        }
    }

    fn record_occupancy(&self, workers: u64, per_worker: &[u64]) {
        let mut state = lock_state(self);
        let slots = state.occupancy.entry(workers).or_default();
        if slots.len() < per_worker.len() {
            slots.resize(per_worker.len(), 0);
        }
        for (slot, &n) in slots.iter_mut().zip(per_worker) {
            *slot = slot.saturating_add(n);
        }
    }
}

/// One counter's snapshot: `(name, value)`.
pub type CounterSnapshot = (String, u64);

/// One span key's wall-clock snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingSnapshot {
    /// The span key (`<stage>` or `<stage>/<detail>`).
    pub key: String,
    /// Completed span count.
    pub count: u64,
    /// Summed wall-clock nanoseconds.
    pub total_ns: u64,
    /// Largest single span in nanoseconds.
    pub max_ns: u64,
    /// Log2 distribution of span durations.
    pub hist: Histogram,
}

/// One worker-count's occupancy snapshot: items completed per pool slot,
/// summed over every fan that resolved to that worker count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancySnapshot {
    /// The resolved worker count of the fans aggregated here.
    pub workers: u64,
    /// Items completed by each worker slot.
    pub per_worker: Vec<u64>,
}

/// A point-in-time copy of everything a [`Recorder`] aggregated, in
/// deterministic (sorted) order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Deterministic event counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Observational wall-clock aggregates, sorted by key.
    pub timings: Vec<TimingSnapshot>,
    /// Observational pool occupancy, sorted by worker count.
    pub occupancy: Vec<OccupancySnapshot>,
}

/// A cheap-to-clone observability handle: either disabled (the default;
/// every operation is a branch on `None` and nothing else) or recording
/// into a shared [`Recorder`].
#[derive(Debug, Clone, Default)]
pub struct Obs {
    recorder: Option<Arc<Recorder>>,
}

impl Obs {
    /// The disabled handle: records nothing, costs (almost) nothing.
    pub fn noop() -> Self {
        Obs { recorder: None }
    }

    /// A fresh recording handle with its own [`Recorder`].
    pub fn recording() -> Self {
        Obs {
            recorder: Some(Arc::new(Recorder::default())),
        }
    }

    /// A recording handle that additionally collects the span tree for
    /// Chrome trace-event export ([`Obs::trace_json`]). Counters,
    /// timings and occupancy behave exactly as under
    /// [`Obs::recording`] — tracing adds parallel state, it never
    /// reroutes or adds a counter.
    pub fn recording_traced() -> Self {
        Obs {
            recorder: Some(Arc::new(Recorder::traced())),
        }
    }

    /// Whether this handle records anything.
    pub fn enabled(&self) -> bool {
        self.recorder.is_some()
    }

    /// Whether this handle collects a span tree
    /// ([`Obs::recording_traced`]).
    pub fn tracing(&self) -> bool {
        self.recorder
            .as_ref()
            .is_some_and(|rec| rec.trace.is_some())
    }

    /// Adds `n` to the counter `name`. No-op when disabled.
    pub fn add(&self, name: &str, n: u64) {
        if let Some(rec) = &self.recorder {
            rec.add(name, n);
        }
    }

    /// Adds one to the counter `name`. No-op when disabled.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Opens a span named `name`: the counter `span.<name>` is bumped
    /// immediately (deterministic), and the span's wall-clock is
    /// recorded under the timing key `name` when the guard drops
    /// (observational). Disabled handles return an inert guard.
    pub fn span(&self, name: &str) -> Span {
        self.span_keys(name, None, &[])
    }

    /// [`Obs::span`] with a run-specific detail suffix: the entry
    /// counter stays `span.<name>` (so counter sections never grow with
    /// the population), while the wall-clock lands under
    /// `name/detail` — e.g. per-die acquire timings.
    pub fn span_detailed(&self, name: &str, detail: &str) -> Span {
        self.span_keys(name, Some(detail), &[])
    }

    /// [`Obs::span`] with key/value tags attached to the span's trace
    /// event — a request id, a batch size. Tags are trace-only:
    /// counters and timings are exactly [`Obs::span`]'s, and without
    /// tracing the tags vanish for free.
    pub fn span_tagged(&self, name: &str, args: &[(&str, &str)]) -> Span {
        self.span_keys(name, None, args)
    }

    fn span_keys(&self, name: &str, detail: Option<&str>, args: &[(&str, &str)]) -> Span {
        match &self.recorder {
            None => Span { active: None },
            Some(rec) => {
                // The entry counter bumps before the trace span opens,
                // so it attributes to the *parent* span — the child's
                // delta set holds what happened strictly inside it.
                rec.add(&format!("span.{name}"), 1);
                let timing_key = match detail {
                    None => name.to_string(),
                    Some(detail) => format!("{name}/{detail}"),
                };
                let trace_id = rec.trace_open(&timing_key, args);
                Span {
                    active: Some(ActiveSpan {
                        recorder: Arc::clone(rec),
                        name: name.to_string(),
                        timing_key,
                        trace_id,
                        start: Instant::now(),
                    }),
                }
            }
        }
    }

    /// Nanoseconds since this handle's trace epoch, for timestamping
    /// [`Obs::trace_async`] intervals. Returns 0 when not tracing.
    pub fn now_ns(&self) -> u64 {
        match &self.recorder {
            Some(rec) => rec.trace_now_ns(),
            None => 0,
        }
    }

    /// Records a non-nesting interval (e.g. one request's wait in a
    /// queue, begun on one thread and ended on another) into the trace
    /// as a Chrome async `b`/`e` pair correlated by `id`. Timestamps
    /// come from [`Obs::now_ns`]. No-op unless tracing.
    pub fn trace_async(
        &self,
        name: &str,
        id: &str,
        start_ns: u64,
        end_ns: u64,
        args: &[(&str, &str)],
    ) {
        if let Some(rec) = &self.recorder {
            rec.trace_async(name, id, start_ns, end_ns, args);
        }
    }

    /// Exports the collected span tree as Chrome trace-event JSON — a
    /// deterministic rendering (sorted events, insertion-ordered keys)
    /// that `chrome://tracing` and Perfetto open directly. `None`
    /// unless tracing.
    pub fn trace_json(&self) -> Option<String> {
        self.recorder.as_ref()?.trace_json()
    }

    /// Records `value` into the observational distribution `name`: the
    /// same count/total/max/log2-histogram aggregate spans use, but fed
    /// a raw magnitude instead of nanoseconds — e.g. queue depths
    /// sampled at drain time, batch sizes, occupancy. The aggregate
    /// lands in the manifest's timings (observational) section and never
    /// in the deterministic counters. No-op when disabled.
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(rec) = &self.recorder {
            rec.record_duration(name, value);
        }
    }

    /// Records one pool fan: `fans`/`tasks` counters (deterministic —
    /// the fan structure is a pure function of the campaign) plus the
    /// per-slot occupancy (observational — scheduling decides which slot
    /// ran what).
    pub fn record_fan(&self, tasks: u64, workers: u64, per_worker: &[u64]) {
        if let Some(rec) = &self.recorder {
            rec.add("engine.fans", 1);
            rec.add("engine.tasks", tasks);
            rec.record_occupancy(workers, per_worker);
        }
    }

    /// Takes a deterministic snapshot of the recorder, or `None` when
    /// disabled.
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        let rec = self.recorder.as_ref()?;
        let state = lock_state(rec);
        Some(MetricsSnapshot {
            counters: state
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            timings: state
                .timings
                .iter()
                .map(|(k, agg)| TimingSnapshot {
                    key: k.clone(),
                    count: agg.count,
                    total_ns: agg.total_ns,
                    max_ns: agg.max_ns,
                    hist: agg.hist.clone(),
                })
                .collect(),
            occupancy: state
                .occupancy
                .iter()
                .map(|(workers, slots)| OccupancySnapshot {
                    workers: *workers,
                    per_worker: slots.clone(),
                })
                .collect(),
        })
    }
}

/// The live half of an enabled span guard.
#[derive(Debug)]
struct ActiveSpan {
    recorder: Arc<Recorder>,
    name: String,
    timing_key: String,
    trace_id: Option<u64>,
    start: Instant,
}

/// An RAII span guard from [`Obs::span`]: entry was counted at creation;
/// dropping it records the elapsed wall-clock — unless the thread is
/// unwinding, in which case the aborted span is *counted* (under
/// `span.<name>.aborted`) but its truncated wall-clock never pollutes
/// the timing aggregates.
#[derive(Debug)]
#[must_use = "dropping the guard immediately records a zero-length span"]
pub struct Span {
    active: Option<ActiveSpan>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            let aborted = std::thread::panicking();
            if let Some(id) = active.trace_id {
                // Close the trace span first: the aborted counter below
                // then attributes to the parent, not the dead span.
                active.recorder.trace_close(id, aborted);
            }
            if aborted {
                active
                    .recorder
                    .add(&format!("span.{}.aborted", active.name), 1);
            } else {
                let ns = u64::try_from(active.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                active.recorder.record_duration(&active.timing_key, ns);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let c = Counter::new();
        c.add(u64::MAX - 1);
        c.incr();
        assert_eq!(c.get(), u64::MAX);
        c.incr();
        c.add(12345);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn histogram_bucket_edges() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_floor(0), 0);
        assert_eq!(Histogram::bucket_floor(1), 1);
        assert_eq!(Histogram::bucket_floor(64), 1u64 << 63);
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(2), 2);
        assert_eq!(h.count(11), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn noop_handle_records_nothing() {
        let obs = Obs::noop();
        assert!(!obs.enabled());
        obs.incr("x");
        let _span = obs.span("stage");
        drop(_span);
        obs.record_fan(10, 4, &[3, 3, 2, 2]);
        assert!(obs.snapshot().is_none());
    }

    #[test]
    fn spans_count_deterministically_and_time_observationally() {
        let obs = Obs::recording();
        for die in 0..3 {
            let _s = obs.span_detailed("acquire.EM", &format!("die{die}"));
        }
        {
            let _s = obs.span("fuse");
        }
        let snap = obs.snapshot().unwrap();
        let counters: std::collections::BTreeMap<_, _> = snap.counters.into_iter().collect();
        assert_eq!(counters.get("span.acquire.EM"), Some(&3));
        assert_eq!(counters.get("span.fuse"), Some(&1));
        // Timings carry the per-die detail keys; counters do not.
        let keys: Vec<&str> = snap.timings.iter().map(|t| t.key.as_str()).collect();
        assert_eq!(
            keys,
            vec![
                "acquire.EM/die0",
                "acquire.EM/die1",
                "acquire.EM/die2",
                "fuse"
            ]
        );
        for t in &snap.timings {
            assert_eq!(t.count, 1);
            assert_eq!(t.hist.total(), 1);
            assert!(t.max_ns <= t.total_ns);
        }
    }

    #[test]
    fn clones_share_one_recorder() {
        let obs = Obs::recording();
        let clone = obs.clone();
        obs.add("a", 2);
        clone.add("a", 3);
        let snap = obs.snapshot().unwrap();
        assert_eq!(snap.counters, vec![("a".to_string(), 5)]);
    }

    #[test]
    fn occupancy_accumulates_per_worker_count() {
        let obs = Obs::recording();
        obs.record_fan(5, 2, &[3, 2]);
        obs.record_fan(7, 2, &[4, 3]);
        obs.record_fan(4, 4, &[1, 1, 1, 1]);
        let snap = obs.snapshot().unwrap();
        assert_eq!(snap.occupancy.len(), 2);
        assert_eq!(snap.occupancy[0].workers, 2);
        assert_eq!(snap.occupancy[0].per_worker, vec![7, 5]);
        assert_eq!(snap.occupancy[1].workers, 4);
        let counters: std::collections::BTreeMap<_, _> = snap.counters.into_iter().collect();
        assert_eq!(counters.get("engine.fans"), Some(&3));
        assert_eq!(counters.get("engine.tasks"), Some(&16));
    }

    #[test]
    fn percentile_reports_bucket_upper_bounds() {
        let empty = Histogram::new();
        assert_eq!(empty.percentile(0.5), 0);
        assert_eq!(empty.percentile(0.99), 0);

        let mut h = Histogram::new();
        // 10 samples: 5 zeros, 4 in bucket 3 ([4, 8)), 1 in bucket 11.
        for _ in 0..5 {
            h.record(0);
        }
        for _ in 0..4 {
            h.record(5);
        }
        h.record(1024);
        assert_eq!(h.percentile(0.0), 0, "rank clamps to the first sample");
        assert_eq!(h.percentile(0.5), 0, "rank 5 is still in the zero bucket");
        assert_eq!(h.percentile(0.6), 7, "rank 6 lands in [4, 8)");
        assert_eq!(h.percentile(0.9), 7);
        assert_eq!(h.percentile(0.99), 2047, "rank 10 is the 1024 sample");
        assert_eq!(h.percentile(1.0), 2047);
        assert_eq!(h.percentile(2.0), 2047, "q clamps to 1");

        let mut top = Histogram::new();
        top.record(u64::MAX);
        assert_eq!(top.percentile(0.5), u64::MAX);
    }

    #[test]
    fn panicking_span_counts_aborted_instead_of_timing() {
        let obs = Obs::recording();
        let clone = obs.clone();
        let result = std::panic::catch_unwind(move || {
            let _span = clone.span("score");
            panic!("mid-span failure");
        });
        assert!(result.is_err());
        {
            let _span = obs.span("score");
        }
        let snap = obs.snapshot().unwrap();
        let counters: std::collections::BTreeMap<_, _> = snap.counters.into_iter().collect();
        assert_eq!(counters.get("span.score"), Some(&2), "both entries counted");
        assert_eq!(counters.get("span.score.aborted"), Some(&1));
        // Only the clean span produced a timing sample.
        let timing = snap.timings.iter().find(|t| t.key == "score").unwrap();
        assert_eq!(timing.count, 1);
    }

    #[test]
    fn traced_handle_builds_a_span_tree_with_counter_deltas() {
        let obs = Obs::recording_traced();
        assert!(obs.tracing() && obs.enabled());
        {
            let _outer = obs.span("campaign");
            obs.add("work.outer", 2);
            {
                let _inner = obs.span_tagged("score", &[("request", "req-7")]);
                obs.incr("work.inner");
            }
            {
                let _inner = obs.span("score");
            }
        }
        let json = obs.trace_json().unwrap();
        let doc = Json::parse(&json).unwrap();
        let Json::Obj(top) = &doc else {
            panic!("trace must be an object")
        };
        let events = top
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| match v {
                Json::Arr(items) => items,
                other => panic!("traceEvents must be an array, got {other:?}"),
            })
            .unwrap();
        assert_eq!(events.len(), 3, "{json}");
        // The rendering is deterministic enough to assert on directly.
        assert!(json.contains("\"name\": \"campaign\""), "{json}");
        assert!(json.contains("\"request\": \"req-7\""), "{json}");
        assert!(json.contains("\"counter.work.inner\": 1"), "{json}");
        // The outer span holds its own increments plus the entry
        // counters of its children (bumped before each child opens).
        assert!(json.contains("\"counter.work.outer\": 2"), "{json}");
        assert!(json.contains("\"counter.span.score\": 2"), "{json}");
        assert!(json.contains("\"parent\""), "{json}");

        // Counter totals are bit-identical to an untraced run's.
        let untraced = Obs::recording();
        {
            let _outer = untraced.span("campaign");
            untraced.add("work.outer", 2);
            {
                let _inner = untraced.span_tagged("score", &[("request", "req-7")]);
                untraced.incr("work.inner");
            }
            {
                let _inner = untraced.span("score");
            }
        }
        assert_eq!(
            obs.snapshot().unwrap().counters,
            untraced.snapshot().unwrap().counters
        );
    }

    #[test]
    fn trace_ids_are_deterministic_across_serial_runs() {
        let ids = |obs: &Obs| {
            {
                let _outer = obs.span("campaign");
                let _inner = obs.span("score");
            }
            let json = obs.trace_json().unwrap();
            let mut spans: Vec<String> = Vec::new();
            let mut rest = json.as_str();
            while let Some(at) = rest.find("\"span\": \"") {
                let tail = &rest[at + 9..];
                spans.push(tail[..16].to_string());
                rest = &tail[16..];
            }
            spans.sort();
            spans
        };
        let first = Obs::recording_traced();
        let second = Obs::recording_traced();
        let a = ids(&first);
        let b = ids(&second);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn async_intervals_render_as_begin_end_pairs() {
        let obs = Obs::recording_traced();
        let start = obs.now_ns();
        let end = obs.now_ns().max(start + 1);
        obs.trace_async("queue.wait", "req-3", start, end, &[("depth", "2")]);
        let json = obs.trace_json().unwrap();
        assert!(json.contains("\"ph\": \"b\""), "{json}");
        assert!(json.contains("\"ph\": \"e\""), "{json}");
        assert!(json.contains("\"id\": \"req-3\""), "{json}");
        assert!(json.contains("\"depth\": \"2\""), "{json}");
        // Plain handles: tracing surface is inert, not an error.
        let plain = Obs::recording();
        assert_eq!(plain.now_ns(), 0);
        plain.trace_async("queue.wait", "x", 0, 1, &[]);
        assert!(plain.trace_json().is_none());
        assert!(Obs::noop().trace_json().is_none());
    }

    #[test]
    fn snapshot_order_is_sorted_and_stable() {
        let obs = Obs::recording();
        obs.incr("zebra");
        obs.incr("alpha");
        obs.incr("mid");
        let names: Vec<String> = obs
            .snapshot()
            .unwrap()
            .counters
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["alpha", "mid", "zebra"]);
    }
}
