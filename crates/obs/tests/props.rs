//! Property-based tests for the observability primitives.

use htd_obs::{Counter, Histogram, Json, HISTOGRAM_BUCKETS};
use proptest::prelude::*;

proptest! {
    /// Every value lands in exactly the bucket whose floor bounds it:
    /// `floor(idx) <= v` and, below the saturating top bucket,
    /// `v < 2 * floor(idx)`.
    #[test]
    fn histogram_bucket_bounds(v in any::<u64>()) {
        let idx = Histogram::bucket_index(v);
        prop_assert!(idx < HISTOGRAM_BUCKETS);
        let floor = Histogram::bucket_floor(idx);
        prop_assert!(floor <= v, "floor {floor} > value {v}");
        if idx + 1 < HISTOGRAM_BUCKETS {
            prop_assert!(v < Histogram::bucket_floor(idx + 1));
        }
    }

    /// Bucket assignment is monotone in the value.
    #[test]
    fn histogram_bucket_monotone(a in any::<u64>(), b in any::<u64>()) {
        if a <= b {
            prop_assert!(Histogram::bucket_index(a) <= Histogram::bucket_index(b));
        }
    }

    /// Recording n values yields total n and bucket counts summing to n.
    #[test]
    fn histogram_conserves_samples(values in proptest::collection::vec(any::<u64>(), 0..64)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.total(), values.len() as u64);
        let sum: u64 = h.counts().iter().sum();
        prop_assert_eq!(sum, values.len() as u64);
    }

    /// Counter additions saturate at u64::MAX instead of wrapping, and
    /// below the ceiling behave like plain addition.
    #[test]
    fn counter_saturates(start in any::<u64>(), n in any::<u64>()) {
        let c = Counter::new();
        c.add(start);
        c.add(n);
        prop_assert_eq!(c.get(), start.saturating_add(n));
    }

    /// incr from an arbitrary start never wraps to a smaller value.
    #[test]
    fn counter_incr_monotone(start in any::<u64>()) {
        let c = Counter::new();
        c.add(start);
        let before = c.get();
        c.incr();
        prop_assert!(c.get() >= before);
    }

    /// JSON strings survive a render/parse round trip for arbitrary
    /// content, including control characters and non-ASCII.
    #[test]
    fn json_string_round_trip(s in ".*") {
        let v = Json::Str(s.clone());
        let parsed = Json::parse(&v.to_pretty()).unwrap();
        prop_assert_eq!(parsed, v);
    }

    /// u64 counters survive a JSON round trip exactly (never via f64).
    #[test]
    fn json_u64_round_trip(n in any::<u64>()) {
        let v = Json::UInt(n);
        prop_assert_eq!(Json::parse(&v.to_pretty()).unwrap(), v);
    }
}
