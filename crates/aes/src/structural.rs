//! Structural AES-128: elaboration into a LUT6-mapped netlist.
//!
//! The generated design mirrors the iterative FPGA implementation the paper
//! attacks: a 128-bit state register, a 128-bit round-key register with
//! on-the-fly key schedule, a 4-bit round counter, and one full round of
//! combinational logic per clock. Technology mapping choices:
//!
//! * **S-box**: each of the 8 output bits is a 4-quadrant decomposition —
//!   four LUT6 over the input's low six bits plus one LUT6 acting as a 4:1
//!   mux on the top two bits (5 LUTs per bit, 40 per S-box). 16 state
//!   S-boxes + 4 key-schedule S-boxes.
//! * **MixColumns / AddRoundKey**: XOR networks packed into ≤6-input LUTs.
//! * **ShiftRows**: pure wiring (no cells), as on a real FPGA.
//! * **Control**: round counter with load/hold, RCON decode LUTs, and a
//!   last-round MixColumns bypass folded into the AddRoundKey LUTs.
//!
//! The resulting netlist is ~1.5 k LUTs / 260 FFs, which lands at ≈ 38 % of
//! the scaled LX30 device — matching the paper's reported AES utilisation
//! (Section II-B).
//!
//! Interface timing: assert `load` with plaintext/key for one clock (the
//! state register captures `pt ⊕ key`, the round-key register captures the
//! key, the counter resets to 1), then clock ten more times; the state
//! register then holds the ciphertext and `done` goes high. [`AesSim`]
//! wraps this protocol.

use htd_netlist::{CellId, LutMask, NetId, Netlist, NetlistError, Simulator};

use crate::sbox::{RCON, SBOX};

/// Block/bit packing used throughout: bit `i` of a 128-bit block is bit
/// `i % 8` (LSB-first) of byte `i / 8`, and byte order is FIPS-197 state
/// order (`s[r][c]` at byte index `r + 4c`).
pub const BLOCK_BITS: usize = 128;

/// The structural AES-128 design plus its pin map.
#[derive(Debug, Clone)]
pub struct AesNetlist {
    netlist: Netlist,
    plaintext: Vec<NetId>,
    key: Vec<NetId>,
    load: NetId,
    state_q: Vec<NetId>,
    state_d: Vec<NetId>,
    state_cells: Vec<CellId>,
    rk_q: Vec<NetId>,
    counter_q: Vec<NetId>,
    done: NetId,
}

impl AesNetlist {
    /// Elaborates the AES-128 design.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from construction; the fixed generator
    /// is expected to always succeed (a failure indicates an internal bug).
    pub fn generate() -> Result<Self, NetlistError> {
        let mut nl = Netlist::new("aes128");

        // ---- Ports -----------------------------------------------------
        let plaintext: Vec<NetId> = (0..BLOCK_BITS)
            .map(|i| nl.add_input(format!("pt[{i}]")))
            .collect();
        let key: Vec<NetId> = (0..BLOCK_BITS)
            .map(|i| nl.add_input(format!("key[{i}]")))
            .collect();
        let load = nl.add_input("load");

        // ---- Registers (created first so feedback can reference Q) -----
        let mut state_cells = Vec::with_capacity(BLOCK_BITS);
        let mut state_q = Vec::with_capacity(BLOCK_BITS);
        for i in 0..BLOCK_BITS {
            let (c, q) = nl.add_dff_uninit(format!("state[{i}]"));
            state_cells.push(c);
            state_q.push(q);
        }
        let mut rk_cells = Vec::with_capacity(BLOCK_BITS);
        let mut rk_q = Vec::with_capacity(BLOCK_BITS);
        for i in 0..BLOCK_BITS {
            let (c, q) = nl.add_dff_uninit(format!("rk[{i}]"));
            rk_cells.push(c);
            rk_q.push(q);
        }
        let mut ctr_cells = Vec::with_capacity(4);
        let mut counter_q = Vec::with_capacity(4);
        for i in 0..4 {
            let (c, q) = nl.add_dff_uninit(format!("round[{i}]"));
            ctr_cells.push(c);
            counter_q.push(q);
        }

        // ---- Control ---------------------------------------------------
        // `is_last` and `hold` are *registered* decodes of the next counter
        // value: combinational decodes of a binary counter glitch while the
        // counter bits settle (9 -> 10 passes through 11), and a glitching
        // 260-fan-out control net would swamp the data-dependent timing the
        // glitch attack measures. Registered control is also what a careful
        // RTL designer writes.
        let (is_last_ff, is_last) = nl.add_dff_uninit("is_last");
        let (hold_ff, hold) = nl.add_dff_uninit("hold");
        let inc = nl.incrementer(&counter_q);
        // counter_d = load ? 1 : (hold ? q : inc)
        let mut counter_d = Vec::with_capacity(4);
        for i in 0..4 {
            let target = i == 0; // binary 1
            let mask = LutMask::from_fn(4, move |r| {
                let inc_b = r & 1 == 1;
                let q_b = r & 2 == 2;
                let load_b = r & 4 == 4;
                let hold_b = r & 8 == 8;
                if load_b {
                    target
                } else if hold_b {
                    q_b
                } else {
                    inc_b
                }
            });
            let d = nl.add_lut_named(
                &[inc[i], counter_q[i], load, hold],
                mask,
                format!("round_d[{i}]"),
            )?;
            nl.connect_dff_d(ctr_cells[i], d)?;
            counter_d.push(d);
        }
        let is_last_d = nl.eq_const(&counter_d, 10);
        nl.connect_dff_d(is_last_ff, is_last_d)?;
        let hold_d = nl.eq_const(&counter_d, 11);
        nl.connect_dff_d(hold_ff, hold_d)?;

        // RCON decode: 8 bits from the 4 counter bits.
        let rcon_bits: Vec<NetId> = (0..8)
            .map(|j| {
                let mask = LutMask::from_fn(4, move |r| {
                    let r = r as usize;
                    (1..=10).contains(&r) && (RCON[r] >> j) & 1 == 1
                });
                nl.add_lut_named(&counter_q, mask, format!("rcon[{j}]"))
            })
            .collect::<Result<_, _>>()?;

        // ---- Key schedule (combinational, computes rk_r from rk_{r-1}) --
        // temp = SubWord(RotWord(w3)) ^ rcon; rotated byte order 13,14,15,12.
        // The recurrence w_k' = w_k ^ w_{k-1}' telescopes to
        // w_k' = w_k ^ ... ^ w_0 ^ temp, which a mapper flattens into one
        // ≤6-input XOR LUT per bit (3 logic levels total instead of a
        // 7-level XOR chain — the balanced form real synthesis produces).
        let ks_sbox_in: [usize; 4] = [13, 14, 15, 12];
        let mut sub_rot_bits: Vec<NetId> = Vec::with_capacity(32);
        for (t, &src_byte) in ks_sbox_in.iter().enumerate() {
            let in_bits: [NetId; 8] = core::array::from_fn(|b| rk_q[src_byte * 8 + b]);
            let s = sbox_bits(&mut nl, &in_bits, &format!("ks_sbox{t}"))?;
            sub_rot_bits.extend_from_slice(&s);
        }
        let mut rk_next: Vec<NetId> = Vec::with_capacity(BLOCK_BITS);
        for w in 0..4usize {
            for i in 0..32usize {
                let mut sources: Vec<NetId> = (0..=w).map(|k| rk_q[k * 32 + i]).collect();
                sources.push(sub_rot_bits[i]);
                if i < 8 {
                    // RCON lands on the first byte of temp.
                    sources.push(rcon_bits[i]);
                }
                rk_next.push(nl.xor_many(&sources));
            }
        }

        // ---- Round datapath ---------------------------------------------
        // SubBytes over the 16 state bytes.
        let mut sb: Vec<[NetId; 8]> = Vec::with_capacity(16);
        for byte in 0..16 {
            let in_bits: [NetId; 8] = core::array::from_fn(|b| state_q[byte * 8 + b]);
            sb.push(sbox_bits(&mut nl, &in_bits, &format!("sbox{byte}"))?);
        }
        // ShiftRows: byte permutation, out[r + 4c] = in[r + 4((c + r) % 4)].
        let mut sr: Vec<[NetId; 8]> = vec![[sb[0][0]; 8]; 16];
        for r in 0..4 {
            for c in 0..4 {
                sr[r + 4 * c] = sb[r + 4 * ((c + r) % 4)];
            }
        }
        // MixColumns per column; coefficient matrix rows are rotations of
        // [2, 3, 1, 1].
        let mut mc: Vec<[NetId; 8]> = Vec::with_capacity(16);
        for col in 0..4 {
            let bytes: [[NetId; 8]; 4] = core::array::from_fn(|r| sr[4 * col + r]);
            for out_row in 0..4 {
                let mut out_bits = [sb[0][0]; 8];
                for (bit, out_bit) in out_bits.iter_mut().enumerate() {
                    let mut sources: Vec<NetId> = Vec::with_capacity(8);
                    for (k, byte) in bytes.iter().enumerate() {
                        let coeff = [2u8, 3, 1, 1][(k + 4 - out_row) % 4];
                        match coeff {
                            1 => sources.push(byte[bit]),
                            2 => sources.extend(xtime_sources(byte, bit)),
                            3 => {
                                sources.extend(xtime_sources(byte, bit));
                                sources.push(byte[bit]);
                            }
                            _ => unreachable!("MixColumns uses only 1, 2, 3"),
                        }
                    }
                    *out_bit = nl.xor_many(&sources);
                }
                mc.push(out_bits);
            }
        }

        // AddRoundKey with last-round MixColumns bypass, then the state
        // load/hold mux. ark = (is_last ? sr : mc) ^ rk_next.
        let mut state_d = Vec::with_capacity(BLOCK_BITS);
        for i in 0..BLOCK_BITS {
            let (byte, bit) = (i / 8, i % 8);
            let ark_mask = LutMask::from_fn(4, |r| {
                let mc_b = r & 1 == 1;
                let sr_b = r & 2 == 2;
                let last_b = r & 4 == 4;
                let rk_b = r & 8 == 8;
                (if last_b { sr_b } else { mc_b }) ^ rk_b
            });
            let ark = nl.add_lut_named(
                &[mc[byte][bit], sr[byte][bit], is_last, rk_next[i]],
                ark_mask,
                format!("ark[{i}]"),
            )?;
            let init = nl.xor2(plaintext[i], key[i]);
            // d = load ? init : (hold ? q : ark)
            let mux_mask = LutMask::from_fn(5, |r| {
                let ark_b = r & 1 == 1;
                let init_b = r & 2 == 2;
                let q_b = r & 4 == 4;
                let load_b = r & 8 == 8;
                let hold_b = r & 16 == 16;
                if load_b {
                    init_b
                } else if hold_b {
                    q_b
                } else {
                    ark_b
                }
            });
            let d = nl.add_lut_named(
                &[ark, init, state_q[i], load, hold],
                mux_mask,
                format!("state_d[{i}]"),
            )?;
            nl.connect_dff_d(state_cells[i], d)?;
            state_d.push(d);
        }

        // Round-key register mux: d = load ? key : (hold ? q : rk_next).
        for i in 0..BLOCK_BITS {
            let mask = LutMask::from_fn(5, |r| {
                let next_b = r & 1 == 1;
                let key_b = r & 2 == 2;
                let q_b = r & 4 == 4;
                let load_b = r & 8 == 8;
                let hold_b = r & 16 == 16;
                if load_b {
                    key_b
                } else if hold_b {
                    q_b
                } else {
                    next_b
                }
            });
            let d = nl.add_lut_named(
                &[rk_next[i], key[i], rk_q[i], load, hold],
                mask,
                format!("rk_d[{i}]"),
            )?;
            nl.connect_dff_d(rk_cells[i], d)?;
        }

        // ---- Output ports -----------------------------------------------
        for (i, &q) in state_q.iter().enumerate() {
            nl.add_output(format!("ct[{i}]"), q)?;
        }
        nl.add_output("done", hold)?;

        nl.validate()?;
        Ok(AesNetlist {
            netlist: nl,
            plaintext,
            key,
            load,
            state_q,
            state_d,
            state_cells,
            rk_q,
            counter_q,
            done: hold,
        })
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Mutable access to the netlist — used by trojan insertion, which only
    /// *adds* cells, so every pin id recorded here stays valid.
    pub fn netlist_mut(&mut self) -> &mut Netlist {
        &mut self.netlist
    }

    /// Plaintext input nets (bit order per [`BLOCK_BITS`]).
    pub fn plaintext(&self) -> &[NetId] {
        &self.plaintext
    }

    /// Key input nets.
    pub fn key(&self) -> &[NetId] {
        &self.key
    }

    /// The `load` control input.
    pub fn load(&self) -> NetId {
        self.load
    }

    /// Ciphertext nets (the state-register outputs after 10 rounds).
    pub fn ciphertext(&self) -> &[NetId] {
        &self.state_q
    }

    /// The 128 SubBytes input signals — the nets the paper's combinational
    /// trojans monitor (Section II-B). Identical to the state-register `Q`
    /// nets in this architecture.
    pub fn subbytes_inputs(&self) -> &[NetId] {
        &self.state_q
    }

    /// The state-register `D` nets: the sampling points whose settling time
    /// the clock-glitch attack measures bit by bit.
    pub fn state_d(&self) -> &[NetId] {
        &self.state_d
    }

    /// The 128 state flip-flop cells, in block-bit order.
    pub fn state_cells(&self) -> &[CellId] {
        &self.state_cells
    }

    /// Round-key register outputs.
    pub fn round_key_q(&self) -> &[NetId] {
        &self.rk_q
    }

    /// The 4-bit round counter outputs (LSB first).
    pub fn round_counter(&self) -> &[NetId] {
        &self.counter_q
    }

    /// The `done`/hold net (high once the ciphertext is frozen).
    pub fn done(&self) -> NetId {
        self.done
    }
}

/// Emits a 40-LUT byte-substitution box for any 256-entry table: per
/// output bit, four quadrant LUT6 plus a LUT6 4:1 mux on the two top input
/// bits. Shared between the encryption (S-box) and decryption (inverse
/// S-box) datapaths.
pub(crate) fn table_sbox_bits(
    nl: &mut Netlist,
    input: &[NetId; 8],
    table: &[u8; 256],
    name: &str,
) -> Result<[NetId; 8], NetlistError> {
    let low: [NetId; 6] = core::array::from_fn(|i| input[i]);
    let mut out = [input[0]; 8];
    for (j, out_bit) in out.iter_mut().enumerate() {
        let mut lanes = [input[0]; 4];
        for (lane, lane_net) in lanes.iter_mut().enumerate() {
            let mask =
                LutMask::from_fn(6, move |r| (table[(lane << 6) | r as usize] >> j) & 1 == 1);
            *lane_net = nl.add_lut_named(&low, mask, format!("{name}.q{lane}b{j}"))?;
        }
        *out_bit = nl.mux4([input[6], input[7]], lanes);
    }
    Ok(out)
}

/// The forward S-box in LUTs (see [`table_sbox_bits`]).
fn sbox_bits(nl: &mut Netlist, input: &[NetId; 8], name: &str) -> Result<[NetId; 8], NetlistError> {
    table_sbox_bits(nl, input, &SBOX, name)
}

/// Source nets of bit `i` of `xtime(a)` (multiplication by 2 in GF(2⁸)):
/// `a[i-1]`, plus `a[7]` where the reduction polynomial `0x1B` has a bit.
fn xtime_sources(a: &[NetId; 8], i: usize) -> Vec<NetId> {
    let mut v = Vec::with_capacity(2);
    if i > 0 {
        v.push(a[i - 1]);
    }
    if matches!(i, 0 | 1 | 3 | 4) {
        v.push(a[7]);
    }
    v
}

/// A functional simulation harness driving the [`AesNetlist`] interface
/// protocol (load, then ten round clocks).
#[derive(Debug)]
pub struct AesSim<'a> {
    aes: &'a AesNetlist,
    sim: Simulator<'a>,
}

impl<'a> AesSim<'a> {
    /// Creates a simulator over the design.
    ///
    /// # Errors
    ///
    /// Propagates netlist validation errors.
    pub fn new(aes: &'a AesNetlist) -> Result<Self, NetlistError> {
        let sim = aes.netlist.simulator()?;
        Ok(AesSim { aes, sim })
    }

    /// Loads a plaintext/key pair: after this call the state register holds
    /// `pt ⊕ key` and the round counter is 1 (about to compute round 1).
    pub fn start(&mut self, plaintext: &[u8; 16], key: &[u8; 16]) {
        self.sim.set_bus_bytes(&self.aes.plaintext, plaintext);
        self.sim.set_bus_bytes(&self.aes.key, key);
        self.sim.set(self.aes.load, true);
        self.sim.settle();
        self.sim.clock();
        self.sim.set(self.aes.load, false);
        self.sim.settle();
    }

    /// Advances one round (one clock).
    pub fn step_round(&mut self) {
        self.sim.clock();
    }

    /// The current state-register contents as bytes.
    pub fn state(&self) -> [u8; 16] {
        let v = self.sim.get_bus_bytes(&self.aes.state_q);
        v.try_into().expect("state register is 128 bits")
    }

    /// The current round-counter value.
    pub fn round(&self) -> u8 {
        self.sim.get_bus(&self.aes.counter_q) as u8
    }

    /// Whether the design has frozen its ciphertext.
    pub fn is_done(&self) -> bool {
        self.sim.get(self.aes.done)
    }

    /// Runs a full encryption (load + 10 rounds) and returns the
    /// ciphertext.
    pub fn encrypt(&mut self, plaintext: &[u8; 16], key: &[u8; 16]) -> [u8; 16] {
        self.start(plaintext, key);
        for _ in 0..10 {
            self.step_round();
        }
        self.state()
    }

    /// Escape hatch to the raw simulator (used by the timing and EM
    /// engines, which need net-level access).
    pub fn simulator_mut(&mut self) -> &mut Simulator<'a> {
        &mut self.sim
    }

    /// Read-only access to the raw simulator.
    pub fn simulator(&self) -> &Simulator<'a> {
        &self.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soft::Aes128;

    fn hex16(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for i in 0..16 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    #[test]
    fn netlist_validates_and_has_expected_size() {
        let aes = AesNetlist::generate().unwrap();
        let stats = aes.netlist().stats();
        assert_eq!(stats.dffs, 262); // 128 state + 128 rk + 4 counter + 2 control
        assert!(
            (1200..2200).contains(&stats.luts),
            "unexpected LUT count {}",
            stats.luts
        );
        assert_eq!(stats.inputs, 257);
        assert_eq!(stats.outputs, 129);
    }

    #[test]
    fn structural_matches_fips_vector() {
        let aes = AesNetlist::generate().unwrap();
        let mut sim = AesSim::new(&aes).unwrap();
        let ct = sim.encrypt(
            &hex16("3243f6a8885a308d313198a2e0370734"),
            &hex16("2b7e151628aed2a6abf7158809cf4f3c"),
        );
        assert_eq!(ct, hex16("3925841d02dc09fbdc118597196a0b32"));
        assert!(sim.is_done());
    }

    #[test]
    fn per_round_states_match_behavioural() {
        let aes = AesNetlist::generate().unwrap();
        let key = hex16("000102030405060708090a0b0c0d0e0f");
        let pt = hex16("00112233445566778899aabbccddeeff");
        let soft = Aes128::new(&key);
        let trace = soft.encrypt_trace(&pt);
        let mut sim = AesSim::new(&aes).unwrap();
        sim.start(&pt, &key);
        assert_eq!(sim.state(), trace[0], "state after load");
        for (r, want) in trace.iter().enumerate().skip(1) {
            assert_eq!(sim.round(), r as u8, "round counter before round {r}");
            sim.step_round();
            assert_eq!(&sim.state(), want, "state after round {r}");
        }
    }

    #[test]
    fn hold_freezes_ciphertext() {
        let aes = AesNetlist::generate().unwrap();
        let key = hex16("2b7e151628aed2a6abf7158809cf4f3c");
        let pt = hex16("3243f6a8885a308d313198a2e0370734");
        let mut sim = AesSim::new(&aes).unwrap();
        let ct = sim.encrypt(&pt, &key);
        for _ in 0..3 {
            sim.step_round();
            assert_eq!(sim.state(), ct, "ciphertext must stay frozen");
            assert!(sim.is_done());
        }
    }

    #[test]
    fn back_to_back_encryptions_reload_cleanly() {
        let aes = AesNetlist::generate().unwrap();
        let key = hex16("000102030405060708090a0b0c0d0e0f");
        let soft = Aes128::new(&key);
        let mut sim = AesSim::new(&aes).unwrap();
        for n in 0..3u8 {
            let mut pt = [n; 16];
            pt[0] = n.wrapping_add(1);
            let want = soft.encrypt_block(&pt);
            assert_eq!(sim.encrypt(&pt, &key), want, "encryption #{n}");
        }
    }

    #[test]
    fn several_random_vectors_match_behavioural() {
        let aes = AesNetlist::generate().unwrap();
        let mut sim = AesSim::new(&aes).unwrap();
        // Simple deterministic pseudo-random vectors.
        let mut x: u64 = 0x1234_5678_9abc_def0;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..10 {
            let mut pt = [0u8; 16];
            let mut key = [0u8; 16];
            for i in 0..16 {
                pt[i] = (next() & 0xff) as u8;
                key[i] = (next() & 0xff) as u8;
            }
            let want = Aes128::new(&key).encrypt_block(&pt);
            assert_eq!(sim.encrypt(&pt, &key), want);
        }
    }
}
