//! AES-128 for the `htd` trojan-detection suite, at two levels of
//! abstraction:
//!
//! * [`soft`] — a behavioural implementation (encrypt / decrypt / key
//!   schedule / per-round state taps), verified against the FIPS-197
//!   vectors. This is the functional reference.
//! * [`structural`] — a generator that elaborates the same iterative
//!   AES-128 into a LUT6-mapped [`htd_netlist::Netlist`]: one round per
//!   clock, on-the-fly key schedule, 128-bit datapath, S-boxes decomposed
//!   into 4-quadrant LUT6 mux trees. This is the *target circuit* of the
//!   paper — every delay and EM experiment runs on this netlist.
//!
//! The structural design exposes the nets the paper's trojans tap (the 128
//! SubBytes input signals) and the nets the clock-glitch attack faults (the
//! 128 state-register `D` pins).
//!
//! # Example
//!
//! ```
//! use htd_aes::soft::Aes128;
//!
//! let key = [0u8; 16];
//! let aes = Aes128::new(&key);
//! let ct = aes.encrypt_block(&[0u8; 16]);
//! // FIPS-197 / NIST known-answer for the all-zero key and block.
//! assert_eq!(ct[0], 0x66);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sbox;
pub mod soft;
pub mod structural;
pub mod structural_dec;

pub use structural::AesNetlist;
pub use structural_dec::AesDecryptNetlist;
