//! Structural AES-128 **decryption**: the inverse cipher as a LUT6-mapped
//! netlist, completing the crypto substrate (the paper only needs the
//! encryptor; a production AES library ships both).
//!
//! Architecture mirrors [`structural`](crate::structural): one inverse
//! round per clock, a 128-bit state register, a 128-bit round-key register
//! walking the key schedule *backwards* from the final round key, and a
//! down-counting round counter with registered controls.
//!
//! Per cycle (undoing round `r`, counter counts 10 → 1):
//!
//! ```text
//! u      = state ⊕ rk_r                  (AddRoundKey first)
//! v      = r == 10 ? u : InvMixColumns(u)
//! state' = InvSubBytes(InvShiftRows(v))
//! rk'    = reverse-key-schedule(rk_r)    (rk_{r-1})
//! ```
//!
//! After ten cycles the state holds `s₀ = pt ⊕ rk₀` and the round-key
//! register holds `rk₀`; the plaintext outputs are the XOR of the two.
//!
//! The interface takes the **final round key** `rk₁₀` (as iterative
//! decryptor cores do); [`AesDecryptNetlist::final_round_key`] derives it
//! from a cipher key.

use htd_netlist::{LutMask, NetId, Netlist, NetlistError, Simulator};

use crate::sbox::{gf_mul, INV_SBOX, RCON};
use crate::soft::Aes128;
use crate::structural::{table_sbox_bits, BLOCK_BITS};

/// The structural AES-128 inverse cipher plus its pin map.
#[derive(Debug, Clone)]
pub struct AesDecryptNetlist {
    netlist: Netlist,
    ciphertext: Vec<NetId>,
    round_key10: Vec<NetId>,
    load: NetId,
    plaintext: Vec<NetId>,
    state_q: Vec<NetId>,
    counter_q: Vec<NetId>,
    done: NetId,
}

impl AesDecryptNetlist {
    /// Elaborates the inverse cipher.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from construction (an internal bug if it
    /// ever fires — the generator is fixed).
    pub fn generate() -> Result<Self, NetlistError> {
        let mut nl = Netlist::new("aes128_dec");

        // ---- Ports ------------------------------------------------------
        let ciphertext: Vec<NetId> = (0..BLOCK_BITS)
            .map(|i| nl.add_input(format!("ct[{i}]")))
            .collect();
        let round_key10: Vec<NetId> = (0..BLOCK_BITS)
            .map(|i| nl.add_input(format!("rk10[{i}]")))
            .collect();
        let load = nl.add_input("load");

        // ---- Registers ----------------------------------------------------
        let mut state_cells = Vec::with_capacity(BLOCK_BITS);
        let mut state_q = Vec::with_capacity(BLOCK_BITS);
        for i in 0..BLOCK_BITS {
            let (c, q) = nl.add_dff_uninit(format!("dstate[{i}]"));
            state_cells.push(c);
            state_q.push(q);
        }
        let mut rk_cells = Vec::with_capacity(BLOCK_BITS);
        let mut rk_q = Vec::with_capacity(BLOCK_BITS);
        for i in 0..BLOCK_BITS {
            let (c, q) = nl.add_dff_uninit(format!("drk[{i}]"));
            rk_cells.push(c);
            rk_q.push(q);
        }
        let mut ctr_cells = Vec::with_capacity(4);
        let mut counter_q = Vec::with_capacity(4);
        for i in 0..4 {
            let (c, q) = nl.add_dff_uninit(format!("dround[{i}]"));
            ctr_cells.push(c);
            counter_q.push(q);
        }

        // ---- Control (registered decodes, as in the encryptor) -----------
        let (is_first_ff, is_first) = nl.add_dff_uninit("inv_first"); // undoing round 10
        let (hold_ff, hold) = nl.add_dff_uninit("dec_hold");
        let dec = nl.decrementer(&counter_q);
        let mut counter_d = Vec::with_capacity(4);
        for i in 0..4 {
            let target = (10 >> i) & 1 == 1; // load value 10 = 0b1010
            let mask = LutMask::from_fn(4, move |r| {
                let dec_b = r & 1 == 1;
                let q_b = r & 2 == 2;
                let load_b = r & 4 == 4;
                let hold_b = r & 8 == 8;
                if load_b {
                    target
                } else if hold_b {
                    q_b
                } else {
                    dec_b
                }
            });
            let d = nl.add_lut_named(
                &[dec[i], counter_q[i], load, hold],
                mask,
                format!("dround_d[{i}]"),
            )?;
            nl.connect_dff_d(ctr_cells[i], d)?;
            counter_d.push(d);
        }
        let is_first_d = nl.eq_const(&counter_d, 10);
        nl.connect_dff_d(is_first_ff, is_first_d)?;
        let hold_d = nl.eq_const(&counter_d, 0);
        nl.connect_dff_d(hold_ff, hold_d)?;

        // RCON decode of the *current* counter (we undo round `counter`).
        let rcon_bits: Vec<NetId> = (0..8)
            .map(|j| {
                let mask = LutMask::from_fn(4, move |r| {
                    let r = r as usize;
                    (1..=10).contains(&r) && (RCON[r] >> j) & 1 == 1
                });
                nl.add_lut_named(&counter_q, mask, format!("drcon[{j}]"))
            })
            .collect::<Result<_, _>>()?;

        // ---- Inverse round datapath ---------------------------------------
        // u = state ⊕ rk (AddRoundKey with the *current* round key).
        let mut u: Vec<NetId> = Vec::with_capacity(BLOCK_BITS);
        for i in 0..BLOCK_BITS {
            u.push(nl.xor2(state_q[i], rk_q[i]));
        }
        // v = is_first ? u : InvMixColumns(u): fold the bypass into the
        // XOR LUTs by computing imc and muxing per bit.
        let u_bytes: Vec<[NetId; 8]> = (0..16)
            .map(|b| core::array::from_fn(|i| u[b * 8 + i]))
            .collect();
        let mut v: Vec<[NetId; 8]> = Vec::with_capacity(16);
        for col in 0..4 {
            let bytes: [[NetId; 8]; 4] = core::array::from_fn(|r| u_bytes[4 * col + r]);
            for out_row in 0..4 {
                let mut out_bits = [u[0]; 8];
                for (bit, out_bit) in out_bits.iter_mut().enumerate() {
                    let mut sources: Vec<NetId> = Vec::new();
                    for (k, byte) in bytes.iter().enumerate() {
                        let coeff = [14u8, 11, 13, 9][(k + 4 - out_row) % 4];
                        for src in coeff_sources(coeff, bit) {
                            sources.push(byte[src]);
                        }
                    }
                    let imc = nl.xor_many(&sources);
                    // Bypass mux: is_first ? u : imc.
                    *out_bit = nl.mux2(is_first, imc, bytes[out_row][bit]);
                }
                v.push(out_bits);
            }
        }
        // InvShiftRows: out[r + 4c] = in[r + 4((c - r) mod 4)]
        // (the inverse of the encryptor's permutation).
        let mut sr: Vec<[NetId; 8]> = vec![[u[0]; 8]; 16];
        for r in 0..4 {
            for c in 0..4 {
                sr[r + 4 * c] = v[r + 4 * ((c + 4 - r) % 4)];
            }
        }
        // InvSubBytes.
        let mut next_state: Vec<NetId> = Vec::with_capacity(BLOCK_BITS);
        for (byte, bits) in sr.iter().enumerate() {
            let s = table_sbox_bits(&mut nl, bits, &INV_SBOX, &format!("isbox{byte}"))?;
            next_state.extend_from_slice(&s);
        }

        // ---- Reverse key schedule: rk_{r-1} from rk_r --------------------
        // w3 = w3' ⊕ w2'; w2 = w2' ⊕ w1'; w1 = w1' ⊕ w0';
        // w0 = w0' ⊕ SubWord(RotWord(w3)) ⊕ rcon_r.
        let mut w3_prev = Vec::with_capacity(32); // rk_{r-1} word 3
        for i in 0..32 {
            w3_prev.push(nl.xor2(rk_q[96 + i], rk_q[64 + i]));
        }
        // SubWord(RotWord(w3_prev)): rotated byte order 1,2,3,0 of w3_prev.
        let mut sub_rot = Vec::with_capacity(32);
        for t in 0..4usize {
            let src = (t + 1) % 4; // RotWord
            let in_bits: [NetId; 8] = core::array::from_fn(|b| w3_prev[src * 8 + b]);
            let s = table_sbox_bits(&mut nl, &in_bits, &crate::sbox::SBOX, &format!("iks{t}"))?;
            sub_rot.extend_from_slice(&s);
        }
        let mut rk_prev: Vec<NetId> = Vec::with_capacity(BLOCK_BITS);
        for i in 0..32 {
            // w0 = w0' ⊕ temp, temp = sub_rot ⊕ rcon (first byte only).
            let mut sources = vec![rk_q[i], sub_rot[i]];
            if i < 8 {
                sources.push(rcon_bits[i]);
            }
            rk_prev.push(nl.xor_many(&sources));
        }
        for w in 1..3 {
            for i in 0..32 {
                rk_prev.push(nl.xor2(rk_q[w * 32 + i], rk_q[(w - 1) * 32 + i]));
            }
        }
        rk_prev.extend_from_slice(&w3_prev);

        // ---- Register muxes ----------------------------------------------
        for i in 0..BLOCK_BITS {
            let mask = LutMask::from_fn(5, |r| {
                let next_b = r & 1 == 1;
                let init_b = r & 2 == 2;
                let q_b = r & 4 == 4;
                let load_b = r & 8 == 8;
                let hold_b = r & 16 == 16;
                if load_b {
                    init_b
                } else if hold_b {
                    q_b
                } else {
                    next_b
                }
            });
            let sd = nl.add_lut_named(
                &[next_state[i], ciphertext[i], state_q[i], load, hold],
                mask,
                format!("dstate_d[{i}]"),
            )?;
            nl.connect_dff_d(state_cells[i], sd)?;
            let rd = nl.add_lut_named(
                &[rk_prev[i], round_key10[i], rk_q[i], load, hold],
                mask,
                format!("drk_d[{i}]"),
            )?;
            nl.connect_dff_d(rk_cells[i], rd)?;
        }

        // ---- Plaintext output: pt = state ⊕ rk₀ (valid once done) --------
        let mut plaintext = Vec::with_capacity(BLOCK_BITS);
        for i in 0..BLOCK_BITS {
            let p = nl.xor2(state_q[i], rk_q[i]);
            nl.add_output(format!("pt[{i}]"), p)?;
            plaintext.push(p);
        }
        nl.add_output("done", hold)?;

        nl.validate()?;
        Ok(AesDecryptNetlist {
            netlist: nl,
            ciphertext,
            round_key10,
            load,
            plaintext,
            state_q,
            counter_q,
            done: hold,
        })
    }

    /// Derives the final round key `rk₁₀` from a cipher key — the value
    /// this core's key port expects.
    pub fn final_round_key(key: &[u8; 16]) -> [u8; 16] {
        Aes128::new(key).round_keys()[10]
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Ciphertext input nets.
    pub fn ciphertext(&self) -> &[NetId] {
        &self.ciphertext
    }

    /// Final-round-key input nets.
    pub fn round_key10(&self) -> &[NetId] {
        &self.round_key10
    }

    /// The `load` control input.
    pub fn load(&self) -> NetId {
        self.load
    }

    /// Plaintext output nets (valid once [`AesDecryptNetlist::done`]).
    pub fn plaintext(&self) -> &[NetId] {
        &self.plaintext
    }

    /// State-register outputs.
    pub fn state_q(&self) -> &[NetId] {
        &self.state_q
    }

    /// The 4-bit down-counter outputs (LSB first).
    pub fn round_counter(&self) -> &[NetId] {
        &self.counter_q
    }

    /// The done/hold net.
    pub fn done(&self) -> NetId {
        self.done
    }
}

/// Source bit indices of output bit `i` of `coeff × a` in GF(2⁸): GF
/// multiplication by a constant is GF(2)-linear, so bit `i` of the product
/// is the XOR of input bits `j` where `gf_mul(coeff, 2^j)` has bit `i`.
fn coeff_sources(coeff: u8, i: usize) -> Vec<usize> {
    (0..8)
        .filter(|&j| (gf_mul(coeff, 1 << j) >> i) & 1 == 1)
        .collect()
}

/// Simulation harness for the decryptor's interface protocol.
#[derive(Debug)]
pub struct AesDecSim<'a> {
    dec: &'a AesDecryptNetlist,
    sim: Simulator<'a>,
}

impl<'a> AesDecSim<'a> {
    /// Creates a simulator over the decryptor.
    ///
    /// # Errors
    ///
    /// Propagates netlist validation errors.
    pub fn new(dec: &'a AesDecryptNetlist) -> Result<Self, NetlistError> {
        let sim = dec.netlist.simulator()?;
        Ok(AesDecSim { dec, sim })
    }

    /// Runs a full decryption (load + 10 inverse rounds) and returns the
    /// plaintext. Takes the **cipher key** and derives `rk₁₀` internally.
    pub fn decrypt(&mut self, ciphertext: &[u8; 16], key: &[u8; 16]) -> [u8; 16] {
        let rk10 = AesDecryptNetlist::final_round_key(key);
        self.decrypt_with_rk10(ciphertext, &rk10)
    }

    /// Runs a full decryption given the final round key directly.
    pub fn decrypt_with_rk10(&mut self, ciphertext: &[u8; 16], rk10: &[u8; 16]) -> [u8; 16] {
        self.sim.set_bus_bytes(&self.dec.ciphertext, ciphertext);
        self.sim.set_bus_bytes(&self.dec.round_key10, rk10);
        self.sim.set(self.dec.load, true);
        self.sim.settle();
        self.sim.clock();
        self.sim.set(self.dec.load, false);
        self.sim.settle();
        for _ in 0..10 {
            self.sim.clock();
        }
        self.sim
            .get_bus_bytes(&self.dec.plaintext)
            .try_into()
            .expect("128-bit plaintext")
    }

    /// Whether the core has finished (counter reached zero).
    pub fn is_done(&self) -> bool {
        self.sim.get(self.dec.done)
    }

    /// The current down-counter value.
    pub fn round(&self) -> u8 {
        self.sim.get_bus(&self.dec.counter_q) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex16(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for i in 0..16 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    #[test]
    fn coeff_sources_match_gf_mul() {
        // Reconstruct gf_mul from the source sets on random bytes.
        for coeff in [9u8, 11, 13, 14, 1, 2, 3] {
            for a in [0x00u8, 0x01, 0x53, 0xCA, 0xFF, 0x80] {
                let mut out = 0u8;
                for i in 0..8 {
                    let bit = coeff_sources(coeff, i)
                        .iter()
                        .fold(0u8, |acc, &j| acc ^ ((a >> j) & 1));
                    out |= bit << i;
                }
                assert_eq!(out, gf_mul(coeff, a), "coeff {coeff} a {a:#x}");
            }
        }
    }

    #[test]
    fn decryptor_validates_and_is_sized_like_the_encryptor() {
        let dec = AesDecryptNetlist::generate().unwrap();
        let stats = dec.netlist().stats();
        assert_eq!(stats.dffs, 262);
        assert!((1200..2600).contains(&stats.luts), "{} LUTs", stats.luts);
    }

    #[test]
    fn decrypts_fips_vector() {
        let dec = AesDecryptNetlist::generate().unwrap();
        let mut sim = AesDecSim::new(&dec).unwrap();
        let pt = sim.decrypt(
            &hex16("3925841d02dc09fbdc118597196a0b32"),
            &hex16("2b7e151628aed2a6abf7158809cf4f3c"),
        );
        assert_eq!(pt, hex16("3243f6a8885a308d313198a2e0370734"));
        assert!(sim.is_done());
    }

    #[test]
    fn roundtrips_with_the_structural_encryptor() {
        let enc = crate::structural::AesNetlist::generate().unwrap();
        let dec = AesDecryptNetlist::generate().unwrap();
        let mut esim = crate::structural::AesSim::new(&enc).unwrap();
        let mut dsim = AesDecSim::new(&dec).unwrap();
        for n in 0..4u8 {
            let pt = [n.wrapping_mul(37).wrapping_add(1); 16];
            let key = [n.wrapping_mul(91).wrapping_add(3); 16];
            let ct = esim.encrypt(&pt, &key);
            assert_eq!(dsim.decrypt(&ct, &key), pt, "trial {n}");
        }
    }

    #[test]
    fn final_round_key_matches_soft_schedule() {
        let key = hex16("2b7e151628aed2a6abf7158809cf4f3c");
        assert_eq!(
            AesDecryptNetlist::final_round_key(&key),
            hex16("d014f9a8c9ee2589e13f0cc8b6630ca6")
        );
    }
}
