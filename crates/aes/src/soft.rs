//! Behavioural AES-128: the functional reference for the structural
//! netlist and the oracle for the clock-glitch fault analysis.
//!
//! The state is kept as a flat `[u8; 16]` where byte `i` is state element
//! `s[r][c]` with `i = r + 4c` — i.e. input/output byte order *is* state
//! order, as in FIPS-197.

use crate::sbox::{gf_mul, INV_SBOX, RCON, SBOX};

/// An expanded AES-128 key (11 round keys) plus the block operations.
///
/// ```
/// use htd_aes::soft::Aes128;
///
/// // FIPS-197 Appendix B.
/// let key = [
///     0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
///     0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
/// ];
/// let pt = [
///     0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
///     0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34,
/// ];
/// let aes = Aes128::new(&key);
/// let ct = aes.encrypt_block(&pt);
/// assert_eq!(ct[..4], [0x39, 0x25, 0x84, 0x1d]);
/// assert_eq!(aes.decrypt_block(&ct), pt);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl Aes128 {
    /// Expands `key` into the 11 round keys.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut round_keys = [[0u8; 16]; 11];
        round_keys[0] = *key;
        for r in 1..11 {
            round_keys[r] = next_round_key(&round_keys[r - 1], RCON[r]);
        }
        Aes128 { round_keys }
    }

    /// The expanded round keys (`[0]` is the cipher key itself).
    pub fn round_keys(&self) -> &[[u8; 16]; 11] {
        &self.round_keys
    }

    /// Encrypts one block.
    pub fn encrypt_block(&self, plaintext: &[u8; 16]) -> [u8; 16] {
        *self
            .encrypt_trace(plaintext)
            .last()
            .expect("trace non-empty")
    }

    /// Encrypts one block, returning the state after the initial
    /// AddRoundKey and after each of the 10 rounds (11 entries; the last is
    /// the ciphertext). This per-round visibility is what the structural
    /// netlist equivalence tests and the glitch oracle consume.
    pub fn encrypt_trace(&self, plaintext: &[u8; 16]) -> Vec<[u8; 16]> {
        let mut trace = Vec::with_capacity(11);
        let mut state = xor16(plaintext, &self.round_keys[0]);
        trace.push(state);
        for r in 1..11 {
            state = self.encrypt_round(&state, r);
            trace.push(state);
        }
        trace
    }

    /// Applies round `r` (1-based; round 10 skips MixColumns) to a state.
    pub fn encrypt_round(&self, state: &[u8; 16], r: usize) -> [u8; 16] {
        assert!((1..=10).contains(&r), "AES-128 has rounds 1..=10");
        let mut s = sub_bytes(state);
        s = shift_rows(&s);
        if r != 10 {
            s = mix_columns(&s);
        }
        xor16(&s, &self.round_keys[r])
    }

    /// Decrypts one block.
    pub fn decrypt_block(&self, ciphertext: &[u8; 16]) -> [u8; 16] {
        let mut state = xor16(ciphertext, &self.round_keys[10]);
        for r in (1..11).rev() {
            state = inv_shift_rows(&state);
            state = inv_sub_bytes(&state);
            state = xor16(&state, &self.round_keys[r - 1]);
            if r != 1 {
                state = inv_mix_columns(&state);
            }
        }
        state
    }
}

fn next_round_key(prev: &[u8; 16], rcon: u8) -> [u8; 16] {
    let mut rk = [0u8; 16];
    // temp = SubWord(RotWord(w3)) ^ rcon (rcon on the first byte only).
    let temp = [
        SBOX[prev[13] as usize] ^ rcon,
        SBOX[prev[14] as usize],
        SBOX[prev[15] as usize],
        SBOX[prev[12] as usize],
    ];
    for i in 0..4 {
        rk[i] = prev[i] ^ temp[i];
    }
    for w in 1..4 {
        for i in 0..4 {
            rk[4 * w + i] = prev[4 * w + i] ^ rk[4 * (w - 1) + i];
        }
    }
    rk
}

/// XOR of two 16-byte blocks.
pub fn xor16(a: &[u8; 16], b: &[u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    for i in 0..16 {
        out[i] = a[i] ^ b[i];
    }
    out
}

/// SubBytes: the S-box applied to every state byte.
pub fn sub_bytes(state: &[u8; 16]) -> [u8; 16] {
    state.map(|b| SBOX[b as usize])
}

fn inv_sub_bytes(state: &[u8; 16]) -> [u8; 16] {
    state.map(|b| INV_SBOX[b as usize])
}

/// ShiftRows: row `r` of the state rotates left by `r`.
/// With flat indexing `i = r + 4c`: `out[r + 4c] = in[r + 4((c + r) % 4)]`.
pub fn shift_rows(state: &[u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    for r in 0..4 {
        for c in 0..4 {
            out[r + 4 * c] = state[r + 4 * ((c + r) % 4)];
        }
    }
    out
}

fn inv_shift_rows(state: &[u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    for r in 0..4 {
        for c in 0..4 {
            out[r + 4 * ((c + r) % 4)] = state[r + 4 * c];
        }
    }
    out
}

/// MixColumns over all four columns.
pub fn mix_columns(state: &[u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    for c in 0..4 {
        let col = &state[4 * c..4 * c + 4];
        out[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        out[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        out[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        out[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
    out
}

fn inv_mix_columns(state: &[u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    for c in 0..4 {
        let col = &state[4 * c..4 * c + 4];
        out[4 * c] =
            gf_mul(col[0], 14) ^ gf_mul(col[1], 11) ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9);
        out[4 * c + 1] =
            gf_mul(col[0], 9) ^ gf_mul(col[1], 14) ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13);
        out[4 * c + 2] =
            gf_mul(col[0], 13) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11);
        out[4 * c + 3] =
            gf_mul(col[0], 11) ^ gf_mul(col[1], 13) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex16(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for i in 0..16 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    #[test]
    fn fips197_appendix_b() {
        let aes = Aes128::new(&hex16("2b7e151628aed2a6abf7158809cf4f3c"));
        let ct = aes.encrypt_block(&hex16("3243f6a8885a308d313198a2e0370734"));
        assert_eq!(ct, hex16("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn fips197_appendix_c1() {
        let aes = Aes128::new(&hex16("000102030405060708090a0b0c0d0e0f"));
        let ct = aes.encrypt_block(&hex16("00112233445566778899aabbccddeeff"));
        assert_eq!(ct, hex16("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    #[test]
    fn key_schedule_matches_fips_appendix_a() {
        let aes = Aes128::new(&hex16("2b7e151628aed2a6abf7158809cf4f3c"));
        // w4..w7 (round key 1) and w40..w43 (round key 10) from FIPS-197 A.1.
        assert_eq!(
            aes.round_keys()[1],
            hex16("a0fafe1788542cb123a339392a6c7605")
        );
        assert_eq!(
            aes.round_keys()[10],
            hex16("d014f9a8c9ee2589e13f0cc8b6630ca6")
        );
    }

    #[test]
    fn decrypt_inverts_encrypt() {
        let aes = Aes128::new(&hex16("000102030405060708090a0b0c0d0e0f"));
        let mut pt = [0u8; 16];
        for trial in 0..50u8 {
            for (i, b) in pt.iter_mut().enumerate() {
                *b = b
                    .wrapping_mul(31)
                    .wrapping_add(trial ^ i as u8)
                    .wrapping_add(7);
            }
            let ct = aes.encrypt_block(&pt);
            assert_eq!(aes.decrypt_block(&ct), pt);
        }
    }

    #[test]
    fn trace_round_states_match_fips_appendix_b() {
        // FIPS-197 Appendix B intermediate "Start of Round" values.
        let aes = Aes128::new(&hex16("2b7e151628aed2a6abf7158809cf4f3c"));
        let trace = aes.encrypt_trace(&hex16("3243f6a8885a308d313198a2e0370734"));
        assert_eq!(trace.len(), 11);
        // After initial AddRoundKey.
        assert_eq!(trace[0], hex16("193de3bea0f4e22b9ac68d2ae9f84808"));
        // After round 1.
        assert_eq!(trace[1], hex16("a49c7ff2689f352b6b5bea43026a5049"));
        // After round 9.
        assert_eq!(trace[9], hex16("eb40f21e592e38848ba113e71bc342d2"));
        // After round 10 = ciphertext.
        assert_eq!(trace[10], hex16("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn shift_rows_moves_expected_bytes() {
        let mut s = [0u8; 16];
        for (i, b) in s.iter_mut().enumerate() {
            *b = i as u8;
        }
        let out = shift_rows(&s);
        // Row 0 unchanged.
        assert_eq!(out[0], 0);
        assert_eq!(out[4], 4);
        // Row 1 rotates by 1 column: out[1] = in[5].
        assert_eq!(out[1], 5);
        // Row 3 rotates by 3: out[3] = in[3 + 4*3] = 15.
        assert_eq!(out[3], 15);
        assert_eq!(inv_shift_rows(&out), s);
    }

    #[test]
    fn mix_columns_known_vector() {
        // FIPS-197 §5.1.3 example column: db 13 53 45 -> 8e 4d a1 bc.
        let mut s = [0u8; 16];
        s[0] = 0xdb;
        s[1] = 0x13;
        s[2] = 0x53;
        s[3] = 0x45;
        let out = mix_columns(&s);
        assert_eq!(&out[..4], &[0x8e, 0x4d, 0xa1, 0xbc]);
        assert_eq!(inv_mix_columns(&out)[..4], s[..4]);
    }

    #[test]
    fn encrypt_round_composes_to_trace() {
        let aes = Aes128::new(&hex16("2b7e151628aed2a6abf7158809cf4f3c"));
        let trace = aes.encrypt_trace(&hex16("3243f6a8885a308d313198a2e0370734"));
        for r in 1..=10 {
            assert_eq!(aes.encrypt_round(&trace[r - 1], r), trace[r]);
        }
    }
}
