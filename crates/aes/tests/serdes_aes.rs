//! Serialization stress test: the full AES-128 netlist survives a text
//! round-trip bit-exactly (the suite's analogue of the paper's NCD
//! extract/re-emit flow).

use htd_aes::AesNetlist;
use htd_netlist::Netlist;

#[test]
fn aes_netlist_roundtrips_through_text() {
    let aes = AesNetlist::generate().expect("generates");
    let text = aes.netlist().to_text();
    // Sanity on the serialized size: thousands of cells and nets.
    assert!(
        text.lines().count() > 4_000,
        "{} lines",
        text.lines().count()
    );
    let back = Netlist::from_text(&text).expect("parses");
    assert_eq!(back.to_text(), text, "canonical round-trip");
    assert!(back.validate().is_ok());

    // Functional spot-check: encrypt through the parsed netlist using the
    // original pin map (ids are canonical, so they carry over).
    let mut sim = back.simulator().expect("valid parsed netlist");
    let pt = *b"\x32\x43\xf6\xa8\x88\x5a\x30\x8d\x31\x31\x98\xa2\xe0\x37\x07\x34";
    let key = *b"\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7\x15\x88\x09\xcf\x4f\x3c";
    sim.set_bus_bytes(aes.plaintext(), &pt);
    sim.set_bus_bytes(aes.key(), &key);
    sim.set(aes.load(), true);
    sim.settle();
    sim.clock();
    sim.set(aes.load(), false);
    sim.settle();
    for _ in 0..10 {
        sim.clock();
    }
    let ct: [u8; 16] = sim
        .get_bus_bytes(aes.ciphertext())
        .try_into()
        .expect("128 bits");
    assert_eq!(
        ct,
        *b"\x39\x25\x84\x1d\x02\xdc\x09\xfb\xdc\x11\x85\x97\x19\x6a\x0b\x32"
    );
}
