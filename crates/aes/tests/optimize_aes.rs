//! The netlist optimizer must preserve AES-128 behaviour end to end — a
//! heavyweight equivalence check that exercises constant folding through
//! the incrementer's carry-in, the control decode and the S-box trees.

use htd_aes::soft::Aes128;
use htd_aes::AesNetlist;

#[test]
fn optimized_aes_still_encrypts_correctly() {
    let aes = AesNetlist::generate().expect("generates");
    let original = aes.netlist();
    let opt = original.optimize().expect("optimizes");
    let before = original.stats();
    let after = opt.netlist.stats();
    // Optimization must not grow the design and must keep all state.
    assert!(
        after.luts <= before.luts,
        "{} -> {}",
        before.luts,
        after.luts
    );
    assert_eq!(after.dffs, before.dffs);
    assert_eq!(after.inputs, before.inputs);
    assert_eq!(after.outputs, before.outputs);

    // Run a full encryption on the optimized netlist through the mapped
    // pins.
    let pt = *b"\x32\x43\xf6\xa8\x88\x5a\x30\x8d\x31\x31\x98\xa2\xe0\x37\x07\x34";
    let key = *b"\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7\x15\x88\x09\xcf\x4f\x3c";
    let want = Aes128::new(&key).encrypt_block(&pt);

    let nl = &opt.netlist;
    let mut sim = nl.simulator().expect("valid optimized netlist");
    let map = |nets: &[htd_netlist::NetId]| -> Vec<htd_netlist::NetId> {
        nets.iter()
            .map(|&n| opt.net(n).expect("interface nets survive"))
            .collect()
    };
    let pt_nets = map(aes.plaintext());
    let key_nets = map(aes.key());
    let ct_nets = map(aes.ciphertext());
    let load = opt.net(aes.load()).expect("load survives");

    sim.set_bus_bytes(&pt_nets, &pt);
    sim.set_bus_bytes(&key_nets, &key);
    sim.set(load, true);
    sim.settle();
    sim.clock();
    sim.set(load, false);
    sim.settle();
    for _ in 0..10 {
        sim.clock();
    }
    let got: [u8; 16] = sim
        .get_bus_bytes(&ct_nets)
        .try_into()
        .expect("128-bit ciphertext");
    assert_eq!(got, want);
}

/// Migration equivalence on the full AES structural netlist: the canned
/// pass pipeline behind `optimize()` must reproduce the frozen
/// pre-framework optimizer byte for byte — serialised netlist plus the
/// complete cell and net remaps.
#[test]
fn optimize_pipeline_is_bit_identical_to_reference_on_aes() {
    let aes = AesNetlist::generate().expect("generates");
    let original = aes.netlist();
    let reference = original.optimize_reference().expect("reference optimizes");
    let pipeline = original.optimize().expect("pipeline optimizes");
    assert_eq!(
        reference.netlist.to_text(),
        pipeline.netlist.to_text(),
        "serialised netlists diverge"
    );
    assert_eq!(reference.cell_map, pipeline.cell_map, "cell remaps diverge");
    assert_eq!(reference.net_map, pipeline.net_map, "net remaps diverge");
}

/// The structural lint pipeline must pass the real AES netlist clean —
/// it gates every generated (trojaned) variant, so a false positive
/// here would reject all of them.
#[test]
fn aes_netlist_lints_clean() {
    let aes = AesNetlist::generate().expect("generates");
    let report = htd_netlist::PassManager::lints()
        .run(aes.netlist())
        .expect("lints run");
    assert!(
        report.diagnostics.is_clean(),
        "AES lints dirty: {:?}",
        report.diagnostics.lints()
    );
}
