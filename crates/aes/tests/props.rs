//! Property-based tests for the AES implementations.

use std::sync::OnceLock;

use htd_aes::soft::{mix_columns, shift_rows, sub_bytes, xor16, Aes128};
use htd_aes::structural::{AesNetlist, AesSim};
use htd_aes::structural_dec::{AesDecSim, AesDecryptNetlist};
use proptest::prelude::*;

fn shared_netlist() -> &'static AesNetlist {
    static AES: OnceLock<AesNetlist> = OnceLock::new();
    AES.get_or_init(|| AesNetlist::generate().expect("generates"))
}

fn shared_decryptor() -> &'static AesDecryptNetlist {
    static DEC: OnceLock<AesDecryptNetlist> = OnceLock::new();
    DEC.get_or_init(|| AesDecryptNetlist::generate().expect("generates"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Decrypt inverts encrypt for arbitrary keys and blocks.
    #[test]
    fn soft_roundtrip(pt in any::<[u8; 16]>(), key in any::<[u8; 16]>()) {
        let aes = Aes128::new(&key);
        prop_assert_eq!(aes.decrypt_block(&aes.encrypt_block(&pt)), pt);
    }

    /// The structural netlist agrees with the behavioural reference on
    /// arbitrary (plaintext, key) pairs.
    #[test]
    fn structural_matches_soft(pt in any::<[u8; 16]>(), key in any::<[u8; 16]>()) {
        let aes = shared_netlist();
        let mut sim = AesSim::new(aes).expect("simulates");
        prop_assert_eq!(sim.encrypt(&pt, &key), Aes128::new(&key).encrypt_block(&pt));
    }

    /// The structural decryptor inverts the behavioural cipher on
    /// arbitrary blocks.
    #[test]
    fn structural_decryptor_matches_soft(ct in any::<[u8; 16]>(), key in any::<[u8; 16]>()) {
        let dec = shared_decryptor();
        let mut sim = AesDecSim::new(dec).expect("simulates");
        prop_assert_eq!(sim.decrypt(&ct, &key), Aes128::new(&key).decrypt_block(&ct));
    }

    /// Avalanche: flipping one plaintext bit changes many ciphertext bits.
    #[test]
    fn avalanche(pt in any::<[u8; 16]>(), key in any::<[u8; 16]>(), bit in 0usize..128) {
        let aes = Aes128::new(&key);
        let c1 = aes.encrypt_block(&pt);
        let mut pt2 = pt;
        pt2[bit / 8] ^= 1 << (bit % 8);
        let c2 = aes.encrypt_block(&pt2);
        let flipped: u32 = c1.iter().zip(&c2).map(|(a, b)| (a ^ b).count_ones()).sum();
        prop_assert!(flipped >= 30, "only {flipped} bits flipped");
    }

    /// ShiftRows is a permutation (its 4th power is the identity).
    #[test]
    fn shift_rows_order_four(state in any::<[u8; 16]>()) {
        let mut s = state;
        for _ in 0..4 {
            s = shift_rows(&s);
        }
        prop_assert_eq!(s, state);
    }

    /// MixColumns is linear over GF(2): mc(a ⊕ b) = mc(a) ⊕ mc(b).
    #[test]
    fn mix_columns_is_linear(a in any::<[u8; 16]>(), b in any::<[u8; 16]>()) {
        let lhs = mix_columns(&xor16(&a, &b));
        let rhs = xor16(&mix_columns(&a), &mix_columns(&b));
        prop_assert_eq!(lhs, rhs);
    }

    /// SubBytes is a bijection on the state (16 parallel S-boxes).
    #[test]
    fn sub_bytes_is_bytewise(state in any::<[u8; 16]>(), i in 0usize..16) {
        let out = sub_bytes(&state);
        // Byte i of the output only depends on byte i of the input.
        let mut state2 = state;
        state2[i] ^= 0xFF;
        let out2 = sub_bytes(&state2);
        for j in 0..16 {
            if j == i {
                prop_assert_ne!(out[j], out2[j]);
            } else {
                prop_assert_eq!(out[j], out2[j]);
            }
        }
    }

    /// The per-round trace is consistent: each entry follows from the
    /// previous by one round, and the last is the ciphertext.
    #[test]
    fn trace_is_selfconsistent(pt in any::<[u8; 16]>(), key in any::<[u8; 16]>()) {
        let aes = Aes128::new(&key);
        let trace = aes.encrypt_trace(&pt);
        prop_assert_eq!(trace.len(), 11);
        for r in 1..=10 {
            prop_assert_eq!(aes.encrypt_round(&trace[r - 1], r), trace[r]);
        }
        prop_assert_eq!(trace[10], aes.encrypt_block(&pt));
    }
}
