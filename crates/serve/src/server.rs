//! The blocking TCP scoring server.
//!
//! Three kinds of thread cooperate:
//!
//! - the **accept loop** (the caller's thread inside [`serve`]) hands
//!   each connection to a handler;
//! - **handler threads** (one per connection) speak the protocol:
//!   strict-parse each frame, answer `ping`/`shutdown` inline, and
//!   enqueue `score` requests onto the bounded queue — or shed them
//!   with `busy` when the queue is at depth;
//! - the **scheduler thread** owns everything stateful (the lab, the
//!   engine, both caches) and drains the queue in batches: each wake
//!   takes every queued request, groups them by golden content digest
//!   (which refines the plan-digest grouping the shard router uses —
//!   same-plan goldens with different channel data never share a
//!   session), and scores each group through one [`ScoringSession`] so
//!   device programming and golden setup are paid once per batch
//!   instead of once per request.
//!
//! Correctness invariant: every suspect is scored at campaign position
//! 0 through the exact code path of the offline campaign scorer, so a
//! served response embeds the byte-identical report `htd score` writes
//! for the same (artifact, suspect) pair — at any worker count, under
//! any request interleaving, whatever batches the queue happens to
//! form. Caching preserves this for free because scoring is a pure
//! function of (artifact content, suspect token) and both caches key
//! by the artifact's content digest.
//!
//! Failure isolation mirrors the offline pipeline's resilience story: a
//! faulted acquisition, an unknown suspect or an unloadable artifact
//! degrades exactly one response into `error`; the connection, the
//! scheduler and the process all live on. Only binding the socket or
//! failing to write a requested manifest is fatal — and even then the
//! scheduler's exit path answers every still-queued request with
//! `error` and wakes the accept loop, so no handler blocks forever and
//! [`serve`] returns the error promptly.

use std::collections::VecDeque;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use htd_core::prelude::{Channel, ReferenceFreeSession, RetryPolicy, ScoringSession};
use htd_core::{Engine, Error, Lab};
use htd_faults::FaultPlan;
use htd_obs::{Obs, RunManifest, ToolInfo};
use htd_store::{ClassifierModel, ScorableArtifact};
use htd_trojan::TrojanSpec;

use crate::cache::{GoldenCache, ResultCache};
use crate::protocol::{read_frame, Request, Response};

/// Periodic manifest snapshots of a serving run.
#[derive(Debug, Clone)]
pub struct ManifestConfig {
    /// Where the manifest JSON is (re)written.
    pub path: PathBuf,
    /// Rewrite after every this many scored requests (plus once at
    /// shutdown). Clamped to at least 1.
    pub every: u64,
    /// Provenance of the serving binary.
    pub tool: ToolInfo,
}

/// Everything [`serve`] needs to run one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Bounded queue depth: score requests beyond this many waiting are
    /// shed with a `busy` response instead of queued.
    pub queue_depth: usize,
    /// Byte budget of the golden-artifact LRU cache.
    pub cache_bytes: usize,
    /// Entry budget of the rendered-report memo cache; 0 disables it.
    pub result_cache: usize,
    /// Worker threads of the scoring engine (0 = auto).
    pub workers: usize,
    /// Fault plan replayed on every scored request.
    pub faults: FaultPlan,
    /// Retry/degraded policy applied per request.
    pub policy: RetryPolicy,
    /// Periodic run-manifest snapshots, when wanted.
    pub manifest: Option<ManifestConfig>,
    /// Provenance stamped into the manifests the `stats` verb serves
    /// over the wire (and nothing else — `--manifest` snapshots use
    /// [`ManifestConfig::tool`]).
    pub tool: ToolInfo,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            queue_depth: 64,
            cache_bytes: 64 << 20,
            result_cache: 4096,
            workers: 0,
            faults: FaultPlan::none(),
            policy: RetryPolicy::strict(),
            manifest: None,
            tool: ToolInfo {
                name: "htd-serve".to_string(),
                version: env!("CARGO_PKG_VERSION").to_string(),
                format_version: u64::from(htd_store::FORMAT_VERSION),
                features: vec![],
            },
        }
    }
}

/// What one completed serving run did, for the CLI's closing summary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Score requests that reached the scheduler.
    pub requests: u64,
    /// Scheduler wakes that scored at least one request.
    pub batches: u64,
    /// `ok` score responses sent.
    pub responses_ok: u64,
    /// `error` responses sent (scoring failures plus protocol rejects).
    pub responses_error: u64,
    /// `busy` responses sent (requests shed at the queue).
    pub responses_busy: u64,
}

/// One queued score request: what to score and where the handler waits
/// for the answer.
struct Job {
    golden: String,
    suspect: String,
    model: Option<String>,
    /// The request id — client-supplied or server-assigned — tagged
    /// onto every span this request touches.
    request: String,
    /// Whether the client supplied the id (then, and only then, the
    /// response echoes it: server-assigned ids never surprise an old
    /// client on the wire).
    echo: bool,
    /// Trace timestamp at enqueue ([`Obs::now_ns`]; 0 when untraced) —
    /// the queue wait becomes an async trace interval at dequeue.
    enqueued_ns: u64,
    reply: mpsc::Sender<Response>,
}

/// State shared between the accept loop, the handlers and the scheduler.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    wake: Condvar,
    shutdown: AtomicBool,
    queue_depth: usize,
    /// `busy` responses, counted at the shedding handler.
    shed: AtomicU64,
    /// `error` responses sent directly by handlers (malformed frames,
    /// post-shutdown requests).
    handler_errors: AtomicU64,
    /// Server-assigned request ids (`srv-1`, `srv-2`, …) for requests
    /// that carry none of their own.
    next_request_id: AtomicU64,
    /// Introspection context the `stats` verb serves inline.
    stats: StatsContext,
}

/// What a handler needs to answer `stats` without consulting the
/// scheduler: static provenance plus two scheduler-maintained cells.
struct StatsContext {
    started: Instant,
    tool: ToolInfo,
    /// Resolved engine worker count, written once by the scheduler.
    workers: AtomicU64,
    /// `fnv1a64:<16 hex>` digest of the last golden scored, mirrored
    /// from the scheduler so the wire manifest matches a `--manifest`
    /// snapshot field for field.
    plan_digest: Mutex<String>,
}

/// Runs a scoring server on `config.addr` until a client sends
/// `shutdown`. `on_ready` fires exactly once, after the socket is
/// bound, with the resolved local address — the CLI prints it (port 0
/// resolves to a real ephemeral port), tests connect to it.
///
/// # Errors
///
/// [`Error::Io`] when the socket cannot be bound or accepted on, or
/// when a configured manifest cannot be written. Per-request failures
/// are *not* errors here — they degrade into `error` responses.
pub fn serve(
    config: ServeConfig,
    obs: &Obs,
    on_ready: impl FnOnce(SocketAddr),
) -> Result<ServeReport, Error> {
    let listener = TcpListener::bind(&config.addr).map_err(|e| Error::io(&config.addr, e))?;
    let local = listener
        .local_addr()
        .map_err(|e| Error::io(&config.addr, e))?;
    on_ready(local);

    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        wake: Condvar::new(),
        shutdown: AtomicBool::new(false),
        queue_depth: config.queue_depth.max(1),
        shed: AtomicU64::new(0),
        handler_errors: AtomicU64::new(0),
        next_request_id: AtomicU64::new(0),
        stats: StatsContext {
            started: Instant::now(),
            tool: config.tool.clone(),
            workers: AtomicU64::new(0),
            plan_digest: Mutex::new(String::new()),
        },
    });

    let scheduler = {
        let shared = Arc::clone(&shared);
        let obs = obs.clone();
        let config = config.clone();
        std::thread::spawn(move || {
            let result = scheduler_loop(&config, &obs, &shared);
            // However the scheduler ended — clean shutdown or a fatal
            // manifest error — no handler may be left blocked on a
            // reply that will never come, and the accept loop must
            // observe the flag instead of blocking in `accept` until
            // the next client happens to connect.
            shared.shutdown.store(true, Ordering::SeqCst);
            let stranded: Vec<Job> = {
                let mut queue = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
                queue.drain(..).collect()
            };
            for job in stranded {
                shared.handler_errors.fetch_add(1, Ordering::SeqCst);
                obs.incr("serve.responses.error");
                let _ = job.reply.send(Response::Error {
                    reason: "server shutting down".to_string(),
                });
            }
            drop(TcpStream::connect(local));
            result
        })
    };

    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(stream) => stream,
            // A single failed accept (peer vanished mid-handshake) is
            // not worth the whole server.
            Err(_) => continue,
        };
        let shared = Arc::clone(&shared);
        let obs = obs.clone();
        std::thread::spawn(move || handle_connection(stream, local, &shared, &obs));
    }

    let report = scheduler
        .join()
        .unwrap_or_else(|panic| std::panic::resume_unwind(panic))?;
    Ok(ServeReport {
        responses_busy: shared.shed.load(Ordering::SeqCst),
        responses_error: report.responses_error + shared.handler_errors.load(Ordering::SeqCst),
        ..report
    })
}

/// Speaks the protocol on one connection until the peer closes it.
fn handle_connection(stream: TcpStream, local: SocketAddr, shared: &Shared, obs: &Obs) {
    // Responses are one small write each; batching them behind Nagle
    // only adds latency.
    stream.set_nodelay(true).ok();
    let mut writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            // Clean disconnect, or a peer too broken to answer.
            Ok(None) | Err(_) => return,
        };
        let response = match Request::parse(&frame) {
            Ok(Request::Ping) => Response::Done,
            Ok(Request::Stats) => stats_response(shared, obs),
            Ok(Request::Shutdown) => {
                // Answer BEFORE starting the teardown: once the flag is
                // up, the accept loop can unwind and the process exit
                // faster than this thread gets scheduled again, closing
                // the socket under an unsent reply.
                send(&mut writer, &Response::Done).ok();
                shared.shutdown.store(true, Ordering::SeqCst);
                shared.wake.notify_all();
                // The accept loop is blocked in `accept`; a throwaway
                // connection wakes it to observe the flag.
                drop(TcpStream::connect(local));
                return;
            }
            Ok(Request::Score {
                golden,
                suspect,
                model,
                request,
            }) => {
                // A client-supplied id is echoed on the response; a
                // server-assigned one only tags the server's own trace.
                let echo = request.is_some();
                let request = request.unwrap_or_else(|| {
                    format!(
                        "srv-{}",
                        shared.next_request_id.fetch_add(1, Ordering::SeqCst) + 1
                    )
                });
                let admitted = {
                    let _span = obs.span_tagged("serve.accept", &[("request", &request)]);
                    enqueue(shared, golden, suspect, model, request.clone(), echo, obs)
                };
                let response = match admitted {
                    Enqueued::Queued(wait) => match wait.recv() {
                        Ok(response) => response,
                        // The scheduler is gone (shutdown drained past
                        // us); the peer still deserves an answer.
                        Err(_) => {
                            shared.handler_errors.fetch_add(1, Ordering::SeqCst);
                            obs.incr("serve.responses.error");
                            Response::Error {
                                reason: "server shutting down".to_string(),
                            }
                        }
                    },
                    Enqueued::Shed => Response::Busy {
                        depth: shared.queue_depth as u64,
                    },
                    Enqueued::ShuttingDown => {
                        shared.handler_errors.fetch_add(1, Ordering::SeqCst);
                        obs.incr("serve.responses.error");
                        Response::Error {
                            reason: "server shutting down".to_string(),
                        }
                    }
                };
                let _span = obs.span_tagged("serve.respond", &[("request", &request)]);
                if send(&mut writer, &response).is_err() {
                    return;
                }
                continue;
            }
            Err(err) => {
                shared.handler_errors.fetch_add(1, Ordering::SeqCst);
                obs.incr("serve.responses.error");
                Response::Error {
                    reason: format!("malformed request: {err}"),
                }
            }
        };
        if send(&mut writer, &response).is_err() {
            return;
        }
    }
}

/// Builds the live introspection snapshot a `stats` request is answered
/// with, entirely from the handler thread: a recorder snapshot, the
/// queue length and the scheduler-maintained stats cells — scoring is
/// never disturbed.
fn stats_response(shared: &Shared, obs: &Obs) -> Response {
    obs.incr("serve.stats.requests");
    let queue = {
        let queue = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        queue.len() as u64
    };
    let snapshot = obs.snapshot().unwrap_or_default();
    let digest = {
        let digest = shared
            .stats
            .plan_digest
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        if digest.is_empty() {
            "fnv1a64:0000000000000000".to_string()
        } else {
            digest.clone()
        }
    };
    let run = RunManifest::new(
        shared.stats.tool.clone(),
        "serve",
        usize::try_from(shared.stats.workers.load(Ordering::SeqCst)).unwrap_or(usize::MAX),
        &digest,
        &snapshot,
        vec![],
    );
    let uptime = shared.stats.started.elapsed();
    Response::Stats {
        uptime_ns: u64::try_from(uptime.as_nanos()).unwrap_or(u64::MAX),
        queue,
        manifest: run.to_pretty(),
    }
}

enum Enqueued {
    Queued(mpsc::Receiver<Response>),
    Shed,
    ShuttingDown,
}

/// Queues one score request under the depth bound, or says why not.
fn enqueue(
    shared: &Shared,
    golden: String,
    suspect: String,
    model: Option<String>,
    request: String,
    echo: bool,
    obs: &Obs,
) -> Enqueued {
    let mut queue = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
    if shared.shutdown.load(Ordering::SeqCst) {
        return Enqueued::ShuttingDown;
    }
    if queue.len() >= shared.queue_depth {
        shared.shed.fetch_add(1, Ordering::SeqCst);
        obs.incr("serve.responses.busy");
        return Enqueued::Shed;
    }
    let (reply, wait) = mpsc::channel();
    queue.push_back(Job {
        golden,
        suspect,
        model,
        request,
        echo,
        enqueued_ns: obs.now_ns(),
        reply,
    });
    // The histogram sees the depth from both sides — each enqueue here
    // and each drain in the scheduler — so it reflects build-up *and*
    // drain behaviour, not just batch sizes.
    obs.observe("serve.queue.depth", queue.len() as u64);
    drop(queue);
    shared.wake.notify_all();
    Enqueued::Queued(wait)
}

fn send(writer: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    writer.write_all(response.to_text().as_bytes())?;
    writer.flush()
}

/// The scheduler: drains the queue in batches until shutdown, then
/// drains whatever is left and writes the final manifest.
fn scheduler_loop(config: &ServeConfig, obs: &Obs, shared: &Shared) -> Result<ServeReport, Error> {
    let lab = Lab::paper();
    let engine = if config.workers == 0 {
        Engine::auto()
    } else {
        Engine::with_workers(config.workers)
    }
    .with_obs(obs.clone());
    shared
        .stats
        .workers
        .store(engine.workers() as u64, Ordering::SeqCst);
    let mut goldens = GoldenCache::new(config.cache_bytes);
    let mut results = ResultCache::new(config.result_cache);
    let mut report = ServeReport::default();
    let mut manifest_due = 0u64;
    let mut last_digest_hex = String::new();

    loop {
        let batch: Vec<Job> = {
            let mut queue = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            while queue.is_empty() && !shared.shutdown.load(Ordering::SeqCst) {
                queue = shared.wake.wait(queue).unwrap_or_else(|p| p.into_inner());
            }
            queue.drain(..).collect()
        };
        if batch.is_empty() {
            // Shutdown with an empty queue: nothing left to score.
            break;
        }
        obs.observe("serve.queue.depth", batch.len() as u64);
        if obs.tracing() {
            // Each request's wait in the queue spans two threads, so it
            // cannot nest in any one thread's span stack: record it as
            // an async interval correlated by the request id.
            let dequeued_ns = obs.now_ns();
            for job in &batch {
                obs.trace_async(
                    "serve.queue",
                    &job.request,
                    job.enqueued_ns,
                    dequeued_ns,
                    &[("request", &job.request)],
                );
            }
        }
        score_batch(
            batch,
            config,
            &lab,
            &engine,
            &mut goldens,
            &mut results,
            &mut report,
            &mut manifest_due,
            &mut last_digest_hex,
        );
        {
            // Mirror the digest for the handlers' `stats` responses.
            let mut digest = shared
                .stats
                .plan_digest
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            if *digest != last_digest_hex {
                digest.clone_from(&last_digest_hex);
            }
        }
        if let Some(manifest) = &config.manifest {
            if manifest_due >= manifest.every.max(1) {
                manifest_due = 0;
                write_manifest(manifest, &engine, &last_digest_hex, obs)?;
            }
        }
    }
    if let Some(manifest) = &config.manifest {
        write_manifest(manifest, &engine, &last_digest_hex, obs)?;
    }
    Ok(report)
}

/// Scores one drained batch: resolve, group by content digest, one
/// [`ScoringSession`] per group, memoized responses where the result
/// cache already knows the answer.
#[allow(clippy::too_many_arguments)]
fn score_batch(
    batch: Vec<Job>,
    config: &ServeConfig,
    lab: &Lab,
    engine: &Engine,
    goldens: &mut GoldenCache,
    results: &mut ResultCache,
    report: &mut ServeReport,
    manifest_due: &mut u64,
    last_digest_hex: &mut String,
) {
    let obs = engine.obs();
    let _span = obs.span("serve.batch");
    obs.incr("serve.batches");
    obs.add("serve.requests", batch.len() as u64);
    report.batches += 1;
    report.requests += batch.len() as u64;
    *manifest_due += batch.len() as u64;

    // Resolve every job up front; failures answer immediately and drop
    // out of the batch.
    struct Resolved {
        golden: Arc<crate::cache::CachedGolden>,
        spec: TrojanSpec,
        suspect: String,
        model: Option<String>,
        request: String,
        echo: bool,
        reply: mpsc::Sender<Response>,
    }
    let mut resolved: Vec<Resolved> = Vec::with_capacity(batch.len());
    for job in batch {
        let golden = match goldens.get(std::path::Path::new(&job.golden), obs) {
            Ok(golden) => golden,
            Err(err) => {
                respond_error(report, obs, &job.reply, &err.to_string());
                continue;
            }
        };
        let Some(spec) = TrojanSpec::from_token(&job.suspect) else {
            respond_error(
                report,
                obs,
                &job.reply,
                &format!("unknown suspect `{}`", job.suspect),
            );
            continue;
        };
        resolved.push(Resolved {
            golden,
            spec,
            suspect: job.suspect,
            model: job.model,
            request: job.request,
            echo: job.echo,
            reply: job.reply,
        });
    }

    // Group by (content digest, model path) in first-seen order: one
    // session's setup is then shared by every request for that golden.
    // The key must be content, not plan — two goldens with the same
    // plan but different channel data score differently and may not
    // share a session or a memo entry. The model path joins the key
    // because a session carries at most one classifier.
    type GroupKey = (u64, Option<String>);
    let mut group_order: Vec<GroupKey> = Vec::new();
    let mut groups: std::collections::HashMap<GroupKey, Vec<Resolved>> =
        std::collections::HashMap::new();
    for job in resolved {
        let key = (job.golden.content_digest, job.model.clone());
        if !groups.contains_key(&key) {
            group_order.push(key.clone());
        }
        groups.entry(key).or_default().push(job);
    }

    // A scoring session over either artifact kind; both score at a
    // campaign position and render the identical one-row report.
    enum Session<'a> {
        Golden(ScoringSession<'a>),
        RefFree(ReferenceFreeSession<'a>),
    }

    for key in group_order {
        let group = groups.remove(&key).expect("grouped above");
        let (content, model_path) = key;
        let golden = Arc::clone(&group[0].golden);
        *last_digest_hex = golden.digest_hex.clone();

        // Parse the group's classifier (if any) before the memo lookup:
        // the memo key is salted with the model's *content* digest, so
        // two models at the same path never alias a cached report, and
        // republishing a model invalidates naturally. A malformed or
        // unreadable model answers every request of the group with
        // `error` — the connection and the server live on.
        let model: Option<(ClassifierModel, u64)> = match &model_path {
            None => None,
            Some(path) => {
                let parsed = std::fs::read_to_string(path)
                    .map_err(|e| Error::io(path, e))
                    .and_then(|text| {
                        let model: ClassifierModel = htd_store::from_text_at(&text, path)?;
                        Ok((model, htd_store::fnv1a64(text.as_bytes())))
                    });
                match parsed {
                    Ok(pair) => Some(pair),
                    Err(err) => {
                        let reason = err.to_string();
                        for job in &group {
                            respond_error(report, obs, &job.reply, &reason);
                        }
                        continue;
                    }
                }
            }
        };
        let memo_key = |suspect: &str| match &model {
            None => suspect.to_string(),
            Some((_, fnv)) => format!("{suspect}+{fnv:016x}"),
        };

        // Serve memoized answers first; only the misses pay for a
        // session.
        let mut misses: Vec<Resolved> = Vec::new();
        for job in group {
            match results.get(content, &memo_key(&job.suspect), obs) {
                Some(cached) => respond_score(report, obs, &job, &golden.digest_hex, cached),
                None => misses.push(job),
            }
        }
        if misses.is_empty() {
            continue;
        }

        let channels = golden.artifact.build_channels();
        let channel_refs: Vec<&dyn Channel> = channels.iter().map(AsRef::as_ref).collect();
        let built: Result<Session<'_>, Error> = match &golden.artifact {
            ScorableArtifact::Golden(artifact) => {
                ScoringSession::new(engine, lab, artifact.characterization(), &channel_refs)
                    .and_then(|s| match &model {
                        Some((m, _)) => s.with_model(m),
                        None => Ok(s),
                    })
                    .map(Session::Golden)
            }
            ScorableArtifact::ReferenceFree(artifact) => {
                ReferenceFreeSession::new(engine, lab, artifact.characterization(), &channel_refs)
                    .and_then(|s| match &model {
                        Some((m, _)) => s.with_model(m),
                        None => Ok(s),
                    })
                    .map(Session::RefFree)
            }
        };
        let session = match built {
            Ok(session) => session,
            Err(err) => {
                let reason = err.to_string();
                for job in &misses {
                    respond_error(report, obs, &job.reply, &reason);
                }
                continue;
            }
        };
        for job in misses {
            let _span = obs.span_tagged("serve.request", &[("request", &job.request)]);
            // Position 0 pins the seed stream and fault tag to the
            // offline single-suspect path: bit-identity by construction.
            let outcome = match &session {
                Session::Golden(s) => s
                    .score_spec_at(0, &job.spec, &config.faults, &config.policy)
                    .map(|score| htd_store::to_text(&s.single_report(&score, &config.faults))),
                Session::RefFree(s) => s
                    .score_spec_at(0, &job.spec, &config.faults, &config.policy)
                    .map(|score| htd_store::to_text(&s.single_report(&score, &config.faults))),
            };
            match outcome {
                Ok(text) => {
                    results.put(content, &memo_key(&job.suspect), text.clone());
                    respond_score(report, obs, &job, &golden.digest_hex, text);
                }
                Err(err) => respond_error(report, obs, &job.reply, &err.to_string()),
            }
        }
    }

    fn respond_score(
        report: &mut ServeReport,
        obs: &Obs,
        job: &Resolved,
        plan: &str,
        text: String,
    ) {
        report.responses_ok += 1;
        obs.incr("serve.responses.ok");
        // A vanished client is its handler's problem, not the batch's.
        let _ = job.reply.send(Response::Score {
            plan: plan.to_string(),
            suspect: job.suspect.clone(),
            request: job.echo.then(|| job.request.clone()),
            report: text,
        });
    }

    fn respond_error(
        report: &mut ServeReport,
        obs: &Obs,
        reply: &mpsc::Sender<Response>,
        reason: &str,
    ) {
        report.responses_error += 1;
        obs.incr("serve.responses.error");
        let _ = reply.send(Response::Error {
            reason: reason.to_string(),
        });
    }
}

/// Rewrites the serve manifest from the current recorder snapshot.
fn write_manifest(
    manifest: &ManifestConfig,
    engine: &Engine,
    last_digest_hex: &str,
    obs: &Obs,
) -> Result<(), Error> {
    obs.incr("serve.manifest.writes");
    let snapshot = obs.snapshot().unwrap_or_default();
    let digest = if last_digest_hex.is_empty() {
        "fnv1a64:0000000000000000"
    } else {
        last_digest_hex
    };
    let run = RunManifest::new(
        manifest.tool.clone(),
        "serve",
        engine.workers(),
        digest,
        &snapshot,
        vec![],
    );
    std::fs::write(&manifest.path, run.to_pretty()).map_err(|e| Error::io(&manifest.path, e))
}
