//! The two caches behind the serve scheduler.
//!
//! [`GoldenCache`] holds parsed [`ScorableArtifact`]s — stored golden
//! references and reference-free self-score baselines alike — keyed by
//! the FNV-1a digest of the artifact's *full file text* — not of its
//! plan. Two
//! goldens characterized from the same plan but through different
//! channels carry the same plan digest yet score differently, so
//! keying by plan would let one silently answer for the other; the
//! content digest makes byte-distinct artifacts distinct cache
//! entries. The plan digest (the value `htd_store::plan_digest`
//! computes, the manifest records and the shard router hashes) rides
//! along on each entry as the wire identity. A path→content-digest
//! side index lets repeat requests for the same file skip the
//! filesystem entirely; its entries are pruned when the artifact they
//! point at is evicted. The LRU is bounded by total artifact *bytes* —
//! goldens vary wildly in size with die count, so an entry-count cap
//! would bound nothing.
//!
//! [`ResultCache`] memoizes rendered report texts by `(content digest,
//! suspect token)`. Scoring is a pure function of that pair — the
//! artifact text fixes the plan (hence every seed), the channel states,
//! and the suspect's fault tag at its fixed position 0 — so serving a
//! cached response is *bit-identical* to rescoring, and the warm-path
//! throughput of `htd bench --serve` is really this map's lookup cost.
//! It is bounded by entry count and a cap of zero disables it outright
//! (the bit-identity e2e tests do this to force real scoring).
//!
//! Neither cache locks: both live inside the single scheduler thread,
//! which also makes every `store.cache.*` / `serve.cache.result.*`
//! counter deterministic at any worker count.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use htd_core::Error;
use htd_obs::Obs;
use htd_store::{fnv1a64, plan_digest, ScorableArtifact};

/// A parsed golden artifact plus its two identities: the content
/// digest the caches key by, and the plan digest the wire protocol and
/// shard router speak.
#[derive(Debug)]
pub struct CachedGolden {
    /// FNV-1a digest of the artifact's full file text (the cache key).
    /// Byte-distinct artifacts — including two characterized from the
    /// same plan through different channels — never share this value.
    pub content_digest: u64,
    /// FNV-1a digest of the plan's store text (the wire/shard key).
    pub digest: u64,
    /// `fnv1a64:<16 hex>` rendering of [`digest`](Self::digest), as
    /// responses and manifests print it.
    pub digest_hex: String,
    /// The parsed artifact — a stored golden reference or a
    /// reference-free self-score baseline; the scheduler picks the
    /// matching scoring session per batch.
    pub artifact: ScorableArtifact,
    /// Size of the artifact's file text, the unit the LRU budget counts.
    pub bytes: usize,
}

struct Slot {
    golden: Arc<CachedGolden>,
    /// Logical clock of the last `get` that returned this entry.
    last_use: u64,
}

/// Byte-bounded LRU of parsed golden artifacts, content-digest-keyed.
pub struct GoldenCache {
    cap_bytes: usize,
    total_bytes: usize,
    tick: u64,
    entries: HashMap<u64, Slot>,
    /// Which content digest a given path last parsed to. An entry here
    /// is only a hint: it must still resolve through `entries` to count
    /// as hot, and it is dropped when that entry is evicted.
    paths: HashMap<PathBuf, u64>,
}

impl GoldenCache {
    /// An empty cache holding at most `cap_bytes` of artifact text.
    pub fn new(cap_bytes: usize) -> Self {
        GoldenCache {
            cap_bytes,
            total_bytes: 0,
            tick: 0,
            entries: HashMap::new(),
            paths: HashMap::new(),
        }
    }

    /// Bytes of artifact text currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.total_bytes
    }

    /// Number of resident artifacts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The artifact at `path`, from cache when hot (`store.cache.hit`)
    /// or freshly read, parsed and inserted when not (`store.cache.miss`,
    /// then one `store.cache.evict` per entry the byte budget pushes
    /// out). The newest entry is never evicted, even when it alone
    /// exceeds the budget — the request that paid for the read gets to
    /// use it.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the file cannot be read; [`Error::Format`]
    /// when it is not a well-formed golden artifact.
    pub fn get(&mut self, path: &Path, obs: &Obs) -> Result<Arc<CachedGolden>, Error> {
        self.tick += 1;
        if let Some(&content) = self.paths.get(path) {
            if let Some(slot) = self.entries.get_mut(&content) {
                slot.last_use = self.tick;
                obs.incr("store.cache.hit");
                return Ok(Arc::clone(&slot.golden));
            }
        }
        obs.incr("store.cache.miss");
        let text = std::fs::read_to_string(path).map_err(|e| Error::io(path, e))?;
        let artifact = ScorableArtifact::from_text_at(&text, &path.display().to_string())?;
        let content_digest = fnv1a64(text.as_bytes());
        let digest = plan_digest(artifact.plan());
        let golden = Arc::new(CachedGolden {
            content_digest,
            digest,
            digest_hex: format!("fnv1a64:{digest:016x}"),
            artifact,
            bytes: text.len(),
        });
        self.paths.insert(path.to_path_buf(), content_digest);
        // Two paths can hold byte-identical files; the displaced entry
        // is the same text, but the byte ledger must still shed its
        // size before counting the replacement's.
        if let Some(old) = self.entries.insert(
            content_digest,
            Slot {
                golden: Arc::clone(&golden),
                last_use: self.tick,
            },
        ) {
            self.total_bytes -= old.golden.bytes;
        }
        self.total_bytes += golden.bytes;
        while self.total_bytes > self.cap_bytes && self.entries.len() > 1 {
            let coldest = self
                .entries
                .iter()
                .filter(|(&d, _)| d != content_digest)
                .min_by_key(|(_, slot)| slot.last_use)
                .map(|(&d, _)| d)
                .expect("len > 1 leaves at least one other entry");
            let evicted = self.entries.remove(&coldest).expect("key came from iter");
            self.total_bytes -= evicted.golden.bytes;
            self.paths.retain(|_, &mut d| d != coldest);
            obs.incr("store.cache.evict");
        }
        Ok(golden)
    }
}

/// Entry-bounded LRU memoizing rendered report texts by
/// `(content digest, suspect token)`.
pub struct ResultCache {
    cap: usize,
    tick: u64,
    entries: HashMap<(u64, String), (String, u64)>,
}

impl ResultCache {
    /// An empty cache holding at most `cap` reports; `cap == 0`
    /// disables caching entirely (every lookup misses, nothing is
    /// stored).
    pub fn new(cap: usize) -> Self {
        ResultCache {
            cap,
            tick: 0,
            entries: HashMap::new(),
        }
    }

    /// Number of memoized reports.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The memoized report for `(digest, suspect)`, counting
    /// `serve.cache.result.hit` / `serve.cache.result.miss`.
    pub fn get(&mut self, digest: u64, suspect: &str, obs: &Obs) -> Option<String> {
        self.tick += 1;
        // A disabled cache is silent: no entries, and no hit/miss noise
        // in the counter section either.
        if self.cap == 0 {
            return None;
        }
        match self.entries.get_mut(&(digest, suspect.to_string())) {
            Some((report, last_use)) => {
                *last_use = self.tick;
                obs.incr("serve.cache.result.hit");
                Some(report.clone())
            }
            None => {
                obs.incr("serve.cache.result.miss");
                None
            }
        }
    }

    /// Memoizes `report` for `(digest, suspect)`, evicting the
    /// least-recently-used entry when full. No-op when disabled.
    pub fn put(&mut self, digest: u64, suspect: &str, report: String) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        if self.entries.len() >= self.cap
            && !self.entries.contains_key(&(digest, suspect.to_string()))
        {
            if let Some(coldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, last_use))| *last_use)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&coldest);
            }
        }
        self.entries
            .insert((digest, suspect.to_string()), (report, self.tick));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_core::CampaignPlan;
    use htd_store::GoldenArtifact;

    fn counter(obs: &Obs, name: &str) -> u64 {
        obs.snapshot()
            .unwrap()
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// A valid single-channel golden artifact written to `dir`; `seed`
    /// varies the plan (so distinct seeds yield distinct plan digests)
    /// while `level` varies only the channel state — same plan,
    /// byte-distinct file.
    fn write_golden_at(dir: &Path, name: &str, seed: u8, level: f64) -> PathBuf {
        use htd_core::channel::{Calibration, ChannelSpec, GoldenReference};
        use htd_core::em_detect::TraceMetric;
        use htd_core::prelude::{ChannelState, GoldenCharacterization, Trace};
        let plan = CampaignPlan::with_random_pairs(4, 2, 2, [seed; 16], [seed ^ 0x5a; 16], 7);
        let state = ChannelState::pristine(
            "EM",
            Calibration::None,
            GoldenReference::MeanTrace(Trace::new(vec![level; 9], 125.0)),
            (0..plan.n_dies).map(|i| i as f64 * 1.5).collect(),
        );
        let artifact = GoldenArtifact::new(
            vec![ChannelSpec::Em(TraceMetric::SumOfLocalMaxima)],
            GoldenCharacterization {
                plan,
                states: vec![state],
                lost: vec![],
            },
        )
        .unwrap();
        let path = dir.join(name);
        std::fs::write(&path, htd_store::to_text(&artifact)).unwrap();
        path
    }

    fn write_golden(dir: &Path, name: &str, seed: u8) -> PathBuf {
        write_golden_at(dir, name, seed, 0.25)
    }

    #[test]
    fn golden_cache_hits_and_evicts() {
        let dir = std::env::temp_dir().join(format!("htd-serve-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = write_golden(&dir, "a.htd", 1);
        let b = write_golden(&dir, "b.htd", 2);
        let obs = Obs::recording();
        let one = std::fs::metadata(&a).unwrap().len() as usize;

        // Budget for one artifact only: loading the second evicts the first.
        let mut cache = GoldenCache::new(one + one / 2);
        let first = cache.get(&a, &obs).unwrap();
        assert_eq!(cache.get(&a, &obs).unwrap().digest, first.digest);
        assert_eq!(counter(&obs, "store.cache.hit"), 1);
        assert_eq!(counter(&obs, "store.cache.miss"), 1);

        let second = cache.get(&b, &obs).unwrap();
        assert_ne!(second.digest, first.digest);
        assert_eq!(counter(&obs, "store.cache.evict"), 1);
        assert_eq!(cache.len(), 1);
        assert!(cache.resident_bytes() <= one + one / 2);

        // The evicted artifact reloads as a miss, not an error.
        cache.get(&a, &obs).unwrap();
        assert_eq!(counter(&obs, "store.cache.miss"), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn same_plan_different_channels_are_distinct_entries() {
        let dir = std::env::temp_dir().join(format!("htd-serve-collide-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Same seed → same plan digest; different level → different file
        // bytes. Keying by plan digest would make B silently answer for A.
        let a = write_golden_at(&dir, "a.htd", 1, 0.25);
        let b = write_golden_at(&dir, "b.htd", 1, 0.75);
        let obs = Obs::recording();
        let mut cache = GoldenCache::new(1 << 20);

        let first = cache.get(&a, &obs).unwrap();
        let second = cache.get(&b, &obs).unwrap();
        assert_eq!(first.digest, second.digest, "plans are identical");
        assert_ne!(first.content_digest, second.content_digest);
        assert_eq!(cache.len(), 2, "both artifacts stay resident");

        // Each path keeps resolving to its own artifact text.
        let text_a = std::fs::read_to_string(&a).unwrap();
        let text_b = std::fs::read_to_string(&b).unwrap();
        assert_eq!(
            cache.get(&a, &obs).unwrap().content_digest,
            htd_store::fnv1a64(text_a.as_bytes())
        );
        assert_eq!(
            cache.get(&b, &obs).unwrap().content_digest,
            htd_store::fnv1a64(text_b.as_bytes())
        );
        assert_eq!(counter(&obs, "store.cache.hit"), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn golden_cache_read_failures_propagate() {
        let obs = Obs::recording();
        let mut cache = GoldenCache::new(1 << 20);
        assert!(cache
            .get(Path::new("/nonexistent/golden.htd"), &obs)
            .is_err());
        assert_eq!(counter(&obs, "store.cache.miss"), 1);
    }

    #[test]
    fn result_cache_memoizes_and_evicts_lru() {
        let obs = Obs::recording();
        let mut cache = ResultCache::new(2);
        assert!(cache.get(1, "ht1", &obs).is_none());
        cache.put(1, "ht1", "report-1".into());
        cache.put(1, "ht2", "report-2".into());
        assert_eq!(cache.get(1, "ht1", &obs).as_deref(), Some("report-1"));
        // Full: inserting a third key evicts ht2 (coldest), not ht1.
        cache.put(2, "ht1", "report-3".into());
        assert!(cache.get(1, "ht2", &obs).is_none());
        assert_eq!(cache.get(1, "ht1", &obs).as_deref(), Some("report-1"));
        assert_eq!(counter(&obs, "serve.cache.result.hit"), 2);
        assert_eq!(counter(&obs, "serve.cache.result.miss"), 2);
    }

    #[test]
    fn zero_capacity_disables_the_result_cache() {
        let obs = Obs::recording();
        let mut cache = ResultCache::new(0);
        cache.put(1, "ht1", "report".into());
        assert!(cache.get(1, "ht1", &obs).is_none());
        assert!(cache.is_empty());
        assert_eq!(counter(&obs, "serve.cache.result.hit"), 0);
        assert_eq!(counter(&obs, "serve.cache.result.miss"), 0);
    }
}
