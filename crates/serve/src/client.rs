//! A minimal blocking client for the serve protocol: one socket, one
//! in-flight request at a time. `htd bench --serve` drives many of
//! these concurrently; the e2e tests use it as the reference peer.

use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{read_frame, ProtocolError, Request, Response};

/// Everything a [`Client`] call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed under us.
    Io(std::io::Error),
    /// The server sent bytes that do not parse as a response frame.
    Protocol(ProtocolError),
    /// The server closed the connection before answering.
    ServerClosed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Protocol(e) => write!(f, "malformed response: {e}"),
            ClientError::ServerClosed => write!(f, "server closed the connection mid-request"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Protocol(e) => Some(e),
            ClientError::ServerClosed => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// One blocking connection to a serve instance.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on socket failure, [`ClientError::Protocol`]
    /// on an unparseable response, [`ClientError::ServerClosed`] when
    /// the connection drops before the response arrives.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.writer.write_all(request.to_text().as_bytes())?;
        self.writer.flush()?;
        let frame = read_frame(&mut self.reader)?.ok_or(ClientError::ServerClosed)?;
        Ok(Response::parse(&frame)?)
    }

    /// Sends raw bytes down the socket, bypassing the request grammar —
    /// the malformed-input e2e tests poke the server with this.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on socket failure.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.writer.write_all(bytes)?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads one response frame without sending anything first (pairs
    /// with [`Client::send_raw`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`Client::call`].
    pub fn read_response(&mut self) -> Result<Response, ClientError> {
        let frame = read_frame(&mut self.reader)?.ok_or(ClientError::ServerClosed)?;
        Ok(Response::parse(&frame)?)
    }
}
