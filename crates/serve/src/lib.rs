//! htd-serve — a batched, observable scoring service over the artifact
//! store.
//!
//! The offline pipeline characterizes a golden population once (`htd
//! characterize`) and scores suspects against the stored artifact (`htd
//! score`). This crate turns the second half into a long-lived network
//! service: a dependency-free blocking TCP server that keeps parsed
//! golden artifacts (and, optionally, finished reports) hot in memory
//! and amortizes per-request setup by batching.
//!
//! # Protocol
//!
//! Line-oriented frames with the store's framing discipline — versioned
//! header, strict never-panic parsing, FNV-1a checksum trailer:
//!
//! ```text
//! htdserve 1 score                      htdserve 1 ok
//! golden "goldens/em-delay.htd"         plan fnv1a64:56beaff94e0d743d
//! suspect ht2                           suspect ht2
//! checksum fnv1a64 <hex>                report 12
//!                                       |htdstore 1 report
//!                                       |...
//!                                       checksum fnv1a64 <hex>
//! ```
//!
//! Embedded report lines are `|`-prefixed so the report's own checksum
//! trailer cannot terminate the outer frame; stripped of the prefix
//! they are byte-identical to what `htd score --report` writes for the
//! same (artifact, suspect) pair. See [`protocol`] for the grammar.
//!
//! A score request may carry a `request "<id>"` line: the id tags
//! every span the server opens for that request (visible in `--trace`
//! exports) and is echoed on the response. Requests without one get a
//! server-assigned id for the server's own trace and an unchanged
//! response — the pre-tracing wire format both ways. A `stats` request
//! is answered inline by its handler with the live run manifest, the
//! queue depth and the uptime, without touching the scoring queue;
//! `htd top` polls it into a refreshing table.
//!
//! # Scheduling
//!
//! Handlers enqueue score requests onto a bounded queue (past the
//! configured depth they shed with an explicit `busy` response — the
//! client retries, nothing queues unboundedly). A single scheduler
//! thread drains the queue in batches, groups requests by the FNV-1a
//! digest of their golden's artifact text (a refinement of the
//! plan-digest grouping the shard router uses: same-plan goldens with
//! different channel data never share a session), and scores each
//! group through one `ScoringSession`, paying device programming and
//! golden setup once per batch. Every suspect scores at campaign
//! position 0
//! through the offline scorer's exact code path, so responses are
//! bit-identical to `htd score` at any worker count and under any
//! request interleaving.
//!
//! # Caching
//!
//! Two scheduler-owned caches (see [`cache`]): a byte-bounded LRU of
//! parsed golden artifacts (`store.cache.{hit,miss,evict}`) and an
//! entry-bounded memo of rendered reports keyed by (content digest,
//! suspect) — sound because scoring is a pure function of that pair
//! (`serve.cache.result.{hit,miss}`). Both key by the FNV-1a digest of
//! the artifact's full file text, never by its plan digest alone: two
//! goldens characterized from one plan through different channels score
//! differently and must never answer for each other. Both live on one
//! thread, so the counters are deterministic for sequential workloads
//! at any worker count.
//!
//! # Failure isolation
//!
//! The offline resilience story carries over: a faulted acquisition
//! (under `--faults`), an unknown suspect, an unloadable artifact or a
//! malformed frame degrades exactly one response into `error`; the
//! connection, the scheduler and the process live on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use cache::{CachedGolden, GoldenCache, ResultCache};
pub use client::{Client, ClientError};
pub use protocol::{
    read_frame, ProtocolError, Request, Response, MAGIC, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
pub use server::{serve, ManifestConfig, ServeConfig, ServeReport};

#[cfg(test)]
mod tests {
    use std::sync::mpsc;

    use htd_obs::Obs;

    use super::*;

    /// Boots a server on an ephemeral port in a background thread and
    /// hands back its address plus the join handle.
    fn boot(
        config: ServeConfig,
        obs: Obs,
    ) -> (
        std::net::SocketAddr,
        std::thread::JoinHandle<Result<ServeReport, htd_core::Error>>,
    ) {
        let (tx, rx) = mpsc::channel();
        let handle = std::thread::spawn(move || {
            serve(config, &obs, move |addr| {
                tx.send(addr).expect("boot listener alive");
            })
        });
        let addr = rx.recv().expect("server bound");
        (addr, handle)
    }

    #[test]
    fn ping_errors_and_shutdown_round_trip() {
        let (addr, handle) = boot(ServeConfig::default(), Obs::recording());
        let mut client = Client::connect(addr).unwrap();

        assert_eq!(client.call(&Request::Ping).unwrap(), Response::Done);

        // A score against a path that is not a golden artifact degrades
        // into an error response; the server keeps serving.
        let response = client
            .call(&Request::Score {
                golden: "/nonexistent/golden.htd".into(),
                suspect: "ht2".into(),
                model: None,
                request: None,
            })
            .unwrap();
        assert!(
            matches!(&response, Response::Error { reason } if reason.contains("nonexistent")),
            "{response:?}"
        );

        // A malformed frame gets an error response on the same socket.
        client
            .send_raw(b"htdserve 1 banana\nchecksum fnv1a64 0000000000000000\n")
            .unwrap();
        let response = client.read_response().unwrap();
        assert!(
            matches!(&response, Response::Error { reason } if reason.contains("malformed")),
            "{response:?}"
        );
        assert_eq!(client.call(&Request::Ping).unwrap(), Response::Done);

        assert_eq!(client.call(&Request::Shutdown).unwrap(), Response::Done);
        let report = handle.join().unwrap().unwrap();
        assert_eq!(report.requests, 1, "only the score reached the queue");
        assert_eq!(report.responses_error, 2);
        assert_eq!(report.responses_busy, 0);
    }

    #[test]
    fn stats_serves_the_live_manifest_inline() {
        let (addr, handle) = boot(ServeConfig::default(), Obs::recording());
        let mut client = Client::connect(addr).unwrap();
        let response = client.call(&Request::Stats).unwrap();
        let Response::Stats {
            uptime_ns: _,
            queue,
            manifest,
        } = response
        else {
            panic!("expected stats, got {response:?}");
        };
        assert_eq!(queue, 0);
        let run = htd_obs::RunManifest::parse(&manifest).expect("wire manifest parses strictly");
        assert_eq!(run.command, "serve");
        assert_eq!(run.plan_digest, "fnv1a64:0000000000000000");
        assert!(
            run.counters
                .iter()
                .any(|(name, value)| name == "serve.stats.requests" && *value == 1),
            "{manifest}"
        );
        // A second poll sees the first one's counter: the manifest is
        // live, not a boot-time snapshot.
        let Response::Stats { manifest, .. } = client.call(&Request::Stats).unwrap() else {
            panic!("expected stats");
        };
        let run = htd_obs::RunManifest::parse(&manifest).unwrap();
        assert!(run
            .counters
            .iter()
            .any(|(name, value)| name == "serve.stats.requests" && *value == 2));
        client.call(&Request::Shutdown).unwrap();
        let report = handle.join().unwrap().unwrap();
        assert_eq!(report.requests, 0, "stats never reaches the queue");
    }

    #[test]
    fn unknown_suspects_degrade_one_response() {
        let (addr, handle) = boot(ServeConfig::default(), Obs::recording());
        let mut client = Client::connect(addr).unwrap();
        // The artifact read fails first unless the path resolves, so
        // point at a real file that simply is not a golden artifact.
        let response = client
            .call(&Request::Score {
                golden: env!("CARGO_MANIFEST_DIR").to_string() + "/Cargo.toml",
                suspect: "ht2".into(),
                model: None,
                request: None,
            })
            .unwrap();
        assert!(matches!(response, Response::Error { .. }), "{response:?}");
        client.call(&Request::Shutdown).unwrap();
        let report = handle.join().unwrap().unwrap();
        assert_eq!(report.responses_error, 1);
        assert_eq!(report.responses_ok, 0);
    }
}
