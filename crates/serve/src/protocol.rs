//! The line-oriented serve protocol: the htd-store framing discipline
//! (versioned header, strict never-panic parse, FNV-1a checksum trailer)
//! applied to requests and responses on a socket.
//!
//! Every frame looks like an artifact:
//!
//! ```text
//! htdserve 1 <verb>
//! <verb-specific body lines>
//! checksum fnv1a64 <16 lowercase hex digits>
//! ```
//!
//! Request verbs: `score` (body: `golden "<path>"`, `suspect <token>`,
//! then optional `model "<path>"` and `request "<id>"` lines in that
//! order), `ping`, `stats` and `shutdown` (empty bodies). Response
//! verbs: `ok` (empty for ping/shutdown; for a score, `plan
//! fnv1a64:<digest>`, `suspect <token>`, an optional echoed `request
//! "<id>"`, `report <n>` and then `n` embedded report lines), `stats`
//! (body: `uptime_ns <n>`, `queue <n>`, `manifest <n>` and then `n`
//! embedded lines of the live run-manifest JSON), `busy` (body: `depth
//! <n>` — the queue shed this request), and `error` (body: `reason
//! "<text>"` — this request failed, the server lives on).
//!
//! The optional lines follow the wire-compatibility discipline the
//! `model` line set: absent when unset, so a peer that predates them
//! emits and accepts byte-identical frames. In particular a response
//! carries a `request` line only when the *request* carried one — a
//! server-assigned id tags the server's own trace, it never surprises
//! an old client on the wire.
//!
//! Embedded report lines are prefixed with `|` so the frame reader's
//! trailer scan can never mistake the *report's* own checksum trailer
//! for the frame's. Stripped of that prefix, the embedded lines are
//! byte-for-byte the store text `htd score --report` writes, so a client
//! can save them to disk and feed them straight to `htd report`/`htd
//! diff`.
//!
//! Parsing is strict and total: every malformed frame yields a
//! [`ProtocolError`] carrying the 1-based offending line; the protocol
//! layer never panics on bad input. The checksum covers every byte
//! before the trailer line, exactly like the store format.

use std::io::{BufRead, Read};

use htd_store::{fnv1a64, quote, unquote};

/// Leading token of every frame's first line.
pub const MAGIC: &str = "htdserve";

/// Protocol version written and accepted by this build. Bump on any
/// incompatible grammar change; peers reject every other version.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on a single frame's size. A request is a handful of
/// lines and a response embeds at most one report, so anything past
/// this is a framing bug or abuse, not data.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Prefix shielding embedded report lines from the trailer scan.
const EMBED_PREFIX: char = '|';

/// A malformed frame: the 1-based offending line and what was wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// 1-based line of the violation (0 when the frame as a whole is
    /// unusable, e.g. missing its trailing newline).
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl ProtocolError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ProtocolError {
            line,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ProtocolError {}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Score one suspect against the golden artifact at a server-side
    /// path. The suspect token vocabulary is
    /// [`htd_trojan::TrojanSpec::from_token`]'s.
    Score {
        /// Server-side path of the golden artifact.
        golden: String,
        /// Suspect token (`ht1`, `ht2`, `ht-seq`, …).
        suspect: String,
        /// Server-side path of an optional `classifier` artifact; when
        /// present the fused column is the trained logistic model's
        /// verdict, exactly as `htd score --model` computes offline.
        /// Absent on the wire when `None`, so pre-classifier clients
        /// and servers interoperate unchanged.
        model: Option<String>,
        /// Client-chosen request id, attached to every span the server
        /// opens for this request and echoed on the response. Absent on
        /// the wire when `None` (the pre-tracing format); the server
        /// then assigns its own id for its trace and echoes nothing.
        request: Option<String>,
    },
    /// Liveness probe; answered with an empty `ok`.
    Ping,
    /// Ask for the server's live introspection snapshot; answered with
    /// [`Response::Stats`] inline by the handler — it never touches the
    /// scoring queue.
    Stats,
    /// Ask the server to stop accepting and drain its queue.
    Shutdown,
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A scored suspect: the plan digest (the serve wire/shard key),
    /// the echoed suspect token, and the embedded one-row report — the
    /// exact store text `htd score --report` writes for the same
    /// (artifact, suspect) pair.
    Score {
        /// `fnv1a64:<16 hex>` digest of the golden artifact's plan.
        plan: String,
        /// The request's suspect token, echoed.
        suspect: String,
        /// The request id, echoed — `Some` exactly when the request
        /// carried one, so pre-tracing peers see unchanged bytes.
        request: Option<String>,
        /// Full store text of the one-row report (trailing newline
        /// included).
        report: String,
    },
    /// Empty `ok` (answer to ping and shutdown).
    Done,
    /// The live introspection snapshot ([`Request::Stats`]).
    Stats {
        /// Nanoseconds this server has been up.
        uptime_ns: u64,
        /// Score requests waiting in the queue right now.
        queue: u64,
        /// The live [`htd_obs::RunManifest`] pretty JSON (trailing
        /// newline included) — counters, timings, cache hit rates,
        /// exactly what a `--manifest` snapshot would write.
        manifest: String,
    },
    /// The bounded queue was full; the request was shed, not queued.
    Busy {
        /// The server's configured queue depth.
        depth: u64,
    },
    /// This request failed (malformed frame, unknown suspect, unloadable
    /// artifact, degraded-beyond-repair acquisition, …). The connection
    /// and the server both live on.
    Error {
        /// Human-readable failure description.
        reason: String,
    },
}

/// Frames a body under a verb: header line, body, checksum trailer.
fn frame(verb: &str, body: &str) -> String {
    let mut text = format!("{MAGIC} {PROTOCOL_VERSION} {verb}\n{body}");
    let sum = fnv1a64(text.as_bytes());
    text.push_str(&format!("checksum fnv1a64 {sum:016x}\n"));
    text
}

/// Verifies framing (trailing newline, checksum trailer, header
/// magic/version) and returns the verb plus the body lines.
fn unframe(text: &str) -> Result<(&str, Vec<&str>), ProtocolError> {
    if !text.ends_with('\n') {
        return Err(ProtocolError::new(
            0,
            "truncated frame: missing trailing newline",
        ));
    }
    let lines: Vec<&str> = text[..text.len() - 1].split('\n').collect();
    let last_lineno = lines.len();
    let Some((&trailer, head)) = lines.split_last() else {
        return Err(ProtocolError::new(0, "empty frame"));
    };
    let declared = trailer
        .strip_prefix("checksum fnv1a64 ")
        .ok_or_else(|| ProtocolError::new(last_lineno, "missing `checksum fnv1a64` trailer"))?;
    // Lowercase-only, like the store: a case flip in the (uncovered)
    // trailer line must not go unnoticed.
    let declared = (declared.len() == 16
        && declared
            .bytes()
            .all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')))
    .then(|| u64::from_str_radix(declared, 16).ok())
    .flatten()
    .ok_or_else(|| ProtocolError::new(last_lineno, "checksum must be 16 lowercase hex digits"))?;
    let covered = &text[..text.len() - trailer.len() - 1];
    let actual = fnv1a64(covered.as_bytes());
    if actual != declared {
        return Err(ProtocolError::new(
            last_lineno,
            format!(
                "checksum mismatch: frame hashes to {actual:016x}, trailer says {declared:016x}"
            ),
        ));
    }
    let Some((&header, body)) = head.split_first() else {
        return Err(ProtocolError::new(0, "frame has no header line"));
    };
    let mut words = header.split(' ');
    if words.next() != Some(MAGIC) {
        return Err(ProtocolError::new(
            1,
            format!("header must start `{MAGIC}`"),
        ));
    }
    match words.next().and_then(|v| v.parse::<u32>().ok()) {
        Some(PROTOCOL_VERSION) => {}
        Some(other) => {
            return Err(ProtocolError::new(
                1,
                format!(
                    "unsupported protocol version {other} (this build speaks {PROTOCOL_VERSION})"
                ),
            ))
        }
        None => return Err(ProtocolError::new(1, "header carries no protocol version")),
    }
    let verb = words
        .next()
        .ok_or_else(|| ProtocolError::new(1, "header carries no verb"))?;
    if words.next().is_some() {
        return Err(ProtocolError::new(1, "trailing tokens after the verb"));
    }
    Ok((verb, body.to_vec()))
}

/// A `key value-rest` body line split at the first space; errors when the
/// key does not match.
fn keyed<'a>(lines: &[&'a str], at: usize, key: &str) -> Result<&'a str, ProtocolError> {
    let lineno = at + 2; // header is line 1, body starts at line 2
    let line = lines
        .get(at)
        .ok_or_else(|| ProtocolError::new(lineno, format!("missing `{key}` line")))?;
    line.strip_prefix(key)
        .and_then(|rest| rest.strip_prefix(' '))
        .ok_or_else(|| ProtocolError::new(lineno, format!("expected `{key} <value>`")))
}

/// Parses a `request "<id>"` body line at `at`: a quoted, non-empty id
/// of at most 128 bytes (it rides into span tags and trace args, so an
/// unbounded id is abuse, not data).
fn parse_request_id(lines: &[&str], at: usize) -> Result<String, ProtocolError> {
    let lineno = at + 2;
    let value = keyed(lines, at, "request")?;
    let (request, rest) =
        unquote(value).ok_or_else(|| ProtocolError::new(lineno, "expected `request \"<id>\"`"))?;
    if !rest.is_empty() {
        return Err(ProtocolError::new(lineno, "trailing tokens after the id"));
    }
    if request.is_empty() || request.len() > 128 {
        return Err(ProtocolError::new(
            lineno,
            "request id must be 1..=128 bytes",
        ));
    }
    Ok(request)
}

/// Appends `text`'s lines to `body`, each shielded by [`EMBED_PREFIX`],
/// under a `<key> <line count>` header line.
fn embed(body: &mut String, key: &str, text: &str) {
    let lines: Vec<&str> = text.trim_end_matches('\n').split('\n').collect();
    body.push_str(&format!("{key} {}\n", lines.len()));
    for line in lines {
        body.push(EMBED_PREFIX);
        body.push_str(line);
        body.push('\n');
    }
}

/// Parses a `<key> <n>` header at `at` plus its `n` embedded lines,
/// returning the reassembled text (trailing newline included).
fn unembed(lines: &[&str], at: usize, key: &str) -> Result<String, ProtocolError> {
    let lineno = at + 2;
    let count: usize = keyed(lines, at, key)?
        .parse()
        .map_err(|_| ProtocolError::new(lineno, format!("expected `{key} <line count>`")))?;
    if lines.len() != at + 1 + count {
        return Err(ProtocolError::new(
            lineno,
            format!(
                "{key} declares {count} line(s) but the body carries {}",
                lines.len().saturating_sub(at + 1)
            ),
        ));
    }
    let mut text = String::new();
    for (i, line) in lines[at + 1..].iter().enumerate() {
        let line = line.strip_prefix(EMBED_PREFIX).ok_or_else(|| {
            ProtocolError::new(
                at + i + 3,
                format!("embedded {key} lines must start with `{EMBED_PREFIX}`"),
            )
        })?;
        text.push_str(line);
        text.push('\n');
    }
    Ok(text)
}

/// Rejects trailing body lines a verb does not define.
fn no_more(lines: &[&str], from: usize) -> Result<(), ProtocolError> {
    if lines.len() > from {
        return Err(ProtocolError::new(
            from + 2,
            format!("unexpected body line {:?}", lines[from]),
        ));
    }
    Ok(())
}

impl Request {
    /// Renders this request as a framed wire text.
    pub fn to_text(&self) -> String {
        match self {
            Request::Score {
                golden,
                suspect,
                model,
                request,
            } => {
                let mut body = format!("golden {}\nsuspect {suspect}\n", quote(golden));
                if let Some(model) = model {
                    body.push_str(&format!("model {}\n", quote(model)));
                }
                if let Some(request) = request {
                    body.push_str(&format!("request {}\n", quote(request)));
                }
                frame("score", &body)
            }
            Request::Ping => frame("ping", ""),
            Request::Stats => frame("stats", ""),
            Request::Shutdown => frame("shutdown", ""),
        }
    }

    /// Parses a framed request.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] on any framing, checksum, version, verb or
    /// grammar violation.
    pub fn parse(text: &str) -> Result<Request, ProtocolError> {
        let (verb, body) = unframe(text)?;
        match verb {
            "score" => {
                let golden = keyed(&body, 0, "golden")?;
                let (golden, rest) = unquote(golden)
                    .ok_or_else(|| ProtocolError::new(2, "expected `golden \"<path>\"`"))?;
                if !rest.is_empty() {
                    return Err(ProtocolError::new(2, "trailing tokens after the path"));
                }
                let suspect = keyed(&body, 1, "suspect")?;
                if suspect.is_empty() || suspect.contains(' ') {
                    return Err(ProtocolError::new(3, "suspect must be a single token"));
                }
                // Optional `model "<path>"` then `request "<id>"` lines,
                // in that order: frames without them are exactly the
                // older wire formats.
                let mut at = 2;
                let model = match body.get(at) {
                    Some(line) if line.starts_with("model ") || *line == "model" => {
                        let model = keyed(&body, at, "model")?;
                        let (model, rest) = unquote(model).ok_or_else(|| {
                            ProtocolError::new(at + 2, "expected `model \"<path>\"`")
                        })?;
                        if !rest.is_empty() {
                            return Err(ProtocolError::new(
                                at + 2,
                                "trailing tokens after the path",
                            ));
                        }
                        at += 1;
                        Some(model)
                    }
                    _ => None,
                };
                let request = match body.get(at) {
                    Some(line) if line.starts_with("request ") || *line == "request" => {
                        let request = parse_request_id(&body, at)?;
                        at += 1;
                        Some(request)
                    }
                    _ => None,
                };
                no_more(&body, at)?;
                Ok(Request::Score {
                    golden,
                    suspect: suspect.to_string(),
                    model,
                    request,
                })
            }
            "ping" => {
                no_more(&body, 0)?;
                Ok(Request::Ping)
            }
            "stats" => {
                no_more(&body, 0)?;
                Ok(Request::Stats)
            }
            "shutdown" => {
                no_more(&body, 0)?;
                Ok(Request::Shutdown)
            }
            other => Err(ProtocolError::new(
                1,
                format!("unknown request verb `{other}` (score, ping, stats, shutdown)"),
            )),
        }
    }
}

impl Response {
    /// Renders this response as a framed wire text.
    pub fn to_text(&self) -> String {
        match self {
            Response::Score {
                plan,
                suspect,
                request,
                report,
            } => {
                let mut body = format!("plan {plan}\nsuspect {suspect}\n");
                if let Some(request) = request {
                    body.push_str(&format!("request {}\n", quote(request)));
                }
                embed(&mut body, "report", report);
                frame("ok", &body)
            }
            Response::Done => frame("ok", ""),
            Response::Stats {
                uptime_ns,
                queue,
                manifest,
            } => {
                let mut body = format!("uptime_ns {uptime_ns}\nqueue {queue}\n");
                embed(&mut body, "manifest", manifest);
                frame("stats", &body)
            }
            Response::Busy { depth } => frame("busy", &format!("depth {depth}\n")),
            Response::Error { reason } => frame("error", &format!("reason {}\n", quote(reason))),
        }
    }

    /// Parses a framed response.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] on any framing, checksum, version, verb or
    /// grammar violation.
    pub fn parse(text: &str) -> Result<Response, ProtocolError> {
        let (verb, body) = unframe(text)?;
        match verb {
            "ok" if body.is_empty() => Ok(Response::Done),
            "ok" => {
                let plan = keyed(&body, 0, "plan")?;
                if plan.strip_prefix("fnv1a64:").is_none_or(|hex| {
                    hex.len() != 16 || !hex.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f'))
                }) {
                    return Err(ProtocolError::new(2, "expected `plan fnv1a64:<16 hex>`"));
                }
                let suspect = keyed(&body, 1, "suspect")?;
                // Optional echoed `request "<id>"` line before the
                // report, present exactly when the request carried one.
                let mut at = 2;
                let request = match body.get(at) {
                    Some(line) if line.starts_with("request ") || *line == "request" => {
                        let request = parse_request_id(&body, at)?;
                        at += 1;
                        Some(request)
                    }
                    _ => None,
                };
                let report = unembed(&body, at, "report")?;
                Ok(Response::Score {
                    plan: plan.to_string(),
                    suspect: suspect.to_string(),
                    request,
                    report,
                })
            }
            "stats" => {
                let uptime_ns: u64 = keyed(&body, 0, "uptime_ns")?
                    .parse()
                    .map_err(|_| ProtocolError::new(2, "expected `uptime_ns <n>`"))?;
                let queue: u64 = keyed(&body, 1, "queue")?
                    .parse()
                    .map_err(|_| ProtocolError::new(3, "expected `queue <n>`"))?;
                let manifest = unembed(&body, 2, "manifest")?;
                Ok(Response::Stats {
                    uptime_ns,
                    queue,
                    manifest,
                })
            }
            "busy" => {
                let depth = keyed(&body, 0, "depth")?
                    .parse()
                    .map_err(|_| ProtocolError::new(2, "expected `depth <n>`"))?;
                no_more(&body, 1)?;
                Ok(Response::Busy { depth })
            }
            "error" => {
                let reason = keyed(&body, 0, "reason")?;
                let (reason, rest) = unquote(reason)
                    .ok_or_else(|| ProtocolError::new(2, "expected `reason \"<text>\"`"))?;
                if !rest.is_empty() {
                    return Err(ProtocolError::new(2, "trailing tokens after the reason"));
                }
                no_more(&body, 1)?;
                Ok(Response::Error { reason })
            }
            other => Err(ProtocolError::new(
                1,
                format!("unknown response verb `{other}` (ok, stats, busy, error)"),
            )),
        }
    }
}

/// Reads one frame off a buffered stream: lines up to and including the
/// first line that opens with `checksum ` (embedded report lines are
/// `|`-prefixed, so a report's own trailer never terminates the frame
/// early). Returns `Ok(None)` on a clean end-of-stream at a frame
/// boundary.
///
/// # Errors
///
/// I/O errors from the stream; `UnexpectedEof` when the stream ends
/// mid-frame; `InvalidData` when a frame exceeds [`MAX_FRAME_BYTES`].
pub fn read_frame<R: BufRead>(reader: &mut R) -> std::io::Result<Option<String>> {
    let mut text = String::new();
    let mut line = String::new();
    loop {
        line.clear();
        // Bound the read so a hostile peer cannot balloon one "line".
        let n = reader
            .by_ref()
            .take((MAX_FRAME_BYTES + 1) as u64)
            .read_line(&mut line)?;
        if n == 0 {
            return if text.is_empty() {
                Ok(None)
            } else {
                Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "stream ended mid-frame",
                ))
            };
        }
        text.push_str(&line);
        if text.len() > MAX_FRAME_BYTES {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "frame exceeds the protocol size bound",
            ));
        }
        if line.starts_with("checksum ") && line.ends_with('\n') {
            return Ok(Some(text));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(request: &Request) {
        let text = request.to_text();
        assert_eq!(&Request::parse(&text).unwrap(), request, "{text}");
    }

    fn roundtrip_response(response: &Response) {
        let text = response.to_text();
        assert_eq!(&Response::parse(&text).unwrap(), response, "{text}");
    }

    #[test]
    fn every_frame_roundtrips() {
        roundtrip_request(&Request::Score {
            golden: "goldens/aes with space.htd".into(),
            suspect: "ht2".into(),
            model: None,
            request: None,
        });
        roundtrip_request(&Request::Score {
            golden: "goldens/aes.htd".into(),
            suspect: "ht2".into(),
            model: Some("models/learned with space.htd".into()),
            request: None,
        });
        roundtrip_request(&Request::Score {
            golden: "goldens/aes.htd".into(),
            suspect: "ht2".into(),
            model: None,
            request: Some("req with \"quotes\"".into()),
        });
        roundtrip_request(&Request::Score {
            golden: "goldens/aes.htd".into(),
            suspect: "ht2".into(),
            model: Some("models/learned.htd".into()),
            request: Some("client-7".into()),
        });
        roundtrip_request(&Request::Ping);
        roundtrip_request(&Request::Stats);
        roundtrip_request(&Request::Shutdown);
        roundtrip_response(&Response::Done);
        roundtrip_response(&Response::Busy { depth: 64 });
        roundtrip_response(&Response::Error {
            reason: "quoted \"reason\"\nwith a newline".into(),
        });
        // The embedded report carries its own checksum trailer; the
        // `|` prefix keeps it from terminating the outer frame.
        roundtrip_response(&Response::Score {
            plan: "fnv1a64:56beaff94e0d743d".into(),
            suspect: "ht2".into(),
            request: None,
            report: "htdstore 1 report\nrows 0\nchecksum fnv1a64 0123456789abcdef\n".into(),
        });
        roundtrip_response(&Response::Score {
            plan: "fnv1a64:56beaff94e0d743d".into(),
            suspect: "ht2".into(),
            request: Some("client-7".into()),
            report: "htdstore 1 report\nrows 0\nchecksum fnv1a64 0123456789abcdef\n".into(),
        });
        // The embedded manifest is JSON with `"..."` lines; the same
        // prefix discipline shields it.
        roundtrip_response(&Response::Stats {
            uptime_ns: 123_456_789,
            queue: 3,
            manifest: "{\n  \"manifest_version\": 1\n}\n".into(),
        });
    }

    #[test]
    fn model_line_is_optional_on_the_wire() {
        // A model-less request is byte-identical to the pre-classifier
        // wire format: no `model` line at all.
        let plain = Request::Score {
            golden: "g.htd".into(),
            suspect: "ht1".into(),
            model: None,
            request: None,
        }
        .to_text();
        assert!(!plain.contains("\nmodel "), "{plain:?}");
        assert!(!plain.contains("\nrequest "), "{plain:?}");
        // A present-but-malformed model line is rejected with its line.
        let bad = frame("score", "golden \"g\"\nsuspect ht1\nmodel unquoted\n");
        let err = Request::parse(&bad).unwrap_err();
        assert_eq!(err.line, 4);
    }

    #[test]
    fn request_id_lines_are_optional_and_ordered() {
        // An id-less response is byte-identical to the pre-tracing wire
        // format: no `request` line at all.
        let plain = Response::Score {
            plan: "fnv1a64:0000000000000000".into(),
            suspect: "ht1".into(),
            request: None,
            report: "row\n".into(),
        }
        .to_text();
        assert!(!plain.contains("\nrequest "), "{plain:?}");

        // `request` must follow `model`, not precede it: the grammar
        // has one canonical rendering per request.
        let swapped = frame(
            "score",
            "golden \"g\"\nsuspect ht1\nrequest \"r-1\"\nmodel \"m\"\n",
        );
        assert!(Request::parse(&swapped).is_err());

        // Ill-formed ids are rejected with their line, never accepted.
        for body in [
            "golden \"g\"\nsuspect ht1\nrequest unquoted\n",
            "golden \"g\"\nsuspect ht1\nrequest \"\"\n",
            &format!(
                "golden \"g\"\nsuspect ht1\nrequest \"{}\"\n",
                "x".repeat(129)
            ),
        ] {
            let err = Request::parse(&frame("score", body)).unwrap_err();
            assert_eq!(err.line, 4, "{body:?}");
        }

        // Duplicated optional lines do not parse.
        let doubled = frame(
            "score",
            "golden \"g\"\nsuspect ht1\nrequest \"a\"\nrequest \"b\"\n",
        );
        assert!(Request::parse(&doubled).is_err());
    }

    #[test]
    fn stats_frames_are_strict() {
        // Body lines on the request are rejected.
        let bad = frame("stats", "surprise\n");
        assert!(Request::parse(&bad).is_err());
        // A stats response with a lying line count is rejected.
        let lying = frame("stats", "uptime_ns 1\nqueue 0\nmanifest 2\n|{}\n");
        assert!(Response::parse(&lying).is_err());
        // Embedded lines missing the shield prefix are rejected.
        let unshielded = frame("stats", "uptime_ns 1\nqueue 0\nmanifest 1\n{}\n");
        assert!(Response::parse(&unshielded).is_err());
    }

    #[test]
    fn embedded_report_does_not_break_frame_reading() {
        let response = Response::Score {
            plan: "fnv1a64:0000000000000000".into(),
            suspect: "ht1".into(),
            request: None,
            report: "htdstore 1 report\nchecksum fnv1a64 0123456789abcdef\n".into(),
        };
        let wire = response.to_text();
        let mut reader = std::io::BufReader::new(wire.as_bytes());
        let frame = read_frame(&mut reader).unwrap().expect("one frame");
        assert_eq!(frame, wire);
        assert!(read_frame(&mut reader).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn malformed_frames_error_without_panicking() {
        let valid = Request::Ping.to_text();
        for (case, text) in [
            ("no trailing newline", valid.trim_end().to_string()),
            ("empty", String::new()),
            ("no trailer", "htdserve 1 ping\n".to_string()),
            (
                "bad checksum",
                valid.replace(
                    &valid[valid.len() - 17..valid.len() - 1],
                    "0000000000000000",
                ),
            ),
            ("uppercase checksum", valid.to_ascii_uppercase()),
            ("wrong magic", valid.replace(MAGIC, "htdstore")),
            ("future version", valid.replace("htdserve 1", "htdserve 2")),
        ] {
            let err = Request::parse(&text);
            assert!(err.is_err(), "{case}: {text:?} parsed");
        }
        // An unknown verb and a bad body still carry a line number.
        let unknown = frame("install-malware", "");
        let err = Request::parse(&unknown).unwrap_err();
        assert_eq!(err.line, 1);
        let bad_body = frame("score", "golden unquoted\nsuspect ht2\n");
        let err = Request::parse(&bad_body).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut wire = String::from("htdserve 1 score\n");
        while wire.len() <= MAX_FRAME_BYTES {
            wire.push_str("golden \"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx\"\n");
        }
        let mut reader = std::io::BufReader::new(wire.as_bytes());
        let err = read_frame(&mut reader).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
