//! File round-trips for zoo-generated trojaned netlists, plus the
//! corrupt-file error paths (`Error::Format` with `path:line` context).

use std::path::PathBuf;

use htd_core::{load_netlist, save_netlist, Design, Error, Lab};
use htd_trojan::ZooConfig;

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("htd-netlist-io-{}-{name}", std::process::id()))
}

#[test]
fn zoo_netlists_round_trip_through_files() {
    let lab = Lab::paper();
    let cfg = ZooConfig {
        sizes: vec![8],
        ..ZooConfig::default()
    };
    for spec in cfg.generate().expect("valid zoo grid") {
        let design = Design::infected(&lab, &spec).expect("inserts");
        let nl = design.aes().netlist();
        let path = temp_path(&format!("{}.htdnet", spec.name));
        save_netlist(&path, nl).expect("saves");
        let back = load_netlist(&path).expect("loads");
        assert_eq!(
            back.to_text(),
            nl.to_text(),
            "{}: round-trip not identical",
            spec.name
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn corrupt_line_reports_path_and_line() {
    let mut nl = htd_netlist::Netlist::new("tiny");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let x = nl.and2(a, b);
    nl.add_output("x", x).expect("adds output");

    let mut lines: Vec<String> = nl.to_text().lines().map(str::to_owned).collect();
    assert!(lines.len() > 3, "serialised netlist too short to corrupt");
    lines[2] = "garbage that is not a record".into();
    let path = temp_path("corrupt.htdnet");
    std::fs::write(&path, lines.join("\n")).expect("writes corrupt file");

    let err = load_netlist(&path).expect_err("corrupt file must not parse");
    match &err {
        Error::Format { path: p, line, .. } => {
            assert!(p.ends_with("corrupt.htdnet"), "path missing: {p}");
            assert_eq!(*line, 3, "wrong line attribution");
        }
        other => panic!("expected Error::Format, got {other:?}"),
    }
    assert!(
        err.to_string().contains("corrupt.htdnet:3:"),
        "display lacks path:line: {err}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn bad_header_is_attributed_to_line_one() {
    let path = temp_path("noheader.htdnet");
    std::fs::write(&path, "not a netlist at all\n").expect("writes bogus file");
    let err = load_netlist(&path).expect_err("bogus header must not parse");
    assert!(
        matches!(&err, Error::Format { line: 1, .. }),
        "expected line-1 Format error, got {err:?}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_file_reports_io_with_path() {
    let path = temp_path("does-not-exist.htdnet");
    let err = load_netlist(&path).expect_err("missing file must fail");
    assert!(matches!(&err, Error::Io { .. }), "got {err:?}");
    assert!(err.to_string().contains("does-not-exist.htdnet"), "{err}");
}
