//! Hardware trojan detection by delay and electromagnetic measurements —
//! a full reproduction of Ngo et al., DATE 2015.
//!
//! This crate ties the substrates together into the paper's methodology:
//!
//! * [`Lab`] — the virtual laboratory: device, technology, process
//!   variation statistics, power grid, EM/power measurement chains and
//!   acquisition parameters, all matching the paper's bench (Appendix A/B).
//! * [`Design`] — a placed golden or trojan-infected AES-128
//!   (Section II), and [`ProgrammedDevice`] — a design loaded onto one
//!   seeded virtual die, ready for timed simulation and side-channel
//!   acquisition.
//! * [`delay_detect`] — Section III: the clock-glitch delay fingerprint.
//!   A [`GoldenDelayModel`](delay_detect::GoldenDelayModel) characterises
//!   the golden device per (plaintext, key) pair; the
//!   [`DelayDetector`](delay_detect::DelayDetector) compares a device
//!   under test bit by bit via Eq. (4).
//! * [`em_detect`] — Sections IV and V: direct averaged-trace comparison
//!   on one die (Fig. 5), the inter-die deviation statistic
//!   `D = |trace − E_n(G)|` (Fig. 6), the sum-of-local-maxima metric, and
//!   false-negative-rate estimation (Eq. 5, the headline 26 %/17 %/5 %
//!   table).
//! * [`channel`] — the pluggable channel architecture: every detection
//!   channel ([`EmChannel`](channel::EmChannel),
//!   [`DelayChannel`](channel::DelayChannel),
//!   [`PowerChannel`](channel::PowerChannel)) implements the same
//!   acquire → characterize_golden → score stages, and
//!   [`fusion::multi_channel_experiment`] drives any set of them over one
//!   shared die population described by a [`CampaignPlan`].
//! * [`engine`] — the deterministic measurement engine: every campaign
//!   entry point has a `*_with(&Engine, …)` variant that fans pairs,
//!   repetitions and dies across a worker pool. Results are
//!   **bit-identical for every worker count** (noise streams derive from
//!   item indices, never from scheduling), and each
//!   [`ProgrammedDevice`]'s settle-time/activity caches remove duplicate
//!   simulation between characterisation and measurement.
//! * [`report`] — plain-text table rendering shared by the benches.
//!
//! Every fallible API returns the unified [`Error`]; library code never
//! panics on fallible paths.
//!
//! # Quickstart
//!
//! ```
//! use htd_core::prelude::*;
//!
//! let lab = Lab::paper();
//! let golden = Design::golden(&lab)?;
//! let infected = Design::infected(&lab, &TrojanSpec::ht3())?;
//!
//! // Same die, same plaintext, averaged traces — the paper's Fig. 5.
//! let die = lab.fabricate_die(1);
//! let pt = [0x42u8; 16];
//! let key = [0x0Fu8; 16];
//! let g = ProgrammedDevice::new(&lab, &golden, &die).acquire_em_trace(&pt, &key, 7)?;
//! let t = ProgrammedDevice::new(&lab, &infected, &die).acquire_em_trace(&pt, &key, 8)?;
//! let diff = g.abs_diff(&t);
//! assert!(diff.peak() > 0.0);
//! # Ok::<(), htd_core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod design;
mod lab;

pub mod campaign;
pub mod channel;
pub mod delay_detect;
pub mod em_detect;
pub mod engine;
pub mod error;
pub mod fusion;
pub mod netlist_io;
pub mod reffree;
pub mod report;
pub mod resilience;

pub use campaign::CampaignPlan;
pub use design::{CacheStats, Design, ProgrammedDevice};
pub use engine::Engine;
pub use error::Error;
pub use lab::Lab;
pub use netlist_io::{load_netlist, save_netlist};

/// Convenient re-exports of the whole suite's primary types.
pub mod prelude {
    pub use crate::channel::{Channel, ChannelSpec, DelayChannel, EmChannel, PowerChannel};
    pub use crate::delay_detect::{DelayDetector, DelayEvidence, GoldenDelayModel};
    pub use crate::em_detect::{EmDetector, EmGoldenModel, FnRateReport};
    pub use crate::fusion::{
        masked_feature_rows, ChannelResult, ChannelState, GoldenCharacterization,
        MultiChannelReport, MultiChannelRow, ScoredCampaign, ScoredChannel, ScoredDesign,
        ScoringSession, SpecScore,
    };
    pub use crate::reffree::{
        ReferenceFreeCharacterization, ReferenceFreeFit, ReferenceFreeSession, ReferenceFreeState,
    };
    pub use crate::resilience::{ChannelHealth, RetryPolicy};
    pub use crate::Engine;
    pub use crate::{CampaignPlan, Design, Error, Lab, ProgrammedDevice};
    pub use htd_aes::AesNetlist;
    pub use htd_em::Trace;
    pub use htd_fabric::{Device, DeviceConfig, Technology, VariationModel};
    pub use htd_faults::{FaultPlan, FaultSite};
    pub use htd_trojan::TrojanSpec;
}
