//! Netlist file I/O with path-and-line error context.
//!
//! Thin wrappers over the `htd-netlist` text serdes that attach the file
//! path (and the 1-based offending line, where known) to every failure,
//! so campaign tooling reports `path:line: reason` instead of a bare
//! parse error.

use std::fs;
use std::path::Path;

use htd_netlist::serdes::ParseError;
use htd_netlist::Netlist;

use crate::error::Error;

/// Writes `netlist` to `path` in the canonical `htdnet` text format.
///
/// # Errors
///
/// [`Error::Io`] carrying the path on any filesystem failure.
pub fn save_netlist(path: impl AsRef<Path>, netlist: &Netlist) -> Result<(), Error> {
    let path = path.as_ref();
    fs::write(path, netlist.to_text()).map_err(|e| Error::io(path, e))
}

/// Reads an `htdnet` text file back into a [`Netlist`].
///
/// # Errors
///
/// [`Error::Io`] carrying the path on filesystem failures and
/// [`Error::Format`] with `path`, 1-based `line` and a reason on parse
/// failures (a bad header is attributed to line 1).
pub fn load_netlist(path: impl AsRef<Path>) -> Result<Netlist, Error> {
    let path = path.as_ref();
    let text = fs::read_to_string(path).map_err(|e| Error::io(path, e))?;
    let label = path.display().to_string();
    Netlist::from_text(&text).map_err(|e| match e {
        ParseError::BadHeader => Error::format(label, 1, "missing or malformed `htdnet` header"),
        ParseError::BadLine { line, reason } => Error::format(label, line, reason),
        ParseError::NonCanonicalIds { line } => {
            Error::format(label, line, "ids must appear densely in creation order")
        }
        other => Error::format(label, 0, other.to_string()),
    })
}
