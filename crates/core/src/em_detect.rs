//! EM-based HT detection (paper Sections IV and V).
//!
//! Two regimes:
//!
//! * **Same die** (Section IV, Fig. 5): golden and infected bitstreams are
//!   loaded into *the same* FPGA, so process variation cancels and the
//!   averaged traces can be compared directly sample by sample.
//! * **Across dies** (Section V, Fig. 6–7): genuine and suspect devices
//!   are distinct chips. The reference is the golden population mean
//!   `E_n(G)`; the decision statistic is the **sum of the local maxima**
//!   of `D = |trace − E_n(G)|`, and inter-die process variation sets the
//!   false-positive/false-negative trade-off of Eq. (5).

use htd_em::Trace;
use htd_fabric::DieVariation;
use htd_stats::peaks::sum_of_local_maxima;
use htd_stats::Gaussian;
use htd_trojan::TrojanSpec;

use crate::campaign::CampaignPlan;
use crate::channel::{trace_channel, Calibration, GoldenReference};
use crate::error::Error;
use crate::fusion::multi_channel_experiment_with;
use crate::{Design, Engine, Lab, ProgrammedDevice};

/// Which measurement chain an experiment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SideChannel {
    /// The near-field EM probe (the paper's method).
    Em,
    /// The global power measurement (baseline for the resolution claim).
    Power,
}

/// Scalarisation of a deviation trace `D = |trace − reference|` into a
/// decision statistic. The paper uses [`TraceMetric::SumOfLocalMaxima`];
/// the alternatives exist for the `ablation_metric` bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMetric {
    /// The paper's metric: sum of the local maxima of `D` (Section V-B).
    #[default]
    SumOfLocalMaxima,
    /// The single largest deviation sample.
    MaxPoint,
    /// The L1 norm (sum of all deviation samples).
    SumAll,
    /// The L2 norm of the deviation trace.
    L2Norm,
}

impl TraceMetric {
    /// Evaluates the metric on a deviation trace's samples.
    pub fn evaluate(self, deviation: &[f64]) -> f64 {
        match self {
            TraceMetric::SumOfLocalMaxima => sum_of_local_maxima(deviation),
            TraceMetric::MaxPoint => deviation.iter().cloned().fold(0.0, f64::max),
            TraceMetric::SumAll => deviation.iter().sum(),
            TraceMetric::L2Norm => deviation.iter().map(|d| d * d).sum::<f64>().sqrt(),
        }
    }

    /// The metric's stable serialization token (used by the artifact
    /// store and the `htd` CLI), the inverse of
    /// [`TraceMetric::from_token`].
    pub fn token(self) -> &'static str {
        match self {
            TraceMetric::SumOfLocalMaxima => "solm",
            TraceMetric::MaxPoint => "max",
            TraceMetric::SumAll => "sum",
            TraceMetric::L2Norm => "l2",
        }
    }

    /// Parses a [`TraceMetric::token`]. Returns `None` for unknown
    /// tokens.
    pub fn from_token(token: &str) -> Option<Self> {
        match token {
            "solm" => Some(TraceMetric::SumOfLocalMaxima),
            "max" => Some(TraceMetric::MaxPoint),
            "sum" => Some(TraceMetric::SumAll),
            "l2" => Some(TraceMetric::L2Norm),
            _ => None,
        }
    }
}

/// Result of the same-die direct comparison (Fig. 5).
#[derive(Debug, Clone)]
pub struct DirectComparison {
    /// Largest |genuine − suspect| sample difference.
    pub max_abs_diff: f64,
    /// Largest |genuine₁ − genuine₂| difference (measurement/setup noise
    /// floor, from two independent golden acquisitions).
    pub noise_floor: f64,
    /// Sample index of the largest difference.
    pub argmax: usize,
    /// Verdict: the suspect deviates significantly above the noise floor.
    pub infected: bool,
}

/// Compares a suspect trace against two independent golden acquisitions of
/// the same die and plaintext (the paper's Fig. 5 procedure: the repeated
/// golden capture bounds the setup noise).
pub fn direct_compare(golden1: &Trace, golden2: &Trace, suspect: &Trace) -> DirectComparison {
    let noise_floor = golden1.abs_diff(golden2).peak();
    let d = golden1.abs_diff(suspect);
    let (argmax, max_abs_diff) =
        d.samples()
            .iter()
            .enumerate()
            .fold(
                (0usize, 0.0f64),
                |(ai, am), (i, &v)| {
                    if v > am {
                        (i, v)
                    } else {
                        (ai, am)
                    }
                },
            );
    DirectComparison {
        max_abs_diff,
        noise_floor,
        argmax,
        infected: max_abs_diff > 3.0 * noise_floor.max(1e-12),
    }
}

/// The golden population model for inter-die detection: the mean trace
/// `E_n(G)` and the golden metric distribution.
#[derive(Debug, Clone)]
pub struct EmGoldenModel {
    /// The golden mean trace `E_n(G)`.
    pub mean_trace: Trace,
    /// Sum-of-local-maxima metric of each golden die's deviation from the
    /// mean.
    pub golden_metrics: Vec<f64>,
    /// Gaussian fit of the golden metric population.
    pub gaussian: Gaussian,
}

/// Characterises the golden population over a batch of dies: one averaged
/// acquisition per die with a fixed (but arbitrary) plaintext, as in
/// Section V-A.
///
/// # Errors
///
/// [`Error::NotEnoughDies`] for fewer than two dies (the population
/// spread is undefined); [`Error::DegeneratePopulation`] if the golden
/// metrics have no spread; simulation failures otherwise.
pub fn characterize_em_golden(
    lab: &Lab,
    golden: &Design,
    dies: &[DieVariation],
    chain: SideChannel,
    pt: &[u8; 16],
    key: &[u8; 16],
    seed: u64,
) -> Result<EmGoldenModel, Error> {
    characterize_em_golden_with(
        &Engine::default(),
        lab,
        golden,
        dies,
        chain,
        TraceMetric::SumOfLocalMaxima,
        pt,
        key,
        seed,
    )
}

/// [`characterize_em_golden`] with an explicit [`TraceMetric`] and
/// [`Engine`]. Runs the [`Channel`](crate::channel::Channel) stages of
/// the chain's trace channel: acquisitions fan across the engine's
/// workers with index-derived seeds, so the model is bit-identical for
/// every worker count.
///
/// # Errors
///
/// See [`characterize_em_golden`].
#[allow(clippy::too_many_arguments)]
pub fn characterize_em_golden_with(
    engine: &Engine,
    lab: &Lab,
    golden: &Design,
    dies: &[DieVariation],
    chain: SideChannel,
    metric: TraceMetric,
    pt: &[u8; 16],
    key: &[u8; 16],
    seed: u64,
) -> Result<EmGoldenModel, Error> {
    if dies.len() < 2 {
        return Err(Error::NotEnoughDies {
            got: dies.len(),
            need: 2,
        });
    }
    let plan = CampaignPlan::traces(dies.len(), *pt, *key, seed);
    let channel = trace_channel(chain, metric);
    let calibration = Calibration::None;
    let acquisitions = engine
        .map(dies, |j, die| {
            let dev = ProgrammedDevice::new(lab, golden, die);
            channel.acquire(
                &Engine::serial(),
                &dev,
                &plan,
                &calibration,
                plan.die_seed(j),
            )
        })
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
    let reference = channel.characterize_golden(&acquisitions, &calibration)?;
    let golden_metrics = acquisitions
        .iter()
        .map(|a| channel.score(a, &reference, &calibration))
        .collect::<Result<Vec<f64>, _>>()?;
    let gaussian =
        Gaussian::fit(&golden_metrics).map_err(|source| Error::DegeneratePopulation {
            channel: channel.name().to_string(),
            samples: golden_metrics.len(),
            source,
        })?;
    let mean_trace = match reference {
        GoldenReference::MeanTrace(t) => t,
        GoldenReference::MeanMatrix(_) => {
            return Err(Error::ChannelShapeMismatch {
                channel: channel.name().to_string(),
                expected: "mean-trace reference",
            })
        }
    };
    Ok(EmGoldenModel {
        mean_trace,
        golden_metrics,
        gaussian,
    })
}

/// The inter-die EM detector: golden model plus decision threshold on the
/// sum-of-local-maxima metric.
#[derive(Debug, Clone)]
pub struct EmDetector {
    model: EmGoldenModel,
    threshold: f64,
}

impl EmDetector {
    /// Calibrates the threshold for a target false-positive rate on the
    /// golden population (only golden devices are needed — the realistic
    /// deployment).
    ///
    /// # Errors
    ///
    /// [`Error::ProbabilityOutOfRange`] if `false_positive_rate` is
    /// outside `(0, 1)`.
    pub fn with_false_positive_rate(
        model: EmGoldenModel,
        false_positive_rate: f64,
    ) -> Result<Self, Error> {
        if !(false_positive_rate > 0.0 && false_positive_rate < 1.0) {
            return Err(Error::ProbabilityOutOfRange {
                value: false_positive_rate,
            });
        }
        let threshold = model.gaussian.quantile(1.0 - false_positive_rate)?;
        Ok(EmDetector { model, threshold })
    }

    /// The golden model.
    pub fn model(&self) -> &EmGoldenModel {
        &self.model
    }

    /// The decision threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The paper's metric for one suspect trace: the sum of local maxima
    /// of its deviation from the golden mean.
    pub fn metric(&self, trace: &Trace) -> f64 {
        sum_of_local_maxima(trace.abs_diff(&self.model.mean_trace).samples())
    }

    /// Classifies one suspect trace.
    pub fn is_infected(&self, trace: &Trace) -> bool {
        self.metric(trace) > self.threshold
    }
}

/// One row of the paper's headline table: a trojan size vs its
/// false-negative rate.
#[derive(Debug, Clone)]
pub struct FnRateRow {
    /// Trojan name.
    pub name: String,
    /// Trojan area as a fraction of the AES design (the paper's
    /// 0.5/1.0/1.7 %).
    pub size_fraction: f64,
    /// Metric offset µ = mean(infected) − mean(golden).
    pub mu: f64,
    /// Pooled metric standard deviation σ.
    pub sigma: f64,
    /// Eq. (5): analytic equal error rate from the fitted Gaussians.
    pub analytic_fn_rate: f64,
    /// Empirical false-negative rate at the midpoint threshold.
    pub empirical_fn_rate: f64,
    /// Empirical false-positive rate at the midpoint threshold.
    pub empirical_fp_rate: f64,
}

impl FnRateRow {
    /// Detection probability `1 − P_fn` (analytic).
    pub fn detection_probability(&self) -> f64 {
        1.0 - self.analytic_fn_rate
    }
}

/// The full Section V experiment result.
#[derive(Debug, Clone)]
pub struct FnRateReport {
    /// One row per trojan size, in the order supplied.
    pub rows: Vec<FnRateRow>,
    /// Number of dies in the population.
    pub n_dies: usize,
}

/// Runs the Section V experiment: a batch of `n_dies` dies, the golden
/// design and each infected design measured once per die, the
/// sum-of-local-maxima metric computed against `E_n(G)`, and Gaussian
/// FN/FP rates per Eq. (5).
///
/// The paper uses `n_dies = 8`; its "perspectives" section proposes
/// n ≫ 8, which this function supports directly (see the
/// `extension_many_dies` bench).
#[allow(clippy::too_many_arguments)]
pub fn fn_rate_experiment(
    lab: &Lab,
    specs: &[TrojanSpec],
    chain: SideChannel,
    n_dies: usize,
    pt: &[u8; 16],
    key: &[u8; 16],
    seed: u64,
) -> Result<FnRateReport, Error> {
    fn_rate_experiment_with_metric(
        &Engine::default(),
        lab,
        specs,
        chain,
        TraceMetric::SumOfLocalMaxima,
        n_dies,
        pt,
        key,
        seed,
    )
}

/// [`fn_rate_experiment`] with an explicit [`TraceMetric`] (used by the
/// metric ablation) and [`Engine`]. A thin wrapper over the generic
/// multi-channel runner with a single trace channel: each die keeps its
/// plan-derived seed, so the report is bit-identical for every worker
/// count.
///
/// # Errors
///
/// Propagates design construction, simulation and fitting failures.
#[allow(clippy::too_many_arguments)]
pub fn fn_rate_experiment_with_metric(
    engine: &Engine,
    lab: &Lab,
    specs: &[TrojanSpec],
    chain: SideChannel,
    metric: TraceMetric,
    n_dies: usize,
    pt: &[u8; 16],
    key: &[u8; 16],
    seed: u64,
) -> Result<FnRateReport, Error> {
    let plan = CampaignPlan::traces(n_dies, *pt, *key, seed);
    let channel = trace_channel(chain, metric);
    let report = multi_channel_experiment_with(engine, lab, &plan, specs, &[&*channel])?;
    let mut rows = Vec::with_capacity(report.rows.len());
    for row in report.rows {
        let result = row
            .channels
            .into_iter()
            .next()
            .ok_or(Error::EmptyPopulation {
                what: "per-channel results",
            })?;
        rows.push(FnRateRow {
            name: row.name,
            size_fraction: row.size_fraction,
            mu: result.mu,
            sigma: result.sigma,
            analytic_fn_rate: result.analytic_fn_rate,
            empirical_fn_rate: result.empirical_fn_rate,
            empirical_fp_rate: result.empirical_fp_rate,
        });
    }
    Ok(FnRateReport { rows, n_dies })
}

/// Result of a TVLA-style pointwise Welch t-test between two trace
/// populations (see [`ttest_compare`]).
#[derive(Debug, Clone)]
pub struct TtestComparison {
    /// |t| statistic per sample.
    pub t_abs: Vec<f64>,
    /// The largest |t| value.
    pub max_t: f64,
    /// Sample index of the largest |t|.
    pub argmax: usize,
    /// Number of samples whose |t| exceeds the TVLA threshold of 4.5.
    pub leaking_samples: usize,
    /// Verdict: any sample beyond the threshold.
    pub infected: bool,
}

/// The classical TVLA threshold on |t|.
pub const TVLA_THRESHOLD: f64 = 4.5;

/// Pointwise Welch t-test between two populations of *raw* (low-averaged)
/// traces — the standard side-channel leakage-assessment methodology,
/// provided as an alternative same-die detector to the paper's direct
/// comparison of ×1000-averaged traces. Samples with degenerate statistics
/// (zero variance in both populations) are skipped.
///
/// # Errors
///
/// [`Error::EmptyPopulation`] if either population is empty;
/// [`Error::TraceLengthMismatch`] if any trace's length differs from the
/// first genuine trace's.
pub fn ttest_compare(genuine: &[Trace], suspect: &[Trace]) -> Result<TtestComparison, Error> {
    let first = genuine.first().ok_or(Error::EmptyPopulation {
        what: "genuine trace population",
    })?;
    if suspect.is_empty() {
        return Err(Error::EmptyPopulation {
            what: "suspect trace population",
        });
    }
    let n = first.len();
    for t in genuine.iter().chain(suspect) {
        if t.len() != n {
            return Err(Error::TraceLengthMismatch {
                expected: n,
                got: t.len(),
            });
        }
    }
    let mut t_abs = vec![0.0f64; n];
    let mut max_t = 0.0f64;
    let mut argmax = 0usize;
    let mut leaking = 0usize;
    let mut ga = Vec::with_capacity(genuine.len());
    let mut gb = Vec::with_capacity(suspect.len());
    for i in 0..n {
        ga.clear();
        gb.clear();
        ga.extend(genuine.iter().map(|t| t[i]));
        gb.extend(suspect.iter().map(|t| t[i]));
        if let Ok(test) = htd_stats::welch::welch_t_test(&ga, &gb) {
            let t = test.t.abs();
            t_abs[i] = t;
            if t > max_t {
                max_t = t;
                argmax = i;
            }
            if t > TVLA_THRESHOLD {
                leaking += 1;
            }
        }
    }
    Ok(TtestComparison {
        t_abs,
        max_t,
        argmax,
        leaking_samples: leaking,
        infected: max_t > TVLA_THRESHOLD,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_compare_flags_clear_deviations() {
        let g1 = Trace::new(vec![0.0, 10.0, 0.0, 5.0], 200.0);
        let g2 = Trace::new(vec![0.1, 10.1, -0.1, 5.0], 200.0);
        let bad = Trace::new(vec![0.0, 10.0, 4.0, 5.0], 200.0);
        let cmp = direct_compare(&g1, &g2, &bad);
        assert!(cmp.infected);
        assert_eq!(cmp.argmax, 2);
        assert!((cmp.max_abs_diff - 4.0).abs() < 1e-12);
        let ok = direct_compare(&g1, &g2, &g2);
        assert!(!ok.infected);
    }

    #[test]
    fn trace_metrics_reduce_hand_built_deviations() {
        // D = [1, 3, 2, 5, 0]: interior local maxima at 3 and 5.
        let d = [1.0, 3.0, 2.0, 5.0, 0.0];
        assert_eq!(TraceMetric::SumOfLocalMaxima.evaluate(&d), 8.0);
        assert_eq!(TraceMetric::MaxPoint.evaluate(&d), 5.0);
        assert_eq!(TraceMetric::SumAll.evaluate(&d), 11.0);
        let l2 = TraceMetric::L2Norm.evaluate(&d);
        assert!((l2 - 39.0f64.sqrt()).abs() < 1e-12, "{l2}");
    }

    #[test]
    fn trace_metrics_degenerate_inputs() {
        // A monotone ramp has no interior local maximum.
        let ramp = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(TraceMetric::SumOfLocalMaxima.evaluate(&ramp), 0.0);
        assert_eq!(TraceMetric::MaxPoint.evaluate(&ramp), 4.0);
        // All-zero deviation reduces to zero under every metric.
        let zero = [0.0; 4];
        for metric in [
            TraceMetric::SumOfLocalMaxima,
            TraceMetric::MaxPoint,
            TraceMetric::SumAll,
            TraceMetric::L2Norm,
        ] {
            assert_eq!(metric.evaluate(&zero), 0.0, "{metric:?}");
        }
    }

    #[test]
    fn ttest_compare_rejects_bad_populations() {
        let t = Trace::new(vec![1.0, 2.0], 200.0);
        let short = Trace::new(vec![1.0], 200.0);
        assert!(matches!(
            ttest_compare(&[], std::slice::from_ref(&t)),
            Err(Error::EmptyPopulation { .. })
        ));
        assert!(matches!(
            ttest_compare(std::slice::from_ref(&t), &[]),
            Err(Error::EmptyPopulation { .. })
        ));
        assert!(matches!(
            ttest_compare(&[t.clone(), t.clone()], &[short]),
            Err(Error::TraceLengthMismatch {
                expected: 2,
                got: 1
            })
        ));
    }
}
