//! Plain-text table rendering shared by the benchmark harnesses.

use std::fmt;

use crate::em_detect::FnRateReport;
use crate::error::Error;
use crate::fusion::MultiChannelReport;

/// A simple fixed-width text table.
///
/// ```
/// use htd_core::report::Table;
///
/// let mut t = Table::new(&["HT", "size", "FN rate"]);
/// t.push_row(&["HT 1", "0.5%", "26%"]);
/// let s = t.to_string();
/// assert!(s.contains("HT 1"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn push_row<S: AsRef<str>>(&mut self, cells: &[S]) {
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as RFC 4180-style CSV: cells containing commas,
    /// quotes or newlines are quoted, with embedded quotes doubled.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&csv_cell(cell));
            }
            out.push('\n');
        };
        emit(&mut out, &self.headers);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Renders the table as plain `key=value` lines, one block per row:
    /// `row<i>.<header>=<value>`. Headers are sanitised to identifier
    /// form (`µ` → `mu`, `σ` → `sigma`, other non-alphanumerics → `_`);
    /// newlines in values are escaped as `\n`.
    pub fn to_kv(&self) -> String {
        let mut out = String::new();
        for (i, row) in self.rows.iter().enumerate() {
            for (j, header) in self.headers.iter().enumerate() {
                let value = row.get(j).map(String::as_str).unwrap_or("");
                out.push_str(&format!(
                    "row{i}.{}={}\n",
                    kv_key(header),
                    value.replace('\n', "\\n")
                ));
            }
        }
        out
    }
}

/// Quotes one CSV cell if it contains a comma, quote or newline.
fn csv_cell(cell: &str) -> String {
    if cell.contains([',', '"', '\n']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Sanitises a header into a `key=value` key.
fn kv_key(header: &str) -> String {
    let mut key = String::new();
    for c in header.chars() {
        match c {
            'µ' => key.push_str("mu"),
            'σ' => key.push_str("sigma"),
            c if c.is_ascii_alphanumeric() => key.push(c.to_ascii_lowercase()),
            _ => key.push('_'),
        }
    }
    key
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        // Widths count characters, not bytes, so the µ/σ headers align.
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let render_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, &w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)
        };
        render_row(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<w$}|", "", w = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            render_row(f, row)?;
        }
        Ok(())
    }
}

/// Writes rows as a CSV file, creating parent directories as needed —
/// the benches use this to dump each figure's data series for external
/// plotting.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(
    path: impl AsRef<std::path::Path>,
    headers: &[&str],
    rows: &[Vec<String>],
) -> Result<(), Error> {
    use std::io::Write as _;
    let path = path.as_ref();
    let io = |e| Error::io(path, e);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(io)?;
    }
    let mut f = std::fs::File::create(path).map_err(io)?;
    writeln!(f, "{}", headers.join(",")).map_err(io)?;
    for row in rows {
        writeln!(f, "{}", row.join(",")).map_err(io)?;
    }
    Ok(())
}

/// Renders a [`FnRateReport`] as the paper's headline table: one row per
/// trojan with its size and analytic/empirical FN rates.
pub fn fn_rate_table(report: &FnRateReport) -> Table {
    let mut t = Table::new(&["HT", "size", "µ", "σ", "FN rate", "FN emp", "FP emp"]);
    for row in &report.rows {
        t.push_row(&[
            row.name.clone(),
            pct(row.size_fraction),
            format!("{:.1}", row.mu),
            format!("{:.1}", row.sigma),
            pct(row.analytic_fn_rate),
            pct(row.empirical_fn_rate),
            pct(row.empirical_fp_rate),
        ]);
    }
    t
}

/// Renders a [`MultiChannelReport`] with one row per (trojan, channel)
/// and a trailing `fused` row per trojan when fusion ran.
pub fn multi_channel_table(report: &MultiChannelReport) -> Table {
    let mut t = Table::new(&["HT", "channel", "µ", "σ", "FN rate", "FN emp"]);
    for row in &report.rows {
        let results = row.channels.iter().chain(&row.fused);
        for c in results {
            t.push_row(&[
                row.name.clone(),
                c.channel.clone(),
                format!("{:.3}", c.mu),
                format!("{:.3}", c.sigma),
                pct(c.analytic_fn_rate),
                pct(c.empirical_fn_rate),
            ]);
        }
    }
    t
}

/// Renders per-channel [`ChannelHealth`](crate::resilience::ChannelHealth)
/// records as a table: one row per channel with attempt/retry/drop
/// counters and a status column (`ok` / `degraded` / `lost`).
pub fn health_table(health: &[crate::resilience::ChannelHealth]) -> Table {
    let mut t = Table::new(&[
        "channel",
        "attempts",
        "retried",
        "dropped",
        "reps",
        "reps drop",
        "status",
    ]);
    for h in health {
        let status = if h.lost {
            "lost"
        } else if h.degraded() {
            "degraded"
        } else {
            "ok"
        };
        t.push_row(&[
            h.channel.clone(),
            h.attempted.to_string(),
            h.retried.to_string(),
            h.dropped.to_string(),
            h.reps_attempted.to_string(),
            h.reps_dropped.to_string(),
            status.to_string(),
        ]);
    }
    t
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats picoseconds compactly (`"123 ps"` / `"1.23 ns"`).
pub fn ps(x: f64) -> String {
    if x.abs() >= 1_000.0 {
        format!("{:.2} ns", x / 1_000.0)
    } else {
        format!("{x:.0} ps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "longer"]);
        t.push_row(&["xxxx", "y"]);
        t.push_row(&["z", "wwwwwww"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have equal width.
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn write_csv_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join("htd_csv_test");
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn csv_quotes_commas_quotes_and_newlines() {
        let mut t = Table::new(&["name", "note"]);
        t.push_row(&["a,b", "say \"hi\""]);
        t.push_row(&["line1\nline2", "plain"]);
        t.push_row(&["only one cell"]);
        let csv = t.to_csv();
        let mut lines = csv.split('\n');
        assert_eq!(lines.next(), Some("name,note"));
        assert_eq!(lines.next(), Some("\"a,b\",\"say \"\"hi\"\"\""));
        // The embedded newline stays inside the quoted cell.
        assert_eq!(lines.next(), Some("\"line1"));
        assert_eq!(lines.next(), Some("line2\",plain"));
        // Short rows emit only the cells they have.
        assert_eq!(lines.next(), Some("only one cell"));
    }

    #[test]
    fn kv_export_sanitises_headers_and_escapes_values() {
        let mut t = Table::new(&["HT", "µ", "σ", "FN rate"]);
        t.push_row(&["HT 1", "1.5", "0.5", "26%"]);
        t.push_row(&["multi\nline", "2", "", ""]);
        let kv = t.to_kv();
        assert!(kv.contains("row0.ht=HT 1\n"), "{kv}");
        assert!(kv.contains("row0.mu=1.5\n"), "{kv}");
        assert!(kv.contains("row0.sigma=0.5\n"), "{kv}");
        assert!(kv.contains("row0.fn_rate=26%\n"), "{kv}");
        assert!(kv.contains("row1.ht=multi\\nline\n"), "{kv}");
        // Missing trailing cells render as empty values, keeping every
        // row's key set identical.
        assert!(kv.contains("row1.sigma=\n"), "{kv}");
    }

    #[test]
    fn csv_of_report_table_is_machine_readable() {
        let report = MultiChannelReport {
            rows: vec![crate::fusion::MultiChannelRow {
                name: "HT, 2".into(),
                size_fraction: 0.01,
                channels: vec![channel_result("EM", 2.0)],
                fused: None,
            }],
            n_dies: 6,
            channel_names: vec!["EM".into()],
            health: vec![],
        };
        let csv = multi_channel_table(&report).to_csv();
        assert!(csv.starts_with("HT,channel,µ,σ,FN rate,FN emp\n"), "{csv}");
        assert!(csv.contains("\"HT, 2\",EM,"), "{csv}");
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.05), "5.0%");
        assert_eq!(ps(123.4), "123 ps");
        assert_eq!(ps(1_234.0), "1.23 ns");
    }

    fn channel_result(channel: &str, mu: f64) -> crate::fusion::ChannelResult {
        crate::fusion::ChannelResult {
            channel: channel.to_string(),
            mu,
            sigma: 1.5,
            analytic_fn_rate: 0.26,
            empirical_fn_rate: 0.25,
            empirical_fp_rate: 0.125,
        }
    }

    #[test]
    fn fn_rate_table_reports_every_rate_column() {
        let report = FnRateReport {
            rows: vec![crate::em_detect::FnRateRow {
                name: "HT 1".into(),
                size_fraction: 0.005,
                mu: 100.0,
                sigma: 40.0,
                analytic_fn_rate: 0.26,
                empirical_fn_rate: 0.25,
                empirical_fp_rate: 0.0,
            }],
            n_dies: 8,
        };
        let t = fn_rate_table(&report);
        let s = t.to_string();
        assert_eq!(t.row_count(), 1);
        assert!(s.contains("HT 1"), "{s}");
        assert!(s.contains("0.5%"), "size column: {s}");
        assert!(s.contains("26.0%") && s.contains("25.0%"), "{s}");
        let widths: Vec<usize> = s.lines().map(|l| l.chars().count()).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "misaligned table:\n{s}"
        );
    }

    #[test]
    fn multi_channel_table_appends_the_fusion_row() {
        let report = MultiChannelReport {
            rows: vec![crate::fusion::MultiChannelRow {
                name: "HT 2".into(),
                size_fraction: 0.01,
                channels: vec![channel_result("EM", 2.0), channel_result("delay", 3.0)],
                fused: Some(channel_result("fused", 4.0)),
            }],
            n_dies: 6,
            channel_names: vec!["EM".into(), "delay".into()],
            health: vec![],
        };
        let t = multi_channel_table(&report);
        // Two channel rows + one fused row.
        assert_eq!(t.row_count(), 3);
        let s = t.to_string();
        for label in ["EM", "delay", "fused"] {
            assert!(s.contains(label), "missing {label} row:\n{s}");
        }
        let widths: Vec<usize> = s.lines().map(|l| l.chars().count()).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "misaligned table:\n{s}"
        );

        // Without fusion, only the channel rows render.
        let mut no_fused = report.clone();
        no_fused.rows[0].fused = None;
        assert_eq!(multi_channel_table(&no_fused).row_count(), 2);
    }

    #[test]
    fn health_table_classifies_ok_degraded_and_lost() {
        use crate::resilience::ChannelHealth;
        let ok = ChannelHealth::pristine("EM", 6);
        let mut degraded = ChannelHealth::pristine("delay", 6);
        degraded.retried = 2;
        degraded.dropped = 1;
        degraded.reps_attempted = 24;
        degraded.reps_dropped = 3;
        let mut lost = ChannelHealth::pristine("power", 0);
        lost.lost = true;
        let t = health_table(&[ok, degraded, lost]);
        assert_eq!(t.row_count(), 3);
        let rows = t.rows();
        assert_eq!(rows[0].last().unwrap(), "ok");
        assert_eq!(rows[1].last().unwrap(), "degraded");
        assert_eq!(rows[1][3], "1");
        assert_eq!(rows[1][5], "3");
        assert_eq!(rows[2].last().unwrap(), "lost");
    }
}
