//! Plain-text table rendering shared by the benchmark harnesses.

use std::fmt;

/// A simple fixed-width text table.
///
/// ```
/// use htd_core::report::Table;
///
/// let mut t = Table::new(&["HT", "size", "FN rate"]);
/// t.push_row(&["HT 1", "0.5%", "26%"]);
/// let s = t.to_string();
/// assert!(s.contains("HT 1"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn push_row<S: AsRef<str>>(&mut self, cells: &[S]) {
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let render_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, &w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)
        };
        render_row(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<w$}|", "", w = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            render_row(f, row)?;
        }
        Ok(())
    }
}

/// Writes rows as a CSV file, creating parent directories as needed —
/// the benches use this to dump each figure's data series for external
/// plotting.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(
    path: impl AsRef<std::path::Path>,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    use std::io::Write as _;
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{}", headers.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(())
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats picoseconds compactly (`"123 ps"` / `"1.23 ns"`).
pub fn ps(x: f64) -> String {
    if x.abs() >= 1_000.0 {
        format!("{:.2} ns", x / 1_000.0)
    } else {
        format!("{x:.0} ps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "longer"]);
        t.push_row(&["xxxx", "y"]);
        t.push_row(&["z", "wwwwwww"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have equal width.
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn write_csv_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join("htd_csv_test");
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.05), "5.0%");
        assert_eq!(ps(123.4), "123 ps");
        assert_eq!(ps(1_234.0), "1.23 ns");
    }
}
