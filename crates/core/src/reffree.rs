//! Golden-reference-free detection — characterizing a suspect die against
//! its **own** symmetric path pairs and its **neighbouring dies**, so no
//! trusted golden population is ever fabricated (the variability-aware
//! self-referencing approach of arXiv:2201.09668, applied to this
//! repository's delay/EM channels).
//!
//! Two self-referencing ideas compose:
//!
//! * **Symmetric-path common-mode removal** — every acquisition is first
//!   normalised against itself: a trace loses its own sample mean, an
//!   onset matrix loses each pair-row's mean. Whatever shifts *all* of a
//!   die's symmetric paths together (global process corners, supply
//!   droop) cancels, while a trojan's *localised* insertion survives as a
//!   differential residue. The die's self-score is the magnitude of that
//!   residue — the channel metric of the normalised acquisition against
//!   a zero reference.
//! * **Neighbouring-die baselining** — the *distribution* a suspect
//!   die's self-score is judged against comes from the neighbouring dies
//!   of the reference lot ([`ReferenceFreeFit`]). Crucially the
//!   neighbours calibrate only the expected residual *level*; they never
//!   serve as a per-die reference. A leave-one-out reference would
//!   silently cancel any trojan present in *every* die of the lot (the
//!   realistic fab-infection model: inter-die differencing carries zero
//!   signal when the whole lot is identically infected), whereas the
//!   within-die residual grows on every infected die.
//!
//! The workflow mirrors the golden path, so everything downstream
//! (store, CLI, serve, fusion, the learned classifier) composes
//! unchanged:
//!
//! * [`characterize_reffree`] — calibrate on a reference lot and pin its
//!   self-score distribution as the *baseline* ([`ReferenceFreeFit`]).
//!   The lot needs no golden trust beyond "was fabricated from the
//!   audited netlist"; no per-die reference payload is stored.
//! * [`ReferenceFreeSession`] / [`score_reffree_campaign`] — acquire a
//!   suspect lot, compute *its* self-scores, and reduce
//!   baseline vs. suspect populations through the same
//!   [`ChannelResult`] machinery (Eq. 5 rates, fused z-scores, or the
//!   learned classifier) as the golden mode.
//!
//! Determinism matches the golden path bit for bit: every seed comes
//! from the [`CampaignPlan`] seed tree and every fault decision from
//! event indices, so characterizations, scores and reports are identical
//! at any worker count.

use htd_faults::{FaultPlan, FaultSite};
use htd_stats::logistic::LogisticModel;
use htd_stats::Gaussian;
use htd_trojan::TrojanSpec;

use crate::campaign::CampaignPlan;
use crate::channel::{Acquisition, Calibration, Channel, GoldenReference};
use crate::delay_detect::DelayMatrix;
use crate::error::Error;
use crate::fusion::{
    acquire_population_faulted, check_model_features, fuse_masked, learned_result, ChannelResult,
    MultiChannelReport, MultiChannelRow, ScoredCampaign, ScoredChannel, ScoredDesign, SpecScore,
    POP_GOLDEN,
};
use crate::resilience::{ChannelHealth, RetryPolicy};
use crate::{Design, Engine, Lab, ProgrammedDevice};
use htd_em::Trace;

/// The baseline self-score distribution of one channel on the reference
/// lot: the Gaussian the suspect lot's within-die residual scores are
/// compared against. This is the reference-free analogue of the golden
/// fit — and the whole payload `htd-store`'s `reffree` artifact needs
/// per channel beyond the calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceFreeFit {
    /// Mean of the baseline self-scores.
    pub mean: f64,
    /// Standard deviation of the baseline self-scores.
    pub std: f64,
    /// Number of dies behind the fit (= `self_scores.len()`).
    pub n_dies: usize,
}

/// One channel's durable reference-free state: calibration, the baseline
/// self-score population and its fit. No [`GoldenReference`] payload —
/// every suspect die is its own reference at scoring time.
///
/// [`GoldenReference`]: crate::channel::GoldenReference
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceFreeState {
    /// The channel's label ([`Channel::name`]).
    pub channel: String,
    /// Measurement parameters established on the reference lot.
    pub calibration: Calibration,
    /// Baseline within-die residual self-scores, in kept-die order.
    pub self_scores: Vec<f64>,
    /// Gaussian fit of `self_scores`.
    pub fit: ReferenceFreeFit,
    /// Die indices the self-scores cover, ascending.
    pub kept: Vec<usize>,
    /// Acquisition health of the characterization run for this channel.
    pub health: ChannelHealth,
}

/// A reference-free characterization: the campaign plan plus every
/// channel's baseline [`ReferenceFreeState`]. The reference-free
/// counterpart of [`GoldenCharacterization`], persisted by `htd-store`
/// as the `reffree` artifact kind.
///
/// [`GoldenCharacterization`]: crate::fusion::GoldenCharacterization
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceFreeCharacterization {
    /// The campaign the reference lot was measured under.
    pub plan: CampaignPlan,
    /// Per-channel baseline state, in channel execution order.
    pub states: Vec<ReferenceFreeState>,
    /// Channels lost entirely during characterization.
    pub lost: Vec<ChannelHealth>,
}

/// Removes the acquisition's common mode — the symmetric-path
/// self-reference. A trace loses its own sample mean; an onset matrix
/// loses each pair-row's mean (the paired launch/capture paths of one
/// pair are each other's symmetric references).
fn common_mode_removed(acquisition: &Acquisition) -> Acquisition {
    match acquisition {
        Acquisition::Trace(t) => {
            let samples = t.samples();
            let mean = if samples.is_empty() {
                0.0
            } else {
                samples.iter().sum::<f64>() / samples.len() as f64
            };
            Acquisition::Trace(Trace::new(
                samples.iter().map(|x| x - mean).collect(),
                t.dt_ps(),
            ))
        }
        Acquisition::Matrix(m) => {
            let rows = m
                .mean_onset_steps
                .iter()
                .map(|row| {
                    let mean = if row.is_empty() {
                        0.0
                    } else {
                        row.iter().sum::<f64>() / row.len() as f64
                    };
                    row.iter().map(|x| x - mean).collect()
                })
                .collect();
            Acquisition::Matrix(DelayMatrix {
                mean_onset_steps: rows,
            })
        }
    }
}

/// The zero reference matching an acquisition's shape — scoring a
/// common-mode-removed acquisition against it measures the magnitude of
/// the die's own within-die residual through the channel's metric.
fn zero_reference(acquisition: &Acquisition) -> GoldenReference {
    match acquisition {
        Acquisition::Trace(t) => {
            GoldenReference::MeanTrace(Trace::new(vec![0.0; t.samples().len()], t.dt_ps()))
        }
        Acquisition::Matrix(m) => GoldenReference::MeanMatrix(DelayMatrix {
            mean_onset_steps: m
                .mean_onset_steps
                .iter()
                .map(|row| vec![0.0; row.len()])
                .collect(),
        }),
    }
}

/// Within-die residual self-scores of a normalised population: die `j`
/// is scored against the zero reference, so the score is the channel
/// metric of whatever survives `j`'s own common-mode removal. The
/// residual's nominal component is common to every die and cancels in
/// the baseline-vs-suspect comparison; a trojan's symmetric-path
/// asymmetry inflates it on *every* infected die, so a homogeneously
/// infected lot still separates from the baseline (an inter-die
/// leave-one-out reference would cancel exactly that signal). Order is
/// die order, so the result is worker-invariant by construction — the
/// scoring is pure arithmetic on already-acquired data.
fn residual_self_scores(
    channel: &dyn Channel,
    normalized: &[Acquisition],
    calibration: &Calibration,
) -> Result<Vec<f64>, Error> {
    normalized
        .iter()
        .map(|a| channel.score(a, &zero_reference(a), calibration))
        .collect()
}

/// Folds a self-score population around the baseline mean: the
/// detection statistic is the absolute displacement of a die's residual
/// level from the reference lot's typical level. Folding makes the
/// detector two-sided — a trojan can displace a channel's residual in
/// either direction (an EM insertion can move switching activity away
/// from the probe as easily as under it), and either displacement is
/// evidence.
fn folded(scores: &[f64], baseline_mean: f64) -> Vec<f64> {
    scores.iter().map(|s| (s - baseline_mean).abs()).collect()
}

/// Fits the baseline Gaussian of a self-score population.
fn fit_self_scores(channel: &str, self_scores: &[f64]) -> Result<ReferenceFreeFit, Error> {
    let g = Gaussian::fit(self_scores).map_err(|source| Error::DegeneratePopulation {
        channel: channel.to_string(),
        samples: self_scores.len(),
        source,
    })?;
    Ok(ReferenceFreeFit {
        mean: g.mean(),
        std: g.std(),
        n_dies: self_scores.len(),
    })
}

/// Characterizes the reference lot of `plan` without any golden
/// reference, with the default (auto-sized) [`Engine`].
///
/// # Errors
///
/// [`Error::EmptyPopulation`] with no channels, [`Error::NotEnoughDies`]
/// below three dies (leave-one-out needs a neighbour *and* a spread);
/// design and simulation failures otherwise.
pub fn characterize_reffree(
    lab: &Lab,
    plan: &CampaignPlan,
    channels: &[&dyn Channel],
) -> Result<ReferenceFreeCharacterization, Error> {
    characterize_reffree_with(&Engine::default(), lab, plan, channels)
}

/// [`characterize_reffree`] on an explicit [`Engine`].
///
/// # Errors
///
/// See [`characterize_reffree`].
pub fn characterize_reffree_with(
    engine: &Engine,
    lab: &Lab,
    plan: &CampaignPlan,
    channels: &[&dyn Channel],
) -> Result<ReferenceFreeCharacterization, Error> {
    characterize_reffree_faulted(
        engine,
        lab,
        plan,
        channels,
        &FaultPlan::none(),
        &RetryPolicy::strict(),
    )
}

/// [`characterize_reffree_with`] under a [`FaultPlan`] and
/// [`RetryPolicy`] — retry, quarantine and channel-loss semantics are
/// identical to [`characterize_campaign_faulted`]'s, and the fault
/// decision contexts use the same `(channel, population, die, attempt)`
/// indices, so the *same* fault plan degrades the golden and
/// reference-free modes identically.
///
/// [`characterize_campaign_faulted`]: crate::fusion::characterize_campaign_faulted
///
/// # Errors
///
/// [`Error::AcquisitionExhausted`] / [`Error::CalibrationDiverged`] when
/// a budget runs out under the strict policy; [`Error::EmptyPopulation`]
/// when every channel is lost; [`Error::DegeneratePopulation`] when a
/// baseline self-score population has no spread.
pub fn characterize_reffree_faulted(
    engine: &Engine,
    lab: &Lab,
    plan: &CampaignPlan,
    channels: &[&dyn Channel],
    faults: &FaultPlan,
    policy: &RetryPolicy,
) -> Result<ReferenceFreeCharacterization, Error> {
    if channels.is_empty() {
        return Err(Error::EmptyPopulation {
            what: "channel list",
        });
    }
    if plan.n_dies < 3 {
        return Err(Error::NotEnoughDies {
            got: plan.n_dies,
            need: 3,
        });
    }
    let _span = engine.obs().span("characterize");
    let reference_design = Design::golden(lab)?;
    let dies = lab.fabricate_batch(plan.n_dies);
    let devs: Vec<ProgrammedDevice<'_>> = {
        let _span = engine.obs().span("program");
        engine.map(&dies, |_, die| {
            ProgrammedDevice::with_obs(lab, &reference_design, die, engine.obs().clone())
        })
    };

    let mut states: Vec<ReferenceFreeState> = Vec::with_capacity(channels.len());
    let mut lost: Vec<ChannelHealth> = Vec::new();
    for (c, channel) in channels.iter().enumerate() {
        // Calibration, re-run on injected divergence — same retry loop
        // and counters as the golden characterization.
        let mut calibration = None;
        let mut cal_attempts = 0usize;
        {
            let _span = engine.obs().span(&format!("calibrate.{}", channel.name()));
            for attempt in 0..=policy.max_retries {
                cal_attempts = attempt + 1;
                if faults.fires(FaultSite::Calibrate, &[c as u64, attempt as u64]) {
                    engine.obs().incr("faults.calibrate.fired");
                    continue;
                }
                calibration = Some(channel.calibrate(engine, plan, &devs)?);
                break;
            }
            engine
                .obs()
                .add("retry.calibrate", (cal_attempts - 1) as u64);
        }
        let Some(calibration) = calibration else {
            if !policy.allow_degraded {
                return Err(Error::CalibrationDiverged {
                    channel: channel.name().to_string(),
                    attempts: cal_attempts,
                });
            }
            let mut health = ChannelHealth::pristine(channel.name(), cal_attempts);
            health.retried = cal_attempts - 1;
            health.lost = true;
            lost.push(health);
            continue;
        };
        let population = acquire_population_faulted(
            engine,
            *channel,
            c,
            &devs,
            plan,
            &calibration,
            faults,
            policy,
            POP_GOLDEN,
            |j| plan.die_seed(j),
        )?;
        let mut health = population.health;
        health.attempted += cal_attempts - 1;
        health.retried += cal_attempts - 1;
        if population.kept.len() < 3 {
            // Leave-one-out needs at least three survivors; only
            // reachable under allow_degraded.
            health.lost = true;
            lost.push(health);
            continue;
        }
        let normalized: Vec<Acquisition> = population
            .acquisitions
            .iter()
            .map(common_mode_removed)
            .collect();
        let self_scores = residual_self_scores(*channel, &normalized, &calibration)?;
        engine
            .obs()
            .add("score.reffree.selfscores", self_scores.len() as u64);
        let fit = fit_self_scores(channel.name(), &self_scores)?;
        states.push(ReferenceFreeState {
            channel: channel.name().to_string(),
            calibration,
            self_scores,
            fit,
            kept: population.kept,
            health,
        });
    }
    if states.is_empty() {
        return Err(Error::EmptyPopulation {
            what: "surviving channels",
        });
    }
    Ok(ReferenceFreeCharacterization {
        plan: plan.clone(),
        states,
        lost,
    })
}

/// Checks that the supplied channels match the stored reference-free
/// states one-to-one (same count, same names, same order).
fn check_channels_match(
    charac: &ReferenceFreeCharacterization,
    channels: &[&dyn Channel],
) -> Result<(), Error> {
    if channels.len() != charac.states.len() {
        return Err(Error::ChannelShapeMismatch {
            channel: format!("{} stored channel state(s)", charac.states.len()),
            expected: "one live channel per stored state",
        });
    }
    for (channel, state) in channels.iter().zip(&charac.states) {
        if channel.name() != state.channel {
            return Err(Error::ChannelShapeMismatch {
                channel: state.channel.clone(),
                expected: "a live channel with the stored state's name",
            });
        }
    }
    Ok(())
}

/// The reference-free counterpart of [`ScoringSession`]: everything that
/// depends only on the characterization, amortised across suspects. A
/// suspect scored alone at `index` is bit-identical to the same suspect
/// inside any batch at position `index`, at any worker count — the same
/// promise `htd serve` relies on for the golden mode.
///
/// [`ScoringSession`]: crate::fusion::ScoringSession
pub struct ReferenceFreeSession<'a> {
    engine: &'a Engine,
    lab: &'a Lab,
    charac: &'a ReferenceFreeCharacterization,
    channels: &'a [&'a dyn Channel],
    golden_slices: usize,
    dies: Vec<htd_fabric::DieVariation>,
    folded_baselines: Vec<Vec<f64>>,
    fits: Vec<Gaussian>,
    baseline_fused: Option<Vec<f64>>,
    model: Option<&'a LogisticModel>,
}

impl<'a> ReferenceFreeSession<'a> {
    /// Prepares the shared scoring state for `charac`.
    ///
    /// # Errors
    ///
    /// [`Error::ChannelShapeMismatch`] when `channels` does not match
    /// the stored states; design failures otherwise.
    pub fn new(
        engine: &'a Engine,
        lab: &'a Lab,
        charac: &'a ReferenceFreeCharacterization,
        channels: &'a [&'a dyn Channel],
    ) -> Result<Self, Error> {
        check_channels_match(charac, channels)?;
        let plan = &charac.plan;
        let golden = Design::golden(lab)?;
        let golden_slices = golden.used_slices();
        let dies = lab.fabricate_batch(plan.n_dies);
        // Everything downstream compares *folded* populations (absolute
        // displacement from the stored baseline mean). The folds derive
        // from the stored self-scores, so a reloaded characterization
        // fuses identically to a fresh one.
        let folded_baselines: Vec<Vec<f64>> = charac
            .states
            .iter()
            .map(|s| folded(&s.self_scores, s.fit.mean))
            .collect();
        let (fits, baseline_fused) = if channels.len() >= 2 {
            let _span = engine.obs().span("fuse");
            let fits: Vec<Gaussian> = charac
                .states
                .iter()
                .zip(&folded_baselines)
                .map(|(s, baseline)| {
                    Gaussian::fit(baseline).map_err(|source| Error::DegeneratePopulation {
                        channel: s.channel.clone(),
                        samples: s.fit.n_dies,
                        source,
                    })
                })
                .collect::<Result<Vec<_>, _>>()?;
            let masked: Vec<(&[usize], &[f64])> = charac
                .states
                .iter()
                .zip(&folded_baselines)
                .map(|(s, baseline)| (s.kept.as_slice(), baseline.as_slice()))
                .collect();
            let fused = fuse_masked(&fits, &masked, plan.n_dies);
            (fits, Some(fused))
        } else {
            (Vec::new(), None)
        };
        Ok(ReferenceFreeSession {
            engine,
            lab,
            charac,
            channels,
            golden_slices,
            dies,
            folded_baselines,
            fits,
            baseline_fused,
            model: None,
        })
    }

    /// The characterization this session scores against.
    pub fn characterization(&self) -> &ReferenceFreeCharacterization {
        self.charac
    }

    /// Attaches a trained classifier — the learned mode over
    /// reference-free features. See [`ScoringSession::with_model`].
    ///
    /// [`ScoringSession::with_model`]: crate::fusion::ScoringSession::with_model
    ///
    /// # Errors
    ///
    /// [`Error::ChannelShapeMismatch`] when the model's feature labels
    /// do not match the characterization's channels.
    pub fn with_model(mut self, model: &'a LogisticModel) -> Result<Self, Error> {
        check_model_features(model, self.charac.states.iter().map(|s| s.channel.as_str()))?;
        self.model = Some(model);
        Ok(self)
    }

    /// Scores one suspect at campaign position `index`, entirely from the
    /// suspect lot's own measurements: per channel, acquire the suspect
    /// population (same seeds and fault contexts as the golden mode's
    /// suspect acquisition), normalise out each die's common mode, and
    /// compare the lot's folded within-die residual self-scores against
    /// the stored baseline.
    ///
    /// # Errors
    ///
    /// [`Error::AcquisitionExhausted`] when a suspect die exhausts its
    /// budget under the strict policy; [`Error::ChannelDegraded`] when
    /// quarantine leaves a population below three dies; design and
    /// simulation failures otherwise.
    pub fn score_spec_at(
        &self,
        index: usize,
        spec: &TrojanSpec,
        faults: &FaultPlan,
        policy: &RetryPolicy,
    ) -> Result<SpecScore, Error> {
        let engine = self.engine;
        let plan = &self.charac.plan;
        let infected = Design::infected_with_obs(self.lab, spec, engine.obs())?;
        let infected_devs: Vec<ProgrammedDevice<'_>> = {
            let _span = engine.obs().span("program");
            engine.map(&self.dies, |_, die| {
                ProgrammedDevice::with_obs(self.lab, &infected, die, engine.obs().clone())
            })
        };
        let mut per_channel: Vec<(Vec<usize>, Vec<f64>)> = Vec::with_capacity(self.channels.len());
        let mut scored_sets = Vec::with_capacity(self.channels.len());
        let mut health = Vec::with_capacity(self.channels.len());
        for (c, (channel, state)) in self.channels.iter().zip(&self.charac.states).enumerate() {
            let population = acquire_population_faulted(
                engine,
                *channel,
                c,
                &infected_devs,
                plan,
                &state.calibration,
                faults,
                policy,
                (index as u64) + 1,
                |j| plan.spec_die_seed(index, j),
            )?;
            if population.kept.len() < 3 {
                return Err(Error::ChannelDegraded {
                    channel: state.channel.clone(),
                    kept: population.kept.len(),
                    need: 3,
                });
            }
            let normalized: Vec<Acquisition> = population
                .acquisitions
                .iter()
                .map(common_mode_removed)
                .collect();
            let scores = residual_self_scores(*channel, &normalized, &state.calibration)?;
            engine
                .obs()
                .add("score.reffree.selfscores", scores.len() as u64);
            health.push(population.health);
            let scores = folded(&scores, state.fit.mean);
            scored_sets.push(ScoredChannel {
                channel: state.channel.clone(),
                golden: self.folded_baselines[c].clone(),
                infected: scores.clone(),
            });
            per_channel.push((population.kept, scores));
        }
        let channel_results = self
            .charac
            .states
            .iter()
            .zip(&self.folded_baselines)
            .zip(&per_channel)
            .map(|((state, baseline), (_, scores))| {
                ChannelResult::fit(state.channel.clone(), baseline, scores)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let suspect_masked: Vec<(&[usize], &[f64])> = per_channel
            .iter()
            .map(|(kept, scores)| (kept.as_slice(), scores.as_slice()))
            .collect();
        let fused = if let Some(model) = self.model {
            let _span = engine.obs().span("fuse");
            let baseline_masked: Vec<(&[usize], &[f64])> = self
                .charac
                .states
                .iter()
                .zip(&self.folded_baselines)
                .map(|(s, baseline)| (s.kept.as_slice(), baseline.as_slice()))
                .collect();
            Some(learned_result(
                model,
                &baseline_masked,
                &suspect_masked,
                plan.n_dies,
            )?)
        } else {
            match &self.baseline_fused {
                Some(baseline_fused) => {
                    let _span = engine.obs().span("fuse");
                    let suspect_fused = fuse_masked(&self.fits, &suspect_masked, plan.n_dies);
                    Some(ChannelResult::fit("fused", baseline_fused, &suspect_fused)?)
                }
                None => None,
            }
        };
        let size_fraction = infected
            .trojan()
            .map(|t| t.fraction_of_design(self.golden_slices))
            .unwrap_or(0.0);
        engine.obs().incr("score.designs");
        engine.obs().incr("score.reffree.designs");
        Ok(SpecScore {
            row: MultiChannelRow {
                name: spec.name.clone(),
                size_fraction,
                channels: channel_results,
                fused,
            },
            design: ScoredDesign {
                name: spec.name.clone(),
                size_fraction,
                scored: scored_sets,
            },
            health,
        })
    }

    /// Assembles the one-row [`MultiChannelReport`] of a single suspect
    /// scored through this session — exactly the report `htd score`
    /// writes for the same (artifact, suspect) pair.
    pub fn single_report(&self, score: &SpecScore, faults: &FaultPlan) -> MultiChannelReport {
        let scoring: Vec<Option<ChannelHealth>> = score.health.iter().cloned().map(Some).collect();
        MultiChannelReport {
            rows: vec![score.row.clone()],
            n_dies: self.charac.plan.n_dies,
            channel_names: self
                .charac
                .states
                .iter()
                .map(|s| s.channel.clone())
                .collect(),
            health: health_section(self.charac, &scoring, faults),
        }
    }
}

/// The health section of a reference-free report — same appearance rule
/// as the golden path's: present whenever faults could have fired or the
/// characterization already lost something.
fn health_section(
    charac: &ReferenceFreeCharacterization,
    scoring_health: &[Option<ChannelHealth>],
    faults: &FaultPlan,
) -> Vec<ChannelHealth> {
    let plan = &charac.plan;
    let charac_degraded = !charac.lost.is_empty()
        || charac
            .states
            .iter()
            .any(|s| s.kept.len() != plan.n_dies || !s.health.is_pristine(plan.n_dies));
    let mut health = Vec::new();
    if !faults.is_none() || charac_degraded {
        for (c, state) in charac.states.iter().enumerate() {
            let mut h = state.health.clone();
            if let Some(scoring) = scoring_health.get(c).and_then(Option::as_ref) {
                h.merge(scoring);
            }
            health.push(h);
        }
        health.extend(charac.lost.iter().cloned());
    }
    health
}

/// Scores a suspect campaign against a reference-free characterization:
/// the reference-free twin of [`score_campaign_faulted`], with an
/// optional trained classifier replacing the fused channel.
///
/// [`score_campaign_faulted`]: crate::fusion::score_campaign_faulted
///
/// # Errors
///
/// [`Error::ChannelShapeMismatch`] when `channels` (or the model's
/// features) do not match the stored states; plus all of
/// [`ReferenceFreeSession::score_spec_at`]'s errors.
#[allow(clippy::too_many_arguments)]
pub fn score_reffree_campaign(
    engine: &Engine,
    lab: &Lab,
    charac: &ReferenceFreeCharacterization,
    specs: &[TrojanSpec],
    channels: &[&dyn Channel],
    faults: &FaultPlan,
    policy: &RetryPolicy,
    model: Option<&LogisticModel>,
) -> Result<ScoredCampaign, Error> {
    check_channels_match(charac, channels)?;
    let _span = engine.obs().span("score");
    let mut session = ReferenceFreeSession::new(engine, lab, charac, channels)?;
    if let Some(model) = model {
        session = session.with_model(model)?;
    }

    let mut scoring_health: Vec<Option<ChannelHealth>> = vec![None; channels.len()];
    let mut rows = Vec::with_capacity(specs.len());
    let mut designs = Vec::with_capacity(specs.len());
    for (s, spec) in specs.iter().enumerate() {
        let scored = session.score_spec_at(s, spec, faults, policy)?;
        for (c, h) in scored.health.iter().enumerate() {
            match &mut scoring_health[c] {
                Some(acc) => acc.merge(h),
                slot => *slot = Some(h.clone()),
            }
        }
        rows.push(scored.row);
        designs.push(scored.design);
    }

    let report = MultiChannelReport {
        rows,
        n_dies: charac.plan.n_dies,
        channel_names: charac.states.iter().map(|s| s.channel.clone()).collect(),
        health: health_section(charac, &scoring_health, faults),
    };
    Ok(ScoredCampaign { report, designs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{ChannelSpec, DelayChannel, EmChannel};
    use crate::em_detect::TraceMetric;

    fn plan() -> CampaignPlan {
        CampaignPlan::with_random_pairs(4, 2, 2, [0x13; 16], [0x7f; 16], 42)
    }

    #[test]
    fn common_mode_removal_centres_traces_and_rows() {
        let t = Acquisition::Trace(Trace::new(vec![1.0, 2.0, 3.0], 200.0));
        let Acquisition::Trace(out) = common_mode_removed(&t) else {
            panic!("trace in, trace out");
        };
        assert_eq!(out.samples(), &[-1.0, 0.0, 1.0]);

        let m = Acquisition::Matrix(DelayMatrix {
            mean_onset_steps: vec![vec![2.0, 4.0], vec![10.0, 10.0]],
        });
        let Acquisition::Matrix(out) = common_mode_removed(&m) else {
            panic!("matrix in, matrix out");
        };
        assert_eq!(out.mean_onset_steps, vec![vec![-1.0, 1.0], vec![0.0, 0.0]]);
    }

    #[test]
    fn characterize_then_score_is_deterministic() {
        let lab = Lab::paper();
        let plan = plan();
        let em = EmChannel::paper();
        let delay = DelayChannel;
        let channels: [&dyn Channel; 2] = [&em, &delay];
        let charac = characterize_reffree(&lab, &plan, &channels).unwrap();
        assert_eq!(charac.states.len(), 2);
        for state in &charac.states {
            assert_eq!(state.self_scores.len(), plan.n_dies);
            assert_eq!(state.fit.n_dies, plan.n_dies);
            assert!(state.fit.std > 0.0);
        }
        let engine = Engine::with_workers(2);
        let charac2 = characterize_reffree_with(&engine, &lab, &plan, &channels).unwrap();
        assert_eq!(charac, charac2);

        let specs = [TrojanSpec::ht1()];
        let scored = score_reffree_campaign(
            &Engine::serial(),
            &lab,
            &charac,
            &specs,
            &channels,
            &FaultPlan::none(),
            &RetryPolicy::strict(),
            None,
        )
        .unwrap();
        let scored2 = score_reffree_campaign(
            &engine,
            &lab,
            &charac,
            &specs,
            &channels,
            &FaultPlan::none(),
            &RetryPolicy::strict(),
            None,
        )
        .unwrap();
        assert_eq!(scored, scored2);
        let row = &scored.report.rows[0];
        assert_eq!(row.channels.len(), 2);
        assert!(row.fused.is_some());
        assert!(scored.report.health.is_empty());
    }

    #[test]
    fn single_report_matches_campaign_row() {
        let lab = Lab::paper();
        let plan = plan();
        let em = EmChannel::paper();
        let channels: [&dyn Channel; 1] = [&em];
        let charac = characterize_reffree(&lab, &plan, &channels).unwrap();
        let engine = Engine::serial();
        let session = ReferenceFreeSession::new(&engine, &lab, &charac, &channels).unwrap();
        let spec = TrojanSpec::ht2();
        let score = session
            .score_spec_at(0, &spec, &FaultPlan::none(), &RetryPolicy::strict())
            .unwrap();
        let report = session.single_report(&score, &FaultPlan::none());
        let campaign = score_reffree_campaign(
            &engine,
            &lab,
            &charac,
            std::slice::from_ref(&spec),
            &channels,
            &FaultPlan::none(),
            &RetryPolicy::strict(),
            None,
        )
        .unwrap();
        assert_eq!(report, campaign.report);
    }

    #[test]
    fn a_homogeneously_infected_lot_separates_from_the_baseline() {
        // The defining property of the mode: a lot where EVERY die
        // carries the trojan still displaces from the reference lot's
        // baseline, because the within-die residual changes on each
        // infected die. An inter-die (leave-one-out) reference would
        // cancel the common trojan and pin µ at zero.
        let lab = Lab::paper();
        let plan = CampaignPlan::with_random_pairs(6, 2, 2, [0x13; 16], [0x7f; 16], 42);
        let delay = DelayChannel;
        let channels: [&dyn Channel; 1] = [&delay];
        let charac = characterize_reffree(&lab, &plan, &channels).unwrap();
        let scored = score_reffree_campaign(
            &Engine::serial(),
            &lab,
            &charac,
            &[TrojanSpec::ht3()],
            &channels,
            &FaultPlan::none(),
            &RetryPolicy::strict(),
            None,
        )
        .unwrap();
        let result = &scored.report.rows[0].channels[0];
        assert!(
            result.mu > 0.0,
            "infected lot must displace the folded residual level, got µ = {}",
            result.mu
        );
        assert!(
            result.analytic_fn_rate < 0.5,
            "detection must beat a coin flip, got FN = {}",
            result.analytic_fn_rate
        );
    }

    #[test]
    fn too_few_dies_is_rejected() {
        let lab = Lab::paper();
        let plan = CampaignPlan::with_random_pairs(2, 2, 2, [0x13; 16], [0x7f; 16], 42);
        let em = EmChannel::paper();
        let channels: [&dyn Channel; 1] = [&em];
        let err = characterize_reffree(&lab, &plan, &channels).unwrap_err();
        assert!(matches!(err, Error::NotEnoughDies { got: 2, need: 3 }));
    }

    #[test]
    fn channel_specs_round_trip_into_sessions() {
        // The CLI builds channels from specs; make sure the reffree path
        // accepts the same construction.
        let lab = Lab::paper();
        let plan = plan();
        let specs = [ChannelSpec::Em(TraceMetric::SumOfLocalMaxima)];
        let built: Vec<Box<dyn Channel>> = specs.iter().map(|s| s.build()).collect();
        let refs: Vec<&dyn Channel> = built.iter().map(|b| b.as_ref()).collect();
        let charac = characterize_reffree(&lab, &plan, &refs).unwrap();
        assert_eq!(charac.states[0].channel, "EM");
    }
}
