//! The unified error type of the detection methodology.
//!
//! Every fallible public API in `htd-core` returns [`Error`]. Substrate
//! failures (netlist validation, placement, trojan insertion, statistics)
//! convert losslessly via `From`, so `?` threads them through campaign
//! code without boxing; methodology-level failures (degenerate
//! populations, undersized campaigns) get their own typed variants that
//! callers can match on.

use std::fmt;

use htd_fabric::FabricError;
use htd_netlist::NetlistError;
use htd_stats::StatsError;
use htd_trojan::TrojanError;

/// Errors reported by the detection pipelines.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A metric population had no spread (or too few samples) to fit the
    /// Gaussian model of Eq. (5) — e.g. constant metrics from a campaign
    /// with zero measurement noise.
    DegeneratePopulation {
        /// Channel whose population failed to fit (`"EM"`, `"delay"`, …).
        channel: String,
        /// Samples in the degenerate population.
        samples: usize,
        /// The underlying fit failure.
        source: StatsError,
    },
    /// A population-level stage needs more dies than the plan provides.
    NotEnoughDies {
        /// Dies supplied.
        got: usize,
        /// Dies required.
        need: usize,
    },
    /// More pairs were requested than the golden campaign holds. Eq. (4)
    /// compares a DUT row against the golden row measured with the *same*
    /// pair, so an examination cannot exceed the characterised campaign.
    PairCountExceedsCampaign {
        /// Pairs requested for the examination.
        requested: usize,
        /// Pairs available in the golden campaign.
        available: usize,
    },
    /// A stage received an empty input it cannot reduce (e.g. a t-test
    /// over zero traces, a golden reference over zero acquisitions).
    EmptyPopulation {
        /// What was empty.
        what: &'static str,
    },
    /// A channel stage was fed an acquisition or reference of another
    /// channel's shape (a trace where a matrix was expected, or vice
    /// versa).
    ChannelShapeMismatch {
        /// Channel reporting the mismatch.
        channel: String,
        /// What the stage expected.
        expected: &'static str,
    },
    /// Two traces that must be compared sample-by-sample have different
    /// lengths.
    TraceLengthMismatch {
        /// Samples in the reference trace.
        expected: usize,
        /// Samples in the offending trace.
        got: usize,
    },
    /// A probability parameter fell outside `(0, 1)`.
    ProbabilityOutOfRange {
        /// The offending value.
        value: f64,
    },
    /// A channel exhausted its acquisition retry budget on one die and
    /// the campaign's policy does not allow degraded results.
    AcquisitionExhausted {
        /// Channel whose acquisition kept failing.
        channel: String,
        /// Die index the acquisition failed on.
        die: usize,
        /// Attempts spent (first try plus retries).
        attempts: usize,
    },
    /// A channel's calibration failed to converge within the retry
    /// budget and the campaign's policy does not allow degraded results.
    CalibrationDiverged {
        /// Channel whose calibration diverged.
        channel: String,
        /// Attempts spent (first try plus retries).
        attempts: usize,
    },
    /// Degradation left a channel with too few dies to form a
    /// population.
    ChannelDegraded {
        /// The degraded channel.
        channel: String,
        /// Dies that survived acquisition.
        kept: usize,
        /// Minimum dies the stage needs.
        need: usize,
    },
    /// A generated (trojaned) netlist failed the structural lint gate
    /// that every zoo/campaign design must pass before characterization.
    LintFailed {
        /// Name of the design the lints ran on.
        design: String,
        /// Findings, each formatted as `pass: message`.
        lints: Vec<String>,
    },
    /// An underlying statistics operation failed.
    Stats(StatsError),
    /// An underlying netlist operation failed.
    Netlist(NetlistError),
    /// An underlying placement/fabric operation failed.
    Fabric(FabricError),
    /// An underlying trojan insertion failed.
    Trojan(TrojanError),
    /// An I/O failure on a named file (CSV export, artifact store).
    Io {
        /// Path of the file the operation failed on.
        path: String,
        /// The underlying I/O failure.
        source: std::io::Error,
    },
    /// A stored artifact failed strict parsing (bad syntax, version or
    /// checksum mismatch, truncated body).
    Format {
        /// Origin of the offending text (file path, or `"<memory>"`).
        path: String,
        /// 1-based line number of the first offending line (0 when the
        /// failure is not attributable to a single line).
        line: usize,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DegeneratePopulation {
                channel,
                samples,
                source,
            } => write!(
                f,
                "{channel} channel population of {samples} samples is degenerate: {source}"
            ),
            Error::NotEnoughDies { got, need } => {
                write!(f, "campaign needs at least {need} dies but got {got}")
            }
            Error::PairCountExceedsCampaign {
                requested,
                available,
            } => write!(
                f,
                "examination requested {requested} pairs but the golden campaign \
                 only characterised {available}"
            ),
            Error::EmptyPopulation { what } => write!(f, "empty population: {what}"),
            Error::ChannelShapeMismatch { channel, expected } => write!(
                f,
                "{channel} channel received data of another channel's shape \
                 (expected {expected})"
            ),
            Error::TraceLengthMismatch { expected, got } => write!(
                f,
                "trace of {got} samples cannot be compared against {expected}"
            ),
            Error::ProbabilityOutOfRange { value } => {
                write!(f, "probability {value} outside (0, 1)")
            }
            Error::AcquisitionExhausted {
                channel,
                die,
                attempts,
            } => write!(
                f,
                "{channel} channel acquisition on die {die} failed {attempts} \
                 attempt(s); re-run with a retry budget or allow degraded results"
            ),
            Error::CalibrationDiverged { channel, attempts } => write!(
                f,
                "{channel} channel calibration diverged after {attempts} attempt(s)"
            ),
            Error::ChannelDegraded {
                channel,
                kept,
                need,
            } => write!(
                f,
                "{channel} channel degraded to {kept} usable die(s); needs {need}"
            ),
            Error::LintFailed { design, lints } => {
                write!(
                    f,
                    "design `{design}` failed {} structural lint(s)",
                    lints.len()
                )?;
                if let Some(first) = lints.first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
            Error::Stats(e) => write!(f, "statistics error: {e}"),
            Error::Netlist(e) => write!(f, "netlist error: {e}"),
            Error::Fabric(e) => write!(f, "fabric error: {e}"),
            Error::Trojan(e) => write!(f, "trojan error: {e}"),
            Error::Io { path, source } => write!(f, "{path}: I/O error: {source}"),
            Error::Format { path, line, reason } => {
                if *line == 0 {
                    write!(f, "{path}: {reason}")
                } else {
                    write!(f, "{path}:{line}: {reason}")
                }
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::DegeneratePopulation { source, .. } => Some(source),
            Error::Stats(e) => Some(e),
            Error::Netlist(e) => Some(e),
            Error::Fabric(e) => Some(e),
            Error::Trojan(e) => Some(e),
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<StatsError> for Error {
    fn from(e: StatsError) -> Self {
        Error::Stats(e)
    }
}

impl From<NetlistError> for Error {
    fn from(e: NetlistError) -> Self {
        Error::Netlist(e)
    }
}

impl From<FabricError> for Error {
    fn from(e: FabricError) -> Self {
        Error::Fabric(e)
    }
}

impl From<TrojanError> for Error {
    fn from(e: TrojanError) -> Self {
        Error::Trojan(e)
    }
}

impl Error {
    /// Wraps an I/O failure with the path it occurred on.
    pub fn io(path: impl AsRef<std::path::Path>, source: std::io::Error) -> Self {
        Error::Io {
            path: path.as_ref().display().to_string(),
            source,
        }
    }

    /// A strict-parse failure at `line` (1-based; 0 for whole-file
    /// failures) of the artifact at `path`.
    pub fn format(path: impl Into<String>, line: usize, reason: impl Into<String>) -> Self {
        Error::Format {
            path: path.into(),
            line,
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_both_counts() {
        let err = Error::PairCountExceedsCampaign {
            requested: 12,
            available: 4,
        };
        let msg = err.to_string();
        assert!(msg.contains("12") && msg.contains('4'), "{msg}");
        let err = Error::NotEnoughDies { got: 1, need: 2 };
        assert!(err.to_string().contains("at least 2"), "{err}");
    }

    #[test]
    fn io_and_format_variants_carry_file_context() {
        let e = Error::io(
            "/tmp/golden.htd",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert!(e.to_string().contains("/tmp/golden.htd"), "{e}");
        assert!(std::error::Error::source(&e).is_some());

        let e = Error::format("golden.htd", 7, "checksum mismatch");
        assert_eq!(e.to_string(), "golden.htd:7: checksum mismatch");
        // Whole-file failures omit the line number.
        let e = Error::format("golden.htd", 0, "truncated artifact");
        assert_eq!(e.to_string(), "golden.htd: truncated artifact");
    }

    #[test]
    fn degradation_variants_name_the_channel_and_budget() {
        let e = Error::AcquisitionExhausted {
            channel: "EM".into(),
            die: 3,
            attempts: 4,
        };
        let msg = e.to_string();
        assert!(
            msg.contains("EM") && msg.contains("die 3") && msg.contains('4'),
            "{msg}"
        );
        let e = Error::CalibrationDiverged {
            channel: "delay".into(),
            attempts: 2,
        };
        assert!(e.to_string().contains("delay"), "{e}");
        let e = Error::ChannelDegraded {
            channel: "power".into(),
            kept: 1,
            need: 2,
        };
        let msg = e.to_string();
        assert!(
            msg.contains("power") && msg.contains('1') && msg.contains('2'),
            "{msg}"
        );
    }

    #[test]
    fn substrate_errors_convert_and_chain() {
        let e: Error = StatsError::NotEnoughSamples { got: 1, need: 2 }.into();
        assert!(matches!(e, Error::Stats(_)));
        assert!(std::error::Error::source(&e).is_some());
        let e = Error::DegeneratePopulation {
            channel: "EM".into(),
            samples: 3,
            source: StatsError::NonPositiveScale { value: 0.0 },
        };
        assert!(e.to_string().contains("EM"), "{e}");
        assert!(std::error::Error::source(&e).is_some());
    }
}
