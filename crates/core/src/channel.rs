//! The pluggable measurement-channel abstraction.
//!
//! The paper's Section VI perspective — detection "using both delay and
//! EM measurements" — generalises to *N* side channels over one die
//! population. Every channel follows the same stage shape:
//!
//! 1. **calibrate** — establish measurement parameters on the golden
//!    devices (the delay channel aims its glitch sweep here; trace
//!    channels need no calibration),
//! 2. **acquire** — one raw measurement per device (a trace, or a
//!    mean-onset matrix),
//! 3. **characterize_golden** — fold the golden acquisitions into the
//!    channel's population reference (`E_n(G)` / the mean onset matrix),
//! 4. **score** — reduce one acquisition against the reference to a
//!    scalar decision metric.
//!
//! [`fusion::multi_channel_experiment`](crate::fusion::multi_channel_experiment)
//! drives any `&[&dyn Channel]` through these stages with one shared
//! loop: per-channel seeding comes from the
//! [`CampaignPlan`] seed tree (indices, never
//! scheduling), so every campaign is bit-identical at every worker
//! count; the fused decision is the channel-ordered sum of
//! golden-normalised z-scores.
//!
//! Three channels ship today: [`EmChannel`] (Section V),
//! [`DelayChannel`] (the inter-die generalisation of Section III) and
//! [`PowerChannel`] (the global power baseline the paper argues EM
//! beats). A future channel — TVLA, golden-free delay, learning-assisted
//! — is one more `impl Channel`.

use htd_em::Trace;
use htd_faults::{FaultPlan, RepHealth};
use htd_timing::GlitchParams;

use crate::campaign::CampaignPlan;
use crate::delay_detect::{measure_matrix_faulted, measure_matrix_with, DelayMatrix};
use crate::em_detect::{SideChannel, TraceMetric};
use crate::error::Error;
use crate::{Engine, ProgrammedDevice};

/// Channel-specific measurement parameters established by
/// [`Channel::calibrate`] and threaded through the later stages.
#[derive(Debug, Clone, PartialEq)]
pub enum Calibration {
    /// The channel needs no calibration (trace channels).
    None,
    /// A clock-glitch sweep aimed on the golden population (delay
    /// channel).
    Glitch(GlitchParams),
}

impl Calibration {
    /// The glitch parameters, or a shape error for `channel`.
    pub fn glitch(&self, channel: &str) -> Result<&GlitchParams, Error> {
        match self {
            Calibration::Glitch(p) => Ok(p),
            Calibration::None => Err(Error::ChannelShapeMismatch {
                channel: channel.to_string(),
                expected: "glitch calibration",
            }),
        }
    }
}

/// One device's raw measurement, as produced by [`Channel::acquire`].
#[derive(Debug, Clone, PartialEq)]
pub enum Acquisition {
    /// A side-channel trace (EM or power chain).
    Trace(Trace),
    /// A mean fault-onset matrix (delay chain).
    Matrix(DelayMatrix),
}

impl Acquisition {
    /// The trace, or a shape error for `channel`.
    pub fn trace(&self, channel: &str) -> Result<&Trace, Error> {
        match self {
            Acquisition::Trace(t) => Ok(t),
            Acquisition::Matrix(_) => Err(Error::ChannelShapeMismatch {
                channel: channel.to_string(),
                expected: "trace acquisition",
            }),
        }
    }

    /// The onset matrix, or a shape error for `channel`.
    pub fn matrix(&self, channel: &str) -> Result<&DelayMatrix, Error> {
        match self {
            Acquisition::Matrix(m) => Ok(m),
            Acquisition::Trace(_) => Err(Error::ChannelShapeMismatch {
                channel: channel.to_string(),
                expected: "matrix acquisition",
            }),
        }
    }
}

/// A channel's golden-population reference, as produced by
/// [`Channel::characterize_golden`].
#[derive(Debug, Clone, PartialEq)]
pub enum GoldenReference {
    /// The golden mean trace `E_n(G)` (Section V-A).
    MeanTrace(Trace),
    /// The golden population-mean onset matrix.
    MeanMatrix(DelayMatrix),
}

impl GoldenReference {
    /// The mean trace, or a shape error for `channel`.
    pub fn mean_trace(&self, channel: &str) -> Result<&Trace, Error> {
        match self {
            GoldenReference::MeanTrace(t) => Ok(t),
            GoldenReference::MeanMatrix(_) => Err(Error::ChannelShapeMismatch {
                channel: channel.to_string(),
                expected: "mean-trace reference",
            }),
        }
    }

    /// The mean matrix, or a shape error for `channel`.
    pub fn mean_matrix(&self, channel: &str) -> Result<&DelayMatrix, Error> {
        match self {
            GoldenReference::MeanMatrix(m) => Ok(m),
            GoldenReference::MeanTrace(_) => Err(Error::ChannelShapeMismatch {
                channel: channel.to_string(),
                expected: "mean-matrix reference",
            }),
        }
    }
}

/// One pluggable detection channel: the acquire → characterize_golden →
/// score stage pipeline over a die population.
///
/// Implementations must be `Sync` (stages fan across the
/// [`Engine`] worker pool) and must derive **all**
/// randomness from the `seed` passed to [`Channel::acquire`], never from
/// scheduling order — that is what keeps multi-channel campaigns
/// bit-identical for every worker count.
pub trait Channel: Sync {
    /// Channel label used in reports and error messages.
    fn name(&self) -> &'static str;

    /// Establishes measurement parameters on the golden devices. The
    /// default needs none ([`Calibration::None`]).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures from the golden devices.
    fn calibrate(
        &self,
        engine: &Engine,
        plan: &CampaignPlan,
        golden_devices: &[ProgrammedDevice<'_>],
    ) -> Result<Calibration, Error> {
        let _ = (engine, plan, golden_devices);
        Ok(Calibration::None)
    }

    /// Acquires one device's raw measurement. `seed` comes from the
    /// plan's seed tree ([`CampaignPlan::die_seed`] /
    /// [`CampaignPlan::spec_die_seed`]) and must fully determine the
    /// measurement noise.
    ///
    /// # Errors
    ///
    /// Propagates simulation and calibration-shape failures.
    fn acquire(
        &self,
        engine: &Engine,
        device: &ProgrammedDevice<'_>,
        plan: &CampaignPlan,
        calibration: &Calibration,
        seed: u64,
    ) -> Result<Acquisition, Error>;

    /// [`Channel::acquire`] under a [`FaultPlan`]: one acquisition
    /// attempt whose internal repetitions may be quarantined. Returns
    /// `Ok(None)` when injected repetition faults destroy the whole
    /// attempt (a delay sweep losing every repetition of some pair) —
    /// the caller re-acquires with a fresh [`htd_faults::retry_seed`].
    /// `ctx` names the attempt (channel index, population tag, die
    /// index, attempt number) so fault decisions stay index-pure.
    ///
    /// The default implementation is for channels without internal
    /// repetitions: it delegates to [`Channel::acquire`] and reports a
    /// fault-free [`RepHealth`]. Fed [`FaultPlan::none`], every
    /// implementation must be bit-identical to [`Channel::acquire`].
    ///
    /// # Errors
    ///
    /// Propagates simulation and calibration-shape failures.
    #[allow(clippy::too_many_arguments)]
    fn acquire_faulted(
        &self,
        engine: &Engine,
        device: &ProgrammedDevice<'_>,
        plan: &CampaignPlan,
        calibration: &Calibration,
        seed: u64,
        faults: &FaultPlan,
        ctx: &[u64; 4],
    ) -> Result<Option<(Acquisition, RepHealth)>, Error> {
        let _ = (faults, ctx);
        Ok(Some((
            self.acquire(engine, device, plan, calibration, seed)?,
            RepHealth::default(),
        )))
    }

    /// Folds the golden acquisitions into the channel's population
    /// reference.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyPopulation`] on zero acquisitions; shape errors if
    /// fed another channel's acquisitions.
    fn characterize_golden(
        &self,
        acquisitions: &[Acquisition],
        calibration: &Calibration,
    ) -> Result<GoldenReference, Error>;

    /// Scores one acquisition against the golden reference.
    ///
    /// # Errors
    ///
    /// Shape errors if fed another channel's acquisition or reference.
    fn score(
        &self,
        acquisition: &Acquisition,
        reference: &GoldenReference,
        calibration: &Calibration,
    ) -> Result<f64, Error>;
}

/// The near-field EM channel (paper Section V): averaged-trace
/// acquisition, golden mean trace `E_n(G)`, and a [`TraceMetric`] over
/// the deviation `D = |trace − E_n(G)|`.
#[derive(Debug, Clone, Copy, Default)]
pub struct EmChannel {
    metric: TraceMetric,
}

impl EmChannel {
    /// An EM channel with an explicit deviation metric.
    pub fn new(metric: TraceMetric) -> Self {
        EmChannel { metric }
    }

    /// The paper's channel: the sum-of-local-maxima metric.
    pub fn paper() -> Self {
        Self::new(TraceMetric::SumOfLocalMaxima)
    }
}

impl Channel for EmChannel {
    fn name(&self) -> &'static str {
        "EM"
    }

    fn acquire(
        &self,
        _engine: &Engine,
        device: &ProgrammedDevice<'_>,
        plan: &CampaignPlan,
        _calibration: &Calibration,
        seed: u64,
    ) -> Result<Acquisition, Error> {
        Ok(Acquisition::Trace(
            device.acquire_em_trace(&plan.pt, &plan.key, seed)?,
        ))
    }

    fn characterize_golden(
        &self,
        acquisitions: &[Acquisition],
        _calibration: &Calibration,
    ) -> Result<GoldenReference, Error> {
        mean_trace_reference(self.name(), acquisitions)
    }

    fn score(
        &self,
        acquisition: &Acquisition,
        reference: &GoldenReference,
        _calibration: &Calibration,
    ) -> Result<f64, Error> {
        score_trace(self.name(), self.metric, acquisition, reference)
    }
}

/// The global power channel (the paper's A4 baseline): the same stage
/// pipeline as [`EmChannel`], acquired through
/// [`htd_em::PowerSetup`]'s RC-filtered, position-blind supply chain.
#[derive(Debug, Clone, Copy, Default)]
pub struct PowerChannel {
    metric: TraceMetric,
}

impl PowerChannel {
    /// A power channel with an explicit deviation metric.
    pub fn new(metric: TraceMetric) -> Self {
        PowerChannel { metric }
    }
}

impl Channel for PowerChannel {
    fn name(&self) -> &'static str {
        "power"
    }

    fn acquire(
        &self,
        _engine: &Engine,
        device: &ProgrammedDevice<'_>,
        plan: &CampaignPlan,
        _calibration: &Calibration,
        seed: u64,
    ) -> Result<Acquisition, Error> {
        Ok(Acquisition::Trace(
            device.acquire_power_trace(&plan.pt, &plan.key, seed)?,
        ))
    }

    fn characterize_golden(
        &self,
        acquisitions: &[Acquisition],
        _calibration: &Calibration,
    ) -> Result<GoldenReference, Error> {
        mean_trace_reference(self.name(), acquisitions)
    }

    fn score(
        &self,
        acquisition: &Acquisition,
        reference: &GoldenReference,
        _calibration: &Calibration,
    ) -> Result<f64, Error> {
        score_trace(self.name(), self.metric, acquisition, reference)
    }
}

/// The inter-die delay channel (the generalisation of Section III used
/// by the fused experiment): calibrates a glitch sweep so even the
/// slowest die's slowest path faults, acquires one mean-onset matrix per
/// die, references the golden population-mean matrix, and scores the
/// mean absolute onset deviation in ps.
#[derive(Debug, Clone, Copy, Default)]
pub struct DelayChannel;

impl Channel for DelayChannel {
    fn name(&self) -> &'static str {
        "delay"
    }

    fn calibrate(
        &self,
        engine: &Engine,
        plan: &CampaignPlan,
        golden_devices: &[ProgrammedDevice<'_>],
    ) -> Result<Calibration, Error> {
        // Aim the glitch sweep so even the slowest die's slowest path
        // faults. Setup and measurement noise are technology constants,
        // identical on every die. The settles land in the device caches
        // and are reused by every matrix acquisition that follows.
        let first = golden_devices
            .first()
            .ok_or(Error::NotEnoughDies { got: 0, need: 1 })?;
        let setup = first.annotation().setup_ps();
        let noise = first.annotation().measurement_noise_ps();
        let per_die_max = engine.map(golden_devices, |_, dev| {
            let mut max_required: f64 = 0.0;
            for (pt, key) in &plan.pairs {
                let settles = dev.round10_settle_times_cached(pt, key)?;
                for s in settles.iter().flatten() {
                    max_required = max_required.max(s + setup);
                }
            }
            Ok::<f64, Error>(max_required)
        });
        let mut max_required: f64 = 0.0;
        for m in per_die_max {
            max_required = max_required.max(m?);
        }
        Ok(Calibration::Glitch(GlitchParams::paper_sweep(
            max_required,
            setup,
            noise,
        )))
    }

    fn acquire(
        &self,
        engine: &Engine,
        device: &ProgrammedDevice<'_>,
        plan: &CampaignPlan,
        calibration: &Calibration,
        seed: u64,
    ) -> Result<Acquisition, Error> {
        let params = calibration.glitch(self.name())?;
        let campaign = plan.delay_campaign();
        Ok(Acquisition::Matrix(measure_matrix_with(
            engine, device, &campaign, params, seed,
        )?))
    }

    fn acquire_faulted(
        &self,
        engine: &Engine,
        device: &ProgrammedDevice<'_>,
        plan: &CampaignPlan,
        calibration: &Calibration,
        seed: u64,
        faults: &FaultPlan,
        ctx: &[u64; 4],
    ) -> Result<Option<(Acquisition, RepHealth)>, Error> {
        let params = calibration.glitch(self.name())?;
        let campaign = plan.delay_campaign();
        Ok(
            measure_matrix_faulted(engine, device, &campaign, params, seed, faults, ctx)?
                .map(|(matrix, reps)| (Acquisition::Matrix(matrix), reps)),
        )
    }

    fn characterize_golden(
        &self,
        acquisitions: &[Acquisition],
        _calibration: &Calibration,
    ) -> Result<GoldenReference, Error> {
        if acquisitions.is_empty() {
            return Err(Error::EmptyPopulation {
                what: "golden matrix acquisitions",
            });
        }
        let matrices = acquisitions
            .iter()
            .map(|a| a.matrix(self.name()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(GoldenReference::MeanMatrix(mean_matrix(&matrices)))
    }

    fn score(
        &self,
        acquisition: &Acquisition,
        reference: &GoldenReference,
        calibration: &Calibration,
    ) -> Result<f64, Error> {
        let matrix = acquisition.matrix(self.name())?;
        let mean = reference.mean_matrix(self.name())?;
        let params = calibration.glitch(self.name())?;
        Ok(delay_metric(matrix, mean, params.step_ps))
    }
}

/// The trace channel for a measurement chain — [`EmChannel`] for the
/// probe, [`PowerChannel`] for the supply baseline.
pub fn trace_channel(chain: SideChannel, metric: TraceMetric) -> Box<dyn Channel> {
    match chain {
        SideChannel::Em => Box::new(EmChannel::new(metric)),
        SideChannel::Power => Box::new(PowerChannel::new(metric)),
    }
}

/// A constructible description of one channel — the piece of channel
/// configuration that can live in a stored artifact (or a CLI flag) and
/// be rebuilt into a live [`Channel`] later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelSpec {
    /// The near-field EM channel with its deviation metric.
    Em(TraceMetric),
    /// The global power baseline with its deviation metric.
    Power(TraceMetric),
    /// The clock-glitch delay channel.
    Delay,
}

impl ChannelSpec {
    /// The label the built channel will report ([`Channel::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            ChannelSpec::Em(_) => "EM",
            ChannelSpec::Power(_) => "power",
            ChannelSpec::Delay => "delay",
        }
    }

    /// Builds the live channel this spec describes.
    pub fn build(&self) -> Box<dyn Channel> {
        match self {
            ChannelSpec::Em(metric) => Box::new(EmChannel::new(*metric)),
            ChannelSpec::Power(metric) => Box::new(PowerChannel::new(*metric)),
            ChannelSpec::Delay => Box::new(DelayChannel),
        }
    }

    /// The spec's stable serialization token (`"em <metric>"`,
    /// `"power <metric>"`, `"delay"`), the inverse of
    /// [`ChannelSpec::from_token`].
    pub fn token(&self) -> String {
        match self {
            ChannelSpec::Em(m) => format!("em {}", m.token()),
            ChannelSpec::Power(m) => format!("power {}", m.token()),
            ChannelSpec::Delay => "delay".to_string(),
        }
    }

    /// Parses a [`ChannelSpec::token`] string. Returns `None` on any
    /// unknown kind, unknown metric, or trailing garbage.
    pub fn from_token(token: &str) -> Option<Self> {
        let mut words = token.split_whitespace();
        let spec = match (words.next()?, words.next()) {
            ("em", Some(m)) => ChannelSpec::Em(TraceMetric::from_token(m)?),
            ("power", Some(m)) => ChannelSpec::Power(TraceMetric::from_token(m)?),
            ("delay", None) => ChannelSpec::Delay,
            _ => return None,
        };
        match words.next() {
            Some(_) => None,
            None => Some(spec),
        }
    }
}

/// Shared stage 3 of the trace channels: the golden mean trace.
fn mean_trace_reference(
    channel: &'static str,
    acquisitions: &[Acquisition],
) -> Result<GoldenReference, Error> {
    if acquisitions.is_empty() {
        return Err(Error::EmptyPopulation {
            what: "golden trace acquisitions",
        });
    }
    let traces = acquisitions
        .iter()
        .map(|a| a.trace(channel).cloned())
        .collect::<Result<Vec<_>, _>>()?;
    Ok(GoldenReference::MeanTrace(Trace::mean_of(&traces)))
}

/// Shared stage 4 of the trace channels: the deviation metric against
/// `E_n(G)`.
fn score_trace(
    channel: &'static str,
    metric: TraceMetric,
    acquisition: &Acquisition,
    reference: &GoldenReference,
) -> Result<f64, Error> {
    let trace = acquisition.trace(channel)?;
    let mean = reference.mean_trace(channel)?;
    Ok(metric.evaluate(trace.abs_diff(mean).samples()))
}

/// Mean absolute onset deviation (ps) of a matrix against a reference.
pub(crate) fn delay_metric(matrix: &DelayMatrix, reference: &DelayMatrix, step_ps: f64) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for (row, ref_row) in matrix
        .mean_onset_steps
        .iter()
        .zip(&reference.mean_onset_steps)
    {
        for (a, b) in row.iter().zip(ref_row) {
            sum += (a - b).abs() * step_ps;
            n += 1;
        }
    }
    sum / n.max(1) as f64
}

/// Element-wise mean of a set of onset matrices.
pub(crate) fn mean_matrix(matrices: &[&DelayMatrix]) -> DelayMatrix {
    let pairs = matrices[0].mean_onset_steps.len();
    let bits = matrices[0]
        .mean_onset_steps
        .first()
        .map(Vec::len)
        .unwrap_or(0);
    let mut mean = vec![vec![0.0f64; bits]; pairs];
    for m in matrices {
        for (p, row) in m.mean_onset_steps.iter().enumerate() {
            for (b, v) in row.iter().enumerate() {
                mean[p][b] += v;
            }
        }
    }
    let n = matrices.len() as f64;
    for row in &mut mean {
        for v in row.iter_mut() {
            *v /= n;
        }
    }
    DelayMatrix {
        mean_onset_steps: mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_metric_is_mean_absolute_deviation() {
        let a = DelayMatrix {
            mean_onset_steps: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
        };
        let b = DelayMatrix {
            mean_onset_steps: vec![vec![2.0, 2.0], vec![3.0, 0.0]],
        };
        // |Δ| = [1, 0, 0, 4], mean = 1.25 steps × 35 ps.
        assert!((delay_metric(&a, &b, 35.0) - 1.25 * 35.0).abs() < 1e-12);
    }

    #[test]
    fn mean_matrix_averages_elementwise() {
        let a = DelayMatrix {
            mean_onset_steps: vec![vec![0.0, 4.0]],
        };
        let b = DelayMatrix {
            mean_onset_steps: vec![vec![2.0, 0.0]],
        };
        let m = mean_matrix(&[&a, &b]);
        assert_eq!(m.mean_onset_steps, vec![vec![1.0, 2.0]]);
    }

    #[test]
    fn stage_shapes_are_checked() {
        let trace_acq = Acquisition::Trace(Trace::new(vec![1.0, 2.0], 200.0));
        let matrix_acq = Acquisition::Matrix(DelayMatrix {
            mean_onset_steps: vec![vec![1.0]],
        });
        assert!(trace_acq.trace("EM").is_ok());
        assert!(matches!(
            trace_acq.matrix("delay"),
            Err(Error::ChannelShapeMismatch { .. })
        ));
        assert!(matrix_acq.matrix("delay").is_ok());
        assert!(matches!(
            matrix_acq.trace("EM"),
            Err(Error::ChannelShapeMismatch { .. })
        ));
        assert!(matches!(
            Calibration::None.glitch("delay"),
            Err(Error::ChannelShapeMismatch { .. })
        ));
    }

    #[test]
    fn trace_channel_picks_the_chain() {
        assert_eq!(
            trace_channel(SideChannel::Em, TraceMetric::SumOfLocalMaxima).name(),
            "EM"
        );
        assert_eq!(
            trace_channel(SideChannel::Power, TraceMetric::SumOfLocalMaxima).name(),
            "power"
        );
    }

    #[test]
    fn channel_spec_tokens_roundtrip() {
        let specs = [
            ChannelSpec::Em(TraceMetric::SumOfLocalMaxima),
            ChannelSpec::Em(TraceMetric::L2Norm),
            ChannelSpec::Power(TraceMetric::MaxPoint),
            ChannelSpec::Power(TraceMetric::SumAll),
            ChannelSpec::Delay,
        ];
        for spec in specs {
            let token = spec.token();
            assert_eq!(ChannelSpec::from_token(&token), Some(spec), "{token}");
            assert_eq!(spec.build().name(), spec.name());
        }
        for bad in ["", "em", "em bogus", "delay extra", "laser solm"] {
            assert_eq!(ChannelSpec::from_token(bad), None, "{bad}");
        }
    }

    #[test]
    fn empty_golden_population_is_an_error() {
        let ch = EmChannel::paper();
        assert!(matches!(
            ch.characterize_golden(&[], &Calibration::None),
            Err(Error::EmptyPopulation { .. })
        ));
        assert!(matches!(
            DelayChannel.characterize_golden(&[], &Calibration::None),
            Err(Error::EmptyPopulation { .. })
        ));
    }
}
