//! Multi-channel detection under inter-die process variations — the
//! paper's stated perspective (Section VI): *"a more precise evaluation of
//! impact of process variations on detection probability using **both**
//! delay and EM measurements."*
//!
//! Three detectors run over the same die population:
//!
//! * **EM channel** — the Section V sum-of-local-maxima metric.
//! * **Delay channel** — an inter-die generalisation of Section III: the
//!   golden *population mean* onset matrix replaces the same-die golden
//!   model, and the per-die statistic is the mean absolute onset deviation
//!   (in ps) over all pairs and bits.
//! * **Fused channel** — the sum of the two channels' golden-normalised
//!   z-scores; independent evidence adds, so the fused separation µ/σ is
//!   at best the quadrature sum of the channels'.

use htd_stats::detection::{empirical_rates, equal_error_rate};
use htd_stats::Gaussian;
use htd_trojan::TrojanSpec;

use crate::delay_detect::{measure_matrix_with, DelayCampaign, DelayMatrix};
use crate::em_detect::TraceMetric;
use crate::{Design, Engine, Lab, ProgrammedDevice};
use htd_em::Trace;
use htd_timing::GlitchParams;

/// Per-channel population statistics for one trojan.
#[derive(Debug, Clone)]
pub struct ChannelResult {
    /// Channel label (`"EM"`, `"delay"`, `"fused"`).
    pub channel: &'static str,
    /// Metric offset µ between infected and golden populations.
    pub mu: f64,
    /// Pooled metric standard deviation.
    pub sigma: f64,
    /// Eq. (5) analytic equal error rate.
    pub analytic_fn_rate: f64,
    /// Empirical false-negative rate at the midpoint threshold.
    pub empirical_fn_rate: f64,
}

impl ChannelResult {
    fn from_populations(channel: &'static str, golden: &[f64], infected: &[f64]) -> Self {
        let g = Gaussian::fit(golden).expect("golden population has spread");
        let t = Gaussian::fit(infected).expect("infected population has spread");
        let mu = t.mean() - g.mean();
        let sigma = ((g.std() * g.std() + t.std() * t.std()) / 2.0).sqrt();
        let analytic = if mu > 0.0 {
            equal_error_rate(mu, sigma)
        } else {
            0.5
        };
        let midpoint = g.mean() + mu / 2.0;
        let (_, fnr) = empirical_rates(golden, infected, midpoint);
        ChannelResult {
            channel,
            mu,
            sigma,
            analytic_fn_rate: analytic,
            empirical_fn_rate: fnr,
        }
    }
}

/// Results of the multi-channel experiment for one trojan.
#[derive(Debug, Clone)]
pub struct FusionRow {
    /// Trojan name.
    pub name: String,
    /// EM-only channel.
    pub em: ChannelResult,
    /// Delay-only channel.
    pub delay: ChannelResult,
    /// Fused (z-score sum) channel.
    pub fused: ChannelResult,
}

/// The full multi-channel report.
#[derive(Debug, Clone)]
pub struct FusionReport {
    /// One row per trojan.
    pub rows: Vec<FusionRow>,
    /// Population size.
    pub n_dies: usize,
}

/// The per-die raw measurements of one design across the population.
struct PopulationMeasurement {
    em_metrics: Vec<f64>,
    delay_metrics: Vec<f64>,
}

/// Mean absolute onset deviation (ps) of a matrix against a reference.
fn delay_metric(matrix: &DelayMatrix, reference: &DelayMatrix, step_ps: f64) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for (row, ref_row) in matrix
        .mean_onset_steps
        .iter()
        .zip(&reference.mean_onset_steps)
    {
        for (a, b) in row.iter().zip(ref_row) {
            sum += (a - b).abs() * step_ps;
            n += 1;
        }
    }
    sum / n.max(1) as f64
}

/// Element-wise mean of a set of onset matrices.
fn mean_matrix(matrices: &[DelayMatrix]) -> DelayMatrix {
    let pairs = matrices[0].mean_onset_steps.len();
    let bits = matrices[0].mean_onset_steps[0].len();
    let mut mean = vec![vec![0.0f64; bits]; pairs];
    for m in matrices {
        for (p, row) in m.mean_onset_steps.iter().enumerate() {
            for (b, v) in row.iter().enumerate() {
                mean[p][b] += v;
            }
        }
    }
    let n = matrices.len() as f64;
    for row in &mut mean {
        for v in row.iter_mut() {
            *v /= n;
        }
    }
    DelayMatrix {
        mean_onset_steps: mean,
    }
}

/// Measures one design's population over prebuilt devices — one EM metric
/// and one delay metric per die. The fan is per die on `engine`; the
/// per-die matrix measurement runs on [`Engine::serial`] so pools never
/// nest (the matrix is bit-identical either way). The devices' simulation
/// caches make the second and later populations over the same devices
/// cheap.
#[allow(clippy::too_many_arguments)]
fn measure_population(
    engine: &Engine,
    devs: &[ProgrammedDevice<'_>],
    params: &GlitchParams,
    campaign: &DelayCampaign,
    em_reference: &Trace,
    delay_reference: &DelayMatrix,
    pt: &[u8; 16],
    key: &[u8; 16],
    seed: u64,
) -> PopulationMeasurement {
    let per_die = engine.map(devs, |j, dev| {
        let trace = dev.acquire_em_trace(pt, key, seed.wrapping_add(j as u64));
        let em = TraceMetric::SumOfLocalMaxima.evaluate(trace.abs_diff(em_reference).samples());
        let matrix = measure_matrix_with(
            &Engine::serial(),
            dev,
            campaign,
            params,
            seed.wrapping_add(j as u64),
        );
        (em, delay_metric(&matrix, delay_reference, params.step_ps))
    });
    let (em_metrics, delay_metrics) = per_die.into_iter().unzip();
    PopulationMeasurement {
        em_metrics,
        delay_metrics,
    }
}

/// Runs the fused delay+EM experiment over `n_dies` dies.
///
/// The delay campaign is intentionally small (a handful of pairs) — the
/// point is channel comparison, not full fingerprinting.
///
/// # Errors
///
/// Propagates design construction and fitting failures.
#[allow(clippy::too_many_arguments)]
pub fn fusion_experiment(
    lab: &Lab,
    specs: &[TrojanSpec],
    n_dies: usize,
    campaign_pairs: usize,
    pt: &[u8; 16],
    key: &[u8; 16],
    seed: u64,
) -> Result<FusionReport, Box<dyn std::error::Error>> {
    fusion_experiment_with(
        &Engine::default(),
        lab,
        specs,
        n_dies,
        campaign_pairs,
        pt,
        key,
        seed,
    )
}

/// [`fusion_experiment`] on an explicit [`Engine`].
///
/// Each (design, die) device is programmed **once** and reused — with its
/// simulation caches warm — across sweep aiming, the golden references
/// and the population measurement, instead of being rebuilt (and
/// re-simulated) at every stage. All per-die fans use index-derived
/// seeds, so the report is bit-identical for every worker count.
///
/// # Errors
///
/// Propagates design construction and fitting failures.
#[allow(clippy::too_many_arguments)]
pub fn fusion_experiment_with(
    engine: &Engine,
    lab: &Lab,
    specs: &[TrojanSpec],
    n_dies: usize,
    campaign_pairs: usize,
    pt: &[u8; 16],
    key: &[u8; 16],
    seed: u64,
) -> Result<FusionReport, Box<dyn std::error::Error>> {
    let golden = Design::golden(lab)?;
    let dies = lab.fabricate_batch(n_dies);
    let campaign = DelayCampaign::random(campaign_pairs, 3, seed);

    // Program the golden design once per die; every later stage shares
    // these devices and their caches.
    let golden_devs: Vec<ProgrammedDevice<'_>> =
        engine.map(&dies, |_, die| ProgrammedDevice::new(lab, &golden, die));

    // Aim the glitch sweep so even the slowest die's slowest path faults.
    // Setup and measurement noise are technology constants, identical on
    // every die. The settles land in the device caches and are reused by
    // every matrix measurement below.
    let first_dev = golden_devs.first().ok_or("need at least one die")?;
    let setup = first_dev.annotation().setup_ps();
    let noise = first_dev.annotation().measurement_noise_ps();
    let per_die_max = engine.map(&golden_devs, |_, dev| {
        let mut max_required: f64 = 0.0;
        for (pt_i, key_i) in &campaign.pairs {
            let settles = dev.round10_settle_times_cached(pt_i, key_i)?;
            for s in settles.iter().flatten() {
                max_required = max_required.max(s + setup);
            }
        }
        Ok::<f64, htd_netlist::NetlistError>(max_required)
    });
    let mut max_required: f64 = 0.0;
    for m in per_die_max {
        max_required = max_required.max(m?);
    }
    let params = GlitchParams::paper_sweep(max_required, setup, noise);

    // Golden population references: EM mean trace + mean onset matrix.
    let golden_traces: Vec<Trace> = engine.map(&golden_devs, |j, dev| {
        dev.acquire_em_trace(pt, key, seed.wrapping_add(j as u64))
    });
    let em_reference = Trace::mean_of(&golden_traces);
    let golden_matrices: Vec<DelayMatrix> = engine.map(&golden_devs, |j, dev| {
        measure_matrix_with(
            &Engine::serial(),
            dev,
            &campaign,
            &params,
            seed.wrapping_add(j as u64),
        )
    });
    let delay_reference = mean_matrix(&golden_matrices);

    let golden_pop = measure_population(
        engine,
        &golden_devs,
        &params,
        &campaign,
        &em_reference,
        &delay_reference,
        pt,
        key,
        seed,
    );

    let fuse = |em: &[f64], delay: &[f64], g_em: &Gaussian, g_dl: &Gaussian| -> Vec<f64> {
        em.iter()
            .zip(delay)
            .map(|(e, d)| (e - g_em.mean()) / g_em.std() + (d - g_dl.mean()) / g_dl.std())
            .collect()
    };
    let g_em = Gaussian::fit(&golden_pop.em_metrics)?;
    let g_dl = Gaussian::fit(&golden_pop.delay_metrics)?;
    let golden_fused = fuse(&golden_pop.em_metrics, &golden_pop.delay_metrics, &g_em, &g_dl);

    let mut rows = Vec::with_capacity(specs.len());
    for (s, spec) in specs.iter().enumerate() {
        let infected = Design::infected(lab, spec)?;
        let infected_devs: Vec<ProgrammedDevice<'_>> =
            engine.map(&dies, |_, die| ProgrammedDevice::new(lab, &infected, die));
        let pop = measure_population(
            engine,
            &infected_devs,
            &params,
            &campaign,
            &em_reference,
            &delay_reference,
            pt,
            key,
            seed.wrapping_add(0x2000 * (s as u64 + 1)),
        );
        let infected_fused = fuse(&pop.em_metrics, &pop.delay_metrics, &g_em, &g_dl);
        rows.push(FusionRow {
            name: spec.name.clone(),
            em: ChannelResult::from_populations("EM", &golden_pop.em_metrics, &pop.em_metrics),
            delay: ChannelResult::from_populations(
                "delay",
                &golden_pop.delay_metrics,
                &pop.delay_metrics,
            ),
            fused: ChannelResult::from_populations("fused", &golden_fused, &infected_fused),
        });
    }
    Ok(FusionReport { rows, n_dies })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_result_computes_separation() {
        let golden = vec![1.0, 2.0, 3.0, 2.0, 1.5, 2.5];
        let infected: Vec<f64> = golden.iter().map(|x| x + 5.0).collect();
        let r = ChannelResult::from_populations("EM", &golden, &infected);
        assert!((r.mu - 5.0).abs() < 1e-12);
        assert!(r.analytic_fn_rate < 0.01);
        assert_eq!(r.empirical_fn_rate, 0.0);
    }

    #[test]
    fn delay_metric_is_mean_absolute_deviation() {
        let a = DelayMatrix {
            mean_onset_steps: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
        };
        let b = DelayMatrix {
            mean_onset_steps: vec![vec![2.0, 2.0], vec![3.0, 0.0]],
        };
        // |Δ| = [1, 0, 0, 4], mean = 1.25 steps × 35 ps.
        assert!((delay_metric(&a, &b, 35.0) - 1.25 * 35.0).abs() < 1e-12);
    }

    #[test]
    fn mean_matrix_averages_elementwise() {
        let a = DelayMatrix {
            mean_onset_steps: vec![vec![0.0, 4.0]],
        };
        let b = DelayMatrix {
            mean_onset_steps: vec![vec![2.0, 0.0]],
        };
        let m = mean_matrix(&[a, b]);
        assert_eq!(m.mean_onset_steps, vec![vec![1.0, 2.0]]);
    }

    #[test]
    fn small_fusion_experiment_runs() {
        let lab = Lab::paper();
        let report = fusion_experiment(
            &lab,
            &[TrojanSpec::ht2()],
            6,
            2,
            &[0x11u8; 16],
            &[0x22u8; 16],
            42,
        )
        .unwrap();
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];
        assert!(row.em.mu > 0.0, "EM channel must separate");
        // The fused channel should never be *worse* than the best single
        // channel by much (z-score fusion of a useless channel costs at
        // most √2 in σ).
        let best = row
            .em
            .analytic_fn_rate
            .min(row.delay.analytic_fn_rate);
        assert!(
            row.fused.analytic_fn_rate < best + 0.2,
            "fused {} vs best {}",
            row.fused.analytic_fn_rate,
            best
        );
    }
}
