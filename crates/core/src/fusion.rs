//! Multi-channel detection under inter-die process variations — the
//! paper's stated perspective (Section VI): *"a more precise evaluation of
//! impact of process variations on detection probability using **both**
//! delay and EM measurements."*
//!
//! The campaign is split into the two halves of the paper's methodology,
//! so a trusted characterization can be produced **once** and amortised
//! over many scoring runs (the `htd-store` crate persists it between
//! processes):
//!
//! * [`characterize_campaign`] — run the golden population through every
//!   channel's calibrate → acquire → characterize_golden → score stages
//!   and fold the results into a durable [`GoldenCharacterization`].
//! * [`score_campaign`] — score any set of suspect designs against a
//!   (possibly reloaded) characterization, producing the same
//!   [`MultiChannelReport`] as the one-shot experiment.
//!
//! [`multi_channel_experiment`] composes the two; both halves derive every
//! seed from the [`CampaignPlan`] seed tree, so reports are bit-identical
//! for every worker count *and* across the save/load boundary.
//!
//! Channels:
//!
//! * **EM channel** — the Section V sum-of-local-maxima metric.
//! * **Delay channel** — an inter-die generalisation of Section III: the
//!   golden *population mean* onset matrix replaces the same-die golden
//!   model, and the per-die statistic is the mean absolute onset deviation
//!   (in ps) over all pairs and bits.
//! * **Power channel** — the paper's A4 global-supply baseline, run
//!   through the identical pipeline for a like-for-like comparison.
//! * **Fused channel** — the sum of the channels' golden-normalised
//!   z-scores; independent evidence adds, so the fused separation µ/σ is
//!   at best the quadrature sum of the channels'.

use htd_faults::{retry_seed, FaultPlan, FaultSite};
use htd_stats::detection::{empirical_rates, equal_error_rate};
use htd_stats::logistic::LogisticModel;
use htd_stats::Gaussian;
use htd_trojan::TrojanSpec;

use crate::campaign::CampaignPlan;
use crate::channel::{Acquisition, Calibration, Channel, DelayChannel, EmChannel, GoldenReference};
use crate::engine::Attempt;
use crate::error::Error;
use crate::resilience::{ChannelHealth, RetryPolicy};
use crate::{Design, Engine, Lab, ProgrammedDevice};
use htd_fabric::DieVariation;

/// Population tag of the golden characterization in fault-decision
/// contexts; suspect design `s` uses `s + 1`.
pub(crate) const POP_GOLDEN: u64 = 0;

/// Per-channel population statistics for one trojan.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelResult {
    /// Channel label (`"EM"`, `"delay"`, `"power"`, `"fused"`).
    pub channel: String,
    /// Metric offset µ between infected and golden populations.
    pub mu: f64,
    /// Pooled metric standard deviation.
    pub sigma: f64,
    /// Eq. (5) analytic equal error rate.
    pub analytic_fn_rate: f64,
    /// Empirical false-negative rate at the midpoint threshold.
    pub empirical_fn_rate: f64,
    /// Empirical false-positive rate at the midpoint threshold.
    pub empirical_fp_rate: f64,
}

impl ChannelResult {
    /// Fits Eq. (5) Gaussians to the two metric populations and evaluates
    /// the analytic and empirical (midpoint-threshold) error rates.
    ///
    /// # Errors
    ///
    /// [`Error::DegeneratePopulation`] if either population has no spread
    /// (or too few samples) — e.g. constant metrics from a campaign with
    /// zero measurement noise.
    pub fn fit(
        channel: impl Into<String>,
        golden: &[f64],
        infected: &[f64],
    ) -> Result<Self, Error> {
        let channel = channel.into();
        let degenerate = |channel: &str, samples: usize| {
            let channel = channel.to_string();
            move |source| Error::DegeneratePopulation {
                channel,
                samples,
                source,
            }
        };
        let g = Gaussian::fit(golden).map_err(degenerate(&channel, golden.len()))?;
        let t = Gaussian::fit(infected).map_err(degenerate(&channel, infected.len()))?;
        let mu = t.mean() - g.mean();
        let sigma = ((g.std() * g.std() + t.std() * t.std()) / 2.0).sqrt();
        let analytic = if mu > 0.0 {
            equal_error_rate(mu, sigma)
        } else {
            0.5
        };
        let midpoint = g.mean() + mu / 2.0;
        let (fp, fnr) = empirical_rates(golden, infected, midpoint);
        Ok(ChannelResult {
            channel,
            mu,
            sigma,
            analytic_fn_rate: analytic,
            empirical_fn_rate: fnr,
            empirical_fp_rate: fp,
        })
    }
}

/// One trojan's results across every channel of a multi-channel campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiChannelRow {
    /// Trojan name.
    pub name: String,
    /// Trojan area as a fraction of the AES design.
    pub size_fraction: f64,
    /// One result per channel, in the order the channels were supplied.
    pub channels: Vec<ChannelResult>,
    /// The fused (z-score sum) channel; present when at least two
    /// channels ran.
    pub fused: Option<ChannelResult>,
}

/// The result of a [`multi_channel_experiment`] campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiChannelReport {
    /// One row per trojan, in the order supplied.
    pub rows: Vec<MultiChannelRow>,
    /// Population size.
    pub n_dies: usize,
    /// The channel labels, in execution order.
    pub channel_names: Vec<String>,
    /// Per-channel health of the campaign: present (one entry per
    /// surviving channel, then one per lost channel) when the campaign
    /// ran under an active [`FaultPlan`] or against a degraded
    /// characterization; empty for a pristine campaign.
    pub health: Vec<ChannelHealth>,
}

/// Results of the historical two-channel experiment for one trojan.
#[derive(Debug, Clone)]
pub struct FusionRow {
    /// Trojan name.
    pub name: String,
    /// EM-only channel.
    pub em: ChannelResult,
    /// Delay-only channel.
    pub delay: ChannelResult,
    /// Fused (z-score sum) channel.
    pub fused: ChannelResult,
}

/// The full two-channel report (a [`MultiChannelReport`] view kept for
/// the paper's delay+EM experiment).
#[derive(Debug, Clone)]
pub struct FusionReport {
    /// One row per trojan.
    pub rows: Vec<FusionRow>,
    /// Population size.
    pub n_dies: usize,
}

/// One channel's durable golden-population state: everything scoring
/// needs once the golden devices have left the bench. Produced by
/// [`characterize_campaign`]; persisted by `htd-store`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelState {
    /// The channel's label ([`Channel::name`]).
    pub channel: String,
    /// Measurement parameters established on the golden population.
    pub calibration: Calibration,
    /// The golden-population reference (`E_n(G)` / mean onset matrix).
    pub reference: GoldenReference,
    /// Per-die golden scores against the reference (die order).
    pub scores: Vec<f64>,
    /// Die indices the scores cover, ascending. `0..n_dies` for a
    /// fault-free characterization; a strict subset when dies were
    /// quarantined under a degraded policy.
    pub kept: Vec<usize>,
    /// Acquisition health of the characterization run for this channel.
    pub health: ChannelHealth,
}

impl ChannelState {
    /// A fault-free channel state: `kept` covers every score index and
    /// the health record is pristine.
    pub fn pristine(
        channel: impl Into<String>,
        calibration: Calibration,
        reference: GoldenReference,
        scores: Vec<f64>,
    ) -> Self {
        let channel = channel.into();
        let health = ChannelHealth::pristine(channel.clone(), scores.len());
        ChannelState {
            channel,
            calibration,
            reference,
            kept: (0..scores.len()).collect(),
            scores,
            health,
        }
    }
}

/// A trusted characterization of one golden population: the campaign it
/// was measured under plus every channel's [`ChannelState`]. This is the
/// paper's "golden model", in amortisable form — characterize once with
/// [`characterize_campaign`], then score any number of suspect
/// populations with [`score_campaign`].
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenCharacterization {
    /// The campaign the golden population was measured under. Scoring
    /// re-derives every suspect seed from this plan's seed tree.
    pub plan: CampaignPlan,
    /// Per-channel golden state, in channel execution order.
    pub states: Vec<ChannelState>,
    /// Channels lost entirely during characterization (calibration
    /// diverged, or too few dies survived), recorded so a degraded
    /// characterization cannot pass for a complete one. Empty for a
    /// fault-free run.
    pub lost: Vec<ChannelHealth>,
}

/// One channel's scored populations for a single suspect design: the
/// golden per-die scores (from the characterization) next to the
/// suspect's. This is the unit `htd fuse` consumes from disk.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredChannel {
    /// The channel's label.
    pub channel: String,
    /// Per-die golden scores.
    pub golden: Vec<f64>,
    /// Per-die suspect scores.
    pub infected: Vec<f64>,
}

/// One suspect design's scored channel populations, as produced inside
/// [`score_campaign_faulted`] (the per-design artifacts `htd score
/// --scores-dir` persists).
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredDesign {
    /// The design's name.
    pub name: String,
    /// Trojan area as a fraction of the AES design.
    pub size_fraction: f64,
    /// One scored population per surviving channel, in channel order.
    pub scored: Vec<ScoredChannel>,
}

/// The full outcome of a fault-aware scoring campaign: the rendered
/// report plus the per-design scored populations it was reduced from.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredCampaign {
    /// The multi-channel report, including its health section.
    pub report: MultiChannelReport,
    /// Per-design scored channel populations.
    pub designs: Vec<ScoredDesign>,
}

/// Acquires and scores one design population for one channel. The fan is
/// per die on `engine`; the per-die acquisition runs on
/// [`Engine::serial`] so pools never nest (the values are bit-identical
/// either way), and every seed comes from the plan's seed tree.
fn score_population(
    engine: &Engine,
    channel: &dyn Channel,
    devs: &[ProgrammedDevice<'_>],
    plan: &CampaignPlan,
    calibration: &Calibration,
    reference: &GoldenReference,
    seed_of: impl Fn(usize) -> u64 + Sync,
) -> Result<Vec<f64>, Error> {
    let _span = engine.obs().span(&format!("acquire.{}", channel.name()));
    let acquisitions = engine
        .map(devs, |j, dev| {
            channel.acquire(&engine.serial_like(), dev, plan, calibration, seed_of(j))
        })
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
    acquisitions
        .iter()
        .map(|a| channel.score(a, reference, calibration))
        .collect()
}

/// The fused statistic: per die, the sum over channels of the
/// golden-normalised z-score. Channel order fixes the summation order.
fn fuse(golden_fits: &[Gaussian], per_channel_scores: &[Vec<f64>], n_dies: usize) -> Vec<f64> {
    (0..n_dies)
        .map(|j| {
            golden_fits
                .iter()
                .zip(per_channel_scores)
                .map(|(g, scores)| (scores[j] - g.mean()) / g.std())
                .sum()
        })
        .collect()
}

/// [`fuse`] over partially-kept populations: each channel supplies
/// `(kept die indices, scores)`, and a die contributes a fused value
/// only when **every** channel kept it (a z-score sum with a missing
/// addend would not be comparable). With identity masks this performs
/// exactly the floating-point operations of [`fuse`], in the same
/// order.
pub(crate) fn fuse_masked(
    golden_fits: &[Gaussian],
    per_channel: &[(&[usize], &[f64])],
    n_dies: usize,
) -> Vec<f64> {
    let dense: Vec<Vec<Option<f64>>> = per_channel
        .iter()
        .map(|(kept, scores)| {
            let mut d = vec![None; n_dies];
            for (k, &die) in kept.iter().enumerate() {
                d[die] = Some(scores[k]);
            }
            d
        })
        .collect();
    (0..n_dies)
        .filter_map(|j| {
            let mut sum = 0.0f64;
            for (g, d) in golden_fits.iter().zip(&dense) {
                match d[j] {
                    Some(x) => sum += (x - g.mean()) / g.std(),
                    None => return None,
                }
            }
            Some(sum)
        })
        .collect()
}

/// Gathers the per-die feature rows of a population over partially-kept
/// channels: row `x` holds one value per channel, and a die contributes
/// a row only when **every** channel kept it (the learned classifier's
/// analogue of `fuse_masked`'s masking rule). Rows come out in die
/// order, so downstream reductions are presentation-order stable.
pub fn masked_feature_rows(per_channel: &[(&[usize], &[f64])], n_dies: usize) -> Vec<Vec<f64>> {
    let dense: Vec<Vec<Option<f64>>> = per_channel
        .iter()
        .map(|(kept, scores)| {
            let mut d = vec![None; n_dies];
            for (k, &die) in kept.iter().enumerate() {
                d[die] = Some(scores[k]);
            }
            d
        })
        .collect();
    (0..n_dies)
        .filter_map(|j| dense.iter().map(|d| d[j]).collect::<Option<Vec<f64>>>())
        .collect()
}

/// Checks a classifier's feature labels against the campaign's channel
/// names (count, names, order).
pub(crate) fn check_model_features<'n>(
    model: &LogisticModel,
    names: impl ExactSizeIterator<Item = &'n str>,
) -> Result<(), Error> {
    let mismatch = || Error::ChannelShapeMismatch {
        channel: model.features.join("+"),
        expected: "classifier features matching the channel set",
    };
    if model.features.len() != names.len() {
        return Err(mismatch());
    }
    for (feature, name) in model.features.iter().zip(names) {
        if feature != name {
            return Err(mismatch());
        }
    }
    Ok(())
}

/// The learned analogue of the fused channel: per-die classifier logits
/// over the dies kept by every channel, reduced exactly like any other
/// metric population. The empirical rates are taken at logit `0` — the
/// classifier's trained 0.5-probability boundary — instead of the
/// two-Gaussian midpoint, which is precisely how the learned mode
/// replaces the erf threshold.
pub(crate) fn learned_result(
    model: &LogisticModel,
    golden: &[(&[usize], &[f64])],
    suspect: &[(&[usize], &[f64])],
    n_dies: usize,
) -> Result<ChannelResult, Error> {
    let logits = |per_channel: &[(&[usize], &[f64])]| -> Result<Vec<f64>, Error> {
        masked_feature_rows(per_channel, n_dies)
            .iter()
            .map(|row| model.logit(row).map_err(Error::from))
            .collect()
    };
    let golden_logits = logits(golden)?;
    let suspect_logits = logits(suspect)?;
    let degenerate = |samples: usize| {
        move |source| Error::DegeneratePopulation {
            channel: "learned".to_string(),
            samples,
            source,
        }
    };
    let g = Gaussian::fit(&golden_logits).map_err(degenerate(golden_logits.len()))?;
    let t = Gaussian::fit(&suspect_logits).map_err(degenerate(suspect_logits.len()))?;
    let mu = t.mean() - g.mean();
    let sigma = ((g.std() * g.std() + t.std() * t.std()) / 2.0).sqrt();
    let analytic = if mu > 0.0 {
        equal_error_rate(mu, sigma)
    } else {
        0.5
    };
    let (fp, fnr) = empirical_rates(&golden_logits, &suspect_logits, 0.0);
    Ok(ChannelResult {
        channel: "learned".to_string(),
        mu,
        sigma,
        analytic_fn_rate: analytic,
        empirical_fn_rate: fnr,
        empirical_fp_rate: fp,
    })
}

/// Fits the golden Gaussian of every channel state (the fusion
/// normalisation).
fn golden_fits(states: &[ChannelState]) -> Result<Vec<Gaussian>, Error> {
    states
        .iter()
        .map(|state| {
            Gaussian::fit(&state.scores).map_err(|source| Error::DegeneratePopulation {
                channel: state.channel.clone(),
                samples: state.scores.len(),
                source,
            })
        })
        .collect()
}

/// Characterizes the golden population of `plan` under every supplied
/// channel, with the default (auto-sized) [`Engine`].
///
/// # Errors
///
/// [`Error::EmptyPopulation`] with no channels, [`Error::NotEnoughDies`]
/// below two dies; design and simulation failures otherwise.
pub fn characterize_campaign(
    lab: &Lab,
    plan: &CampaignPlan,
    channels: &[&dyn Channel],
) -> Result<GoldenCharacterization, Error> {
    characterize_campaign_with(&Engine::default(), lab, plan, channels)
}

/// [`characterize_campaign`] on an explicit [`Engine`].
///
/// Each golden (die) device is programmed **once** and reused — with its
/// simulation caches warm — across calibration, reference building and
/// golden scoring. All per-die fans use seeds from the plan's seed tree,
/// so the characterization is bit-identical for every worker count.
///
/// # Errors
///
/// See [`characterize_campaign`].
pub fn characterize_campaign_with(
    engine: &Engine,
    lab: &Lab,
    plan: &CampaignPlan,
    channels: &[&dyn Channel],
) -> Result<GoldenCharacterization, Error> {
    characterize_campaign_faulted(
        engine,
        lab,
        plan,
        channels,
        &FaultPlan::none(),
        &RetryPolicy::strict(),
    )
}

/// One channel's population acquisition under a fault plan: the kept die
/// indices (ascending), their acquisitions, and the health ledger.
pub(crate) struct PopulationAcquisition {
    pub(crate) kept: Vec<usize>,
    pub(crate) acquisitions: Vec<Acquisition>,
    pub(crate) health: ChannelHealth,
}

/// Acquires one channel over a device population with retry and
/// quarantine. Fault decisions and retry seeds derive from
/// `(channel index, population tag, die index, attempt)` — indices,
/// never scheduling — so the same plan quarantines the same dies at any
/// worker count. Under [`FaultPlan::none`] and the strict policy this
/// performs exactly the acquisitions of the historical fault-oblivious
/// loop.
#[allow(clippy::too_many_arguments)]
pub(crate) fn acquire_population_faulted(
    engine: &Engine,
    channel: &dyn Channel,
    channel_index: usize,
    devs: &[ProgrammedDevice<'_>],
    plan: &CampaignPlan,
    calibration: &Calibration,
    faults: &FaultPlan,
    policy: &RetryPolicy,
    pop: u64,
    seed_of: impl Fn(usize) -> u64 + Sync,
) -> Result<PopulationAcquisition, Error> {
    let _span = engine.obs().span(&format!("acquire.{}", channel.name()));
    let outcomes = engine.map_retry(devs.len(), policy.max_retries, |j, attempt| {
        let ctx = [channel_index as u64, pop, j as u64, attempt as u64];
        if faults.fires(FaultSite::Acquire, &ctx) {
            engine.obs().incr("faults.acquire.fired");
            return Attempt::Faulted;
        }
        let seed = retry_seed(seed_of(j), attempt);
        match channel.acquire_faulted(
            &engine.serial_like(),
            &devs[j],
            plan,
            calibration,
            seed,
            faults,
            &ctx,
        ) {
            Ok(Some(value)) => Attempt::Ok(value),
            Ok(None) => Attempt::Faulted,
            Err(e) => Attempt::Fatal(e),
        }
    })?;
    // Repetition counters stay zero under the none-plan so a fault-free
    // run reports exactly the pristine health record.
    let track_reps = !faults.is_none();
    let mut health = ChannelHealth::pristine(channel.name(), 0);
    let mut kept = Vec::with_capacity(devs.len());
    let mut acquisitions = Vec::with_capacity(devs.len());
    for (j, outcome) in outcomes.into_iter().enumerate() {
        health.attempted += outcome.attempts;
        health.retried += outcome.attempts - 1;
        match outcome.value {
            Some((acquisition, reps)) => {
                if track_reps {
                    health.reps_attempted += reps.attempted;
                    health.reps_dropped += reps.dropped;
                }
                kept.push(j);
                acquisitions.push(acquisition);
            }
            None => {
                if !policy.allow_degraded {
                    return Err(Error::AcquisitionExhausted {
                        channel: channel.name().to_string(),
                        die: j,
                        attempts: outcome.attempts,
                    });
                }
                health.dropped += 1;
            }
        }
    }
    // Retry totals are index-pure (see above), so this counter is as
    // worker-invariant as the health ledger it mirrors.
    engine.obs().add("retry.acquire", health.retried as u64);
    Ok(PopulationAcquisition {
        kept,
        acquisitions,
        health,
    })
}

/// [`characterize_campaign_with`] under a [`FaultPlan`] and
/// [`RetryPolicy`]: calibrations that diverge and acquisitions that fail
/// are retried up to the budget with fresh index-derived seeds; with
/// `allow_degraded`, exhausted dies are quarantined (recorded in the
/// state's [`ChannelHealth`]) and exhausted calibrations lose the whole
/// channel (recorded in [`GoldenCharacterization::lost`]).
///
/// Determinism: every fault decision and retry seed derives from the
/// event's indices, so the same plans produce a bit-identical (possibly
/// degraded) characterization at any worker count. Fed
/// [`FaultPlan::none`] + [`RetryPolicy::strict`], this *is* the
/// historical fault-oblivious characterization, bit for bit.
///
/// # Errors
///
/// [`Error::AcquisitionExhausted`] / [`Error::CalibrationDiverged`] when
/// a budget runs out under the strict policy; [`Error::EmptyPopulation`]
/// when every channel is lost; plus all of
/// [`characterize_campaign`]'s errors.
pub fn characterize_campaign_faulted(
    engine: &Engine,
    lab: &Lab,
    plan: &CampaignPlan,
    channels: &[&dyn Channel],
    faults: &FaultPlan,
    policy: &RetryPolicy,
) -> Result<GoldenCharacterization, Error> {
    if channels.is_empty() {
        return Err(Error::EmptyPopulation {
            what: "channel list",
        });
    }
    if plan.n_dies < 2 {
        return Err(Error::NotEnoughDies {
            got: plan.n_dies,
            need: 2,
        });
    }
    let _span = engine.obs().span("characterize");
    let golden = Design::golden(lab)?;
    let dies = lab.fabricate_batch(plan.n_dies);
    let golden_devs: Vec<ProgrammedDevice<'_>> = {
        let _span = engine.obs().span("program");
        engine.map(&dies, |_, die| {
            ProgrammedDevice::with_obs(lab, &golden, die, engine.obs().clone())
        })
    };

    let mut states: Vec<ChannelState> = Vec::with_capacity(channels.len());
    let mut lost: Vec<ChannelHealth> = Vec::new();
    for (c, channel) in channels.iter().enumerate() {
        // Calibration, re-run on injected divergence.
        let mut calibration = None;
        let mut cal_attempts = 0usize;
        {
            let _span = engine.obs().span(&format!("calibrate.{}", channel.name()));
            for attempt in 0..=policy.max_retries {
                cal_attempts = attempt + 1;
                if faults.fires(FaultSite::Calibrate, &[c as u64, attempt as u64]) {
                    engine.obs().incr("faults.calibrate.fired");
                    continue;
                }
                calibration = Some(channel.calibrate(engine, plan, &golden_devs)?);
                break;
            }
            engine
                .obs()
                .add("retry.calibrate", (cal_attempts - 1) as u64);
        }
        let Some(calibration) = calibration else {
            if !policy.allow_degraded {
                return Err(Error::CalibrationDiverged {
                    channel: channel.name().to_string(),
                    attempts: cal_attempts,
                });
            }
            // For a lost channel the attempt counters record the
            // calibration attempts that exhausted the budget.
            let mut health = ChannelHealth::pristine(channel.name(), cal_attempts);
            health.retried = cal_attempts - 1;
            health.lost = true;
            lost.push(health);
            continue;
        };
        let population = acquire_population_faulted(
            engine,
            *channel,
            c,
            &golden_devs,
            plan,
            &calibration,
            faults,
            policy,
            POP_GOLDEN,
            |j| plan.die_seed(j),
        )?;
        let mut health = population.health;
        // Calibration retries count as retries without changing the
        // distinct-die population.
        health.attempted += cal_attempts - 1;
        health.retried += cal_attempts - 1;
        if population.kept.len() < 2 {
            // Only reachable under allow_degraded (otherwise the first
            // exhausted die already aborted above).
            health.lost = true;
            lost.push(health);
            continue;
        }
        let reference = channel.characterize_golden(&population.acquisitions, &calibration)?;
        let scores = population
            .acquisitions
            .iter()
            .map(|a| channel.score(a, &reference, &calibration))
            .collect::<Result<Vec<f64>, _>>()?;
        states.push(ChannelState {
            channel: channel.name().to_string(),
            calibration,
            reference,
            scores,
            kept: population.kept,
            health,
        });
    }
    if states.is_empty() {
        return Err(Error::EmptyPopulation {
            what: "surviving channels",
        });
    }
    Ok(GoldenCharacterization {
        plan: plan.clone(),
        states,
        lost,
    })
}

/// Checks that the supplied channels match the stored characterization
/// one-to-one (same count, same names, same order).
fn check_channels_match(
    charac: &GoldenCharacterization,
    channels: &[&dyn Channel],
) -> Result<(), Error> {
    if channels.len() != charac.states.len() {
        return Err(Error::ChannelShapeMismatch {
            channel: format!("{} stored channel state(s)", charac.states.len()),
            expected: "one live channel per stored state",
        });
    }
    for (channel, state) in channels.iter().zip(&charac.states) {
        if channel.name() != state.channel {
            return Err(Error::ChannelShapeMismatch {
                channel: state.channel.clone(),
                expected: "a live channel with the stored state's name",
            });
        }
    }
    Ok(())
}

/// Scores one suspect design's population against a characterization.
///
/// `spec_index` is the design's position in the campaign's suspect list:
/// it selects the design's seed stream
/// ([`CampaignPlan::spec_die_seed`]), so scoring design `s` alone
/// reproduces exactly the scores it gets inside a batched
/// [`score_campaign`] at position `s`.
///
/// # Errors
///
/// [`Error::ChannelShapeMismatch`] when `channels` does not match the
/// stored states; design and simulation failures otherwise.
pub fn score_design_with(
    engine: &Engine,
    lab: &Lab,
    charac: &GoldenCharacterization,
    spec_index: usize,
    spec: &TrojanSpec,
    channels: &[&dyn Channel],
) -> Result<(f64, Vec<ScoredChannel>), Error> {
    check_channels_match(charac, channels)?;
    let _span = engine.obs().span("score");
    let plan = &charac.plan;
    let golden = Design::golden(lab)?;
    let golden_slices = golden.used_slices();
    let dies = lab.fabricate_batch(plan.n_dies);
    let infected = Design::infected_with_obs(lab, spec, engine.obs())?;
    let infected_devs: Vec<ProgrammedDevice<'_>> = {
        let _span = engine.obs().span("program");
        engine.map(&dies, |_, die| {
            ProgrammedDevice::with_obs(lab, &infected, die, engine.obs().clone())
        })
    };
    let mut scored = Vec::with_capacity(channels.len());
    for (channel, state) in channels.iter().zip(&charac.states) {
        let infected_scores = score_population(
            engine,
            *channel,
            &infected_devs,
            plan,
            &state.calibration,
            &state.reference,
            |j| plan.spec_die_seed(spec_index, j),
        )?;
        scored.push(ScoredChannel {
            channel: state.channel.clone(),
            golden: state.scores.clone(),
            infected: infected_scores,
        });
    }
    let size_fraction = infected
        .trojan()
        .map(|t| t.fraction_of_design(golden_slices))
        .unwrap_or(0.0);
    Ok((size_fraction, scored))
}

/// Fuses stored per-channel scored populations into per-channel
/// [`ChannelResult`]s plus the fused (z-score sum) result — the math of
/// `htd fuse`, usable on any mix of channels scored under the same
/// campaign.
///
/// # Errors
///
/// [`Error::ChannelShapeMismatch`] below two channels or on mismatched
/// population sizes; [`Error::DegeneratePopulation`] when a golden
/// population has no spread.
pub fn fuse_scored_channels(
    sets: &[ScoredChannel],
) -> Result<(Vec<ChannelResult>, ChannelResult), Error> {
    let Some(first) = sets.first() else {
        return Err(Error::EmptyPopulation {
            what: "scored channel list",
        });
    };
    if sets.len() < 2 {
        return Err(Error::ChannelShapeMismatch {
            channel: first.channel.clone(),
            expected: "at least two channels to fuse",
        });
    }
    let n_dies = first.golden.len();
    for set in sets {
        if set.golden.len() != n_dies || set.infected.len() != n_dies {
            return Err(Error::ChannelShapeMismatch {
                channel: set.channel.clone(),
                expected: "equal population sizes across every fused channel",
            });
        }
    }
    let per_channel = sets
        .iter()
        .map(|set| ChannelResult::fit(set.channel.clone(), &set.golden, &set.infected))
        .collect::<Result<Vec<_>, _>>()?;
    let fits = sets
        .iter()
        .map(|set| {
            Gaussian::fit(&set.golden).map_err(|source| Error::DegeneratePopulation {
                channel: set.channel.clone(),
                samples: set.golden.len(),
                source,
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let golden_scores: Vec<Vec<f64>> = sets.iter().map(|s| s.golden.clone()).collect();
    let infected_scores: Vec<Vec<f64>> = sets.iter().map(|s| s.infected.clone()).collect();
    let golden_fused = fuse(&fits, &golden_scores, n_dies);
    let infected_fused = fuse(&fits, &infected_scores, n_dies);
    let fused = ChannelResult::fit("fused", &golden_fused, &infected_fused)?;
    Ok((per_channel, fused))
}

/// Scores suspect designs against a characterization, with the default
/// (auto-sized) [`Engine`].
///
/// # Errors
///
/// See [`score_campaign_with`].
pub fn score_campaign(
    lab: &Lab,
    charac: &GoldenCharacterization,
    specs: &[TrojanSpec],
    channels: &[&dyn Channel],
) -> Result<MultiChannelReport, Error> {
    score_campaign_with(&Engine::default(), lab, charac, specs, channels)
}

/// [`score_campaign`] on an explicit [`Engine`]: the second half of
/// [`multi_channel_experiment`], runnable any number of times (and in any
/// process) against the same characterization without re-measuring the
/// golden population.
///
/// # Errors
///
/// [`Error::ChannelShapeMismatch`] when `channels` does not match the
/// stored states; [`Error::DegeneratePopulation`] when a metric
/// population has no spread; design and simulation failures otherwise.
pub fn score_campaign_with(
    engine: &Engine,
    lab: &Lab,
    charac: &GoldenCharacterization,
    specs: &[TrojanSpec],
    channels: &[&dyn Channel],
) -> Result<MultiChannelReport, Error> {
    Ok(score_campaign_faulted(
        engine,
        lab,
        charac,
        specs,
        channels,
        &FaultPlan::none(),
        &RetryPolicy::strict(),
    )?
    .report)
}

/// [`score_campaign_with`] under a [`FaultPlan`] and [`RetryPolicy`]:
/// suspect acquisitions retry and quarantine exactly like
/// [`characterize_campaign_faulted`]'s (suspect design `s` uses
/// population tag `s + 1` in the fault-decision context), fusion runs
/// over the dies kept by *every* channel, and the returned report
/// carries a per-channel [`ChannelHealth`] section whenever the fault
/// plan is active or the characterization is degraded.
///
/// Fed [`FaultPlan::none`] + [`RetryPolicy::strict`] on a pristine
/// characterization, the report is bit-identical to the historical
/// [`score_campaign_with`] and its health section is empty.
///
/// # Errors
///
/// [`Error::AcquisitionExhausted`] when a suspect die exhausts its
/// budget under the strict policy; [`Error::ChannelDegraded`] when
/// quarantine leaves a suspect population below two dies; plus all of
/// [`score_campaign`]'s errors.
pub fn score_campaign_faulted(
    engine: &Engine,
    lab: &Lab,
    charac: &GoldenCharacterization,
    specs: &[TrojanSpec],
    channels: &[&dyn Channel],
    faults: &FaultPlan,
    policy: &RetryPolicy,
) -> Result<ScoredCampaign, Error> {
    score_campaign_faulted_with_model(engine, lab, charac, specs, channels, faults, policy, None)
}

/// [`score_campaign_faulted`] with an optional trained classifier: when
/// `model` is `Some`, every row's fused slot carries the `learned`
/// channel (see [`ScoringSession::with_model`]) instead of the z-score
/// sum. `None` is bit-identical to [`score_campaign_faulted`].
///
/// # Errors
///
/// [`Error::ChannelShapeMismatch`] when the model's features do not
/// match the channel set; plus all of [`score_campaign_faulted`]'s
/// errors.
#[allow(clippy::too_many_arguments)]
pub fn score_campaign_faulted_with_model(
    engine: &Engine,
    lab: &Lab,
    charac: &GoldenCharacterization,
    specs: &[TrojanSpec],
    channels: &[&dyn Channel],
    faults: &FaultPlan,
    policy: &RetryPolicy,
    model: Option<&LogisticModel>,
) -> Result<ScoredCampaign, Error> {
    check_channels_match(charac, channels)?;
    let _span = engine.obs().span("score");
    let mut session = ScoringSession::new(engine, lab, charac, channels)?;
    if let Some(model) = model {
        session = session.with_model(model)?;
    }

    // Scoring health accumulates per channel across every design.
    let mut scoring_health: Vec<Option<ChannelHealth>> = vec![None; channels.len()];
    let mut rows = Vec::with_capacity(specs.len());
    let mut designs = Vec::with_capacity(specs.len());
    for (s, spec) in specs.iter().enumerate() {
        let scored = session.score_spec_at(s, spec, faults, policy)?;
        for (c, h) in scored.health.iter().enumerate() {
            match &mut scoring_health[c] {
                Some(acc) => acc.merge(h),
                slot => *slot = Some(h.clone()),
            }
        }
        rows.push(scored.row);
        designs.push(scored.design);
    }

    let report = MultiChannelReport {
        rows,
        n_dies: charac.plan.n_dies,
        channel_names: charac.states.iter().map(|s| s.channel.clone()).collect(),
        health: health_section(charac, &scoring_health, faults),
    };
    Ok(ScoredCampaign { report, designs })
}

/// The amortized half of suspect scoring: everything that depends only
/// on the characterization, not on any particular suspect — the golden
/// design's slice count, the fabricated die population and (for
/// multi-channel campaigns) the golden fusion fits.
///
/// [`score_campaign_faulted`] builds one session per campaign; `htd
/// serve` builds one per plan-digest batch so this setup is paid once
/// per batch instead of once per request. Scoring through a session *is*
/// the batched campaign path, so a suspect scored alone at `index` is
/// bit-identical to the same suspect inside any batch at position
/// `index`, at any worker count.
pub struct ScoringSession<'a> {
    engine: &'a Engine,
    lab: &'a Lab,
    charac: &'a GoldenCharacterization,
    channels: &'a [&'a dyn Channel],
    golden_slices: usize,
    dies: Vec<DieVariation>,
    fits: Vec<Gaussian>,
    golden_fused: Option<Vec<f64>>,
    model: Option<&'a LogisticModel>,
}

/// One suspect design scored through a [`ScoringSession`]: the report
/// row, the stored per-channel populations, and the per-channel scoring
/// health (one record per surviving channel, in characterization order)
/// for the caller's campaign ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecScore {
    /// The suspect's report row (per-channel results plus fused).
    pub row: MultiChannelRow,
    /// The raw scored populations behind the row.
    pub design: ScoredDesign,
    /// Scoring health per channel, aligned with the stored states.
    pub health: Vec<ChannelHealth>,
}

impl<'a> ScoringSession<'a> {
    /// Prepares the shared scoring state for `charac`.
    ///
    /// # Errors
    ///
    /// [`Error::ChannelShapeMismatch`] when `channels` does not match
    /// the stored states; [`Error::DegeneratePopulation`] when a golden
    /// population has no spread (multi-channel only); design failures
    /// otherwise.
    pub fn new(
        engine: &'a Engine,
        lab: &'a Lab,
        charac: &'a GoldenCharacterization,
        channels: &'a [&'a dyn Channel],
    ) -> Result<Self, Error> {
        check_channels_match(charac, channels)?;
        let plan = &charac.plan;
        let golden = Design::golden(lab)?;
        let golden_slices = golden.used_slices();
        let dies = lab.fabricate_batch(plan.n_dies);

        // Fusion normalisation: the golden fit of each channel. Only
        // needed (and only required to be non-degenerate) when there is
        // something to fuse.
        let (fits, golden_fused) = if channels.len() >= 2 {
            let _span = engine.obs().span("fuse");
            let fits = golden_fits(&charac.states)?;
            let masked: Vec<(&[usize], &[f64])> = charac
                .states
                .iter()
                .map(|s| (s.kept.as_slice(), s.scores.as_slice()))
                .collect();
            let fused = fuse_masked(&fits, &masked, plan.n_dies);
            (fits, Some(fused))
        } else {
            (Vec::new(), None)
        };
        Ok(ScoringSession {
            engine,
            lab,
            charac,
            channels,
            golden_slices,
            dies,
            fits,
            golden_fused,
            model: None,
        })
    }

    /// The characterization this session scores against.
    pub fn characterization(&self) -> &GoldenCharacterization {
        self.charac
    }

    /// Attaches a trained classifier: every subsequent score replaces
    /// the z-score-sum fused channel with the `learned` channel (per-die
    /// classifier logits, empirical rates at the trained logit-0
    /// boundary). Works for any channel count, including one.
    ///
    /// # Errors
    ///
    /// [`Error::ChannelShapeMismatch`] when the model's feature labels
    /// do not match the characterization's channels (count, names,
    /// order).
    pub fn with_model(mut self, model: &'a LogisticModel) -> Result<Self, Error> {
        check_model_features(model, self.charac.states.iter().map(|s| s.channel.as_str()))?;
        self.model = Some(model);
        Ok(self)
    }

    /// Scores one suspect at campaign position `index`: the index picks
    /// the design's seed stream ([`CampaignPlan::spec_die_seed`]) and
    /// fault-population tag, so a standalone score at `index` equals the
    /// same spec inside a batched campaign at that position.
    ///
    /// # Errors
    ///
    /// [`Error::AcquisitionExhausted`] when a suspect die exhausts its
    /// budget under the strict policy; [`Error::ChannelDegraded`] when
    /// quarantine leaves a population below two dies; design and
    /// simulation failures otherwise.
    pub fn score_spec_at(
        &self,
        index: usize,
        spec: &TrojanSpec,
        faults: &FaultPlan,
        policy: &RetryPolicy,
    ) -> Result<SpecScore, Error> {
        let engine = self.engine;
        let plan = &self.charac.plan;
        let infected = Design::infected_with_obs(self.lab, spec, engine.obs())?;
        let infected_devs: Vec<ProgrammedDevice<'_>> = {
            let _span = engine.obs().span("program");
            engine.map(&self.dies, |_, die| {
                ProgrammedDevice::with_obs(self.lab, &infected, die, engine.obs().clone())
            })
        };
        let mut per_channel: Vec<(Vec<usize>, Vec<f64>)> = Vec::with_capacity(self.channels.len());
        let mut scored_sets = Vec::with_capacity(self.channels.len());
        let mut health = Vec::with_capacity(self.channels.len());
        for (c, (channel, state)) in self.channels.iter().zip(&self.charac.states).enumerate() {
            let population = acquire_population_faulted(
                engine,
                *channel,
                c,
                &infected_devs,
                plan,
                &state.calibration,
                faults,
                policy,
                (index as u64) + 1,
                |j| plan.spec_die_seed(index, j),
            )?;
            if population.kept.len() < 2 {
                return Err(Error::ChannelDegraded {
                    channel: state.channel.clone(),
                    kept: population.kept.len(),
                    need: 2,
                });
            }
            let scores = population
                .acquisitions
                .iter()
                .map(|a| channel.score(a, &state.reference, &state.calibration))
                .collect::<Result<Vec<f64>, _>>()?;
            health.push(population.health);
            scored_sets.push(ScoredChannel {
                channel: state.channel.clone(),
                golden: state.scores.clone(),
                infected: scores.clone(),
            });
            per_channel.push((population.kept, scores));
        }
        let channel_results = self
            .charac
            .states
            .iter()
            .zip(&per_channel)
            .map(|(state, (_, scores))| {
                ChannelResult::fit(state.channel.clone(), &state.scores, scores)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let suspect_masked: Vec<(&[usize], &[f64])> = per_channel
            .iter()
            .map(|(kept, scores)| (kept.as_slice(), scores.as_slice()))
            .collect();
        let fused = if let Some(model) = self.model {
            let _span = engine.obs().span("fuse");
            let golden_masked: Vec<(&[usize], &[f64])> = self
                .charac
                .states
                .iter()
                .map(|s| (s.kept.as_slice(), s.scores.as_slice()))
                .collect();
            Some(learned_result(
                model,
                &golden_masked,
                &suspect_masked,
                plan.n_dies,
            )?)
        } else {
            match &self.golden_fused {
                Some(golden_fused) => {
                    let _span = engine.obs().span("fuse");
                    let infected_fused = fuse_masked(&self.fits, &suspect_masked, plan.n_dies);
                    Some(ChannelResult::fit("fused", golden_fused, &infected_fused)?)
                }
                None => None,
            }
        };
        let size_fraction = infected
            .trojan()
            .map(|t| t.fraction_of_design(self.golden_slices))
            .unwrap_or(0.0);
        engine.obs().incr("score.designs");
        Ok(SpecScore {
            row: MultiChannelRow {
                name: spec.name.clone(),
                size_fraction,
                channels: channel_results,
                fused,
            },
            design: ScoredDesign {
                name: spec.name.clone(),
                size_fraction,
                scored: scored_sets,
            },
            health,
        })
    }

    /// Assembles the one-row [`MultiChannelReport`] of a single suspect
    /// scored through this session — exactly the report `htd score`
    /// writes for the same (artifact, suspect) pair, which is what lets
    /// the serve path promise byte-identical responses.
    pub fn single_report(&self, score: &SpecScore, faults: &FaultPlan) -> MultiChannelReport {
        let scoring: Vec<Option<ChannelHealth>> = score.health.iter().cloned().map(Some).collect();
        MultiChannelReport {
            rows: vec![score.row.clone()],
            n_dies: self.charac.plan.n_dies,
            channel_names: self
                .charac
                .states
                .iter()
                .map(|s| s.channel.clone())
                .collect(),
            health: health_section(self.charac, &scoring, faults),
        }
    }
}

/// The health section of a report scored against `charac`: it appears
/// whenever faults could have fired or the characterization already lost
/// something, so a pristine campaign keeps the historical (empty) shape.
fn health_section(
    charac: &GoldenCharacterization,
    scoring_health: &[Option<ChannelHealth>],
    faults: &FaultPlan,
) -> Vec<ChannelHealth> {
    let plan = &charac.plan;
    let charac_degraded = !charac.lost.is_empty()
        || charac
            .states
            .iter()
            .any(|s| s.kept.len() != plan.n_dies || !s.health.is_pristine(plan.n_dies));
    let mut health = Vec::new();
    if !faults.is_none() || charac_degraded {
        for (c, state) in charac.states.iter().enumerate() {
            let mut h = state.health.clone();
            if let Some(scoring) = scoring_health.get(c).and_then(Option::as_ref) {
                h.merge(scoring);
            }
            health.push(h);
        }
        health.extend(charac.lost.iter().cloned());
    }
    health
}

/// Runs a [`CampaignPlan`] through every supplied [`Channel`] over one
/// shared die population, with the default (auto-sized) [`Engine`].
///
/// # Errors
///
/// [`Error::EmptyPopulation`] with no channels, [`Error::NotEnoughDies`]
/// below two dies, [`Error::DegeneratePopulation`] when a metric
/// population has no spread; design and simulation failures otherwise.
pub fn multi_channel_experiment(
    lab: &Lab,
    plan: &CampaignPlan,
    specs: &[TrojanSpec],
    channels: &[&dyn Channel],
) -> Result<MultiChannelReport, Error> {
    multi_channel_experiment_with(&Engine::default(), lab, plan, specs, channels)
}

/// [`multi_channel_experiment`] on an explicit [`Engine`]:
/// [`characterize_campaign_with`] followed by [`score_campaign_with`].
///
/// All per-die fans use seeds from the plan's seed tree, so the report is
/// bit-identical for every worker count, any channel subset reproduces
/// the same per-channel numbers, and a characterization saved to disk and
/// reloaded scores identically to this in-memory composition.
///
/// # Errors
///
/// See [`multi_channel_experiment`].
pub fn multi_channel_experiment_with(
    engine: &Engine,
    lab: &Lab,
    plan: &CampaignPlan,
    specs: &[TrojanSpec],
    channels: &[&dyn Channel],
) -> Result<MultiChannelReport, Error> {
    let charac = characterize_campaign_with(engine, lab, plan, channels)?;
    score_campaign_with(engine, lab, &charac, specs, channels)
}

/// Runs the fused delay+EM experiment over `n_dies` dies.
///
/// The delay campaign is intentionally small (a handful of pairs) — the
/// point is channel comparison, not full fingerprinting.
///
/// # Errors
///
/// Propagates design construction, simulation and fitting failures.
#[allow(clippy::too_many_arguments)]
pub fn fusion_experiment(
    lab: &Lab,
    specs: &[TrojanSpec],
    n_dies: usize,
    campaign_pairs: usize,
    pt: &[u8; 16],
    key: &[u8; 16],
    seed: u64,
) -> Result<FusionReport, Error> {
    fusion_experiment_with(
        &Engine::default(),
        lab,
        specs,
        n_dies,
        campaign_pairs,
        pt,
        key,
        seed,
    )
}

/// [`fusion_experiment`] on an explicit [`Engine`]: the historical
/// two-channel (EM + delay) view over [`multi_channel_experiment_with`].
///
/// # Errors
///
/// Propagates design construction, simulation and fitting failures.
#[allow(clippy::too_many_arguments)]
pub fn fusion_experiment_with(
    engine: &Engine,
    lab: &Lab,
    specs: &[TrojanSpec],
    n_dies: usize,
    campaign_pairs: usize,
    pt: &[u8; 16],
    key: &[u8; 16],
    seed: u64,
) -> Result<FusionReport, Error> {
    let plan = CampaignPlan::with_random_pairs(n_dies, campaign_pairs, 3, *pt, *key, seed);
    let em = EmChannel::paper();
    let delay = DelayChannel;
    let report = multi_channel_experiment_with(engine, lab, &plan, specs, &[&em, &delay])?;
    let mut rows = Vec::with_capacity(report.rows.len());
    for row in report.rows {
        let mut channels = row.channels.into_iter();
        let (Some(em), Some(delay), Some(fused)) = (channels.next(), channels.next(), row.fused)
        else {
            return Err(Error::EmptyPopulation {
                what: "per-channel results",
            });
        };
        rows.push(FusionRow {
            name: row.name,
            em,
            delay,
            fused,
        });
    }
    Ok(FusionReport { rows, n_dies })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::PowerChannel;
    use crate::em_detect::TraceMetric;

    #[test]
    fn channel_result_computes_separation() {
        let golden = vec![1.0, 2.0, 3.0, 2.0, 1.5, 2.5];
        let infected: Vec<f64> = golden.iter().map(|x| x + 5.0).collect();
        let r = ChannelResult::fit("EM", &golden, &infected).unwrap();
        assert!((r.mu - 5.0).abs() < 1e-12);
        assert!(r.analytic_fn_rate < 0.01);
        assert_eq!(r.empirical_fn_rate, 0.0);
        assert_eq!(r.empirical_fp_rate, 0.0);
    }

    #[test]
    fn constant_population_is_a_degenerate_error() {
        let constant = vec![3.25; 6];
        let spread = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let err = ChannelResult::fit("EM", &constant, &spread).unwrap_err();
        match err {
            Error::DegeneratePopulation {
                channel, samples, ..
            } => {
                assert_eq!(channel, "EM");
                assert_eq!(samples, 6);
            }
            other => panic!("expected DegeneratePopulation, got {other:?}"),
        }
        // The infected side degenerating reports the same channel.
        assert!(matches!(
            ChannelResult::fit("delay", &spread, &constant),
            Err(Error::DegeneratePopulation { .. })
        ));
    }

    #[test]
    fn small_fusion_experiment_runs() {
        let lab = Lab::paper();
        let report = fusion_experiment(
            &lab,
            &[TrojanSpec::ht2()],
            6,
            2,
            &[0x11u8; 16],
            &[0x22u8; 16],
            42,
        )
        .unwrap();
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];
        assert!(row.em.mu > 0.0, "EM channel must separate");
        // The fused channel should never be *worse* than the best single
        // channel by much (z-score fusion of a useless channel costs at
        // most √2 in σ).
        let best = row.em.analytic_fn_rate.min(row.delay.analytic_fn_rate);
        assert!(
            row.fused.analytic_fn_rate < best + 0.2,
            "fused {} vs best {}",
            row.fused.analytic_fn_rate,
            best
        );
    }

    #[test]
    fn three_channel_experiment_reports_every_channel_and_fusion() {
        let lab = Lab::paper();
        let plan = CampaignPlan::with_random_pairs(6, 2, 3, [0x11u8; 16], [0x22u8; 16], 42);
        let em = EmChannel::paper();
        let delay = DelayChannel;
        let power = PowerChannel::new(TraceMetric::SumOfLocalMaxima);
        let report =
            multi_channel_experiment(&lab, &plan, &[TrojanSpec::ht2()], &[&em, &delay, &power])
                .unwrap();
        assert_eq!(report.channel_names, vec!["EM", "delay", "power"]);
        let row = &report.rows[0];
        assert_eq!(row.channels.len(), 3);
        assert!(row.size_fraction > 0.0);
        let fused = row.fused.as_ref().expect("three channels fuse");
        assert_eq!(fused.channel, "fused");
        for c in &row.channels {
            assert!(c.sigma > 0.0, "{} sigma", c.channel);
        }
        // The two-channel EM/delay numbers are unchanged by the extra
        // power channel riding along in the same campaign.
        let two = fusion_experiment(
            &lab,
            &[TrojanSpec::ht2()],
            6,
            2,
            &[0x11u8; 16],
            &[0x22u8; 16],
            42,
        )
        .unwrap();
        assert_eq!(row.channels[0].mu, two.rows[0].em.mu);
        assert_eq!(row.channels[1].mu, two.rows[0].delay.mu);
    }

    #[test]
    fn runner_rejects_empty_and_undersized_campaigns() {
        let lab = Lab::paper();
        let plan = CampaignPlan::traces(4, [0u8; 16], [0u8; 16], 1);
        assert!(matches!(
            multi_channel_experiment(&lab, &plan, &[], &[]),
            Err(Error::EmptyPopulation { .. })
        ));
        let em = EmChannel::paper();
        let tiny = CampaignPlan::traces(1, [0u8; 16], [0u8; 16], 1);
        assert!(matches!(
            multi_channel_experiment(&lab, &tiny, &[], &[&em]),
            Err(Error::NotEnoughDies { got: 1, need: 2 })
        ));
    }

    #[test]
    fn scoring_rejects_mismatched_channel_sets() {
        let charac = GoldenCharacterization {
            plan: CampaignPlan::traces(2, [0u8; 16], [0u8; 16], 1),
            states: vec![ChannelState::pristine(
                "EM",
                Calibration::None,
                GoldenReference::MeanTrace(htd_em::Trace::new(vec![0.0], 200.0)),
                vec![1.0, 2.0],
            )],
            lost: vec![],
        };
        let lab = Lab::paper();
        let em = EmChannel::paper();
        let delay = DelayChannel;
        // Wrong count.
        assert!(matches!(
            score_campaign(&lab, &charac, &[], &[&em, &delay]),
            Err(Error::ChannelShapeMismatch { .. })
        ));
        // Wrong name.
        assert!(matches!(
            score_campaign(&lab, &charac, &[], &[&delay]),
            Err(Error::ChannelShapeMismatch { .. })
        ));
        // Matching channels, no suspects: an empty report.
        let report = score_campaign(&lab, &charac, &[], &[&em]).unwrap();
        assert!(report.rows.is_empty());
        assert_eq!(report.channel_names, vec!["EM"]);
    }

    #[test]
    fn fuse_scored_channels_matches_manual_z_scores() {
        let a = ScoredChannel {
            channel: "EM".into(),
            golden: vec![1.0, 2.0, 3.0, 4.0],
            infected: vec![5.0, 6.0, 7.0, 8.0],
        };
        let b = ScoredChannel {
            channel: "delay".into(),
            golden: vec![10.0, 20.0, 30.0, 40.0],
            infected: vec![11.0, 21.0, 31.0, 41.0],
        };
        let (per_channel, fused) = fuse_scored_channels(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(per_channel.len(), 2);
        assert_eq!(per_channel[0].channel, "EM");
        assert_eq!(per_channel[1].channel, "delay");
        assert_eq!(fused.channel, "fused");
        // Manual fusion: z-scores against the golden fits.
        let ga = Gaussian::fit(&a.golden).unwrap();
        let gb = Gaussian::fit(&b.golden).unwrap();
        let z = |x: f64, g: &Gaussian| (x - g.mean()) / g.std();
        let golden_fused: Vec<f64> = (0..4)
            .map(|j| z(a.golden[j], &ga) + z(b.golden[j], &gb))
            .collect();
        let infected_fused: Vec<f64> = (0..4)
            .map(|j| z(a.infected[j], &ga) + z(b.infected[j], &gb))
            .collect();
        let manual = ChannelResult::fit("fused", &golden_fused, &infected_fused).unwrap();
        assert_eq!(fused, manual);
    }

    #[test]
    fn fuse_scored_channels_rejects_bad_shapes() {
        let a = ScoredChannel {
            channel: "EM".into(),
            golden: vec![1.0, 2.0, 3.0],
            infected: vec![4.0, 5.0, 6.0],
        };
        assert!(matches!(
            fuse_scored_channels(&[]),
            Err(Error::EmptyPopulation { .. })
        ));
        assert!(matches!(
            fuse_scored_channels(std::slice::from_ref(&a)),
            Err(Error::ChannelShapeMismatch { .. })
        ));
        let short = ScoredChannel {
            channel: "delay".into(),
            golden: vec![1.0, 2.0],
            infected: vec![3.0, 4.0],
        };
        assert!(matches!(
            fuse_scored_channels(&[a, short]),
            Err(Error::ChannelShapeMismatch { .. })
        ));
    }
}
