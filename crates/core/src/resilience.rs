//! Retry budgets and degradation accounting for campaigns under faults.
//!
//! A bench campaign loses measurements: a scope misses a trigger, a
//! glitched sweep repetition is garbage, a calibration pass diverges.
//! [`RetryPolicy`] bounds how hard the engine fights back (re-acquiring
//! with fresh index-derived seeds) and whether a campaign may *degrade* —
//! continue with fewer dies, fewer repetitions, or fewer channels — when
//! the budget runs out. [`ChannelHealth`] is the audit trail: one record
//! per channel, counting every attempt, retry and quarantine, carried
//! through [`crate::fusion`], the report renderer and the artifact store
//! so a degraded result can never masquerade as a pristine one.

/// How a campaign responds to injected or real measurement failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetryPolicy {
    /// Extra acquisition/calibration attempts allowed per event after
    /// the first (0 = fail on the first fault).
    pub max_retries: usize,
    /// Whether the campaign may continue after an event exhausts its
    /// retries: the die (or, for calibration, the whole channel) is
    /// quarantined and the result marked degraded. When `false`, the
    /// first exhausted budget aborts the campaign with a typed error.
    pub allow_degraded: bool,
}

impl RetryPolicy {
    /// The strict policy: no retries, no degradation (the historical
    /// behaviour of the fault-oblivious pipeline).
    pub fn strict() -> Self {
        RetryPolicy::default()
    }

    /// A policy allowing `max_retries` re-acquisitions and degraded
    /// completion.
    pub fn degraded(max_retries: usize) -> Self {
        RetryPolicy {
            max_retries,
            allow_degraded: true,
        }
    }
}

/// Per-channel health of a campaign: what was attempted, what had to be
/// retried, and what was lost.
///
/// For a surviving channel, `attempted`/`retried` count acquisition
/// events (calibration retries are folded into both, keeping
/// [`ChannelHealth::population`] equal to the die count). For a channel
/// recorded in a lost list, they count the calibration attempts that
/// exhausted the budget.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelHealth {
    /// Channel name (`"EM"`, `"delay"`, …).
    pub channel: String,
    /// Total acquisition attempts, including retries.
    pub attempted: usize,
    /// Attempts beyond the first for any event (acquisition retries plus
    /// calibration retries).
    pub retried: usize,
    /// Dies quarantined after exhausting the retry budget.
    pub dropped: usize,
    /// Sweep cells (pair × repetition) scheduled inside acquisitions
    /// while a fault plan was active (0 for trace channels).
    pub reps_attempted: usize,
    /// Sweep cells dropped by repetition-level quarantine.
    pub reps_dropped: usize,
    /// Whether the whole channel was lost (calibration diverged, or too
    /// few dies survived to form a population).
    pub lost: bool,
}

impl ChannelHealth {
    /// The health of a fault-free run over `population` dies: one
    /// attempt per die, nothing retried, nothing dropped.
    pub fn pristine(channel: impl Into<String>, population: usize) -> Self {
        ChannelHealth {
            channel: channel.into(),
            attempted: population,
            retried: 0,
            dropped: 0,
            reps_attempted: 0,
            reps_dropped: 0,
            lost: false,
        }
    }

    /// `true` when this record is exactly what a fault-free run over
    /// `population` dies would report.
    pub fn is_pristine(&self, population: usize) -> bool {
        self.attempted == population
            && self.retried == 0
            && self.dropped == 0
            && self.reps_attempted == 0
            && self.reps_dropped == 0
            && !self.lost
    }

    /// Whether anything was lost (dies, repetitions or the channel).
    pub fn degraded(&self) -> bool {
        self.dropped > 0 || self.reps_dropped > 0 || self.lost
    }

    /// Distinct events attempted (attempts minus retries) — the die
    /// count for a surviving channel.
    pub fn population(&self) -> usize {
        self.attempted.saturating_sub(self.retried)
    }

    /// Fraction of the population lost: quarantined dies over distinct
    /// dies, or 1 for a lost channel.
    pub fn drop_rate(&self) -> f64 {
        if self.lost {
            return 1.0;
        }
        let population = self.population();
        if population == 0 {
            0.0
        } else {
            self.dropped as f64 / population as f64
        }
    }

    /// Accumulates another record of the *same channel* (e.g. the
    /// scoring passes on top of the characterization) into this one.
    pub fn merge(&mut self, other: &ChannelHealth) {
        self.attempted += other.attempted;
        self.retried += other.retried;
        self.dropped += other.dropped;
        self.reps_attempted += other.reps_attempted;
        self.reps_dropped += other.reps_dropped;
        self.lost |= other.lost;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pristine_health_is_detectable_and_not_degraded() {
        let h = ChannelHealth::pristine("EM", 8);
        assert!(h.is_pristine(8));
        assert!(!h.is_pristine(7));
        assert!(!h.degraded());
        assert_eq!(h.population(), 8);
        assert_eq!(h.drop_rate(), 0.0);
    }

    #[test]
    fn merge_accumulates_and_drop_rate_counts_distinct_dies() {
        let mut h = ChannelHealth::pristine("delay", 8);
        h.retried = 3;
        h.attempted += 3;
        h.dropped = 2;
        assert_eq!(h.population(), 8);
        assert!((h.drop_rate() - 0.25).abs() < 1e-12);
        assert!(h.degraded());

        let mut scoring = ChannelHealth::pristine("delay", 8);
        scoring.reps_attempted = 40;
        scoring.reps_dropped = 4;
        h.merge(&scoring);
        assert_eq!(h.attempted, 19);
        assert_eq!(h.population(), 16);
        assert_eq!(h.reps_dropped, 4);

        let mut lost = ChannelHealth::pristine("delay", 0);
        lost.lost = true;
        assert_eq!(lost.drop_rate(), 1.0);
        h.merge(&lost);
        assert!(h.lost);
    }

    #[test]
    fn policies() {
        assert_eq!(RetryPolicy::strict(), RetryPolicy::default());
        let p = RetryPolicy::degraded(3);
        assert_eq!(p.max_retries, 3);
        assert!(p.allow_degraded);
    }
}
