//! Designs (golden / infected) and devices programmed with them.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use rand::rngs::StdRng;
use rand::SeedableRng;

use htd_aes::structural::AesSim;
use htd_aes::AesNetlist;
use htd_em::{
    bin_events_indexed, collect_activity, convolve_kernel, read_out, ActivityTable, CurrentEvent,
    Trace,
};
use htd_fabric::{DieVariation, Placement};
use htd_obs::Obs;
use htd_timing::{CompiledSimulator, CompiledTiming, DelayAnnotation, EventSimulator, Sta};
use htd_trojan::{apply_coupling, insert, InsertedTrojan, TrojanSpec};

use crate::error::Error;
use crate::Lab;

/// Locks a cache mutex, recovering from poisoning. The caches hold pure
/// memoised simulation results — a panicking holder can at worst leave a
/// fully-written entry or none at all, never a torn value — so the data
/// behind a poisoned lock is still valid and the campaign can continue.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A placed AES-128 bitstream: either the golden design or a
/// trojan-infected variant that shares its placement and routing
/// (Section II-A).
#[derive(Debug, Clone)]
pub struct Design {
    aes: AesNetlist,
    placement: Placement,
    trojan: Option<InsertedTrojan>,
}

impl Design {
    /// Synthesizes and places the golden AES-128.
    ///
    /// # Errors
    ///
    /// Propagates netlist generation or placement failures.
    pub fn golden(lab: &Lab) -> Result<Self, Error> {
        let aes = AesNetlist::generate()?;
        let placement = Placement::place(aes.netlist(), &lab.device)?;
        Ok(Design {
            aes,
            placement,
            trojan: None,
        })
    }

    /// Builds the infected variant: the golden design plus `spec`, inserted
    /// into unused sites without touching the original placement.
    ///
    /// # Errors
    ///
    /// Propagates generation, placement or insertion failures, and
    /// rejects trojaned netlists that fail the structural lint gate.
    pub fn infected(lab: &Lab, spec: &TrojanSpec) -> Result<Self, Error> {
        Self::infected_with_obs(lab, spec, &Obs::noop())
    }

    /// [`Self::infected`] with an observability handle.
    ///
    /// Every trojaned netlist is validated by the structural lint
    /// pipeline ([`htd_netlist::PassManager::lints`]) before use; the
    /// per-pass diagnostics counters (`pass.<name>.{runs,cells_removed,
    /// nets_removed,lints}`) are mirrored into `obs`. The gate runs once
    /// per design on the calling thread, so the counters are
    /// worker-invariant by construction.
    ///
    /// # Errors
    ///
    /// [`Error::LintFailed`] when the lints find anything, plus the
    /// failures of [`Self::infected`].
    pub fn infected_with_obs(lab: &Lab, spec: &TrojanSpec, obs: &Obs) -> Result<Self, Error> {
        let mut aes = AesNetlist::generate()?;
        let mut placement = Placement::place(aes.netlist(), &lab.device)?;
        let trojan = insert(&mut aes, &mut placement, spec)?;
        let report = htd_netlist::PassManager::lints().run(aes.netlist())?;
        for (name, value) in report.diagnostics.counters() {
            obs.add(&name, value);
        }
        if !report.diagnostics.is_clean() {
            return Err(Error::LintFailed {
                design: spec.name.clone(),
                lints: report
                    .diagnostics
                    .lints()
                    .iter()
                    .map(ToString::to_string)
                    .collect(),
            });
        }
        Ok(Design {
            aes,
            placement,
            trojan: Some(trojan),
        })
    }

    /// The AES design (netlist + pin map).
    pub fn aes(&self) -> &AesNetlist {
        &self.aes
    }

    /// The placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The inserted trojan, if this is an infected design.
    pub fn trojan(&self) -> Option<&InsertedTrojan> {
        self.trojan.as_ref()
    }

    /// Slices used by the design (trojan included if present).
    pub fn used_slices(&self) -> usize {
        self.placement.used_slices()
    }
}

/// Cache key for per-stimulus simulation results: the (plaintext, key)
/// pair. The device itself pins the remaining key dimensions — a device
/// *is* one (design, die) combination — so caching on the device realises
/// the design × die × pair keying.
type PairKey = ([u8; 16], [u8; 16]);

/// Switching activity in SoA form: parallel `(absolute time, driver-net
/// index)` arrays. This is what the activity cache stores — the
/// acquisition kernels consume it directly, and the AoS
/// [`CurrentEvent`] view is reconstructed on demand from the device's
/// [`ActivityTable`] (bit-identical: same order, same per-net values).
#[derive(Debug, Default)]
struct IndexedActivity {
    times_ps: Vec<f64>,
    nets: Vec<u32>,
}

/// Occupancy and hit counters of a device's simulation caches (see
/// [`ProgrammedDevice::cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Distinct (plaintext, key) pairs with cached settle times.
    pub settle_entries: usize,
    /// Settle-time lookups answered from cache.
    pub settle_hits: u64,
    /// Settle-time lookups that had to simulate.
    pub settle_misses: u64,
    /// Distinct (plaintext, key) pairs with cached switching activity.
    pub activity_entries: usize,
    /// Activity lookups answered from cache.
    pub activity_hits: u64,
    /// Activity lookups that had to simulate.
    pub activity_misses: u64,
    /// Cache lock acquisitions that recovered from a poisoned mutex.
    /// Non-zero means a worker panicked while holding a cache lock and
    /// the campaign silently continued on the (still valid) data.
    pub poisoned: u64,
}

/// A [`Design`] programmed onto one fabricated die: delays annotated with
/// that die's process variation and the trojan's parasitic coupling
/// applied. This is the unit every measurement runs against.
///
/// The device memoises its pure, expensive simulations per
/// (plaintext, key) pair: round-10 settle times, full-encryption
/// switching activity (stored SoA for the batched acquisition kernels),
/// and the noise-free convolved signal of each measurement chain. All
/// are deterministic functions of (design, die, pair) with no noise
/// involved, so caching cannot change any measured value; it only
/// removes duplicate work (e.g. between sweep aiming and matrix
/// measurement, or across the repeated acquisitions of an averaging
/// study, which now pay only the per-rep noise/quantise pass). The
/// caches are internally locked, so one device can be shared across
/// worker threads.
#[derive(Debug)]
pub struct ProgrammedDevice<'a> {
    lab: &'a Lab,
    design: &'a Design,
    die: &'a DieVariation,
    annotation: DelayAnnotation,
    /// CSR timing tables compiled once per (design, die); every
    /// event-driven simulation on this device runs on them.
    compiled: OnceLock<CompiledTiming>,
    /// Per-net charge/position lookup, built once per (design, die).
    activity_table: OnceLock<ActivityTable>,
    /// Per-net `charge × probe coupling` for the EM chain.
    em_weights: OnceLock<Vec<f64>>,
    /// Per-net charge (weight 1) for the global power chain.
    power_weights: OnceLock<Vec<f64>>,
    /// Probe impulse response sampled on the EM scope time base.
    em_kernel: OnceLock<Vec<f64>>,
    /// Supply RC impulse response sampled on the power scope time base.
    power_kernel: OnceLock<Vec<f64>>,
    settle_cache: Mutex<HashMap<PairKey, Arc<Vec<Option<f64>>>>>,
    activity_cache: Mutex<HashMap<PairKey, Arc<IndexedActivity>>>,
    /// Noise-free convolved EM signal per pair: acquisitions replay it
    /// through [`read_out`], paying only the noise/quantise pass.
    em_clean_cache: Mutex<HashMap<PairKey, Arc<Vec<f64>>>>,
    /// Same for the global power chain.
    power_clean_cache: Mutex<HashMap<PairKey, Arc<Vec<f64>>>>,
    /// Event count of the last simulated activity — a reserve hint so
    /// later pairs on this device stream into pre-sized SoA rows.
    activity_hint: AtomicU64,
    settle_hits: AtomicU64,
    settle_misses: AtomicU64,
    activity_hits: AtomicU64,
    activity_misses: AtomicU64,
    cache_poisoned: AtomicU64,
    obs: Obs,
}

impl<'a> ProgrammedDevice<'a> {
    /// Programs `design` onto `die`.
    pub fn new(lab: &'a Lab, design: &'a Design, die: &'a DieVariation) -> Self {
        Self::with_obs(lab, design, die, Obs::noop())
    }

    /// [`Self::new`] with an observability handle: cache hits/misses and
    /// poisoned-lock recoveries are mirrored into `obs` counters
    /// (`cache.settle.hit`, `cache.activity.miss`, `cache.poisoned`, …)
    /// so they surface in run manifests.
    pub fn with_obs(lab: &'a Lab, design: &'a Design, die: &'a DieVariation, obs: Obs) -> Self {
        let mut annotation =
            DelayAnnotation::annotate(design.aes.netlist(), &design.placement, &lab.tech, die);
        if let Some(trojan) = &design.trojan {
            apply_coupling(
                &mut annotation,
                design.aes.netlist(),
                &design.placement,
                &lab.tech,
                &lab.power_grid,
                trojan,
            );
        }
        ProgrammedDevice {
            lab,
            design,
            die,
            annotation,
            compiled: OnceLock::new(),
            activity_table: OnceLock::new(),
            em_weights: OnceLock::new(),
            power_weights: OnceLock::new(),
            em_kernel: OnceLock::new(),
            power_kernel: OnceLock::new(),
            settle_cache: Mutex::new(HashMap::new()),
            activity_cache: Mutex::new(HashMap::new()),
            em_clean_cache: Mutex::new(HashMap::new()),
            power_clean_cache: Mutex::new(HashMap::new()),
            activity_hint: AtomicU64::new(0),
            settle_hits: AtomicU64::new(0),
            settle_misses: AtomicU64::new(0),
            activity_hits: AtomicU64::new(0),
            activity_misses: AtomicU64::new(0),
            cache_poisoned: AtomicU64::new(0),
            obs,
        }
    }

    /// Locks one of the device's cache mutexes, counting poisoned-lock
    /// recoveries: a recovery is safe (the memoised values are pure, see
    /// [`lock_unpoisoned`]) but means a worker panicked mid-campaign, so
    /// it must show up in manifests rather than pass silently.
    fn lock_cache<'m, T>(&self, mutex: &'m Mutex<T>) -> MutexGuard<'m, T> {
        if mutex.is_poisoned() {
            self.cache_poisoned.fetch_add(1, Ordering::Relaxed);
            self.obs.incr("cache.poisoned");
        }
        lock_unpoisoned(mutex)
    }

    /// The design loaded on this device.
    pub fn design(&self) -> &Design {
        self.design
    }

    /// The die this device was fabricated as.
    pub fn die(&self) -> &DieVariation {
        self.die
    }

    /// The annotated delays (including any trojan coupling).
    pub fn annotation(&self) -> &DelayAnnotation {
        &self.annotation
    }

    /// Timing tables in CSR form, compiled lazily on first simulation.
    /// Pure function of (design, die), so `OnceLock` racing is benign.
    fn compiled_timing(&self) -> &CompiledTiming {
        self.compiled
            .get_or_init(|| CompiledTiming::compile(self.design.aes.netlist(), &self.annotation))
    }

    /// Per-net charge/position table, built lazily on first acquisition.
    fn table(&self) -> &ActivityTable {
        self.activity_table.get_or_init(|| {
            ActivityTable::build(
                self.design.aes.netlist(),
                &self.design.placement,
                self.die,
                &self.lab.tech,
            )
        })
    }

    /// Per-net `charge × probe coupling` weights for the EM chain.
    fn em_weighted_charges(&self) -> &[f64] {
        self.em_weights.get_or_init(|| {
            self.table()
                .weighted_charges(|p| self.lab.em.probe.coupling(p))
        })
    }

    /// Per-net charges for the (position-blind) power chain.
    fn power_weighted_charges(&self) -> &[f64] {
        self.power_weights
            .get_or_init(|| self.table().weighted_charges(|_| 1.0))
    }

    /// Probe impulse response on the EM scope time base.
    fn em_impulse_kernel(&self) -> &[f64] {
        self.em_kernel.get_or_init(|| {
            self.lab
                .em
                .probe
                .impulse_response(self.lab.em.scope.sample_period_ps)
        })
    }

    /// Supply RC impulse response on the power scope time base.
    fn power_impulse_kernel(&self) -> &[f64] {
        self.power_kernel.get_or_init(|| {
            self.lab
                .power
                .impulse_response(self.lab.power.scope.sample_period_ps)
        })
    }

    /// Functional encryption (sanity check; both golden and dormant
    /// infected devices must agree with the reference cipher).
    ///
    /// # Errors
    ///
    /// Propagates netlist validation failures.
    pub fn encrypt(&self, pt: &[u8; 16], key: &[u8; 16]) -> Result<[u8; 16], Error> {
        let mut sim = AesSim::new(&self.design.aes)?;
        Ok(sim.encrypt(pt, key))
    }

    /// Data-dependent settling time of each ciphertext bit's register `D`
    /// pin during the round-10 evaluation for the given pair — the
    /// quantity the clock-glitch sweep reads out (Section III-B).
    ///
    /// `None` entries are bits that did not toggle (they can never violate
    /// setup).
    ///
    /// # Errors
    ///
    /// Propagates netlist validation failures.
    pub fn round10_settle_times(
        &self,
        pt: &[u8; 16],
        key: &[u8; 16],
    ) -> Result<Vec<Option<f64>>, Error> {
        let aes = &self.design.aes;
        let mut sim = AesSim::new(aes)?;
        sim.start(pt, key);
        for _ in 0..8 {
            sim.step_round();
        }
        // The next edge launches round 9's result; during that cycle the
        // round-10 logic settles at the state D pins (see the timing-crate
        // integration tests for the cycle accounting).
        let mut esim =
            CompiledSimulator::from_snapshot(self.compiled_timing(), sim.simulator().snapshot());
        let run = esim.clock_cycle();
        Ok(aes
            .state_d()
            .iter()
            .map(|&d| run.arrival_at_sinks_ps(d, &self.annotation))
            .collect())
    }

    /// [`Self::round10_settle_times`] through the device's settle-time
    /// cache: the first request for a pair simulates and stores the
    /// result; later requests (from any thread) return the stored
    /// `Arc` without re-simulating.
    ///
    /// # Errors
    ///
    /// Propagates netlist validation failures (never cached).
    pub fn round10_settle_times_cached(
        &self,
        pt: &[u8; 16],
        key: &[u8; 16],
    ) -> Result<Arc<Vec<Option<f64>>>, Error> {
        let key_pair: PairKey = (*pt, *key);
        if let Some(hit) = self.lock_cache(&self.settle_cache).get(&key_pair) {
            self.settle_hits.fetch_add(1, Ordering::Relaxed);
            self.obs.incr("cache.settle.hit");
            return Ok(Arc::clone(hit));
        }
        self.settle_misses.fetch_add(1, Ordering::Relaxed);
        self.obs.incr("cache.settle.miss");
        // Simulate outside the lock; a concurrent duplicate computation of
        // the same pure function is benign and both arrive at the same
        // value.
        let settles = Arc::new(self.round10_settle_times(pt, key)?);
        self.lock_cache(&self.settle_cache)
            .entry(key_pair)
            .or_insert_with(|| Arc::clone(&settles));
        Ok(settles)
    }

    /// Static-timing upper bound of the round path (used to aim sweeps).
    ///
    /// # Errors
    ///
    /// Propagates levelization failures.
    pub fn sta_min_period_ps(&self) -> Result<f64, Error> {
        let sta = Sta::analyze(self.design.aes.netlist(), &self.annotation)?;
        Ok(sta.min_period_ps(
            self.design.aes.netlist(),
            self.design.aes.state_d(),
            &self.annotation,
        ))
    }

    /// Simulates one full timed encryption on the compiled simulator and
    /// returns the switching activity in SoA form (the representation
    /// the acquisition kernels consume).
    fn indexed_activity(&self, pt: &[u8; 16], key: &[u8; 16]) -> Result<IndexedActivity, Error> {
        let aes = &self.design.aes;
        let mut fsim = aes.netlist().simulator()?;
        fsim.set_bus_bytes(aes.plaintext(), pt);
        fsim.set_bus_bytes(aes.key(), key);
        fsim.set(aes.load(), true);
        fsim.settle();
        let mut esim = CompiledSimulator::from_snapshot(self.compiled_timing(), fsim.snapshot());
        // The load strobe drops during cycle 0, so edge 1 already captures
        // round 1 (synchronous testbench behaviour).
        esim.set_input(aes.load(), false);
        let period = self.lab.acquisition.clock_period_ps;
        let table = self.table();
        let mut idx = IndexedActivity::default();
        let hint = self.activity_hint.load(Ordering::Relaxed) as usize;
        idx.times_ps.reserve(hint);
        idx.nets.reserve(hint);
        for cycle in 0..self.lab.acquisition.n_cycles {
            // Stream toggles straight into the SoA rows — same filter and
            // bit patterns as `ActivityTable::extend_indexed` over a
            // `TimedRun`, without materialising the run.
            let cycle_start_ps = cycle as f64 * period;
            esim.clock_cycle_visit(|time_ps, net, _| {
                let i = net.index();
                if table.emits(i) {
                    idx.times_ps.push(cycle_start_ps + time_ps);
                    idx.nets.push(i as u32);
                }
            });
        }
        self.activity_hint
            .store(idx.times_ps.len() as u64, Ordering::Relaxed);
        Ok(idx)
    }

    /// [`Self::indexed_activity`] through the device's activity cache
    /// (see [`Self::round10_settle_times_cached`] for the policy).
    fn indexed_activity_cached(
        &self,
        pt: &[u8; 16],
        key: &[u8; 16],
    ) -> Result<Arc<IndexedActivity>, Error> {
        let key_pair: PairKey = (*pt, *key);
        if let Some(hit) = self.lock_cache(&self.activity_cache).get(&key_pair) {
            self.activity_hits.fetch_add(1, Ordering::Relaxed);
            self.obs.incr("cache.activity.hit");
            return Ok(Arc::clone(hit));
        }
        self.activity_misses.fetch_add(1, Ordering::Relaxed);
        self.obs.incr("cache.activity.miss");
        let idx = Arc::new(self.indexed_activity(pt, key)?);
        self.lock_cache(&self.activity_cache)
            .entry(key_pair)
            .or_insert_with(|| Arc::clone(&idx));
        Ok(idx)
    }

    /// Runs one full timed encryption and returns the current events of
    /// every cycle (the EM/power chains integrate these).
    ///
    /// # Errors
    ///
    /// Propagates netlist validation failures.
    pub fn timed_encryption_activity(
        &self,
        pt: &[u8; 16],
        key: &[u8; 16],
    ) -> Result<Vec<CurrentEvent>, Error> {
        let idx = self.indexed_activity(pt, key)?;
        let mut events = Vec::new();
        self.table()
            .append_events(&idx.times_ps, &idx.nets, &mut events);
        Ok(events)
    }

    /// [`Self::timed_encryption_activity`] on the retained scalar
    /// reference path ([`EventSimulator`] + [`collect_activity`]). The
    /// compiled/SoA hot path is pinned bit-for-bit against this in
    /// tests; production code should not call it.
    ///
    /// # Errors
    ///
    /// Propagates netlist validation failures.
    #[doc(hidden)]
    pub fn timed_encryption_activity_reference(
        &self,
        pt: &[u8; 16],
        key: &[u8; 16],
    ) -> Result<Vec<CurrentEvent>, Error> {
        let aes = &self.design.aes;
        let netlist = aes.netlist();
        let mut fsim = netlist.simulator()?;
        fsim.set_bus_bytes(aes.plaintext(), pt);
        fsim.set_bus_bytes(aes.key(), key);
        fsim.set(aes.load(), true);
        fsim.settle();
        let mut esim = EventSimulator::from_snapshot(netlist, fsim.snapshot());
        esim.set_input(aes.load(), false);
        let period = self.lab.acquisition.clock_period_ps;
        let mut events = Vec::new();
        for cycle in 0..self.lab.acquisition.n_cycles {
            let run = esim.clock_cycle(&self.annotation);
            events.extend(collect_activity(
                &run,
                cycle as f64 * period,
                netlist,
                &self.design.placement,
                self.die,
                &self.lab.tech,
            ));
        }
        Ok(events)
    }

    /// [`Self::timed_encryption_activity`] through the device's activity
    /// cache (see [`Self::round10_settle_times_cached`] for the policy).
    /// The cache stores the SoA form; the AoS view returned here is
    /// reconstructed per call (cheap relative to simulation).
    ///
    /// # Errors
    ///
    /// Propagates netlist validation failures (never cached).
    pub fn timed_encryption_activity_cached(
        &self,
        pt: &[u8; 16],
        key: &[u8; 16],
    ) -> Result<Arc<Vec<CurrentEvent>>, Error> {
        let idx = self.indexed_activity_cached(pt, key)?;
        let mut events = Vec::new();
        self.table()
            .append_events(&idx.times_ps, &idx.nets, &mut events);
        Ok(Arc::new(events))
    }

    /// Looks up (or computes) the noise-free convolved signal of one
    /// chain for one pair. The activity cache is consulted exactly once
    /// per call — hit or miss of the clean cache — so the
    /// `cache.activity.*` counter stream is identical to acquiring
    /// straight from events. `acquire.events.*` counters are recorded
    /// only when the clean signal is computed, which happens exactly
    /// once per (pair, chain) per device regardless of worker count.
    #[allow(clippy::too_many_arguments)]
    fn clean_signal_cached(
        &self,
        pt: &[u8; 16],
        key: &[u8; 16],
        cache: &Mutex<HashMap<PairKey, Arc<Vec<f64>>>>,
        weighted: &[f64],
        kernel: &[f64],
        dt_ps: f64,
    ) -> Result<Arc<Vec<f64>>, Error> {
        let idx = self.indexed_activity_cached(pt, key)?;
        let key_pair: PairKey = (*pt, *key);
        if let Some(hit) = self.lock_cache(cache).get(&key_pair) {
            return Ok(Arc::clone(hit));
        }
        let n = self.lab.acquisition.n_samples(dt_ps);
        let mut impulses = Vec::new();
        let mut clean = Vec::new();
        let stats = bin_events_indexed(&idx.times_ps, &idx.nets, weighted, dt_ps, n, &mut impulses);
        convolve_kernel(&impulses, kernel, &mut clean);
        self.obs.add("acquire.events.binned", stats.binned);
        self.obs.add("acquire.events.dropped", stats.dropped);
        let clean = Arc::new(clean);
        self.lock_cache(cache)
            .entry(key_pair)
            .or_insert_with(|| Arc::clone(&clean));
        Ok(clean)
    }

    /// Current occupancy and hit counts of the simulation caches.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            settle_entries: lock_unpoisoned(&self.settle_cache).len(),
            settle_hits: self.settle_hits.load(Ordering::Relaxed),
            settle_misses: self.settle_misses.load(Ordering::Relaxed),
            activity_entries: lock_unpoisoned(&self.activity_cache).len(),
            activity_hits: self.activity_hits.load(Ordering::Relaxed),
            activity_misses: self.activity_misses.load(Ordering::Relaxed),
            poisoned: self.cache_poisoned.load(Ordering::Relaxed),
        }
    }

    /// Acquires one averaged EM trace of one encryption (Section IV).
    ///
    /// `measure_seed` drives the acquisition noise (scope + installation);
    /// reusing a seed reproduces the exact trace. The noise-free
    /// convolved signal comes through the clean-signal cache (fed by the
    /// activity cache), so repeated acquisitions of the same pair pay
    /// only the per-rep noise/quantise pass.
    ///
    /// # Errors
    ///
    /// Propagates netlist validation failures.
    pub fn acquire_em_trace(
        &self,
        pt: &[u8; 16],
        key: &[u8; 16],
        measure_seed: u64,
    ) -> Result<Trace, Error> {
        let em = &self.lab.em;
        let clean = self.clean_signal_cached(
            pt,
            key,
            &self.em_clean_cache,
            self.em_weighted_charges(),
            self.em_impulse_kernel(),
            em.scope.sample_period_ps,
        )?;
        let mut rng = StdRng::seed_from_u64(measure_seed ^ 0xE37A_11CE_55AA_0001);
        Ok(read_out(
            &clean,
            &em.scope,
            em.gain,
            em.setup_gain_jitter,
            self.lab.acquisition.averages,
            &mut rng,
        ))
    }

    /// Acquires one averaged global power trace (the baseline chain).
    ///
    /// # Errors
    ///
    /// Propagates netlist validation failures.
    pub fn acquire_power_trace(
        &self,
        pt: &[u8; 16],
        key: &[u8; 16],
        measure_seed: u64,
    ) -> Result<Trace, Error> {
        let power = &self.lab.power;
        let clean = self.clean_signal_cached(
            pt,
            key,
            &self.power_clean_cache,
            self.power_weighted_charges(),
            self.power_impulse_kernel(),
            power.scope.sample_period_ps,
        )?;
        let mut rng = StdRng::seed_from_u64(measure_seed ^ 0x0F0F_5A5A_3C3C_0002);
        Ok(read_out(
            &clean,
            &power.scope,
            power.gain,
            power.setup_gain_jitter,
            self.lab.acquisition.averages,
            &mut rng,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_aes::soft::Aes128;

    fn lab() -> Lab {
        Lab::paper()
    }

    #[test]
    fn golden_device_encrypts_correctly() {
        let lab = lab();
        let golden = Design::golden(&lab).unwrap();
        let die = lab.fabricate_die(0);
        let dev = ProgrammedDevice::new(&lab, &golden, &die);
        let pt = [0x11u8; 16];
        let key = [0x22u8; 16];
        assert_eq!(
            dev.encrypt(&pt, &key).unwrap(),
            Aes128::new(&key).encrypt_block(&pt)
        );
    }

    #[test]
    fn dormant_infected_device_is_functionally_identical() {
        let lab = lab();
        let infected = Design::infected(&lab, &TrojanSpec::ht_comb()).unwrap();
        let die = lab.fabricate_die(0);
        let dev = ProgrammedDevice::new(&lab, &infected, &die);
        let pt = [0x33u8; 16];
        let key = [0x44u8; 16];
        assert_eq!(
            dev.encrypt(&pt, &key).unwrap(),
            Aes128::new(&key).encrypt_block(&pt)
        );
        assert!(infected.trojan().is_some());
    }

    #[test]
    fn infected_settle_times_shift_on_tapped_bits() {
        let lab = lab();
        let golden = Design::golden(&lab).unwrap();
        let infected = Design::infected(&lab, &TrojanSpec::ht_comb()).unwrap();
        let die = lab.fabricate_die(0);
        let pt = [0x01u8; 16];
        let key = [0xFEu8; 16];
        let g = ProgrammedDevice::new(&lab, &golden, &die)
            .round10_settle_times(&pt, &key)
            .unwrap();
        let t = ProgrammedDevice::new(&lab, &infected, &die)
            .round10_settle_times(&pt, &key)
            .unwrap();
        let mut shifted = 0usize;
        let mut max_shift = 0.0f64;
        for (a, b) in g.iter().zip(&t) {
            if let (Some(a), Some(b)) = (a, b) {
                let d = (b - a).abs();
                if d > 30.0 {
                    shifted += 1;
                }
                max_shift = max_shift.max(d);
            }
        }
        assert!(shifted > 8, "only {shifted} bits shifted");
        assert!(
            max_shift > 100.0 && max_shift < 3_000.0,
            "max shift {max_shift}"
        );
    }

    #[test]
    fn em_traces_show_round_structure() {
        let lab = lab();
        let golden = Design::golden(&lab).unwrap();
        let die = lab.fabricate_die(0);
        let dev = ProgrammedDevice::new(&lab, &golden, &die);
        let trace = dev
            .acquire_em_trace(&[0x55u8; 16], &[0xAAu8; 16], 1)
            .unwrap();
        // ~208 samples per cycle; cycles 0..=10 carry activity.
        let per_cycle = (lab.acquisition.clock_period_ps / trace.dt_ps()) as usize;
        let cycle_rms = |c: usize| trace.window(c * per_cycle, (c + 1) * per_cycle).rms();
        // Every computing cycle is loud; the tail idle cycle is quiet.
        for c in 0..10 {
            assert!(cycle_rms(c) > 5.0 * cycle_rms(12).max(1.0), "cycle {c}");
        }
    }

    #[test]
    fn same_seed_reproduces_the_trace_exactly() {
        let lab = lab();
        let golden = Design::golden(&lab).unwrap();
        let die = lab.fabricate_die(2);
        let dev = ProgrammedDevice::new(&lab, &golden, &die);
        let a = dev.acquire_em_trace(&[1u8; 16], &[2u8; 16], 9).unwrap();
        let b = dev.acquire_em_trace(&[1u8; 16], &[2u8; 16], 9).unwrap();
        assert_eq!(a, b);
        let c = dev.acquire_em_trace(&[1u8; 16], &[2u8; 16], 10).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn caches_return_cold_results_and_count_hits() {
        let lab = lab();
        let golden = Design::golden(&lab).unwrap();
        let die = lab.fabricate_die(3);
        let dev = ProgrammedDevice::new(&lab, &golden, &die);
        let pt = [0x5Au8; 16];
        let key = [0xC3u8; 16];

        let cold = dev.round10_settle_times(&pt, &key).unwrap();
        let first = dev.round10_settle_times_cached(&pt, &key).unwrap();
        let second = dev.round10_settle_times_cached(&pt, &key).unwrap();
        assert_eq!(*first, cold);
        assert!(Arc::ptr_eq(&first, &second));

        let cold_events = dev.timed_encryption_activity(&pt, &key).unwrap();
        let cached_events = dev.timed_encryption_activity_cached(&pt, &key).unwrap();
        assert_eq!(*cached_events, cold_events);

        let stats = dev.cache_stats();
        assert_eq!(stats.settle_entries, 1);
        assert_eq!(stats.settle_hits, 1);
        assert_eq!(stats.activity_entries, 1);
        assert_eq!(stats.activity_hits, 0);

        // A trace acquisition goes through the activity cache.
        let a = dev.acquire_em_trace(&pt, &key, 7).unwrap();
        let b = dev.acquire_em_trace(&pt, &key, 7).unwrap();
        assert_eq!(a, b);
        assert_eq!(dev.cache_stats().activity_hits, 2);
    }

    #[test]
    fn poisoned_cache_locks_recover() {
        // A panicking lock holder must not wedge the device caches: the
        // memoised values are pure, so the guard recovers the data.
        let cache: Mutex<HashMap<u32, u32>> = Mutex::new(HashMap::from([(1, 10)]));
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = lock_unpoisoned(&cache);
            panic!("poison the lock");
        }));
        assert!(cache.is_poisoned());
        assert_eq!(lock_unpoisoned(&cache).get(&1), Some(&10));
        lock_unpoisoned(&cache).insert(2, 20);
        assert_eq!(lock_unpoisoned(&cache).len(), 2);
    }

    #[test]
    fn poisoned_recoveries_are_counted_and_reported() {
        let lab = lab();
        let golden = Design::golden(&lab).unwrap();
        let die = lab.fabricate_die(4);
        let obs = Obs::recording();
        let dev = ProgrammedDevice::with_obs(&lab, &golden, &die, obs.clone());
        let pt = [0x6Bu8; 16];
        let key = [0x0Du8; 16];
        dev.round10_settle_times_cached(&pt, &key).unwrap();
        assert_eq!(dev.cache_stats().poisoned, 0);

        // Poison the settle cache the way a panicking worker would.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = dev.settle_cache.lock().unwrap();
            panic!("poison the lock");
        }));
        assert!(dev.settle_cache.is_poisoned());

        // The lookup still answers from the recovered cache, and every
        // recovering lock acquisition is counted (once for this hit).
        let again = dev.round10_settle_times_cached(&pt, &key).unwrap();
        assert!(!again.is_empty());
        let stats = dev.cache_stats();
        assert_eq!(stats.poisoned, 1);
        assert_eq!(stats.settle_hits, 1);
        assert_eq!(stats.settle_misses, 1);

        let counters: std::collections::BTreeMap<String, u64> =
            obs.snapshot().unwrap().counters.into_iter().collect();
        assert_eq!(counters.get("cache.poisoned"), Some(&1));
        assert_eq!(counters.get("cache.settle.hit"), Some(&1));
        assert_eq!(counters.get("cache.settle.miss"), Some(&1));
    }

    #[test]
    fn compiled_activity_path_matches_reference_bit_for_bit() {
        // The full fast path (compiled simulator + ActivityTable) must
        // reproduce the scalar reference (EventSimulator +
        // collect_activity) exactly — times, charges and positions to
        // the bit, in the same order — on both a golden and an infected
        // device (the trojan exercises coupling-perturbed delays).
        let lab = lab();
        let golden = Design::golden(&lab).unwrap();
        let infected = Design::infected(&lab, &TrojanSpec::ht_comb()).unwrap();
        let die = lab.fabricate_die(5);
        let pt = [0x9Cu8; 16];
        let key = [0x3Eu8; 16];
        for design in [&golden, &infected] {
            let dev = ProgrammedDevice::new(&lab, design, &die);
            let fast = dev.timed_encryption_activity(&pt, &key).unwrap();
            let reference = dev.timed_encryption_activity_reference(&pt, &key).unwrap();
            assert_eq!(fast.len(), reference.len());
            assert!(!fast.is_empty());
            for (i, (a, b)) in fast.iter().zip(&reference).enumerate() {
                assert_eq!(a.time_ps.to_bits(), b.time_ps.to_bits(), "event {i} time");
                assert_eq!(a.charge.to_bits(), b.charge.to_bits(), "event {i} charge");
                assert_eq!(a.position, b.position, "event {i} position");
            }
        }
    }

    #[test]
    fn cached_clean_signal_reproduces_the_event_level_chain_bit_for_bit() {
        // An acquisition through the clean-signal cache must equal the
        // full per-event chain (EmSetup::acquire / PowerSetup::acquire
        // over the reference activity) with the same derived RNG seed.
        let lab = lab();
        let golden = Design::golden(&lab).unwrap();
        let die = lab.fabricate_die(6);
        let dev = ProgrammedDevice::new(&lab, &golden, &die);
        let pt = [0xD4u8; 16];
        let key = [0x71u8; 16];
        let events = dev.timed_encryption_activity_reference(&pt, &key).unwrap();

        let mut rng = StdRng::seed_from_u64(11 ^ 0xE37A_11CE_55AA_0001);
        let want_em = lab.em.acquire(&events, &lab.acquisition, &mut rng);
        let got_em = dev.acquire_em_trace(&pt, &key, 11).unwrap();
        assert_eq!(want_em, got_em);

        let mut rng = StdRng::seed_from_u64(12 ^ 0x0F0F_5A5A_3C3C_0002);
        let want_power = lab.power.acquire(&events, &lab.acquisition, &mut rng);
        let got_power = dev.acquire_power_trace(&pt, &key, 12).unwrap();
        assert_eq!(want_power, got_power);
    }

    #[test]
    fn compiled_settle_times_match_reference_simulator() {
        let lab = lab();
        let golden = Design::golden(&lab).unwrap();
        let die = lab.fabricate_die(7);
        let dev = ProgrammedDevice::new(&lab, &golden, &die);
        let pt = [0x42u8; 16];
        let key = [0x24u8; 16];
        // Reference: the original EventSimulator-based computation.
        let aes = golden.aes();
        let mut sim = AesSim::new(aes).unwrap();
        sim.start(&pt, &key);
        for _ in 0..8 {
            sim.step_round();
        }
        let mut esim = EventSimulator::from_snapshot(aes.netlist(), sim.simulator().snapshot());
        let run = esim.clock_cycle(dev.annotation());
        let want: Vec<Option<f64>> = aes
            .state_d()
            .iter()
            .map(|&d| run.arrival_at_sinks_ps(d, dev.annotation()))
            .collect();
        let got = dev.round10_settle_times(&pt, &key).unwrap();
        assert_eq!(want.len(), got.len());
        for (a, b) in want.iter().zip(&got) {
            match (a, b) {
                (Some(a), Some(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn acquire_event_counters_are_recorded_once_per_pair_and_chain() {
        let lab = lab();
        let golden = Design::golden(&lab).unwrap();
        let die = lab.fabricate_die(8);
        let obs = Obs::recording();
        let dev = ProgrammedDevice::with_obs(&lab, &golden, &die, obs.clone());
        let pt = [0x10u8; 16];
        let key = [0x20u8; 16];
        // Three EM reps + one power rep: the events are binned once per
        // chain (EM and power share the activity but convolve their own
        // kernels), never per rep.
        for seed in 0..3 {
            dev.acquire_em_trace(&pt, &key, seed).unwrap();
        }
        dev.acquire_power_trace(&pt, &key, 0).unwrap();
        let events = dev.timed_encryption_activity(&pt, &key).unwrap();
        let counters: std::collections::BTreeMap<String, u64> =
            obs.snapshot().unwrap().counters.into_iter().collect();
        assert_eq!(
            counters.get("acquire.events.binned").copied().unwrap_or(0)
                + counters.get("acquire.events.dropped").copied().unwrap_or(0),
            2 * events.len() as u64
        );
        // All of this design's activity lies inside the acquisition
        // window, so nothing is dropped — but the counter still appears
        // (explicitly zero) so manifests always carry it.
        assert_eq!(counters.get("acquire.events.dropped"), Some(&0));
        // One activity miss (first EM rep), then three hits.
        assert_eq!(counters.get("cache.activity.miss"), Some(&1));
        assert_eq!(counters.get("cache.activity.hit"), Some(&3));
    }

    #[test]
    fn different_dies_emit_differently() {
        let lab = lab();
        let golden = Design::golden(&lab).unwrap();
        let d1 = lab.fabricate_die(1);
        let d2 = lab.fabricate_die(2);
        let pt = [0x77u8; 16];
        let key = [0x88u8; 16];
        let t1 = ProgrammedDevice::new(&lab, &golden, &d1)
            .acquire_em_trace(&pt, &key, 5)
            .unwrap();
        let t2 = ProgrammedDevice::new(&lab, &golden, &d2)
            .acquire_em_trace(&pt, &key, 5)
            .unwrap();
        let diff = t1.abs_diff(&t2);
        assert!(diff.peak() > 10.0, "inter-die difference {}", diff.peak());
    }
}
