//! The virtual laboratory: every fixed piece of the paper's bench.

use htd_em::{AcquisitionParams, EmSetup, PowerSetup};
use htd_fabric::{Device, DeviceConfig, DieVariation, PowerGrid, Technology, VariationModel};

/// All fixed experimental parameters: the device family, technology,
/// process-variation statistics, power grid and measurement chains.
///
/// One `Lab` is shared by every design, die and measurement of an
/// experiment, exactly like the physical bench the paper keeps constant
/// while swapping FPGAs in the ZIF socket (Appendix B).
#[derive(Debug, Clone)]
pub struct Lab {
    /// The FPGA model programmed in every experiment.
    pub device: Device,
    /// Delay/charge parameters of the 65 nm process.
    pub tech: Technology,
    /// Process-variation statistics dies are fabricated with.
    pub variation: VariationModel,
    /// Power-distribution-network coupling model.
    pub power_grid: PowerGrid,
    /// The EM measurement chain.
    pub em: EmSetup,
    /// The global power measurement chain (baseline).
    pub power: PowerSetup,
    /// Clocking and averaging of one acquisition.
    pub acquisition: AcquisitionParams,
}

impl Lab {
    /// The paper's bench: scaled Virtex-5 LX30, 65 nm variations, RFU-5-2
    /// probe + 30 dB amplifier + 5 GS/s scope, 24 MHz clock, ×1000
    /// averaging.
    pub fn paper() -> Self {
        let device = Device::new(DeviceConfig::virtex5_lx30_scaled());
        Lab {
            device,
            tech: Technology::virtex5(),
            variation: VariationModel::nm65(),
            power_grid: PowerGrid::virtex5(),
            em: EmSetup::bench(device.center()),
            power: PowerSetup::bench(),
            acquisition: AcquisitionParams::paper_bench(),
        }
    }

    /// Fabricates a virtual die: one physical FPGA with its own process
    /// variations, fully determined by `seed`.
    pub fn fabricate_die(&self, seed: u64) -> DieVariation {
        DieVariation::generate(&self.variation, &self.device, seed)
    }

    /// Fabricates the paper's 8-FPGA batch (seeds `0..8`).
    ///
    /// Dies are generated in parallel (each is a pure function of its
    /// seed, so the batch is identical for every worker count) — the
    /// large-`n` extension studies fabricate hundreds.
    pub fn fabricate_batch(&self, n: usize) -> Vec<DieVariation> {
        htd_par::parallel_map_indexed(0, n, |s| self.fabricate_die(s as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_lab_is_reproducible() {
        let a = Lab::paper();
        let b = Lab::paper();
        assert_eq!(a.device, b.device);
        let da = a.fabricate_die(3);
        let db = b.fabricate_die(3);
        assert_eq!(da.global_delay_factor(), db.global_delay_factor());
    }

    #[test]
    fn batch_has_distinct_dies() {
        let lab = Lab::paper();
        let batch = lab.fabricate_batch(8);
        assert_eq!(batch.len(), 8);
        let g0 = batch[0].global_current_factor();
        assert!(batch[1..].iter().any(|d| d.global_current_factor() != g0));
    }
}
