//! The measurement engine: a deterministic worker pool that fans
//! campaign work — (plaintext, key) pairs, sweep repetitions, per-die
//! trace acquisitions, false-negative-rate trials — across threads.
//!
//! # Determinism guarantee
//!
//! Every fanned computation derives its randomness from a seed that is a
//! pure function of the item's **index** (pair number, repetition
//! number, die number), never of scheduling order. Combined with
//! [`htd_par::parallel_map`]'s order-preserving merge, this makes every
//! campaign result **bit-identical for every worker count, including
//! 1** — the serial and parallel paths are the same computation, only
//! interleaved differently in time.
//!
//! # Choosing a worker count
//!
//! [`Engine::default`] auto-sizes (the `HTD_WORKERS` environment
//! variable if set, else the machine's available parallelism).
//! [`Engine::serial`] pins one worker — used internally when a fanned
//! outer loop calls a fanned inner one, so pools never nest.

use htd_par::{parallel_map, parallel_map_indexed, resolve_workers};

/// A worker-pool handle passed into the `*_with` measurement entry
/// points. Cheap to copy; holds no threads (threads are scoped per
/// call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Engine {
    workers: usize,
}

impl Engine {
    /// An engine that runs everything on the calling thread.
    pub fn serial() -> Self {
        Engine { workers: 1 }
    }

    /// An engine that auto-sizes its pool (see [`htd_par::resolve_workers`]).
    pub fn auto() -> Self {
        Engine { workers: 0 }
    }

    /// An engine with an explicit worker count (`0` = auto).
    pub fn with_workers(workers: usize) -> Self {
        Engine { workers }
    }

    /// The resolved worker count this engine will use.
    pub fn workers(&self) -> usize {
        resolve_workers(self.workers)
    }

    /// Order-preserving map over `items`; `f` gets `(index, &item)`. The
    /// item reference carries the slice's lifetime, so results may borrow
    /// from the input.
    pub fn map<'s, T, U, F>(&self, items: &'s [T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &'s T) -> U + Sync,
    {
        parallel_map(self.workers, items, f)
    }

    /// Order-preserving map over `0..n`; `f` gets the index.
    pub fn map_indexed<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        parallel_map_indexed(self.workers, n, f)
    }
}

impl Default for Engine {
    /// Auto-sized, same as [`Engine::auto`].
    fn default() -> Self {
        Engine::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u32> = (0..100).collect();
        let want = Engine::serial().map(&items, |i, &x| x as u64 * i as u64);
        for workers in [2, 3, 8] {
            let got = Engine::with_workers(workers).map(&items, |i, &x| x as u64 * i as u64);
            assert_eq!(got, want, "workers = {workers}");
        }
    }

    #[test]
    fn indexed_map_is_ordered() {
        let got = Engine::with_workers(4).map_indexed(37, |i| i * 2);
        assert_eq!(got, (0..37).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn worker_resolution() {
        assert_eq!(Engine::serial().workers(), 1);
        assert_eq!(Engine::with_workers(6).workers(), 6);
        assert!(Engine::auto().workers() >= 1);
    }
}
