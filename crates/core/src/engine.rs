//! The measurement engine: a deterministic worker pool that fans
//! campaign work — (plaintext, key) pairs, sweep repetitions, per-die
//! trace acquisitions, false-negative-rate trials — across threads.
//!
//! # Determinism guarantee
//!
//! Every fanned computation derives its randomness from a seed that is a
//! pure function of the item's **index** (pair number, repetition
//! number, die number), never of scheduling order. Combined with
//! [`htd_par::parallel_map`]'s order-preserving merge, this makes every
//! campaign result **bit-identical for every worker count, including
//! 1** — the serial and parallel paths are the same computation, only
//! interleaved differently in time.
//!
//! # Choosing a worker count
//!
//! [`Engine::default`] auto-sizes (the `HTD_WORKERS` environment
//! variable if set, else the machine's available parallelism).
//! [`Engine::serial`] pins one worker — used internally when a fanned
//! outer loop calls a fanned inner one, so pools never nest.
//!
//! # Observability
//!
//! An engine carries an [`Obs`] handle (disabled by default). Every fan
//! records `engine.fans` / `engine.tasks` counters — pure functions of
//! the campaign shape, bit-identical at any worker count — plus
//! observational per-slot occupancy. Attach a recording handle with
//! [`Engine::with_obs`]; inner serial engines inherit it via
//! [`Engine::serial_like`] so campaign instrumentation survives the
//! outer/inner pool split.

use htd_obs::Obs;
use htd_par::{parallel_map_indexed_stats, parallel_try_map_indexed_stats, resolve_workers};

use crate::error::Error;

/// The outcome of one attempt inside [`Engine::map_retry`].
#[derive(Debug)]
pub enum Attempt<U> {
    /// The attempt succeeded.
    Ok(U),
    /// The attempt hit a retryable fault; the engine re-invokes the
    /// closure with the next attempt number (until the budget runs out).
    Faulted,
    /// The attempt hit a non-retryable failure; the whole map aborts.
    Fatal(Error),
}

/// Per-item outcome of [`Engine::map_retry`].
#[derive(Debug)]
pub struct Retried<U> {
    /// The successful value, or `None` when every attempt faulted.
    pub value: Option<U>,
    /// Attempts spent on this item (at least 1).
    pub attempts: usize,
}

/// A worker-pool handle passed into the `*_with` measurement entry
/// points. Cheap to clone; holds no threads (threads are scoped per
/// call).
#[derive(Debug, Clone, Default)]
pub struct Engine {
    workers: usize,
    obs: Obs,
}

impl Engine {
    /// An engine that runs everything on the calling thread.
    pub fn serial() -> Self {
        Engine {
            workers: 1,
            obs: Obs::noop(),
        }
    }

    /// An engine that auto-sizes its pool (see [`htd_par::resolve_workers`]).
    pub fn auto() -> Self {
        Engine {
            workers: 0,
            obs: Obs::noop(),
        }
    }

    /// An engine with an explicit worker count (`0` = auto).
    pub fn with_workers(workers: usize) -> Self {
        Engine {
            workers,
            obs: Obs::noop(),
        }
    }

    /// This engine with the given observability handle attached.
    /// Recording never changes what the engine computes — only what it
    /// reports.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The engine's observability handle (disabled unless one was
    /// attached).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// A one-worker engine sharing this engine's observability handle —
    /// the inner engine for nested fans, so instrumentation survives the
    /// outer/inner pool split without nesting pools.
    pub fn serial_like(&self) -> Engine {
        Engine {
            workers: 1,
            obs: self.obs.clone(),
        }
    }

    /// The resolved worker count this engine will use.
    pub fn workers(&self) -> usize {
        resolve_workers(self.workers)
    }

    /// Order-preserving map over `items`; `f` gets `(index, &item)`. The
    /// item reference carries the slice's lifetime, so results may borrow
    /// from the input.
    pub fn map<'s, T, U, F>(&self, items: &'s [T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &'s T) -> U + Sync,
    {
        self.map_indexed(items.len(), |i| f(i, &items[i]))
    }

    /// Order-preserving map over `0..n`; `f` gets the index.
    pub fn map_indexed<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        let (out, stats) = parallel_map_indexed_stats(self.workers, n, f);
        self.obs
            .record_fan(n as u64, stats.workers as u64, &stats.per_worker);
        out
    }

    /// Order-preserving map over `0..n` with bounded per-item retry:
    /// `f(index, attempt)` runs with `attempt` counting up from 0 until
    /// it returns [`Attempt::Ok`] or `max_retries` extra attempts are
    /// spent. An item that exhausts its budget yields
    /// `Retried { value: None, .. }` — quarantine is the *caller's*
    /// policy decision, not the engine's.
    ///
    /// Determinism: the retry loop runs entirely inside the item's own
    /// task, so attempt numbers — like item indices — never depend on
    /// scheduling. A fatal error aborts with the lowest-index failure at
    /// any worker count.
    ///
    /// # Errors
    ///
    /// The lowest-index [`Attempt::Fatal`] error, if any.
    pub fn map_retry<U, F>(
        &self,
        n: usize,
        max_retries: usize,
        f: F,
    ) -> Result<Vec<Retried<U>>, Error>
    where
        U: Send,
        F: Fn(usize, usize) -> Attempt<U> + Sync,
    {
        let (result, stats) = parallel_try_map_indexed_stats(self.workers, n, |i| {
            for attempt in 0..=max_retries {
                match f(i, attempt) {
                    Attempt::Ok(value) => {
                        return Ok(Retried {
                            value: Some(value),
                            attempts: attempt + 1,
                        })
                    }
                    Attempt::Faulted => {}
                    Attempt::Fatal(e) => return Err(e),
                }
            }
            Ok(Retried {
                value: None,
                attempts: max_retries + 1,
            })
        });
        self.obs
            .record_fan(n as u64, stats.workers as u64, &stats.per_worker);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u32> = (0..100).collect();
        let want = Engine::serial().map(&items, |i, &x| x as u64 * i as u64);
        for workers in [2, 3, 8] {
            let got = Engine::with_workers(workers).map(&items, |i, &x| x as u64 * i as u64);
            assert_eq!(got, want, "workers = {workers}");
        }
    }

    #[test]
    fn indexed_map_is_ordered() {
        let got = Engine::with_workers(4).map_indexed(37, |i| i * 2);
        assert_eq!(got, (0..37).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_retry_spends_its_budget_and_reports_exhaustion() {
        // Item i succeeds on attempt i (0-based): items beyond the
        // budget come back empty with a full attempt count.
        for workers in [1usize, 2, 8] {
            let out = Engine::with_workers(workers)
                .map_retry(6, 3, |i, attempt| {
                    if attempt == i {
                        Attempt::Ok(i * 10)
                    } else {
                        Attempt::Faulted
                    }
                })
                .unwrap();
            for (i, r) in out.iter().enumerate() {
                if i <= 3 {
                    assert_eq!(r.value, Some(i * 10), "workers = {workers}");
                    assert_eq!(r.attempts, i + 1);
                } else {
                    assert_eq!(r.value, None, "workers = {workers}");
                    assert_eq!(r.attempts, 4);
                }
            }
        }
    }

    #[test]
    fn map_retry_fatal_aborts_with_the_lowest_index() {
        for workers in [1usize, 2, 8] {
            let err = Engine::with_workers(workers)
                .map_retry::<(), _>(50, 2, |i, _| {
                    if i % 13 == 4 {
                        Attempt::Fatal(crate::error::Error::EmptyPopulation {
                            what: "fatal marker",
                        })
                    } else {
                        Attempt::Faulted
                    }
                })
                .unwrap_err();
            assert!(
                err.to_string().contains("fatal marker"),
                "workers = {workers}: {err}"
            );
        }
    }

    #[test]
    fn worker_resolution() {
        assert_eq!(Engine::serial().workers(), 1);
        assert_eq!(Engine::with_workers(6).workers(), 6);
        assert!(Engine::auto().workers() >= 1);
    }

    #[test]
    fn fan_counters_are_worker_invariant() {
        let count_at = |workers: usize| {
            let obs = Obs::recording();
            let engine = Engine::with_workers(workers).with_obs(obs.clone());
            let _ = engine.map_indexed(24, |i| i);
            let _ = engine.map(&[1u8, 2, 3], |_, &x| x);
            let _ = engine.map_retry::<usize, _>(5, 1, |i, _| Attempt::Ok(i));
            obs.snapshot().unwrap().counters
        };
        let want = count_at(1);
        assert!(want.contains(&("engine.fans".to_string(), 3)));
        assert!(want.contains(&("engine.tasks".to_string(), 32)));
        for workers in [2, 8] {
            assert_eq!(count_at(workers), want, "workers = {workers}");
        }
    }

    #[test]
    fn serial_like_shares_the_obs_handle() {
        let obs = Obs::recording();
        let engine = Engine::with_workers(4).with_obs(obs.clone());
        let inner = engine.serial_like();
        assert_eq!(inner.workers(), 1);
        assert!(inner.obs().enabled());
        let _ = inner.map_indexed(2, |i| i);
        let counters = obs.snapshot().unwrap().counters;
        assert!(counters.contains(&("engine.fans".to_string(), 1)));
    }
}
