//! Delay-based HT detection (paper Section III).
//!
//! Protocol, as in the paper:
//!
//! 1. Pick a set of random (plaintext, key) pairs. For each pair, run the
//!    encryption up to round 10 and sweep the glitched clock period down in
//!    35 ps steps, 51 steps total, repeating each sweep (default 10×) to
//!    average the measurement noise `dM`.
//! 2. The mean fault-onset step of each ciphertext bit is its delay
//!    estimate (Fig. 2).
//! 3. Characterise the Golden Model once; compare any device under test
//!    bit-by-bit and pair-by-pair via Eq. (4):
//!    `∆D(Na) = |∆D̄₁₀(Na) − D_HT(Na)|`. Bits whose difference exceeds the
//!    decision threshold are evidence of an HT; more pairs sample more
//!    bits and accumulate more evidence (Section III-B).
//!
//! Every measurement entry point has an [`Engine`]-taking `*_with`
//! variant that fans the campaign (settle simulation per pair, then one
//! task per pair × repetition cell) across the engine's worker pool.
//! Noise streams are derived from cell indices, never from scheduling
//! order, so the results are bit-identical for every worker count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use htd_faults::{FaultPlan, FaultSite, RepHealth};
use htd_timing::{GlitchParams, GlitchSweep};

use crate::error::Error;
use crate::{Engine, ProgrammedDevice};

/// A delay-measurement campaign: the (plaintext, key) pairs, the per-pair
/// sweep repetitions and the base seed for measurement noise.
#[derive(Debug, Clone)]
pub struct DelayCampaign {
    /// The (plaintext, key) pairs exercised (the paper uses 50 for Fig. 3).
    pub pairs: Vec<([u8; 16], [u8; 16])>,
    /// Sweep repetitions per pair (the paper repeats 10×).
    pub repetitions: usize,
    /// Base seed for the measurement-noise draws.
    pub seed: u64,
}

impl DelayCampaign {
    /// A campaign over `n_pairs` uniformly random pairs.
    pub fn random(n_pairs: usize, repetitions: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00D3_1A7C_0A31_9B2D);
        let pairs = (0..n_pairs)
            .map(|_| {
                let mut pt = [0u8; 16];
                let mut key = [0u8; 16];
                rng.fill(&mut pt);
                rng.fill(&mut key);
                (pt, key)
            })
            .collect();
        DelayCampaign {
            pairs,
            repetitions,
            seed,
        }
    }

    /// The paper's Fig. 3 campaign: 50 pairs × 10 repetitions.
    pub fn paper(seed: u64) -> Self {
        Self::random(50, 10, seed)
    }
}

/// Mean fault-onset steps: `mean_onset_steps[pair][bit]`. Bits that never
/// faulted carry the [`GlitchParams::never_onset_steps`] sentinel — one
/// step past the end of the sweep, distinct from a genuine last-step
/// onset.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayMatrix {
    /// Mean onset step per pair per ciphertext bit.
    pub mean_onset_steps: Vec<Vec<f64>>,
}

impl DelayMatrix {
    /// Number of pairs measured.
    pub fn pair_count(&self) -> usize {
        self.mean_onset_steps.len()
    }
}

/// The characterised golden reference: sweep parameters (shared with every
/// later measurement, like the physical glitch bench) and the golden delay
/// matrix.
#[derive(Debug, Clone)]
pub struct GoldenDelayModel {
    /// Sweep parameters established on the golden device.
    pub params: GlitchParams,
    /// The golden mean-onset matrix.
    pub matrix: DelayMatrix,
    /// The campaign the matrix was measured with (a DUT must be measured
    /// with the same pairs for Eq. (4) to compare like with like).
    pub campaign: DelayCampaign,
}

/// The measurement-noise RNG stream of one (pair, repetition) cell. A
/// pure function of (campaign seed, noise salt, pair index, repetition
/// index): fanned sweeps draw identical noise no matter which worker
/// runs which cell. Repetition 0 reproduces the historical per-pair
/// stream head.
fn rep_noise_seed(campaign_seed: u64, noise_salt: u64, pair_idx: usize, rep: usize) -> u64 {
    campaign_seed
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(pair_idx as u64)
        .wrapping_add(noise_salt.wrapping_mul(0x51ED_270F))
        ^ (rep as u64).wrapping_mul(0xA076_1D64_78BD_642F)
}

/// Measures the mean-onset matrix of `device` under `campaign` using
/// `params`. `noise_salt` decorrelates the `dM` draws of independent
/// characterisations (golden vs DUT runs — `r1` vs `r2` in Eqns. 2–3).
///
/// Uses the default (auto-sized) [`Engine`]; results do not depend on the
/// worker count.
///
/// # Errors
///
/// Propagates settle-time simulation failures.
pub fn measure_matrix(
    device: &ProgrammedDevice<'_>,
    campaign: &DelayCampaign,
    params: &GlitchParams,
    noise_salt: u64,
) -> Result<DelayMatrix, Error> {
    measure_matrix_with(&Engine::default(), device, campaign, params, noise_salt)
}

/// [`measure_matrix`] on an explicit [`Engine`].
///
/// The campaign fans in two stages: settle-time simulation per pair
/// (through the device's settle cache), then one task per
/// pair × repetition cell. Repetitions are reduced to means in
/// repetition order for every pair, so floating-point accumulation is
/// scheduling-independent and the matrix is bit-identical for every
/// worker count.
///
/// # Errors
///
/// Propagates settle-time simulation failures.
pub fn measure_matrix_with(
    engine: &Engine,
    device: &ProgrammedDevice<'_>,
    campaign: &DelayCampaign,
    params: &GlitchParams,
    noise_salt: u64,
) -> Result<DelayMatrix, Error> {
    match measure_matrix_faulted(
        engine,
        device,
        campaign,
        params,
        noise_salt,
        &FaultPlan::none(),
        &[0; 4],
    )? {
        // With the no-fault plan every repetition survives.
        Some((matrix, _)) => Ok(matrix),
        None => unreachable!("the no-fault plan drops no repetitions"),
    }
}

/// [`measure_matrix_with`] under a [`FaultPlan`]: each (pair, repetition)
/// cell may be quarantined at [`FaultSite::Rep`], and the per-pair mean
/// is taken over the surviving repetitions only (in repetition order, so
/// the reduction stays scheduling-independent). Returns `Ok(None)` when
/// some pair loses *every* repetition — the whole acquisition attempt is
/// unusable and the caller should re-acquire with a fresh seed.
///
/// `ctx` names the enclosing acquisition (channel, population, die,
/// attempt); the pair and repetition indices are appended per cell, so
/// the same plan quarantines the same cells at any worker count. Fed
/// [`FaultPlan::none`], this is bit-identical to the historical
/// fault-oblivious measurement.
///
/// # Errors
///
/// Propagates settle-time simulation failures.
pub fn measure_matrix_faulted(
    engine: &Engine,
    device: &ProgrammedDevice<'_>,
    campaign: &DelayCampaign,
    params: &GlitchParams,
    noise_salt: u64,
    faults: &FaultPlan,
    ctx: &[u64; 4],
) -> Result<Option<(DelayMatrix, RepHealth)>, Error> {
    let sweep = GlitchSweep::new(*params);
    let saturation = params.never_onset_steps();
    let settles = engine
        .map(&campaign.pairs, |_, (pt, key)| {
            device.round10_settle_times_cached(pt, key)
        })
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
    let reps = campaign.repetitions.max(1);
    let cells = engine.map_indexed(campaign.pairs.len() * reps, |cell| {
        let pair_idx = cell / reps;
        let rep = cell % reps;
        if faults.fires(
            FaultSite::Rep,
            &[ctx[0], ctx[1], ctx[2], ctx[3], pair_idx as u64, rep as u64],
        ) {
            engine.obs().incr("faults.rep.fired");
            return None;
        }
        let mut rng =
            StdRng::seed_from_u64(rep_noise_seed(campaign.seed, noise_salt, pair_idx, rep));
        Some(
            sweep
                .fault_onsets(&settles[pair_idx], &mut rng)
                .iter()
                .map(|o| o.step().map(f64::from).unwrap_or(saturation))
                .collect::<Vec<f64>>(),
        )
    });
    let mut health = RepHealth {
        attempted: cells.len(),
        dropped: 0,
    };
    let mut mean_onset_steps = Vec::with_capacity(campaign.pairs.len());
    for pair_idx in 0..campaign.pairs.len() {
        let rows = &cells[pair_idx * reps..(pair_idx + 1) * reps];
        let survivors = rows.iter().filter(|r| r.is_some()).count();
        health.dropped += reps - survivors;
        if survivors == 0 {
            return Ok(None);
        }
        let bits = settles[pair_idx].len();
        let mut acc = vec![0.0f64; bits];
        for rep_row in rows.iter().flatten() {
            for (bit, v) in rep_row.iter().enumerate() {
                acc[bit] += v;
            }
        }
        mean_onset_steps.push(acc.iter().map(|a| a / survivors as f64).collect());
    }
    Ok(Some((DelayMatrix { mean_onset_steps }, health)))
}

/// Characterises a golden device: establishes the sweep aim from the
/// measured settling times (the physical procedure — widen until nothing
/// faults, then step down) and records the golden matrix.
///
/// Uses the default (auto-sized) [`Engine`].
///
/// # Errors
///
/// Propagates settle-time simulation failures.
pub fn characterize_golden(
    device: &ProgrammedDevice<'_>,
    campaign: DelayCampaign,
) -> Result<GoldenDelayModel, Error> {
    characterize_golden_with(&Engine::default(), device, campaign)
}

/// [`characterize_golden`] on an explicit [`Engine`].
///
/// The aiming pass runs through the device's settle cache, so the matrix
/// measurement that follows re-uses every simulated settle instead of
/// simulating the whole campaign a second time.
///
/// # Errors
///
/// Propagates settle-time simulation failures.
pub fn characterize_golden_with(
    engine: &Engine,
    device: &ProgrammedDevice<'_>,
    campaign: DelayCampaign,
) -> Result<GoldenDelayModel, Error> {
    // Aim the sweep at the slowest observed path over all pairs.
    let settles = engine
        .map(&campaign.pairs, |_, (pt, key)| {
            device.round10_settle_times_cached(pt, key)
        })
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
    let mut max_required: f64 = 0.0;
    for per_pair in &settles {
        for s in per_pair.iter().flatten() {
            max_required = max_required.max(*s);
        }
    }
    let tech_setup = device.annotation().setup_ps();
    let noise = device.annotation().measurement_noise_ps();
    let params = GlitchParams::paper_sweep(max_required + tech_setup, tech_setup, noise);
    let matrix = measure_matrix_with(engine, device, &campaign, &params, 0)?;
    Ok(GoldenDelayModel {
        params,
        matrix,
        campaign,
    })
}

/// Per-device examination result.
#[derive(Debug, Clone)]
pub struct DelayEvidence {
    /// `diff_ps[pair][bit]`: Eq. (4) delay difference in ps.
    pub diff_ps: Vec<Vec<f64>>,
    /// Largest difference observed anywhere.
    pub max_diff_ps: f64,
    /// Distinct bits exceeding the threshold in at least one pair.
    pub flagged_bits: usize,
    /// Decision threshold used, ps.
    pub threshold_ps: f64,
    /// The verdict: `true` = hardware trojan suspected.
    pub infected: bool,
}

impl DelayEvidence {
    /// The per-bit maximum difference over all pairs (the y-values of the
    /// paper's Fig. 3, taking the worst pair per bit).
    pub fn per_bit_max(&self) -> Vec<f64> {
        if self.diff_ps.is_empty() {
            return Vec::new();
        }
        let bits = self.diff_ps[0].len();
        (0..bits)
            .map(|b| self.diff_ps.iter().map(|p| p[b]).fold(0.0, f64::max))
            .collect()
    }
}

/// The delay-based detector: a golden model plus a decision threshold.
#[derive(Debug, Clone)]
pub struct DelayDetector {
    golden: GoldenDelayModel,
    threshold_ps: f64,
}

impl DelayDetector {
    /// Default decision threshold: two glitch steps (70 ps). Clean-vs-clean
    /// residue is bounded by the measurement noise over √repetitions,
    /// comfortably below it; HT-induced shifts (Fig. 3) are far above it.
    pub const DEFAULT_THRESHOLD_PS: f64 = 70.0;

    /// Builds a detector from a characterised golden model.
    pub fn new(golden: GoldenDelayModel) -> Self {
        DelayDetector {
            golden,
            threshold_ps: Self::DEFAULT_THRESHOLD_PS,
        }
    }

    /// Overrides the decision threshold.
    pub fn with_threshold_ps(mut self, threshold_ps: f64) -> Self {
        self.threshold_ps = threshold_ps;
        self
    }

    /// The golden model.
    pub fn golden(&self) -> &GoldenDelayModel {
        &self.golden
    }

    /// Measures `device` with the golden campaign/sweep and evaluates
    /// Eq. (4) on every pair and bit. Uses the default (auto-sized)
    /// [`Engine`].
    ///
    /// # Errors
    ///
    /// Propagates settle-time simulation failures.
    pub fn examine(
        &self,
        device: &ProgrammedDevice<'_>,
        noise_salt: u64,
    ) -> Result<DelayEvidence, Error> {
        self.examine_with(&Engine::default(), device, noise_salt)
    }

    /// [`DelayDetector::examine`] on an explicit [`Engine`].
    ///
    /// # Errors
    ///
    /// Propagates settle-time simulation failures.
    pub fn examine_with(
        &self,
        engine: &Engine,
        device: &ProgrammedDevice<'_>,
        noise_salt: u64,
    ) -> Result<DelayEvidence, Error> {
        self.examine_pairs_with(engine, device, noise_salt, self.golden.campaign.pairs.len())
    }

    /// Like [`DelayDetector::examine`] but using only the first
    /// `n_pairs` pairs — the evidence-vs-pairs ablation of Section III-B.
    ///
    /// # Errors
    ///
    /// [`Error::PairCountExceedsCampaign`] if `n_pairs` exceeds the golden
    /// campaign (the extra pairs would have no golden rows to compare
    /// against).
    pub fn examine_pairs(
        &self,
        device: &ProgrammedDevice<'_>,
        noise_salt: u64,
        n_pairs: usize,
    ) -> Result<DelayEvidence, Error> {
        self.examine_pairs_with(&Engine::default(), device, noise_salt, n_pairs)
    }

    /// [`DelayDetector::examine_pairs`] on an explicit [`Engine`].
    ///
    /// # Errors
    ///
    /// [`Error::PairCountExceedsCampaign`] if `n_pairs` exceeds the golden
    /// campaign.
    pub fn examine_pairs_with(
        &self,
        engine: &Engine,
        device: &ProgrammedDevice<'_>,
        noise_salt: u64,
        n_pairs: usize,
    ) -> Result<DelayEvidence, Error> {
        let available = self.golden.campaign.pairs.len();
        if n_pairs > available {
            return Err(Error::PairCountExceedsCampaign {
                requested: n_pairs,
                available,
            });
        }
        let mut campaign = self.golden.campaign.clone();
        campaign.pairs.truncate(n_pairs);
        let dut = measure_matrix_with(engine, device, &campaign, &self.golden.params, noise_salt)?;
        let step = self.golden.params.step_ps;
        let mut max_diff = 0.0f64;
        let bits = self
            .golden
            .matrix
            .mean_onset_steps
            .first()
            .map(Vec::len)
            .unwrap_or(0);
        let mut bit_flagged = vec![false; bits];
        let diff_ps: Vec<Vec<f64>> = dut
            .mean_onset_steps
            .iter()
            .enumerate()
            .map(|(p, dut_row)| {
                let gm_row = &self.golden.matrix.mean_onset_steps[p];
                dut_row
                    .iter()
                    .zip(gm_row)
                    .enumerate()
                    .map(|(b, (d, g))| {
                        let diff = (d - g).abs() * step;
                        if diff > self.threshold_ps {
                            bit_flagged[b] = true;
                        }
                        max_diff = max_diff.max(diff);
                        diff
                    })
                    .collect()
            })
            .collect();
        let flagged_bits = bit_flagged.iter().filter(|&&f| f).count();
        Ok(DelayEvidence {
            diff_ps,
            max_diff_ps: max_diff,
            flagged_bits,
            threshold_ps: self.threshold_ps,
            infected: flagged_bits > 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_reproducible_and_distinct_by_seed() {
        let a = DelayCampaign::random(5, 10, 1);
        let b = DelayCampaign::random(5, 10, 1);
        let c = DelayCampaign::random(5, 10, 2);
        assert_eq!(a.pairs, b.pairs);
        assert_ne!(a.pairs, c.pairs);
        assert_eq!(DelayCampaign::paper(0).pairs.len(), 50);
        assert_eq!(DelayCampaign::paper(0).repetitions, 10);
    }

    #[test]
    fn rep_streams_are_distinct_and_anchored() {
        // Repetition 0 is the historical per-pair stream head; later
        // repetitions branch off without colliding across pairs.
        let base = rep_noise_seed(17, 3, 4, 0);
        assert_eq!(
            base,
            17u64
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(4)
                .wrapping_add(3u64.wrapping_mul(0x51ED_270F))
        );
        let mut seen = std::collections::BTreeSet::new();
        for pair in 0..8 {
            for rep in 0..10 {
                seen.insert(rep_noise_seed(17, 3, pair, rep));
            }
        }
        assert_eq!(seen.len(), 80);
    }
}
