//! The campaign descriptor shared by every detection channel.
//!
//! A [`CampaignPlan`] collects, in one first-class value, everything that
//! used to be scattered across `DelayCampaign`, ad-hoc function arguments
//! and experiment parameter lists: the die population size, the trace
//! stimulus, the glitch-sweep (plaintext, key) pairs and repetitions, and
//! the **hierarchical seed tree** every measurement's randomness derives
//! from. Seeds are pure functions of (base seed, spec index, die index),
//! never of scheduling order, so any campaign executed through the
//! [`Channel`](crate::channel::Channel) stages is bit-identical for every
//! worker count.

use crate::delay_detect::DelayCampaign;

/// One multi-channel measurement campaign: population size, stimulus,
/// delay-sweep pairs and the seed hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignPlan {
    /// Dies in the population (the paper uses 8; the Monte-Carlo
    /// extensions use hundreds).
    pub n_dies: usize,
    /// Plaintext of the trace stimulus (EM/power channels).
    pub pt: [u8; 16],
    /// Key of the trace stimulus (EM/power channels).
    pub key: [u8; 16],
    /// (plaintext, key) pairs of the glitch-sweep campaign (delay
    /// channel). May be empty for trace-only campaigns.
    pub pairs: Vec<([u8; 16], [u8; 16])>,
    /// Glitch-sweep repetitions per pair (averaging of `dM`).
    pub repetitions: usize,
    /// Base seed every measurement stream derives from.
    pub seed: u64,
    /// Seed stride between design populations: design `s` (0 = first
    /// suspect) measures with base `seed + spec_stride × (s + 1)`, so the
    /// golden (`seed` itself) and every suspect population draw disjoint
    /// noise streams.
    pub spec_stride: u64,
}

impl CampaignPlan {
    /// Seed stride used by the historical fused delay+EM experiment.
    pub const FUSION_SPEC_STRIDE: u64 = 0x2000;
    /// Seed stride used by the historical Section V FN-rate experiment.
    pub const FN_RATE_SPEC_STRIDE: u64 = 0x1000;

    /// A trace-only plan (no glitch pairs): what the Section V FN-rate
    /// experiment needs.
    pub fn traces(n_dies: usize, pt: [u8; 16], key: [u8; 16], seed: u64) -> Self {
        CampaignPlan {
            n_dies,
            pt,
            key,
            pairs: Vec::new(),
            repetitions: 0,
            seed,
            spec_stride: Self::FN_RATE_SPEC_STRIDE,
        }
    }

    /// A full multi-channel plan with `n_pairs` random glitch pairs ×
    /// `repetitions` sweeps (drawn exactly like
    /// [`DelayCampaign::random`], so historical fused campaigns replay
    /// bit-identically).
    pub fn with_random_pairs(
        n_dies: usize,
        n_pairs: usize,
        repetitions: usize,
        pt: [u8; 16],
        key: [u8; 16],
        seed: u64,
    ) -> Self {
        let delay = DelayCampaign::random(n_pairs, repetitions, seed);
        CampaignPlan {
            n_dies,
            pt,
            key,
            pairs: delay.pairs,
            repetitions,
            seed,
            spec_stride: Self::FUSION_SPEC_STRIDE,
        }
    }

    /// Overrides the spec seed stride (see [`CampaignPlan::spec_stride`]).
    pub fn with_spec_stride(mut self, spec_stride: u64) -> Self {
        self.spec_stride = spec_stride;
        self
    }

    /// Seed of golden die `j`'s measurements.
    pub fn die_seed(&self, die: usize) -> u64 {
        self.seed.wrapping_add(die as u64)
    }

    /// Base seed of suspect design `spec`'s population.
    pub fn spec_seed(&self, spec: usize) -> u64 {
        self.seed
            .wrapping_add(self.spec_stride.wrapping_mul(spec as u64 + 1))
    }

    /// Seed of die `j` within suspect design `spec`'s population.
    pub fn spec_die_seed(&self, spec: usize, die: usize) -> u64 {
        self.spec_seed(spec).wrapping_add(die as u64)
    }

    /// The delay-channel view of this plan, in [`DelayCampaign`] form
    /// (the shape [`measure_matrix_with`](crate::delay_detect::measure_matrix_with)
    /// consumes).
    pub fn delay_campaign(&self) -> DelayCampaign {
        DelayCampaign {
            pairs: self.pairs.clone(),
            repetitions: self.repetitions,
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_tree_is_hierarchical_and_disjoint() {
        let plan = CampaignPlan::traces(4, [0u8; 16], [1u8; 16], 100);
        assert_eq!(plan.die_seed(0), 100);
        assert_eq!(plan.die_seed(3), 103);
        assert_eq!(plan.spec_seed(0), 100 + 0x1000);
        assert_eq!(plan.spec_die_seed(1, 2), 100 + 0x2000 + 2);
        let fused = plan.with_spec_stride(CampaignPlan::FUSION_SPEC_STRIDE);
        assert_eq!(fused.spec_seed(0), 100 + 0x2000);
    }

    #[test]
    fn random_pairs_match_the_historical_delay_campaign() {
        let plan = CampaignPlan::with_random_pairs(8, 5, 3, [0u8; 16], [0u8; 16], 42);
        let legacy = DelayCampaign::random(5, 3, 42);
        assert_eq!(plan.pairs, legacy.pairs);
        assert_eq!(plan.delay_campaign().pairs, legacy.pairs);
        assert_eq!(plan.delay_campaign().repetitions, 3);
        assert_eq!(plan.delay_campaign().seed, 42);
    }
}
