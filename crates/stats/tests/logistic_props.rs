//! Property-based tests for the seeded logistic-regression trainer: the
//! determinism contract (`train` is a pure function of the sample
//! *multiset*, the feature labels and the config) must hold bit for bit
//! over arbitrary inputs, not just the hand-picked unit-test vectors.

use htd_stats::logistic::{train, Sample, TrainConfig};
use htd_stats::StatsError;
use proptest::prelude::*;

fn feature_names(d: usize) -> Vec<String> {
    (0..d).map(|k| format!("ch{k}")).collect()
}

/// Training sets with both classes guaranteed present: two anchor
/// samples (one per label) are appended to whatever the generator
/// produces, so no filtering is needed.
fn sample_set(d: usize) -> impl Strategy<Value = Vec<Sample>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(-100.0f64..100.0, d..=d),
            any::<bool>(),
        ),
        0..16,
    )
    .prop_map(move |mut samples| {
        samples.push((vec![-1.0; d], false));
        samples.push((vec![1.0; d], true));
        samples
    })
}

/// Seeded Fisher–Yates permutation (splitmix64 stream), so the shuffled
/// presentation order is reproducible per test case.
fn shuffle(samples: &[Sample], mut state: u64) -> Vec<Sample> {
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut out = samples.to_vec();
    for i in (1..out.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

proptest! {
    /// The same seed, samples and config always produce the same model,
    /// compared on the raw IEEE bits of every learned parameter.
    #[test]
    fn training_is_bit_identical_for_a_fixed_seed(
        d in 1usize..4,
        seed in any::<u64>(),
        iterations in 1usize..50,
    ) {
        let config = TrainConfig { seed, iterations, rate: 0.5 };
        let samples = vec![
            (vec![-2.0; d], false),
            (vec![-1.0; d], false),
            (vec![1.0; d], true),
            (vec![2.0; d], true),
        ];
        let a = train(&feature_names(d), &samples, &config).unwrap();
        let b = train(&feature_names(d), &samples, &config).unwrap();
        prop_assert_eq!(a.bias.to_bits(), b.bias.to_bits());
        for (wa, wb) in a.weights.iter().zip(&b.weights) {
            prop_assert_eq!(wa.to_bits(), wb.to_bits());
        }
        for (ma, mb) in a.means.iter().zip(&b.means) {
            prop_assert_eq!(ma.to_bits(), mb.to_bits());
        }
        for (sa, sb) in a.stds.iter().zip(&b.stds) {
            prop_assert_eq!(sa.to_bits(), sb.to_bits());
        }
        prop_assert_eq!(a, b);
    }

    /// Shuffling the training set is a bitwise no-op: every reduction
    /// runs in the canonical value-derived order, never in presentation
    /// order. The permutation is drawn from its own seed, independent of
    /// the sample values.
    #[test]
    fn training_is_presentation_order_invariant(
        samples in sample_set(2),
        perm_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let config = TrainConfig { seed, iterations: 25, rate: 0.5 };
        let shuffled = shuffle(&samples, perm_seed);
        let mut reversed = samples.clone();
        reversed.reverse();
        let a = train(&feature_names(2), &samples, &config).unwrap();
        let b = train(&feature_names(2), &shuffled, &config).unwrap();
        let c = train(&feature_names(2), &reversed, &config).unwrap();
        prop_assert_eq!(a.bias.to_bits(), b.bias.to_bits());
        for (wa, wb) in a.weights.iter().zip(&b.weights) {
            prop_assert_eq!(wa.to_bits(), wb.to_bits());
        }
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
    }

    /// Duplicating the whole training set leaves the standardization
    /// statistics unchanged (they are multiset means over a doubled
    /// multiset), so the fitted boundary stays put up to float noise.
    #[test]
    fn doubling_the_multiset_preserves_standardization(
        samples in sample_set(2),
        seed in any::<u64>(),
    ) {
        let config = TrainConfig { seed, iterations: 10, rate: 0.5 };
        let mut doubled = samples.clone();
        doubled.extend(samples.iter().cloned());
        let a = train(&feature_names(2), &samples, &config).unwrap();
        let b = train(&feature_names(2), &doubled, &config).unwrap();
        for (ma, mb) in a.means.iter().zip(&b.means) {
            prop_assert!((ma - mb).abs() <= 1e-9 * (1.0 + ma.abs()), "{ma} vs {mb}");
        }
        for (sa, sb) in a.stds.iter().zip(&b.stds) {
            prop_assert!((sa - sb).abs() <= 1e-9 * (1.0 + sa.abs()), "{sa} vs {sb}");
        }
    }

    /// The trained model's outputs are always finite, and probability is
    /// the sigmoid of the logit, for any in-arity query point.
    #[test]
    fn logits_and_probabilities_are_finite_and_consistent(
        samples in sample_set(3),
        query in proptest::collection::vec(-1.0e6f64..1.0e6, 3..=3),
        seed in any::<u64>(),
    ) {
        let model = train(
            &feature_names(3),
            &samples,
            &TrainConfig { seed, iterations: 25, rate: 0.5 },
        ).unwrap();
        let z = model.logit(&query).unwrap();
        let p = model.probability(&query).unwrap();
        prop_assert!(z.is_finite(), "logit {z}");
        prop_assert!((0.0..=1.0).contains(&p), "probability {p}");
        prop_assert_eq!((z > 0.0), (p > 0.5));
    }

    /// One-class training sets are rejected no matter how large.
    #[test]
    fn one_class_sets_are_rejected(
        n in 1usize..20,
        label in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let samples: Vec<Sample> = (0..n).map(|i| (vec![i as f64], label)).collect();
        let result = train(
            &feature_names(1),
            &samples,
            &TrainConfig { seed, ..TrainConfig::default() },
        );
        prop_assert!(matches!(result, Err(StatsError::NotEnoughSamples { .. })));
    }
}
