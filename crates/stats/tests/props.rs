//! Property-based tests for the statistics crate.

use htd_stats::detection::{empirical_rates, equal_error_rate, separation_for_rate};
use htd_stats::ks::{ks_test, ks_test_normal};
use htd_stats::peaks::{local_maxima, sum_of_local_maxima};
use htd_stats::welch::welch_t_test;
use htd_stats::{erf, erf_inv, erfc, Gaussian, Histogram};
use proptest::prelude::*;

/// A sample-set strategy with guaranteed spread (Welch needs variance):
/// two fixed, distinct anchors are appended to every generated set, so
/// no filtering is needed and every set has ≥ 6 samples.
fn spread_samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, 4..20).prop_map(|mut xs| {
        xs.push(-1.0);
        xs.push(1.0);
        xs
    })
}

proptest! {
    /// erf is odd, bounded and monotone.
    #[test]
    fn erf_is_odd_bounded_monotone(x in -6.0f64..6.0, y in -6.0f64..6.0) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-14);
        prop_assert!(erf(x).abs() <= 1.0);
        if x < y {
            prop_assert!(erf(x) <= erf(y));
        }
    }

    /// erfc complements erf everywhere.
    #[test]
    fn erfc_complements(x in -6.0f64..6.0) {
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-13);
    }

    /// erf_inv inverts erf over the full open interval.
    #[test]
    fn erf_inv_inverts(p in -0.999999f64..0.999999) {
        let x = erf_inv(p);
        prop_assert!((erf(x) - p).abs() < 1e-11, "p = {p}, x = {x}");
    }

    /// Gaussian cdf is monotone and quantile inverts it.
    #[test]
    fn gaussian_cdf_quantile(mean in -100.0f64..100.0, std in 0.01f64..100.0, p in 0.001f64..0.999) {
        let g = Gaussian::new(mean, std).unwrap();
        let x = g.quantile(p).unwrap();
        prop_assert!((g.cdf(x) - p).abs() < 1e-10);
        prop_assert!((g.cdf(x) + g.sf(x) - 1.0).abs() < 1e-12);
    }

    /// Eq. 5: larger separation can only lower the equal error rate, and
    /// the rate stays in (0, 0.5].
    #[test]
    fn eq5_monotone(mu in 0.0f64..20.0, extra in 0.001f64..5.0, sigma in 0.01f64..10.0) {
        let base = equal_error_rate(mu, sigma);
        let better = equal_error_rate(mu + extra, sigma);
        prop_assert!(better <= base);
        prop_assert!((0.0..=0.5).contains(&base));
    }

    /// separation_for_rate inverts equal_error_rate.
    #[test]
    fn separation_roundtrip(rate in 0.0001f64..0.4999) {
        let mu = separation_for_rate(rate).unwrap();
        prop_assert!((equal_error_rate(mu, 1.0) - rate).abs() < 1e-9);
    }

    /// Every reported local maximum is strictly above both neighbours, and
    /// the metric equals the sum of reported peak values.
    #[test]
    fn peaks_are_really_peaks(xs in proptest::collection::vec(-100.0f64..100.0, 0..60)) {
        let peaks = local_maxima(&xs);
        let mut sum = 0.0;
        for p in &peaks {
            prop_assert!(p.index > 0 && p.index + 1 < xs.len());
            prop_assert!(xs[p.index] > xs[p.index - 1]);
            // Plateau-aware: the next *different* value must be lower.
            let mut j = p.index + 1;
            while j < xs.len() && xs[j] == xs[p.index] {
                j += 1;
            }
            prop_assert!(j < xs.len() && xs[j] < xs[p.index]);
            sum += p.value;
        }
        prop_assert!((sum_of_local_maxima(&xs) - sum).abs() < 1e-9);
    }

    /// Adding a uniform offset to every sample never changes the peak set.
    #[test]
    fn peaks_are_shift_invariant(xs in proptest::collection::vec(-10.0f64..10.0, 3..40), c in -5.0f64..5.0) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + c).collect();
        let a: Vec<usize> = local_maxima(&xs).iter().map(|p| p.index).collect();
        let b: Vec<usize> = local_maxima(&shifted).iter().map(|p| p.index).collect();
        prop_assert_eq!(a, b);
    }

    /// Empirical rates are proper frequencies and move monotonically with
    /// the threshold.
    #[test]
    fn empirical_rates_monotone(
        genuine in proptest::collection::vec(-10.0f64..10.0, 1..40),
        infected in proptest::collection::vec(-10.0f64..10.0, 1..40),
        t1 in -12.0f64..12.0,
        dt in 0.0f64..5.0,
    ) {
        let (fp1, fn1) = empirical_rates(&genuine, &infected, t1);
        let (fp2, fn2) = empirical_rates(&genuine, &infected, t1 + dt);
        prop_assert!((0.0..=1.0).contains(&fp1) && (0.0..=1.0).contains(&fn1));
        prop_assert!(fp2 <= fp1); // higher threshold, fewer false alarms
        prop_assert!(fn2 >= fn1); // ... and more misses
    }

    /// Histograms never lose samples.
    #[test]
    fn histogram_conserves_mass(xs in proptest::collection::vec(-1e3f64..1e3, 1..200), bins in 1usize..32) {
        let mut h = Histogram::new(-100.0, 100.0, bins).unwrap();
        h.extend(xs.iter().copied());
        prop_assert_eq!(h.total(), xs.len() as u64);
    }

    /// Gaussian fit round-trips affine transforms of the sample set.
    #[test]
    fn gaussian_fit_affine(scale in 0.1f64..10.0, shift in -50.0f64..50.0) {
        let base: Vec<f64> = (0..40).map(|i| (i as f64 * 0.7).sin() * 3.0).collect();
        let mapped: Vec<f64> = base.iter().map(|x| x * scale + shift).collect();
        let g0 = Gaussian::fit(&base).unwrap();
        let g1 = Gaussian::fit(&mapped).unwrap();
        prop_assert!((g1.mean() - (g0.mean() * scale + shift)).abs() < 1e-9);
        prop_assert!((g1.std() - g0.std() * scale).abs() < 1e-9);
    }

    /// A set tested against itself carries no evidence: t = 0, p = 1.
    #[test]
    fn welch_of_a_set_against_itself_is_null(a in spread_samples()) {
        let w = welch_t_test(&a, &a).unwrap();
        prop_assert!(w.t.abs() < 1e-12, "t = {}", w.t);
        prop_assert!((w.p_value - 1.0).abs() < 1e-12, "p = {}", w.p_value);
    }

    /// Swapping the sets flips the sign of t and nothing else.
    #[test]
    fn welch_is_antisymmetric(a in spread_samples(), b in spread_samples()) {
        let ab = welch_t_test(&a, &b).unwrap();
        let ba = welch_t_test(&b, &a).unwrap();
        prop_assert!((ab.t + ba.t).abs() < 1e-10);
        prop_assert!((ab.df - ba.df).abs() < 1e-9);
        prop_assert!((ab.p_value - ba.p_value).abs() < 1e-10);
        prop_assert!((0.0..=1.0).contains(&ab.p_value));
    }

    /// t is invariant under a common affine transform of both sets.
    #[test]
    fn welch_is_affine_invariant(
        a in spread_samples(),
        b in spread_samples(),
        scale in 0.1f64..10.0,
        shift in -50.0f64..50.0,
    ) {
        let w0 = welch_t_test(&a, &b).unwrap();
        let fa: Vec<f64> = a.iter().map(|x| x * scale + shift).collect();
        let fb: Vec<f64> = b.iter().map(|x| x * scale + shift).collect();
        let w1 = welch_t_test(&fa, &fb).unwrap();
        prop_assert!((w0.t - w1.t).abs() < 1e-6 * (1.0 + w0.t.abs()), "{} vs {}", w0.t, w1.t);
        prop_assert!((w0.df - w1.df).abs() < 1e-6 * (1.0 + w0.df));
    }

    /// The KS statistic is a sup of probability differences: in [0, 1],
    /// with a valid p-value.
    #[test]
    fn ks_statistic_and_p_are_probabilities(xs in proptest::collection::vec(-10.0f64..10.0, 5..40)) {
        let k = ks_test(&xs, |x| Gaussian::standard().cdf(x)).unwrap();
        prop_assert!((0.0..=1.0).contains(&k.statistic), "D = {}", k.statistic);
        prop_assert!((0.0..=1.0).contains(&k.p_value), "p = {}", k.p_value);
    }

    /// The fitted-normal KS check is invariant under affine maps of the
    /// samples (the fit absorbs them).
    #[test]
    fn ks_normal_is_affine_invariant(
        xs in spread_samples(),
        scale in 0.1f64..10.0,
        shift in -50.0f64..50.0,
    ) {
        let k0 = ks_test_normal(&xs).unwrap();
        let mapped: Vec<f64> = xs.iter().map(|x| x * scale + shift).collect();
        let k1 = ks_test_normal(&mapped).unwrap();
        prop_assert!((k0.statistic - k1.statistic).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------------
// Hand-computed reference vectors (exact closed forms, not regression pins).

/// a = [1,2,3,4], b = [2,4,6,8]: var(a) = 5/3, var(b) = 20/3, so
/// t = (2.5 − 5)/√(25/12) = −√3 and the Welch–Satterthwaite df is
/// (25/12)² / ((5/12)²/3 + (20/12)²/3) = 75/17.
#[test]
fn welch_matches_the_hand_computed_vector() {
    let w = welch_t_test(&[1.0, 2.0, 3.0, 4.0], &[2.0, 4.0, 6.0, 8.0]).unwrap();
    assert!((w.t + 3.0f64.sqrt()).abs() < 1e-12, "t = {}", w.t);
    assert!((w.df - 75.0 / 17.0).abs() < 1e-12, "df = {}", w.df);
    assert!(w.p_value > 0.0 && w.p_value < 1.0);
}

/// Equally spaced mid-quantiles of U(0,1) sit D = 1/(2n) … here exactly
/// 0.1 away from the uniform CDF at every step.
#[test]
fn ks_matches_the_hand_computed_vector() {
    let k = ks_test(&[0.1, 0.3, 0.5, 0.7, 0.9], |x| x.clamp(0.0, 1.0)).unwrap();
    assert!((k.statistic - 0.1).abs() < 1e-15, "D = {}", k.statistic);
    assert_eq!(k.n, 5);
}

/// Gaussian::fit([1..5]) has mean 3 and sample std √2.5 exactly.
#[test]
fn gaussian_fit_matches_the_hand_computed_vector() {
    let g = Gaussian::fit(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
    assert!((g.mean() - 3.0).abs() < 1e-15);
    assert!((g.std() - 2.5f64.sqrt()).abs() < 1e-15);
}

/// Clearly separated populations must reject the null hypothesis.
#[test]
fn welch_rejects_separated_populations() {
    let a: Vec<f64> = (0..12).map(|i| (i as f64 * 0.9).sin()).collect();
    let b: Vec<f64> = a.iter().map(|x| x + 10.0).collect();
    let w = welch_t_test(&a, &b).unwrap();
    assert!(w.p_value < 1e-6, "p = {}", w.p_value);
    assert!(w.t < 0.0, "second mean is larger, t must be negative");
}
