//! Local-maxima detection and the paper's sum-of-local-maxima metric.
//!
//! Section V-B of the paper observes that the genuine-vs-infected EM
//! differences concentrate at trace peaks, takes the **local maxima** of the
//! absolute difference trace as points of interest, and **sums** them into a
//! single detection statistic. This module implements that pipeline on raw
//! `f64` sample slices so it can also serve non-EM series.

/// A detected local maximum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Sample index of the maximum.
    pub index: usize,
    /// Sample value at the maximum.
    pub value: f64,
}

/// Finds strict local maxima: samples greater than both neighbours.
///
/// Plateaus (runs of equal values higher than both sides) report their first
/// index. Endpoints are never peaks — the paper's points of interest are
/// interior trace peaks.
///
/// ```
/// use htd_stats::peaks::local_maxima;
///
/// let xs = [0.0, 2.0, 1.0, 1.0, 3.0, 3.0, 0.5];
/// let peaks = local_maxima(&xs);
/// let idx: Vec<usize> = peaks.iter().map(|p| p.index).collect();
/// assert_eq!(idx, vec![1, 4]);
/// ```
pub fn local_maxima(xs: &[f64]) -> Vec<Peak> {
    let mut peaks = Vec::new();
    let n = xs.len();
    if n < 3 {
        return peaks;
    }
    let mut i = 1;
    while i + 1 < n {
        if xs[i] > xs[i - 1] {
            // Scan across a possible plateau.
            let start = i;
            let mut j = i;
            while j + 1 < n && xs[j + 1] == xs[j] {
                j += 1;
            }
            if j + 1 < n && xs[j + 1] < xs[j] {
                peaks.push(Peak {
                    index: start,
                    value: xs[start],
                });
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    peaks
}

/// Finds local maxima with at least `min_prominence` height above the higher
/// of the two flanking valleys (a simplified prominence: the peak value
/// minus the maximum of the minima on each side up to the next higher
/// sample or the series end).
pub fn local_maxima_with_prominence(xs: &[f64], min_prominence: f64) -> Vec<Peak> {
    local_maxima(xs)
        .into_iter()
        .filter(|p| prominence(xs, p.index) >= min_prominence)
        .collect()
}

/// Prominence of the sample at `index`: its height above the higher of the
/// two key saddles towards the nearest higher terrain (or series ends).
///
/// # Panics
///
/// Panics if `index` is out of bounds.
pub fn prominence(xs: &[f64], index: usize) -> f64 {
    let v = xs[index];
    let left_saddle = {
        let mut m = v;
        let mut best = v;
        for &x in xs[..index].iter().rev() {
            if x > v {
                break;
            }
            if x < best {
                best = x;
            }
            m = best;
        }
        m
    };
    let right_saddle = {
        let mut m = v;
        let mut best = v;
        for &x in xs[index + 1..].iter() {
            if x > v {
                break;
            }
            if x < best {
                best = x;
            }
            m = best;
        }
        m
    };
    v - left_saddle.max(right_saddle)
}

/// The paper's detection statistic: the sum of all local-maximum values of
/// `xs` (normally `xs` is an absolute-difference trace).
///
/// Returns `0.0` when the series has no interior peaks.
///
/// ```
/// use htd_stats::peaks::sum_of_local_maxima;
///
/// assert_eq!(sum_of_local_maxima(&[0.0, 2.0, 0.0, 3.0, 0.0]), 5.0);
/// assert_eq!(sum_of_local_maxima(&[1.0, 1.0, 1.0]), 0.0);
/// ```
pub fn sum_of_local_maxima(xs: &[f64]) -> f64 {
    local_maxima(xs).iter().map(|p| p.value).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_simple_peaks() {
        let xs = [0.0, 1.0, 0.0, 2.0, 0.0];
        let p = local_maxima(&xs);
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].index, 1);
        assert_eq!(p[1].value, 2.0);
    }

    #[test]
    fn endpoints_are_not_peaks() {
        // [5,1,4]: both 5 and 4 are endpoints, 1 is a valley — no peaks.
        assert!(local_maxima(&[5.0, 1.0, 4.0]).is_empty());
        assert!(local_maxima(&[5.0, 1.0]).is_empty());
        assert!(local_maxima(&[3.0, 2.0, 1.0]).is_empty());
        // Interior peak next to an endpoint still counts.
        assert_eq!(local_maxima(&[0.0, 2.0, 1.0]).len(), 1);
    }

    #[test]
    fn plateau_reports_first_index_once() {
        let xs = [0.0, 4.0, 4.0, 4.0, 1.0];
        let p = local_maxima(&xs);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].index, 1);
    }

    #[test]
    fn plateau_running_into_the_end_is_not_a_peak() {
        let xs = [0.0, 4.0, 4.0];
        assert!(local_maxima(&xs).is_empty());
    }

    #[test]
    fn monotone_series_has_no_peaks() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert!(local_maxima(&xs).is_empty());
        assert_eq!(sum_of_local_maxima(&xs), 0.0);
    }

    #[test]
    fn prominence_measures_height_over_saddle() {
        // Peak 5 at idx 3: left key saddle is 1 (min on the way to the
        // higher 6), right side never rises above 5 so its saddle is the
        // global min 0. Prominence = 5 - max(1, 0) = 4.
        let xs = [6.0, 1.0, 2.0, 5.0, 3.0, 4.0, 0.0];
        assert_eq!(prominence(&xs, 3), 4.0);
    }

    #[test]
    fn prominence_filter_drops_shadowed_ripples() {
        let xs = [0.0, 10.0, 9.9, 10.05, 0.0, 3.0, 0.0];
        let strict = local_maxima(&xs);
        assert_eq!(strict.len(), 3);
        let prominent = local_maxima_with_prominence(&xs, 1.0);
        // The 10.0 peak is shadowed by the slightly higher 10.05 across the
        // 9.9 saddle (prominence 0.1 < 1.0): dropped. The dominant 10.05
        // and the isolated 3.0 stay.
        assert_eq!(prominent.len(), 2);
        assert_eq!(prominent[0].value, 10.05);
        assert_eq!(prominent[1].value, 3.0);
    }

    #[test]
    fn sum_of_local_maxima_matches_manual_sum() {
        let xs = [0.0, 1.5, 0.0, 2.5, 1.0, 3.0, 0.0];
        assert!((sum_of_local_maxima(&xs) - 7.0).abs() < 1e-15);
    }
}
