//! The normal distribution.

use std::f64::consts::PI;

use crate::{erf, erf_inv, StatsError};

/// A normal (Gaussian) distribution `N(mean, std²)`.
///
/// The paper models both inter-die process variation (Section V, ref. \[6\])
/// and measurement noise as Gaussian; this type carries those models through
/// the detection math.
///
/// ```
/// use htd_stats::Gaussian;
///
/// let g = Gaussian::new(0.0, 1.0)?;
/// assert!((g.cdf(1.96) - 0.975).abs() < 1e-3);
/// assert!((g.quantile(0.975)? - 1.96).abs() < 1e-2);
/// # Ok::<(), htd_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    mean: f64,
    std: f64,
}

impl Gaussian {
    /// Creates `N(mean, std²)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NonPositiveScale`] if `std <= 0` or non-finite.
    pub fn new(mean: f64, std: f64) -> Result<Self, StatsError> {
        // `!(std > 0.0)` deliberately also rejects NaN scales.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(std > 0.0) || !std.is_finite() || !mean.is_finite() {
            return Err(StatsError::NonPositiveScale { value: std });
        }
        Ok(Gaussian { mean, std })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Gaussian {
            mean: 0.0,
            std: 1.0,
        }
    }

    /// Fits a Gaussian to `samples` by the method of moments
    /// (sample mean, sample standard deviation with Bessel's correction).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NotEnoughSamples`] for fewer than two samples
    /// and [`StatsError::NonPositiveScale`] for degenerate (zero-variance)
    /// data.
    pub fn fit(samples: &[f64]) -> Result<Self, StatsError> {
        if samples.len() < 2 {
            return Err(StatsError::NotEnoughSamples {
                got: samples.len(),
                need: 2,
            });
        }
        let mean = crate::descriptive::mean(samples);
        let std = crate::descriptive::std_dev(samples);
        Gaussian::new(mean, std)
    }

    /// Distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Distribution standard deviation.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std;
        (-0.5 * z * z).exp() / (self.std * (2.0 * PI).sqrt())
    }

    /// Cumulative distribution `P(X ≤ x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.std * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }

    /// Upper tail `P(X > x)`, computed without cancellation.
    pub fn sf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.std * std::f64::consts::SQRT_2);
        0.5 * crate::erfc(z)
    }

    /// Quantile (inverse CDF): the `x` with `P(X ≤ x) = p`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::ProbabilityOutOfRange`] unless `0 < p < 1`.
    pub fn quantile(&self, p: f64) -> Result<f64, StatsError> {
        if !(p > 0.0 && p < 1.0) {
            return Err(StatsError::ProbabilityOutOfRange { value: p });
        }
        Ok(self.mean + self.std * std::f64::consts::SQRT_2 * erf_inv(2.0 * p - 1.0))
    }

    /// Maps a standard-normal draw `z` into this distribution.
    pub fn from_standard(&self, z: f64) -> f64 {
        self.mean + self.std * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdf_peaks_at_mean() {
        let g = Gaussian::new(3.0, 2.0).unwrap();
        assert!(g.pdf(3.0) > g.pdf(2.0));
        assert!(g.pdf(3.0) > g.pdf(4.0));
        assert!((g.pdf(3.0) - 1.0 / (2.0 * (2.0 * PI).sqrt())).abs() < 1e-15);
    }

    #[test]
    fn cdf_known_points() {
        let g = Gaussian::standard();
        assert!((g.cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((g.cdf(1.0) - 0.841_344_746_068_543).abs() < 1e-12);
        assert!((g.cdf(-1.0) - 0.158_655_253_931_457).abs() < 1e-12);
        assert!((g.cdf(2.326_347_874_040_841) - 0.99).abs() < 1e-12);
    }

    #[test]
    fn sf_complements_cdf() {
        let g = Gaussian::new(-1.0, 0.5).unwrap();
        for x in [-3.0, -1.0, 0.0, 2.0] {
            assert!((g.cdf(x) + g.sf(x) - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let g = Gaussian::new(10.0, 3.0).unwrap();
        for p in [0.001, 0.05, 0.25, 0.5, 0.75, 0.95, 0.999] {
            let x = g.quantile(p).unwrap();
            assert!((g.cdf(x) - p).abs() < 1e-12, "p = {p}");
        }
    }

    #[test]
    fn quantile_rejects_bad_probability() {
        let g = Gaussian::standard();
        assert!(g.quantile(0.0).is_err());
        assert!(g.quantile(1.0).is_err());
        assert!(g.quantile(-0.5).is_err());
    }

    #[test]
    fn new_rejects_bad_scale() {
        assert!(Gaussian::new(0.0, 0.0).is_err());
        assert!(Gaussian::new(0.0, -1.0).is_err());
        assert!(Gaussian::new(0.0, f64::NAN).is_err());
        assert!(Gaussian::new(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn fit_recovers_moments() {
        let samples: Vec<f64> = vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let g = Gaussian::fit(&samples).unwrap();
        assert!((g.mean() - 5.0).abs() < 1e-12);
        // Sample std with Bessel: sqrt(32/7).
        assert!((g.std() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn fit_rejects_degenerate_input() {
        assert!(Gaussian::fit(&[1.0]).is_err());
        assert!(Gaussian::fit(&[2.0, 2.0, 2.0]).is_err());
    }

    #[test]
    fn from_standard_affine() {
        let g = Gaussian::new(5.0, 2.0).unwrap();
        assert_eq!(g.from_standard(0.0), 5.0);
        assert_eq!(g.from_standard(1.5), 8.0);
    }
}
