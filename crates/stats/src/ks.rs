//! One-sample Kolmogorov–Smirnov goodness-of-fit test.
//!
//! The paper's Section V-B *assumes* the detection-metric populations are
//! Gaussian (Fig. 7) before applying Eq. (5). This module provides the
//! standard check of that assumption: the KS statistic of the sample
//! against a fitted normal, with the asymptotic Kolmogorov p-value.

use crate::{Gaussian, StatsError};

/// Result of a one-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsTest {
    /// The KS statistic `D = sup |F_n(x) − F(x)|`.
    pub statistic: f64,
    /// Asymptotic p-value (Kolmogorov distribution of `√n·D`), with the
    /// small-sample correction of Stephens. Small p ⇒ reject the
    /// distributional hypothesis.
    pub p_value: f64,
    /// Sample count.
    pub n: usize,
}

impl KsTest {
    /// Conventional 5 % decision: `true` if the data are *compatible* with
    /// the hypothesised distribution.
    pub fn is_plausible(&self) -> bool {
        self.p_value > 0.05
    }
}

/// KS test of `samples` against an arbitrary CDF.
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughSamples`] for fewer than 5 samples (the
/// asymptotic p-value is meaningless below that).
pub fn ks_test(samples: &[f64], cdf: impl Fn(f64) -> f64) -> Result<KsTest, StatsError> {
    let n = samples.len();
    if n < 5 {
        return Err(StatsError::NotEnoughSamples { got: n, need: 5 });
    }
    let mut xs = samples.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in KS input"));
    let nf = n as f64;
    let mut d = 0.0f64;
    for (i, &x) in xs.iter().enumerate() {
        let f = cdf(x);
        let lo = i as f64 / nf;
        let hi = (i + 1) as f64 / nf;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    // Stephens' effective statistic for finite n.
    let t = d * (nf.sqrt() + 0.12 + 0.11 / nf.sqrt());
    Ok(KsTest {
        statistic: d,
        p_value: kolmogorov_sf(t),
        n,
    })
}

/// KS test of `samples` against a normal distribution *fitted to the same
/// samples* (a pragmatic Lilliefors-style check; the quoted p-value uses
/// the plain Kolmogorov distribution and is therefore conservative in the
/// accept direction — fine for the suite's "is Gaussian plausible?" use).
///
/// # Errors
///
/// Propagates fitting and sample-count errors.
pub fn ks_test_normal(samples: &[f64]) -> Result<KsTest, StatsError> {
    let g = Gaussian::fit(samples)?;
    ks_test(samples, |x| g.cdf(x))
}

/// Upper tail of the Kolmogorov distribution:
/// `Q(t) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²t²}`.
pub fn kolmogorov_sf(t: f64) -> f64 {
    if t <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    for k in 1..=100u32 {
        let term = (-2.0 * (k as f64).powi(2) * t * t).exp();
        if term < 1e-18 {
            break;
        }
        sum += if k % 2 == 1 { term } else { -term };
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic standard-normal-ish samples via the probit of a
    /// low-discrepancy sequence.
    fn normalish(n: usize, mean: f64, std: f64) -> Vec<f64> {
        let g = Gaussian::standard();
        (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                mean + std * g.quantile(u).unwrap()
            })
            .collect()
    }

    #[test]
    fn kolmogorov_sf_known_values() {
        // Q(1.36) ≈ 0.049 (the classic 5% critical value).
        assert!((kolmogorov_sf(1.36) - 0.049).abs() < 0.002);
        assert!(kolmogorov_sf(0.0) == 1.0);
        assert!(kolmogorov_sf(3.0) < 1e-6);
        // Monotone decreasing.
        assert!(kolmogorov_sf(0.5) > kolmogorov_sf(1.0));
    }

    #[test]
    fn gaussian_data_is_plausibly_gaussian() {
        let xs = normalish(200, 5.0, 2.0);
        let t = ks_test_normal(&xs).unwrap();
        assert!(t.is_plausible(), "D = {} p = {}", t.statistic, t.p_value);
        assert!(t.statistic < 0.06);
    }

    #[test]
    fn skewed_data_is_rejected_as_gaussian() {
        // Exponential quantiles: strongly right-skewed, far from any
        // normal in KS distance (uniform data, by contrast, sits only
        // D ≈ 0.06 from its fitted normal and is *not* rejectable at this
        // sample size with the conservative p-value — by design).
        let xs: Vec<f64> = (0..200)
            .map(|i| {
                let u = (i as f64 + 0.5) / 200.0;
                -(1.0 - u).ln()
            })
            .collect();
        let t = ks_test_normal(&xs).unwrap();
        assert!(!t.is_plausible(), "D = {} p = {}", t.statistic, t.p_value);
    }

    #[test]
    fn bimodal_data_is_rejected() {
        let mut xs = normalish(100, -4.0, 0.5);
        xs.extend(normalish(100, 4.0, 0.5));
        let t = ks_test_normal(&xs).unwrap();
        assert!(!t.is_plausible());
    }

    #[test]
    fn exact_cdf_on_its_own_samples() {
        // Testing uniform samples against the uniform CDF is plausible.
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 + 0.5) / 100.0).collect();
        let t = ks_test(&xs, |x| x.clamp(0.0, 1.0)).unwrap();
        assert!(t.is_plausible());
        assert!(t.statistic < 0.02);
    }

    #[test]
    fn small_samples_are_rejected() {
        assert!(ks_test_normal(&[1.0, 2.0, 3.0]).is_err());
    }
}
