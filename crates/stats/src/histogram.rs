//! Fixed-bin histograms for report rendering.

use crate::StatsError;

/// A histogram with uniform bins over `[lo, hi)`.
///
/// Out-of-range samples are counted in saturating edge bins so no data is
/// silently lost.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` uniform bins over `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NonPositiveScale`] if `hi <= lo` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, StatsError> {
        // `!(hi > lo)` deliberately also rejects NaN bounds.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(hi > lo) || bins == 0 {
            return Err(StatsError::NonPositiveScale { value: hi - lo });
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
        })
    }

    /// Builds a histogram spanning the data range of `samples`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NotEnoughSamples`] for an empty slice and
    /// [`StatsError::NonPositiveScale`] for constant data.
    pub fn from_samples(samples: &[f64], bins: usize) -> Result<Self, StatsError> {
        if samples.is_empty() {
            return Err(StatsError::NotEnoughSamples { got: 0, need: 1 });
        }
        let lo = crate::descriptive::min(samples);
        let hi = crate::descriptive::max(samples);
        // Widen slightly so the maximum lands inside the top bin.
        let span = (hi - lo).max(f64::MIN_POSITIVE);
        let mut h = Histogram::new(lo, hi + span * 1e-9, bins)?;
        h.extend(samples.iter().copied());
        Ok(h)
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = if t < 0.0 {
            0
        } else if t >= 1.0 {
            bins - 1
        } else {
            ((t * bins as f64) as usize).min(bins - 1)
        };
        self.counts[idx] += 1;
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(low_edge, high_edge)` of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len());
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Renders a compact ASCII bar chart, one line per bin.
    pub fn render(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let (lo, hi) = self.bin_edges(i);
            let bar = "#".repeat((c as usize * width / max as usize).min(width));
            out.push_str(&format!("[{lo:>12.4e}, {hi:>12.4e}) {c:>8} {bar}\n"));
        }
        out
    }
}

impl Extend<f64> for Histogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.add(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_the_range() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        for x in [0.0, 1.9, 2.0, 5.5, 9.99] {
            h.add(x);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn out_of_range_saturates() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        let h = h.as_mut().unwrap();
        h.add(-5.0);
        h.add(5.0);
        assert_eq!(h.counts(), &[1, 1]);
    }

    #[test]
    fn from_samples_covers_all_data() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::from_samples(&xs, 10).unwrap();
        assert_eq!(h.total(), 100);
        assert!(h.counts().iter().all(|&c| c == 10));
    }

    #[test]
    fn constructor_validation() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::from_samples(&[], 4).is_err());
    }

    #[test]
    fn edges_are_uniform() {
        let h = Histogram::new(0.0, 10.0, 5).unwrap();
        assert_eq!(h.bin_edges(0), (0.0, 2.0));
        assert_eq!(h.bin_edges(4), (8.0, 10.0));
    }

    #[test]
    fn render_contains_bars() {
        let mut h = Histogram::new(0.0, 2.0, 2).unwrap();
        h.extend([0.5, 0.6, 1.5]);
        let s = h.render(10);
        assert!(s.contains('#'));
        assert_eq!(s.lines().count(), 2);
    }
}
