//! Statistics for side-channel hardware-trojan detection.
//!
//! This crate implements, from scratch, every statistical tool the DATE 2015
//! paper's methodology needs:
//!
//! * [`erf`]/[`erfc`]/[`erf_inv`] — the error function family behind the
//!   paper's Eq. (5) false-negative model, accurate to near machine
//!   precision (Taylor series + Lentz continued fraction).
//! * [`Gaussian`] — pdf/cdf/quantile and moment fitting for the
//!   process-variation noise model (paper ref. \[6\], Bowman et al.).
//! * [`descriptive`] — means, variances, percentiles for trace statistics.
//! * [`peaks`] — the local-maxima detector and the paper's
//!   *sum-of-local-maxima* decision metric (Section V-B).
//! * [`detection`] — two-Gaussian detection theory: Eq. (5) equal-error
//!   rates, optimal thresholds, ROC curves, empirical rate estimation.
//! * [`welch`] — Welch's t-test (a standard side-channel leakage
//!   assessment, provided as a baseline metric).
//! * [`ks`] — one-sample Kolmogorov–Smirnov goodness of fit, used to check
//!   the Fig. 7 Gaussian-population assumption on measured metrics.
//! * [`logistic`] — a seeded, presentation-order-invariant
//!   logistic-regression trainer: the learning-assisted scorer that can
//!   replace the fixed erf threshold (LASCA, arXiv:2001.06476).
//! * [`Histogram`] — fixed-bin histograms for report rendering.
//!
//! # Example
//!
//! The paper's headline computation — the false-negative rate of an HT whose
//! side-channel offset is `µ` against inter-die process noise `σ`
//! (Eq. 5: `P_fn = 1/2 − ½·erf(µ / (2σ√2))`):
//!
//! ```
//! use htd_stats::detection::equal_error_rate;
//!
//! let p = equal_error_rate(3.2897, 1.0); // µ ≈ 3.29σ
//! assert!((p - 0.05).abs() < 0.001);     // ≈ 5% false negatives
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod descriptive;
pub mod detection;
mod erf;
mod gaussian;
mod histogram;
pub mod ks;
pub mod logistic;
pub mod peaks;
pub mod welch;

pub use erf::{erf, erf_inv, erfc};
pub use gaussian::Gaussian;
pub use histogram::Histogram;

/// Errors reported by statistical routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StatsError {
    /// The input sample set was empty (or too small for the estimator).
    NotEnoughSamples {
        /// Samples provided.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// A scale parameter (standard deviation, bin width…) was not positive.
    NonPositiveScale {
        /// The offending value.
        value: f64,
    },
    /// A probability argument lay outside `(0, 1)`.
    ProbabilityOutOfRange {
        /// The offending value.
        value: f64,
    },
}

impl core::fmt::Display for StatsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StatsError::NotEnoughSamples { got, need } => {
                write!(f, "need at least {need} samples, got {got}")
            }
            StatsError::NonPositiveScale { value } => {
                write!(f, "scale parameter must be positive, got {value}")
            }
            StatsError::ProbabilityOutOfRange { value } => {
                write!(f, "probability must lie in (0, 1), got {value}")
            }
        }
    }
}

impl std::error::Error for StatsError {}
