//! Welch's unequal-variance t-test.
//!
//! Provided as the standard side-channel leakage-assessment baseline (TVLA
//! style): the suite uses it to confirm, independently of the paper's
//! sum-of-local-maxima metric, that genuine and infected trace populations
//! differ significantly at points of interest.

use crate::StatsError;

/// Result of a Welch t-test between two sample sets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WelchTest {
    /// The t statistic (positive when the second set's mean is smaller).
    pub t: f64,
    /// Welch–Satterthwaite effective degrees of freedom.
    pub df: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

/// Runs Welch's t-test on two independent sample sets.
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughSamples`] if either set has fewer than two
/// samples, and [`StatsError::NonPositiveScale`] if both sets have zero
/// variance (the statistic is undefined).
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Result<WelchTest, StatsError> {
    if a.len() < 2 {
        return Err(StatsError::NotEnoughSamples {
            got: a.len(),
            need: 2,
        });
    }
    if b.len() < 2 {
        return Err(StatsError::NotEnoughSamples {
            got: b.len(),
            need: 2,
        });
    }
    let (ma, mb) = (crate::descriptive::mean(a), crate::descriptive::mean(b));
    let (va, vb) = (
        crate::descriptive::variance(a),
        crate::descriptive::variance(b),
    );
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let se2 = va / na + vb / nb;
    if se2 <= 0.0 {
        return Err(StatsError::NonPositiveScale { value: se2 });
    }
    let t = (ma - mb) / se2.sqrt();
    let df = se2 * se2 / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0));
    let p_value = 2.0 * student_t_sf(t.abs(), df);
    Ok(WelchTest { t, df, p_value })
}

/// Upper-tail probability `P(T > t)` of Student's t with `df` degrees of
/// freedom, via the regularized incomplete beta function.
pub fn student_t_sf(t: f64, df: f64) -> f64 {
    if t.is_nan() || df <= 0.0 {
        return f64::NAN;
    }
    if t == f64::INFINITY {
        return 0.0;
    }
    let x = df / (df + t * t);
    0.5 * incomplete_beta_reg(0.5 * df, 0.5, x)
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction of Numerical Recipes (`betacf`), accurate to ~1e-14.
pub fn incomplete_beta_reg(a: f64, b: f64, x: f64) -> f64 {
    if !(0.0..=1.0).contains(&x) {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    const EPS: f64 = 1e-15;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..300u32 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9),
/// accurate to ~1e-13 for positive arguments.
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-12);
        assert!((ln_gamma(2.0)).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-11);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
    }

    #[test]
    fn incomplete_beta_edges_and_symmetry() {
        assert_eq!(incomplete_beta_reg(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta_reg(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a).
        let v = incomplete_beta_reg(2.5, 1.5, 0.3);
        let w = incomplete_beta_reg(1.5, 2.5, 0.7);
        assert!((v + w - 1.0).abs() < 1e-12);
        // I_x(1,1) = x.
        assert!((incomplete_beta_reg(1.0, 1.0, 0.42) - 0.42).abs() < 1e-12);
    }

    #[test]
    fn student_t_sf_matches_tables() {
        // df = 10, t = 1.812: one-sided 5%.
        assert!((student_t_sf(1.812, 10.0) - 0.05).abs() < 2e-4);
        // df = 1 (Cauchy): P(T > 1) = 0.25.
        assert!((student_t_sf(1.0, 1.0) - 0.25).abs() < 1e-10);
        // Large df approaches the normal tail.
        assert!((student_t_sf(1.96, 1e6) - 0.025).abs() < 1e-4);
        assert_eq!(student_t_sf(f64::INFINITY, 5.0), 0.0);
    }

    #[test]
    fn welch_detects_separated_means() {
        let a: Vec<f64> = (0..50).map(|i| (i % 7) as f64 * 0.1).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 2.0).collect();
        let r = welch_t_test(&a, &b).unwrap();
        assert!(r.t < -10.0);
        assert!(r.p_value < 1e-10);
    }

    #[test]
    fn welch_accepts_identical_distributions() {
        let a: Vec<f64> = (0..40).map(|i| ((i * 37) % 11) as f64).collect();
        let r = welch_t_test(&a, &a).unwrap();
        assert!(r.t.abs() < 1e-12);
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn welch_rejects_tiny_or_degenerate_sets() {
        assert!(welch_t_test(&[1.0], &[1.0, 2.0]).is_err());
        assert!(welch_t_test(&[1.0, 2.0], &[1.0]).is_err());
        assert!(welch_t_test(&[3.0, 3.0], &[3.0, 3.0]).is_err());
    }
}
