//! Two-Gaussian detection theory (the paper's Section V-B / Fig. 7).
//!
//! The HT detection problem is modelled as deciding between
//!
//! * `H₀` (genuine): the decision metric is `N(µ_g, σ_g²)`, and
//! * `H₁` (infected): the metric is `N(µ_t, σ_t²)` with `µ_t > µ_g`
//!   (the HT adds a deterministic offset to the side channel),
//!
//! where the spread comes from inter-die process variations. With
//! `σ_g ≈ σ_t = σ` and a threshold midway between the means, the paper's
//! Eq. (5) gives the equal false-positive/false-negative rate
//! `P = 1/2 − ½·erf(µ / (2σ√2))`, `µ = µ_t − µ_g`.

use crate::{erf, Gaussian, StatsError};

/// Eq. (5) of the paper: the equal error rate (false-negative =
/// false-positive) for two equal-σ Gaussians separated by `mu`, using the
/// midpoint threshold.
///
/// # Panics
///
/// Panics if `sigma <= 0`.
///
/// ```
/// use htd_stats::detection::equal_error_rate;
/// // Zero separation: coin flip.
/// assert!((equal_error_rate(0.0, 1.0) - 0.5).abs() < 1e-15);
/// ```
pub fn equal_error_rate(mu: f64, sigma: f64) -> f64 {
    assert!(sigma > 0.0, "sigma must be positive");
    0.5 - 0.5 * erf(mu / (2.0 * sigma * std::f64::consts::SQRT_2))
}

/// Inverse of [`equal_error_rate`] in `mu`: the separation (in units of the
/// common σ) needed to reach a target equal error rate.
///
/// # Errors
///
/// Returns [`StatsError::ProbabilityOutOfRange`] unless `0 < rate < 0.5`.
pub fn separation_for_rate(rate: f64) -> Result<f64, StatsError> {
    if !(rate > 0.0 && rate < 0.5) {
        return Err(StatsError::ProbabilityOutOfRange { value: rate });
    }
    Ok(2.0 * std::f64::consts::SQRT_2 * crate::erf_inv(1.0 - 2.0 * rate))
}

/// A calibrated binary detector for a scalar decision metric, assuming
/// Gaussian populations for genuine and infected devices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoGaussianDetector {
    genuine: Gaussian,
    infected: Gaussian,
    threshold: f64,
}

impl TwoGaussianDetector {
    /// Builds a detector from the two population models, placing the
    /// threshold at the midpoint of the means (the paper's choice, optimal
    /// for equal σ and equal priors).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NonPositiveScale`] if the infected mean does
    /// not exceed the genuine mean (no signal to detect).
    pub fn from_midpoint(genuine: Gaussian, infected: Gaussian) -> Result<Self, StatsError> {
        let mu = infected.mean() - genuine.mean();
        // `!(mu > 0.0)` deliberately also rejects NaN separations.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(mu > 0.0) {
            return Err(StatsError::NonPositiveScale { value: mu });
        }
        Ok(TwoGaussianDetector {
            genuine,
            infected,
            threshold: genuine.mean() + mu / 2.0,
        })
    }

    /// Builds a detector with the threshold set for a target false-positive
    /// rate on the genuine population (Neyman–Pearson style calibration,
    /// which only requires golden devices).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::ProbabilityOutOfRange`] unless
    /// `0 < false_positive_rate < 1`.
    pub fn with_false_positive_rate(
        genuine: Gaussian,
        infected: Gaussian,
        false_positive_rate: f64,
    ) -> Result<Self, StatsError> {
        let threshold = genuine.quantile(1.0 - false_positive_rate)?;
        Ok(TwoGaussianDetector {
            genuine,
            infected,
            threshold,
        })
    }

    /// Fits both populations from labelled samples and uses the midpoint
    /// threshold.
    ///
    /// # Errors
    ///
    /// Propagates fitting errors; see [`Gaussian::fit`] and
    /// [`TwoGaussianDetector::from_midpoint`].
    pub fn fit(genuine: &[f64], infected: &[f64]) -> Result<Self, StatsError> {
        Self::from_midpoint(Gaussian::fit(genuine)?, Gaussian::fit(infected)?)
    }

    /// The decision threshold: metrics above it are classified *infected*.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The genuine-population model.
    pub fn genuine(&self) -> Gaussian {
        self.genuine
    }

    /// The infected-population model.
    pub fn infected(&self) -> Gaussian {
        self.infected
    }

    /// Classifies a metric value (`true` = infected).
    pub fn is_infected(&self, metric: f64) -> bool {
        metric > self.threshold
    }

    /// Model false-positive rate: genuine devices classified infected.
    pub fn false_positive_rate(&self) -> f64 {
        self.genuine.sf(self.threshold)
    }

    /// Model false-negative rate: infected devices classified genuine.
    pub fn false_negative_rate(&self) -> f64 {
        self.infected.cdf(self.threshold)
    }

    /// Model detection probability (`1 − P_fn`).
    pub fn detection_probability(&self) -> f64 {
        1.0 - self.false_negative_rate()
    }

    /// Samples the ROC curve at `points` thresholds spanning both
    /// populations (±4σ), returning `(P_fp, P_detect)` pairs ordered by
    /// increasing false-positive rate.
    pub fn roc(&self, points: usize) -> Vec<(f64, f64)> {
        let lo = (self.genuine.mean() - 4.0 * self.genuine.std())
            .min(self.infected.mean() - 4.0 * self.infected.std());
        let hi = (self.genuine.mean() + 4.0 * self.genuine.std())
            .max(self.infected.mean() + 4.0 * self.infected.std());
        let mut roc: Vec<(f64, f64)> = (0..points)
            .map(|i| {
                let t = lo + (hi - lo) * i as f64 / (points.max(2) - 1) as f64;
                (self.genuine.sf(t), self.infected.sf(t))
            })
            .collect();
        roc.sort_by(|a, b| a.partial_cmp(b).expect("finite ROC points"));
        roc
    }
}

/// Empirical classification rates for a labelled sample set and a fixed
/// threshold: returns `(false_positive_rate, false_negative_rate)`.
///
/// Returns `NaN` entries for empty populations.
pub fn empirical_rates(genuine: &[f64], infected: &[f64], threshold: f64) -> (f64, f64) {
    let fp = if genuine.is_empty() {
        f64::NAN
    } else {
        genuine.iter().filter(|&&m| m > threshold).count() as f64 / genuine.len() as f64
    };
    let fnr = if infected.is_empty() {
        f64::NAN
    } else {
        infected.iter().filter(|&&m| m <= threshold).count() as f64 / infected.len() as f64
    };
    (fp, fnr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq5_known_values() {
        // µ = 3.2897σ ⇒ 5% (Φ(1.6449) = 0.95).
        assert!((equal_error_rate(3.2897, 1.0) - 0.05).abs() < 1e-4);
        // µ = 2σ ⇒ 1 − Φ(1) ≈ 15.87%.
        assert!((equal_error_rate(2.0, 1.0) - 0.158_655).abs() < 1e-5);
        // Scale invariance.
        assert!((equal_error_rate(6.0, 2.0) - equal_error_rate(3.0, 1.0)).abs() < 1e-15);
    }

    #[test]
    fn separation_inverts_rate() {
        for rate in [0.26, 0.17, 0.05, 0.01] {
            let mu = separation_for_rate(rate).unwrap();
            assert!((equal_error_rate(mu, 1.0) - rate).abs() < 1e-12);
        }
        assert!(separation_for_rate(0.5).is_err());
        assert!(separation_for_rate(0.0).is_err());
    }

    #[test]
    fn midpoint_detector_matches_eq5() {
        let g = Gaussian::new(10.0, 2.0).unwrap();
        let t = Gaussian::new(16.0, 2.0).unwrap();
        let det = TwoGaussianDetector::from_midpoint(g, t).unwrap();
        assert_eq!(det.threshold(), 13.0);
        let eq5 = equal_error_rate(6.0, 2.0);
        assert!((det.false_positive_rate() - eq5).abs() < 1e-14);
        assert!((det.false_negative_rate() - eq5).abs() < 1e-14);
        assert!((det.detection_probability() + eq5 - 1.0).abs() < 1e-14);
    }

    #[test]
    fn midpoint_requires_positive_separation() {
        let g = Gaussian::new(10.0, 2.0).unwrap();
        assert!(TwoGaussianDetector::from_midpoint(g, g).is_err());
    }

    #[test]
    fn np_calibration_hits_fp_target() {
        let g = Gaussian::new(0.0, 1.0).unwrap();
        let t = Gaussian::new(4.0, 1.0).unwrap();
        let det = TwoGaussianDetector::with_false_positive_rate(g, t, 0.05).unwrap();
        assert!((det.false_positive_rate() - 0.05).abs() < 1e-12);
        assert!(det.detection_probability() > 0.95);
    }

    #[test]
    fn classification_uses_threshold() {
        let g = Gaussian::new(0.0, 1.0).unwrap();
        let t = Gaussian::new(2.0, 1.0).unwrap();
        let det = TwoGaussianDetector::from_midpoint(g, t).unwrap();
        assert!(det.is_infected(1.5));
        assert!(!det.is_infected(0.5));
    }

    #[test]
    fn fit_recovers_population_split() {
        let genuine: Vec<f64> = (0..100).map(|i| (i % 10) as f64 * 0.1).collect();
        let infected: Vec<f64> = genuine.iter().map(|x| x + 5.0).collect();
        let det = TwoGaussianDetector::fit(&genuine, &infected).unwrap();
        let (fp, fnr) = empirical_rates(&genuine, &infected, det.threshold());
        assert_eq!(fp, 0.0);
        assert_eq!(fnr, 0.0);
    }

    #[test]
    fn roc_is_monotone_and_spans() {
        let g = Gaussian::new(0.0, 1.0).unwrap();
        let t = Gaussian::new(2.0, 1.5).unwrap();
        let det = TwoGaussianDetector::from_midpoint(g, t).unwrap();
        let roc = det.roc(64);
        assert_eq!(roc.len(), 64);
        for w in roc.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1 - 1e-12);
        }
        assert!(roc.first().unwrap().0 < 0.01);
        assert!(roc.last().unwrap().0 > 0.99);
    }

    #[test]
    fn empirical_rates_count_correctly() {
        let (fp, fnr) = empirical_rates(&[0.0, 1.0, 3.0], &[1.0, 3.0, 4.0, 5.0], 2.0);
        assert!((fp - 1.0 / 3.0).abs() < 1e-15);
        assert!((fnr - 0.25).abs() < 1e-15);
        let (fp, fnr) = empirical_rates(&[], &[], 0.0);
        assert!(fp.is_nan() && fnr.is_nan());
    }
}
