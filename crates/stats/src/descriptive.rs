//! Descriptive statistics over `f64` samples.
//!
//! These helpers intentionally take slices (not iterators) because every
//! caller in the suite owns its trace/sample buffers, and two-pass
//! algorithms (mean first, then centred moments) are numerically safer than
//! streaming one-pass variants.

/// Arithmetic mean. Returns `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (Bessel's correction).
/// Returns `NaN` for fewer than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Population variance (divide by `n`).
/// Returns `NaN` for an empty slice.
pub fn population_variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Unbiased sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum value. Returns `NaN` for an empty slice.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NAN, f64::min)
}

/// Maximum value. Returns `NaN` for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NAN, f64::max)
}

/// Median (average of the two middle order statistics for even lengths).
/// Returns `NaN` for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Linear-interpolation percentile, `p ∈ [0, 100]`.
/// Returns `NaN` for an empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Root-mean-square of the samples. Returns `NaN` for an empty slice.
pub fn rms(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|&x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Pearson correlation between two equal-length sample vectors.
/// Returns `NaN` if lengths differ, are < 2, or either side is constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return f64::NAN;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return f64::NAN;
    }
    sxy / (sxx * syy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basic() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 5.0 / 3.0).abs() < 1e-15);
        assert!((population_variance(&xs) - 1.25).abs() < 1e-15);
        assert!((std_dev(&xs) - (5.0f64 / 3.0).sqrt()).abs() < 1e-15);
    }

    #[test]
    fn empty_inputs_yield_nan() {
        assert!(mean(&[]).is_nan());
        assert!(variance(&[1.0]).is_nan());
        assert!(min(&[]).is_nan());
        assert!(max(&[]).is_nan());
        assert!(median(&[]).is_nan());
        assert!(rms(&[]).is_nan());
    }

    #[test]
    fn min_max_median() {
        let xs = [5.0, 1.0, 9.0, 3.0];
        assert_eq!(min(&xs), 1.0);
        assert_eq!(max(&xs), 9.0);
        assert_eq!(median(&xs), 4.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(percentile(&xs, 0.0), 0.0);
        assert_eq!(percentile(&xs, 100.0), 10.0);
        assert_eq!(percentile(&xs, 25.0), 2.5);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn percentile_rejects_out_of_range() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn rms_of_constant_is_abs() {
        assert!((rms(&[-2.0, -2.0]) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn pearson_detects_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg = [-2.0, -4.0, -6.0];
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &[1.0, 1.0, 1.0]).is_nan());
        assert!(pearson(&xs, &[1.0, 2.0]).is_nan());
    }
}
