//! A dependency-free, seeded logistic-regression trainer over
//! per-channel detection statistics — the LASCA-style (arXiv:2001.06476)
//! learning-assisted scorer that replaces the paper's fixed erf
//! threshold with a small trained classifier.
//!
//! Determinism is the design constraint, not an afterthought:
//!
//! * **Fixed-iteration full-batch gradient descent.** No stochastic
//!   mini-batches, no early stopping on a float comparison — the same
//!   seed and samples always perform the same floating-point operations.
//! * **Sorted-index accumulation.** Every reduction over the training
//!   set (feature means, variances, gradients) runs in one canonical
//!   sample order derived from the sample *values* (label, then feature
//!   bits under `total_cmp`), never from presentation order. Shuffling
//!   the training set is a no-op, bit for bit.
//! * **Seeded initial weights.** The initial weight vector comes from a
//!   splitmix64 stream over [`TrainConfig::seed`], so two trainers with
//!   the same seed are bit-identical and different seeds genuinely
//!   explore different starts.
//!
//! The trained [`LogisticModel`] standardizes features with the means
//! and standard deviations frozen at training time, so its decision
//! boundary (`logit == 0`, probability `0.5`) is portable across
//! campaigns measured in the same units.

use crate::StatsError;

/// A trained logistic-regression classifier over named features.
///
/// The decision function is
/// `logit(x) = bias + Σ_k w_k · (x_k − mean_k) / std_k`;
/// `logit > 0` means "more likely infected than golden" at the trained
/// 0.5-probability boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticModel {
    /// Feature labels, in weight order (the channel names of the
    /// campaign the model was trained on).
    pub features: Vec<String>,
    /// Intercept term.
    pub bias: f64,
    /// One weight per feature, over standardized inputs.
    pub weights: Vec<f64>,
    /// Per-feature training means (the standardization offsets).
    pub means: Vec<f64>,
    /// Per-feature training standard deviations (the standardization
    /// scales; always positive).
    pub stds: Vec<f64>,
    /// Seed the initial weights were drawn from.
    pub seed: u64,
    /// Gradient-descent iterations performed.
    pub iterations: usize,
    /// Gradient-descent learning rate.
    pub rate: f64,
}

impl LogisticModel {
    /// The decision statistic for one feature vector: the standardized
    /// linear score whose sign is the trained decision (positive means
    /// infected).
    ///
    /// # Errors
    ///
    /// [`StatsError::NotEnoughSamples`] when `x` does not supply one
    /// value per trained feature.
    pub fn logit(&self, x: &[f64]) -> Result<f64, StatsError> {
        if x.len() != self.weights.len() {
            return Err(StatsError::NotEnoughSamples {
                got: x.len(),
                need: self.weights.len(),
            });
        }
        let mut z = self.bias;
        for (k, &v) in x.iter().enumerate() {
            z += self.weights[k] * (v - self.means[k]) / self.stds[k];
        }
        Ok(z)
    }

    /// The predicted probability that `x` comes from an infected
    /// population: `σ(logit(x))`.
    ///
    /// # Errors
    ///
    /// [`StatsError::NotEnoughSamples`] when `x` does not supply one
    /// value per trained feature.
    pub fn probability(&self, x: &[f64]) -> Result<f64, StatsError> {
        Ok(sigmoid(self.logit(x)?))
    }
}

/// Hyper-parameters of [`train`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Seed of the splitmix64 stream the initial weights are drawn from.
    pub seed: u64,
    /// Full-batch gradient-descent iterations (fixed, never adaptive).
    pub iterations: usize,
    /// Learning rate; must be positive and finite.
    pub rate: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            seed: 2015,
            iterations: 200,
            rate: 0.5,
        }
    }
}

/// One training sample: a feature vector plus its label (`true` =
/// infected population, `false` = golden population).
pub type Sample = (Vec<f64>, bool);

/// Trains a [`LogisticModel`] by deterministic full-batch gradient
/// descent over standardized features.
///
/// The result depends only on the sample *multiset*, the feature labels
/// and the config — never on presentation order (every accumulation runs
/// in a canonical value-derived order) and never on the clock or the
/// platform's thread scheduler.
///
/// # Errors
///
/// [`StatsError::NotEnoughSamples`] when `features` is empty, a sample's
/// arity disagrees with `features`, or either class is absent;
/// [`StatsError::NonPositiveScale`] when the learning rate is not a
/// positive finite number.
pub fn train(
    features: &[String],
    samples: &[Sample],
    config: &TrainConfig,
) -> Result<LogisticModel, StatsError> {
    let d = features.len();
    if d == 0 {
        return Err(StatsError::NotEnoughSamples { got: 0, need: 1 });
    }
    if !(config.rate.is_finite() && config.rate > 0.0) {
        return Err(StatsError::NonPositiveScale { value: config.rate });
    }
    for (x, _) in samples {
        if x.len() != d {
            return Err(StatsError::NotEnoughSamples {
                got: x.len(),
                need: d,
            });
        }
    }
    let infected = samples.iter().filter(|(_, y)| *y).count();
    let golden = samples.len() - infected;
    if infected == 0 || golden == 0 {
        return Err(StatsError::NotEnoughSamples {
            got: infected.min(golden),
            need: 1,
        });
    }

    // Canonical accumulation order: by label, then by feature values
    // under the IEEE total order. Ties are bitwise-identical samples, so
    // any ordering among them sums identically — presentation order can
    // never leak into a reduction.
    let mut order: Vec<usize> = (0..samples.len()).collect();
    order.sort_by(|&a, &b| {
        let (xa, ya) = &samples[a];
        let (xb, yb) = &samples[b];
        ya.cmp(yb).then_with(|| {
            for (va, vb) in xa.iter().zip(xb) {
                let c = va.total_cmp(vb);
                if c != core::cmp::Ordering::Equal {
                    return c;
                }
            }
            core::cmp::Ordering::Equal
        })
    });
    let n = samples.len() as f64;

    // Standardization statistics, accumulated in canonical order.
    let mut means = vec![0.0f64; d];
    for &i in &order {
        for (k, &v) in samples[i].0.iter().enumerate() {
            means[k] += v;
        }
    }
    for m in &mut means {
        *m /= n;
    }
    let mut vars = vec![0.0f64; d];
    for &i in &order {
        for (k, &v) in samples[i].0.iter().enumerate() {
            let delta = v - means[k];
            vars[k] += delta * delta;
        }
    }
    // A constant feature carries no information; unit scale keeps its
    // standardized value finite (zero) instead of poisoning the model.
    let stds: Vec<f64> = vars
        .iter()
        .map(|&v| {
            let s = (v / n).sqrt();
            if s > 0.0 {
                s
            } else {
                1.0
            }
        })
        .collect();
    let standardized: Vec<Vec<f64>> = samples
        .iter()
        .map(|(x, _)| {
            x.iter()
                .enumerate()
                .map(|(k, &v)| (v - means[k]) / stds[k])
                .collect()
        })
        .collect();

    // Seeded small initial weights: deterministic per seed, and distinct
    // seeds genuinely start from distinct points.
    let mut state = config.seed;
    let mut weights: Vec<f64> = (0..d)
        .map(|_| (unit_f64(&mut state) - 0.5) * 0.01)
        .collect();
    let mut bias = (unit_f64(&mut state) - 0.5) * 0.01;

    for _ in 0..config.iterations {
        let mut grad_b = 0.0f64;
        let mut grad_w = vec![0.0f64; d];
        for &i in &order {
            let (_, y) = samples[i];
            let xs = &standardized[i];
            let mut z = bias;
            for (k, &v) in xs.iter().enumerate() {
                z += weights[k] * v;
            }
            let err = sigmoid(z) - f64::from(u8::from(y));
            grad_b += err;
            for (k, &v) in xs.iter().enumerate() {
                grad_w[k] += err * v;
            }
        }
        bias -= config.rate * grad_b / n;
        for (w, g) in weights.iter_mut().zip(&grad_w) {
            *w -= config.rate * g / n;
        }
    }

    Ok(LogisticModel {
        features: features.to_vec(),
        bias,
        weights,
        means,
        stds,
        seed: config.seed,
        iterations: config.iterations,
        rate: config.rate,
    })
}

/// Numerically stable logistic function.
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// One splitmix64 step mapped to a uniform value in `[0, 1)`.
fn unit_f64(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features() -> Vec<String> {
        vec!["EM".to_string(), "delay".to_string()]
    }

    fn separable_samples() -> Vec<Sample> {
        let mut samples = Vec::new();
        for i in 0..8 {
            let t = f64::from(i) * 0.25;
            samples.push((vec![1.0 + t, 10.0 - t], false));
            samples.push((vec![4.0 + t, 14.0 + t], true));
        }
        samples
    }

    #[test]
    fn learns_a_separable_problem() {
        let model = train(&features(), &separable_samples(), &TrainConfig::default()).unwrap();
        for (x, y) in separable_samples() {
            let p = model.probability(&x).unwrap();
            assert_eq!(p > 0.5, y, "sample {x:?} scored {p}");
        }
        // The boundary logit is exactly the probability-0.5 threshold.
        assert!(model.logit(&[4.0, 14.0]).unwrap() > 0.0);
        assert!(model.logit(&[1.0, 10.0]).unwrap() < 0.0);
    }

    #[test]
    fn training_is_presentation_order_invariant() {
        let samples = separable_samples();
        let mut reversed = samples.clone();
        reversed.reverse();
        let mut rotated = samples.clone();
        rotated.rotate_left(5);
        let a = train(&features(), &samples, &TrainConfig::default()).unwrap();
        let b = train(&features(), &reversed, &TrainConfig::default()).unwrap();
        let c = train(&features(), &rotated, &TrainConfig::default()).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
        for (wa, wb) in a.weights.iter().zip(&b.weights) {
            assert_eq!(wa.to_bits(), wb.to_bits());
        }
        assert_eq!(a.bias.to_bits(), b.bias.to_bits());
    }

    #[test]
    fn seeds_matter_and_are_reproducible() {
        let samples = separable_samples();
        let cfg = |seed| TrainConfig {
            seed,
            ..TrainConfig::default()
        };
        let a1 = train(&features(), &samples, &cfg(1)).unwrap();
        let a2 = train(&features(), &samples, &cfg(1)).unwrap();
        let b = train(&features(), &samples, &cfg(2)).unwrap();
        assert_eq!(a1, a2);
        assert_ne!(a1.weights, b.weights, "distinct seeds start differently");
    }

    #[test]
    fn rejects_bad_inputs() {
        let samples = separable_samples();
        assert!(matches!(
            train(&[], &samples, &TrainConfig::default()),
            Err(StatsError::NotEnoughSamples { .. })
        ));
        assert!(matches!(
            train(&features(), &[(vec![1.0], false)], &TrainConfig::default()),
            Err(StatsError::NotEnoughSamples { .. })
        ));
        let one_class: Vec<Sample> = samples.iter().filter(|(_, y)| *y).cloned().collect();
        assert!(matches!(
            train(&features(), &one_class, &TrainConfig::default()),
            Err(StatsError::NotEnoughSamples { .. })
        ));
        let bad_rate = TrainConfig {
            rate: 0.0,
            ..TrainConfig::default()
        };
        assert!(matches!(
            train(&features(), &samples, &bad_rate),
            Err(StatsError::NonPositiveScale { .. })
        ));
    }

    #[test]
    fn constant_features_standardize_to_unit_scale() {
        let features = vec!["EM".to_string()];
        let samples = vec![
            (vec![2.0], false),
            (vec![2.0], false),
            (vec![2.0], true),
            (vec![2.0], true),
        ];
        let model = train(&features, &samples, &TrainConfig::default()).unwrap();
        assert_eq!(model.stds, vec![1.0]);
        assert!(model.logit(&[2.0]).unwrap().is_finite());
    }

    #[test]
    fn logit_checks_arity() {
        let model = train(&features(), &separable_samples(), &TrainConfig::default()).unwrap();
        assert!(matches!(
            model.logit(&[1.0]),
            Err(StatsError::NotEnoughSamples { got: 1, need: 2 })
        ));
    }
}
