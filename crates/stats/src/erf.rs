//! The error function family, implemented from scratch.
//!
//! `erf` is the core of the paper's Eq. (5). The implementation follows the
//! classical split: a Taylor series around zero (fast, exact convergence for
//! small arguments) and a Lentz-evaluated continued fraction for the
//! complementary function at large arguments. Both converge to within a few
//! ulps of `f64`.

use std::f64::consts::PI;

/// Threshold between the series and continued-fraction regimes.
const SPLIT: f64 = 2.5;

/// The error function `erf(x) = 2/√π ∫₀ˣ e^(−t²) dt`.
///
/// Accurate to ~1e-15 over the full real line; `erf(±∞) = ±1`.
///
/// ```
/// use htd_stats::erf;
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-14);
/// assert_eq!(erf(0.0), 0.0);
/// ```
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let ax = x.abs();
    let v = if ax <= SPLIT {
        erf_series(ax)
    } else {
        1.0 - erfc_cf(ax)
    };
    if x < 0.0 {
        -v
    } else {
        v
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Computed directly via continued fraction for large positive `x`, so it
/// does not lose precision to cancellation (`erfc(10) ≈ 2.1e-45` is exact to
/// full relative precision).
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x <= SPLIT {
        1.0 - erf_series(x)
    } else {
        erfc_cf(x)
    }
}

/// Maclaurin series `erf(x) = 2/√π Σ (−1)ⁿ x^{2n+1} / (n! (2n+1))`,
/// valid (and fast) for `0 ≤ x ≤ 2.5`.
fn erf_series(x: f64) -> f64 {
    let x2 = x * x;
    let mut term = x; // x^{2n+1} / n!
    let mut sum = 0.0;
    for n in 0..200u32 {
        let contrib = term / (2 * n + 1) as f64;
        let new_sum = sum + if n % 2 == 0 { contrib } else { -contrib };
        if new_sum == sum {
            break;
        }
        sum = new_sum;
        term *= x2 / (n + 1) as f64;
    }
    (2.0 / PI.sqrt()) * sum
}

/// Continued fraction for `erfc(x)`, `x > 2.5` (Lentz's algorithm):
/// `erfc(x) = e^{−x²}/√π · 1/(x + 1/2/(x + 1/(x + 3/2/(x + …))))`.
fn erfc_cf(x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    const EPS: f64 = 1e-17;
    let mut f = x;
    let mut c = x;
    let mut d = 0.0;
    for k in 1..400u32 {
        let a = k as f64 / 2.0;
        // b is x for every level.
        d = x + a * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = x + a / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    (-x * x).exp() / PI.sqrt() / f
}

/// Inverse error function: `erf(erf_inv(p)) = p` for `p ∈ (−1, 1)`.
///
/// Solves `erf(x) = p` by bisection against the high-precision [`erf`]
/// (monotone, so the bracket is guaranteed), then polishes with Newton.
/// The routine is exact to ~1 ulp; it is not on any hot path in this suite.
///
/// Returns `±∞` at `p = ±1` and `NaN` outside `[−1, 1]`.
pub fn erf_inv(p: f64) -> f64 {
    if p.is_nan() || !(-1.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    if p == -1.0 {
        return f64::NEG_INFINITY;
    }
    if p == 0.0 {
        return 0.0;
    }
    let target = p.abs();
    // erf(6) is 1 to within f64, so [0, 6] brackets every representable
    // target < 1.
    let (mut lo, mut hi) = (0.0f64, 6.0f64);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if erf(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let mut x = 0.5 * (lo + hi);
    // Newton polish: f(x) = erf(x) − target, f'(x) = 2/√π e^{−x²}.
    for _ in 0..2 {
        let dfdx = 2.0 / PI.sqrt() * (-x * x).exp();
        if dfdx <= 0.0 {
            break;
        }
        x -= (erf(x) - target) / dfdx;
    }
    if p < 0.0 {
        -x
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values computed with mpmath at 50 digits.
    const REFERENCE: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.112_462_916_018_284_9),
        (0.5, 0.520_499_877_813_046_5),
        (1.0, 0.842_700_792_949_714_9),
        (1.5, 0.966_105_146_475_310_8),
        (2.0, 0.995_322_265_018_952_7),
        (2.5, 0.999_593_047_982_555),
        (3.0, 0.999_977_909_503_001_4),
        (4.0, 0.999_999_984_582_742_1),
        (5.0, 0.999_999_999_998_462_6),
    ];

    #[test]
    fn erf_matches_reference_to_14_digits() {
        for &(x, want) in REFERENCE {
            let got = erf(x);
            assert!((got - want).abs() <= 1e-14, "erf({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn erf_is_odd() {
        for &(x, _) in REFERENCE {
            assert_eq!(erf(-x), -erf(x));
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for x in [-3.0, -1.0, 0.0, 0.5, 1.0, 2.0, 2.4, 2.6, 4.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-14, "x = {x}");
        }
    }

    #[test]
    fn erfc_keeps_relative_precision_in_the_tail() {
        // erfc(10) from mpmath.
        let want = 2.088_487_583_762_545e-45;
        let got = erfc(10.0);
        assert!(
            ((got - want) / want).abs() < 1e-12,
            "erfc(10) = {got:e}, want {want:e}"
        );
    }

    #[test]
    fn erf_saturates() {
        assert_eq!(erf(40.0), 1.0);
        assert_eq!(erf(-40.0), -1.0);
        assert!(erf(f64::NAN).is_nan());
    }

    #[test]
    fn erf_inv_round_trips() {
        for p in [-0.999, -0.9, -0.5, -0.1, 0.0, 1e-6, 0.3, 0.7, 0.95, 0.9999] {
            let x = erf_inv(p);
            assert!((erf(x) - p).abs() < 1e-13, "p = {p}, x = {x}");
        }
    }

    #[test]
    fn erf_inv_edges() {
        assert_eq!(erf_inv(1.0), f64::INFINITY);
        assert_eq!(erf_inv(-1.0), f64::NEG_INFINITY);
        assert!(erf_inv(1.5).is_nan());
        assert!(erf_inv(f64::NAN).is_nan());
        assert_eq!(erf_inv(0.0), 0.0);
    }

    #[test]
    fn erf_is_monotone_across_the_split() {
        let mut prev = erf(2.40);
        let mut x = 2.40;
        while x < 2.60 {
            x += 0.001;
            let v = erf(x);
            assert!(v >= prev, "non-monotone at {x}");
            prev = v;
        }
    }
}
