//! End-to-end tests of the `htd` binary: characterize → score → fuse →
//! report → diff, all through the real executable, plus the headline
//! guarantee — the report `htd score` writes from a stored golden
//! artifact is byte-identical to the in-memory experiment, at every
//! worker count.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use htd_core::channel::{Channel, ChannelSpec};
use htd_core::em_detect::TraceMetric;
use htd_core::fusion::{multi_channel_experiment_with, MultiChannelReport};
use htd_core::{CampaignPlan, Engine, Lab};
use htd_trojan::TrojanSpec;

fn htd(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_htd"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("spawn htd")
}

fn expect_success(out: &Output) -> String {
    assert!(
        out.status.success(),
        "htd failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("htd-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn pipeline_roundtrips_and_matches_the_in_memory_experiment() {
    let dir = workdir();

    // Characterize a small golden population.
    let out = htd(
        &dir,
        &[
            "characterize",
            "--out",
            "golden.htd",
            "--dies",
            "6",
            "--pairs",
            "2",
            "--reps",
            "2",
            "--seed",
            "42",
            "--channels",
            "em,delay",
            "--fits-dir",
            "fits",
        ],
    );
    let stdout = expect_success(&out);
    assert!(stdout.contains("characterized 6 golden dies"), "{stdout}");
    assert!(dir.join("fits/em.fit.htd").is_file());
    assert!(dir.join("fits/delay.fit.htd").is_file());

    // Score two suspects at one worker, then at four: identical artifacts.
    let score_args = |report: &str, workers: &str| {
        [
            "score",
            "--golden",
            "golden.htd",
            "--trojans",
            "ht2,ht-seq",
            "--report",
            report.to_string().leak(),
            "--csv",
            "report.csv",
            "--scores-dir",
            "scores",
            "--workers",
            workers.to_string().leak(),
        ]
    };
    let stdout = expect_success(&htd(&dir, &score_args("report1.htd", "1")));
    assert!(
        stdout.contains("HT 2") && stdout.contains("fused"),
        "{stdout}"
    );
    expect_success(&htd(&dir, &score_args("report4.htd", "4")));
    let report1 = std::fs::read_to_string(dir.join("report1.htd")).unwrap();
    let report4 = std::fs::read_to_string(dir.join("report4.htd")).unwrap();
    assert_eq!(report1, report4, "worker count changed the stored report");

    // The stored report equals the in-memory experiment, byte for byte.
    let lab = Lab::paper();
    let plan = CampaignPlan::with_random_pairs(6, 2, 2, [0x42; 16], [0x0f; 16], 42);
    let specs = [
        ChannelSpec::Em(TraceMetric::SumOfLocalMaxima),
        ChannelSpec::Delay,
    ];
    let channels: Vec<Box<dyn Channel>> = specs.iter().map(ChannelSpec::build).collect();
    let refs: Vec<&dyn Channel> = channels.iter().map(Box::as_ref).collect();
    let trojans = [TrojanSpec::ht2(), TrojanSpec::ht_seq()];
    let in_memory =
        multi_channel_experiment_with(&Engine::serial(), &lab, &plan, &trojans, &refs).unwrap();
    assert_eq!(report1, htd_store::to_text(&in_memory));

    // Fusing the stored per-channel scores reproduces the fused row.
    let stdout = expect_success(&htd(
        &dir,
        &[
            "fuse",
            "scores/ht-2.em.scores.htd",
            "scores/ht-2.delay.scores.htd",
        ],
    ));
    let fused_row = in_memory.rows[0].fused.as_ref().unwrap();
    assert!(stdout.contains("fused"), "{stdout}");
    assert!(stdout.contains(&format!("{:.3}", fused_row.mu)), "{stdout}");

    // Render the stored report as CSV and key=value.
    let stdout = expect_success(&htd(&dir, &["report", "report1.htd", "--csv"]));
    assert!(stdout.starts_with("HT,channel,"), "{stdout}");
    let stdout = expect_success(&htd(&dir, &["report", "report1.htd", "--kv"]));
    assert!(stdout.contains("row0.ht=HT 2"), "{stdout}");

    // diff: identical → 0, modified → 1, malformed → 2.
    let out = htd(&dir, &["diff", "report1.htd", "report4.htd"]);
    assert_eq!(out.status.code(), Some(0));
    let mut other: MultiChannelReport = htd_store::load(dir.join("report1.htd")).unwrap();
    other.rows[0].name = "HT 2 (tampered)".to_string();
    htd_store::save(dir.join("other.htd"), &other).unwrap();
    let out = htd(&dir, &["diff", "report1.htd", "other.htd"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("row name"),
        "diff output"
    );
    std::fs::write(dir.join("corrupt.htd"), &report1[..report1.len() / 2]).unwrap();
    let out = htd(&dir, &["diff", "report1.htd", "corrupt.htd"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("corrupt.htd"),
        "error must carry the path"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// A private workdir per test, so concurrent tests never race on
/// cleanup.
fn labdir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("htd-cli-test-{label}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures")
        .join(name)
}

#[test]
fn error_paths_locate_the_fault_and_never_exit_zero() {
    let dir = labdir("errors");

    // Missing file: exit 2, message carries the path.
    let out = htd(&dir, &["score", "--golden", "missing.htd"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stderr.contains("missing.htd"), "{stderr}");

    // Wrong kind: a campaign plan is not a report, and the message says
    // where (path:line) and why.
    let plan = CampaignPlan::with_random_pairs(4, 2, 2, [0x42; 16], [0x0f; 16], 7);
    htd_store::save(dir.join("plan.htd"), &plan).unwrap();
    let out = htd(&dir, &["report", "plan.htd"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stderr.contains("plan.htd:1:"), "{stderr}");
    assert!(stderr.contains("expected `report`"), "{stderr}");

    // Corrupt trailer: flip one checksum digit. Exit 2, message carries
    // the trailer's line number and names the checksum.
    let text = std::fs::read_to_string(dir.join("plan.htd")).unwrap();
    let mut corrupt = text.trim_end().to_string();
    let last = corrupt.pop().unwrap();
    corrupt.push(if last == '0' { '1' } else { '0' });
    corrupt.push('\n');
    let trailer_line = corrupt.lines().count();
    std::fs::write(dir.join("corrupt.htd"), &corrupt).unwrap();
    let out = htd(&dir, &["report", "corrupt.htd"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(
        stderr.contains(&format!("corrupt.htd:{trailer_line}:")),
        "{stderr}"
    );
    assert!(stderr.contains("checksum mismatch"), "{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fault_flags_retry_degrade_and_gate_on_drop_rate() {
    let dir = labdir("faults");
    expect_success(&htd(
        &dir,
        &[
            "characterize",
            "--out",
            "golden.htd",
            "--dies",
            "6",
            "--pairs",
            "2",
            "--reps",
            "2",
            "--seed",
            "42",
            "--channels",
            "em,delay",
        ],
    ));
    std::fs::copy(fixture("faultplan.htd"), dir.join("faultplan.htd")).unwrap();

    // Strict (no retries, no degradation): an injected fault is fatal.
    let out = htd(
        &dir,
        &[
            "score",
            "--golden",
            "golden.htd",
            "--trojans",
            "ht2",
            "--faults",
            "faultplan.htd",
        ],
    );
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("htd:"));

    // With retries and --allow-degraded the campaign completes, prints a
    // health section, and stores exactly the committed degraded report.
    let out = htd(
        &dir,
        &[
            "score",
            "--golden",
            "golden.htd",
            "--trojans",
            "ht2",
            "--faults",
            "faultplan.htd",
            "--max-retries",
            "2",
            "--allow-degraded",
            "--report",
            "degraded.htd",
        ],
    );
    let stdout = expect_success(&out);
    assert!(stdout.contains("channel health:"), "{stdout}");
    let stored = std::fs::read_to_string(dir.join("degraded.htd")).unwrap();
    let pinned = std::fs::read_to_string(fixture("degraded_report.htd")).unwrap();
    assert_eq!(stored, pinned, "CLI degraded report drifted from fixture");
    let out = htd(
        &dir,
        &[
            "diff",
            "degraded.htd",
            fixture("degraded_report.htd").to_str().unwrap(),
        ],
    );
    assert_eq!(out.status.code(), Some(0));

    // The drop-rate gate: with no retry budget some die stays dropped,
    // and a zero tolerance turns completion into exit 3.
    let out = htd(
        &dir,
        &[
            "score",
            "--golden",
            "golden.htd",
            "--trojans",
            "ht2",
            "--faults",
            "faultplan.htd",
            "--max-retries",
            "0",
            "--allow-degraded",
            "--max-drop-rate",
            "0",
        ],
    );
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--max-drop-rate"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_invocations_fail_with_usage_errors() {
    let dir = workdir();
    // Unknown command.
    let out = htd(&dir, &["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    // Missing required flag.
    let out = htd(&dir, &["characterize"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));
    // Unknown trojan name.
    let out = htd(
        &dir,
        &["score", "--golden", "missing.htd", "--trojans", "nope"],
    );
    assert_eq!(out.status.code(), Some(2));
    // Help succeeds.
    let out = htd(&dir, &["help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("characterize"));
}
