//! `htd` — the detection pipeline as a command line.
//!
//! The binary splits the paper's experiment at its natural seam:
//! `htd characterize` measures a golden population once and stores the
//! result as a checksummed artifact; `htd score` loads that artifact and
//! scores suspect designs against it — any number of times, in any
//! process, with bit-identical results. `htd fuse`, `htd report` and
//! `htd diff` operate purely on stored artifacts, no simulation at all.

use std::process::ExitCode;

use htd_core::channel::{Channel, ChannelSpec};
use htd_core::em_detect::TraceMetric;
use htd_core::fusion::{
    characterize_campaign_with, fuse_scored_channels, score_design_with, ChannelResult,
    MultiChannelReport, MultiChannelRow, ScoredChannel,
};
use htd_core::report::{multi_channel_table, pct, Table};
use htd_core::{CampaignPlan, Engine, Error, Lab};
use htd_stats::Gaussian;
use htd_store::{ChannelFit, GoldenArtifact};
use htd_trojan::TrojanSpec;

const USAGE: &str = "\
htd — hardware-trojan detection: characterize once, score many

USAGE:
  htd characterize --out FILE [--dies N] [--pairs N] [--reps N] [--seed N]
                   [--channels em,delay,power] [--metric solm|max|sum|l2]
                   [--pt HEX32] [--key HEX32] [--workers N] [--fits-dir DIR]
      Measure a golden population and store it as a golden artifact.

  htd score --golden FILE [--trojans ht1,ht2,...] [--report FILE]
            [--csv FILE] [--kv FILE] [--scores-dir DIR] [--workers N]
      Score suspect designs against a stored golden artifact.
      Trojans: ht1 ht2 ht3 ht-comb ht-seq stealth sweep (= ht1,ht2,ht3).

  htd fuse FILE FILE...
      Fuse two or more stored per-channel score artifacts (z-score sum).

  htd report FILE [--csv | --kv]
      Render a stored report (aligned table, CSV, or key=value lines).

  htd diff FILE FILE
      Compare two stored reports. Exit 0 when identical, 1 when they
      differ, 2 on error.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("htd: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let Some((cmd, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        return Ok(ExitCode::from(2));
    };
    match cmd.as_str() {
        "characterize" => characterize(rest),
        "score" => score(rest),
        "fuse" => fuse(rest),
        "report" => report(rest),
        "diff" => diff(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}` (see `htd help`)").into()),
    }
}

// ---------------------------------------------------------------------------
// Option parsing (hand-rolled: the container has no argument-parser crate).

struct Opts {
    positional: Vec<String>,
    values: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Opts {
    fn parse(args: &[String], valued: &[&str], boolean: &[&str]) -> Result<Opts, String> {
        let mut opts = Opts {
            positional: Vec::new(),
            values: Vec::new(),
            switches: Vec::new(),
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if boolean.contains(&name) {
                    opts.switches.push(name.to_string());
                } else if valued.contains(&name) {
                    let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                    opts.values.push((name.to_string(), value.clone()));
                } else {
                    return Err(format!("unknown flag --{name}"));
                }
            } else {
                opts.positional.push(arg.clone());
            }
        }
        Ok(opts)
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("--{name} is required"))
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|n| n == name)
    }
}

fn parse_num<T: std::str::FromStr>(name: &str, token: &str) -> Result<T, String> {
    token
        .parse()
        .map_err(|_| format!("--{name}: bad number `{token}`"))
}

fn parse_hex16(name: &str, token: &str) -> Result<[u8; 16], String> {
    let err = || format!("--{name}: `{token}` must be 32 hex digits");
    if token.len() != 32 || !token.is_ascii() {
        return Err(err());
    }
    let mut block = [0u8; 16];
    for (i, out) in block.iter_mut().enumerate() {
        *out = u8::from_str_radix(&token[2 * i..2 * i + 2], 16).map_err(|_| err())?;
    }
    Ok(block)
}

fn engine_for(opts: &Opts) -> Result<Engine, String> {
    match opts.get("workers") {
        None => Ok(Engine::auto()),
        Some(token) => {
            let n: usize = parse_num("workers", token)?;
            Ok(if n == 0 {
                Engine::auto()
            } else {
                Engine::with_workers(n)
            })
        }
    }
}

fn channel_specs(csv: &str, metric: TraceMetric) -> Result<Vec<ChannelSpec>, String> {
    let mut specs = Vec::new();
    for name in csv.split(',').filter(|s| !s.is_empty()) {
        specs.push(match name {
            "em" => ChannelSpec::Em(metric),
            "power" => ChannelSpec::Power(metric),
            "delay" => ChannelSpec::Delay,
            other => return Err(format!("unknown channel `{other}` (em, power, delay)")),
        });
    }
    if specs.is_empty() {
        return Err("--channels selected no channels".to_string());
    }
    Ok(specs)
}

fn trojan_specs(csv: &str) -> Result<Vec<TrojanSpec>, String> {
    let mut specs = Vec::new();
    for name in csv.split(',').filter(|s| !s.is_empty()) {
        match name.to_ascii_lowercase().as_str() {
            "ht1" | "ht-1" => specs.push(TrojanSpec::ht1()),
            "ht2" | "ht-2" => specs.push(TrojanSpec::ht2()),
            "ht3" | "ht-3" => specs.push(TrojanSpec::ht3()),
            "ht-comb" | "comb" => specs.push(TrojanSpec::ht_comb()),
            "ht-seq" | "seq" => specs.push(TrojanSpec::ht_seq()),
            "stealth" => specs.push(TrojanSpec::stealth()),
            "sweep" => specs.extend(TrojanSpec::size_sweep()),
            other => {
                return Err(format!(
                    "unknown trojan `{other}` (ht1, ht2, ht3, ht-comb, ht-seq, stealth, sweep)"
                ))
            }
        }
    }
    if specs.is_empty() {
        return Err("--trojans selected no trojans".to_string());
    }
    Ok(specs)
}

/// A filesystem-safe slug of a channel or trojan label.
fn slug(label: &str) -> String {
    let mut s: String = label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect();
    while s.contains("--") {
        s = s.replace("--", "-");
    }
    s.trim_matches('-').to_string()
}

// ---------------------------------------------------------------------------
// Subcommands.

fn characterize(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let opts = Opts::parse(
        args,
        &[
            "out", "dies", "pairs", "reps", "seed", "channels", "metric", "pt", "key", "workers",
            "fits-dir",
        ],
        &[],
    )?;
    let out = opts.require("out")?.to_string();
    let dies: usize = parse_num("dies", opts.get("dies").unwrap_or("8"))?;
    let pairs: usize = parse_num("pairs", opts.get("pairs").unwrap_or("10"))?;
    let reps: usize = parse_num("reps", opts.get("reps").unwrap_or("3"))?;
    let seed: u64 = parse_num("seed", opts.get("seed").unwrap_or("24301"))?;
    let metric = opts.get("metric").unwrap_or("solm");
    let metric = TraceMetric::from_token(metric)
        .ok_or_else(|| format!("--metric: unknown metric `{metric}` (solm, max, sum, l2)"))?;
    let specs = channel_specs(opts.get("channels").unwrap_or("em,delay"), metric)?;
    let pt = parse_hex16("pt", opts.get("pt").unwrap_or(&"42".repeat(16)))?;
    let key = parse_hex16("key", opts.get("key").unwrap_or(&"0f".repeat(16)))?;
    let engine = engine_for(&opts)?;

    let lab = Lab::paper();
    let plan = CampaignPlan::with_random_pairs(dies, pairs, reps, pt, key, seed);
    let channels: Vec<Box<dyn Channel>> = specs.iter().map(ChannelSpec::build).collect();
    let refs: Vec<&dyn Channel> = channels.iter().map(Box::as_ref).collect();
    let charac = characterize_campaign_with(&engine, &lab, &plan, &refs)?;
    let artifact = GoldenArtifact::new(specs, charac)?;

    if let Some(dir) = opts.get("fits-dir") {
        std::fs::create_dir_all(dir).map_err(|e| Error::io(dir, e))?;
        for state in &artifact.characterization().states {
            let fit =
                Gaussian::fit(&state.scores).map_err(|source| Error::DegeneratePopulation {
                    channel: state.channel.clone(),
                    samples: state.scores.len(),
                    source,
                })?;
            let path = std::path::Path::new(dir).join(format!("{}.fit.htd", slug(&state.channel)));
            htd_store::save(
                &path,
                &ChannelFit {
                    channel: state.channel.clone(),
                    fit,
                },
            )?;
            println!("wrote {}", path.display());
        }
    }

    htd_store::save(&out, &artifact)?;
    let names: Vec<&str> = artifact
        .characterization()
        .states
        .iter()
        .map(|s| s.channel.as_str())
        .collect();
    println!(
        "characterized {dies} golden dies over {} channel(s) [{}] → {out}",
        names.len(),
        names.join(", "),
    );
    Ok(ExitCode::SUCCESS)
}

fn score(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let opts = Opts::parse(
        args,
        &[
            "golden",
            "trojans",
            "report",
            "csv",
            "kv",
            "scores-dir",
            "workers",
        ],
        &[],
    )?;
    let golden_path = opts.require("golden")?;
    let specs = trojan_specs(opts.get("trojans").unwrap_or("ht1,ht2,ht3"))?;
    let engine = engine_for(&opts)?;

    let artifact: GoldenArtifact = htd_store::load(golden_path)?;
    let channels = artifact.build_channels();
    let refs: Vec<&dyn Channel> = channels.iter().map(Box::as_ref).collect();
    let charac = artifact.characterization();
    let lab = Lab::paper();

    if let Some(dir) = opts.get("scores-dir") {
        std::fs::create_dir_all(dir).map_err(|e| Error::io(dir, e))?;
    }

    let mut rows = Vec::with_capacity(specs.len());
    for (s, spec) in specs.iter().enumerate() {
        let (size_fraction, scored) = score_design_with(&engine, &lab, charac, s, spec, &refs)?;
        if let Some(dir) = opts.get("scores-dir") {
            for set in &scored {
                let path = std::path::Path::new(dir).join(format!(
                    "{}.{}.scores.htd",
                    slug(&spec.name),
                    slug(&set.channel)
                ));
                htd_store::save(&path, set)?;
                println!("wrote {}", path.display());
            }
        }
        let (channel_results, fused) = if scored.len() >= 2 {
            let (per_channel, fused) = fuse_scored_channels(&scored)?;
            (per_channel, Some(fused))
        } else {
            let per_channel = scored
                .iter()
                .map(|set| ChannelResult::fit(set.channel.clone(), &set.golden, &set.infected))
                .collect::<Result<Vec<_>, _>>()?;
            (per_channel, None)
        };
        rows.push(MultiChannelRow {
            name: spec.name.clone(),
            size_fraction,
            channels: channel_results,
            fused,
        });
    }
    let report = MultiChannelReport {
        rows,
        n_dies: charac.plan.n_dies,
        channel_names: charac.states.iter().map(|s| s.channel.clone()).collect(),
    };

    let table = multi_channel_table(&report);
    print!("{table}");
    if let Some(path) = opts.get("csv") {
        std::fs::write(path, table.to_csv()).map_err(|e| Error::io(path, e))?;
        println!("wrote {path}");
    }
    if let Some(path) = opts.get("kv") {
        std::fs::write(path, table.to_kv()).map_err(|e| Error::io(path, e))?;
        println!("wrote {path}");
    }
    if let Some(path) = opts.get("report") {
        htd_store::save(path, &report)?;
        println!("wrote {path}");
    }
    Ok(ExitCode::SUCCESS)
}

fn fuse(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let opts = Opts::parse(args, &[], &[])?;
    if opts.positional.len() < 2 {
        return Err("fuse needs at least two score artifacts".into());
    }
    let sets = opts
        .positional
        .iter()
        .map(htd_store::load::<ScoredChannel>)
        .collect::<Result<Vec<_>, _>>()?;
    let (per_channel, fused) = fuse_scored_channels(&sets)?;
    let mut table = Table::new(&["channel", "µ", "σ", "FN rate", "FN emp", "FP emp"]);
    for r in per_channel.iter().chain([&fused]) {
        table.push_row(&[
            r.channel.clone(),
            format!("{:.3}", r.mu),
            format!("{:.3}", r.sigma),
            pct(r.analytic_fn_rate),
            pct(r.empirical_fn_rate),
            pct(r.empirical_fp_rate),
        ]);
    }
    print!("{table}");
    Ok(ExitCode::SUCCESS)
}

fn report(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let opts = Opts::parse(args, &[], &["csv", "kv"])?;
    let [path] = opts.positional.as_slice() else {
        return Err("report needs exactly one report artifact".into());
    };
    let report: MultiChannelReport = htd_store::load(path)?;
    let table = multi_channel_table(&report);
    if opts.has("csv") {
        print!("{}", table.to_csv());
    } else if opts.has("kv") {
        print!("{}", table.to_kv());
    } else {
        print!("{table}");
    }
    Ok(ExitCode::SUCCESS)
}

fn diff(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let opts = Opts::parse(args, &[], &[])?;
    let [path_a, path_b] = opts.positional.as_slice() else {
        return Err("diff needs exactly two report artifacts".into());
    };
    let a: MultiChannelReport = htd_store::load(path_a)?;
    let b: MultiChannelReport = htd_store::load(path_b)?;
    let differences = report_differences(&a, &b);
    if differences.is_empty() {
        println!("reports match");
        return Ok(ExitCode::SUCCESS);
    }
    for d in &differences {
        println!("{d}");
    }
    Ok(ExitCode::from(1))
}

/// Human-readable differences between two reports; empty when identical.
fn report_differences(a: &MultiChannelReport, b: &MultiChannelReport) -> Vec<String> {
    let mut out = Vec::new();
    if a.n_dies != b.n_dies {
        out.push(format!("die count: {} vs {}", a.n_dies, b.n_dies));
    }
    if a.channel_names != b.channel_names {
        out.push(format!(
            "channels: [{}] vs [{}]",
            a.channel_names.join(", "),
            b.channel_names.join(", ")
        ));
    }
    if a.rows.len() != b.rows.len() {
        out.push(format!("row count: {} vs {}", a.rows.len(), b.rows.len()));
    }
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        if ra.name != rb.name {
            out.push(format!("row name: `{}` vs `{}`", ra.name, rb.name));
        } else if ra != rb {
            out.push(format!("row `{}` differs", ra.name));
        }
    }
    out
}
