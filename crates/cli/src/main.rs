//! `htd` — the detection pipeline as a command line.
//!
//! The binary splits the paper's experiment at its natural seam:
//! `htd characterize` measures a golden population once and stores the
//! result as a checksummed artifact; `htd score` loads that artifact and
//! scores suspect designs against it — any number of times, in any
//! process, with bit-identical results. `htd fuse`, `htd report` and
//! `htd diff` operate purely on stored artifacts, no simulation at all.
//! `htd serve` exposes the scoring half as a long-lived TCP service
//! (batched, cached, observable), and `htd bench --serve` load-tests it.

use std::process::ExitCode;

use htd_core::channel::{Channel, ChannelSpec};
use htd_core::em_detect::TraceMetric;
use htd_core::fusion::{
    characterize_campaign_faulted, fuse_scored_channels, masked_feature_rows,
    score_campaign_faulted, score_campaign_faulted_with_model, GoldenCharacterization,
    MultiChannelReport, ScoredCampaign, ScoredChannel,
};
use htd_core::reffree::{characterize_reffree_faulted, score_reffree_campaign};
use htd_core::report::{health_table, multi_channel_table, pct, Table};
use htd_core::resilience::{ChannelHealth, RetryPolicy};
use htd_core::{CampaignPlan, Engine, Error, Lab};
use htd_faults::FaultPlan;
use htd_obs::{HealthRecord, Json, Obs, RunManifest, ToolInfo};
use htd_serve::{ManifestConfig, ServeConfig};
use htd_stats::logistic::{train as train_logistic, TrainConfig};
use htd_stats::Gaussian;
use htd_store::{
    sniff_kind, Artifact as _, ChannelFit, ClassifierModel, GoldenArtifact, ReferenceFreeArtifact,
};
use htd_trojan::{Payload, PlacementStrategy, Trigger, TrojanSpec, ZooConfig, ZooTrigger};

const USAGE: &str = "\
htd — hardware-trojan detection: characterize once, score many

USAGE:
  htd characterize --out FILE [--mode golden|reference-free|learned]
                   [--dies N] [--pairs N] [--reps N] [--seed N]
                   [--channels em,delay,power] [--metric solm|max|sum|l2]
                   [--pt HEX32] [--key HEX32] [--workers N] [--fits-dir DIR]
                   [--faults FILE] [--max-retries N] [--allow-degraded]
                   [--model FILE] [--metrics FILE] [--trace FILE]
      Measure a golden population and store it as a golden artifact.
      --mode reference-free needs no golden netlist trust anchor: every
      die is scored against its own symmetric path pairs and its
      neighbouring dies (leave-one-out), and the artifact stores the
      self-score baseline instead of a golden reference (kind `reffree`,
      at least 3 dies). --mode learned writes the usual golden artifact
      but checks an optional --model classifier against the channel set,
      for pipelines that score with `htd score --model`.

  htd score --golden FILE [--trojans ht1,ht2,...] [--report FILE]
            [--model FILE] [--csv FILE] [--kv FILE] [--scores-dir DIR]
            [--workers N] [--faults FILE] [--max-retries N]
            [--allow-degraded] [--max-drop-rate F] [--metrics FILE]
            [--trace FILE]
      Score suspect designs against a stored golden artifact. The
      artifact's kind picks the mode: a `golden` artifact scores against
      the stored reference, a `reffree` artifact scores each suspect die
      against its neighbours and compares with the stored self-score
      baseline. --model FILE replaces the analytic fused column with a
      trained logistic classifier (see `htd train`).
      Trojans: ht1 ht2 ht3 ht-comb ht-seq stealth sweep (= ht1,ht2,ht3).
      --faults replays a stored fault plan; failed acquisitions retry up
      to --max-retries times with fresh derived seeds. With
      --allow-degraded, dies that stay faulted are dropped (and a
      damaged golden artifact is salvaged instead of rejected); the
      report then carries a per-channel health section. Exit 3 when any
      channel's drop rate exceeds --max-drop-rate.
      --metrics FILE writes a machine-readable run manifest (JSON):
      per-stage timings, event counters, pool occupancy and health.
      Counters are bit-identical at any --workers value; timings are
      observational and never enter checksummed artifacts.
      --trace FILE additionally exports the run's span tree as Chrome
      trace-event JSON (open in chrome://tracing or Perfetto). Tracing
      never changes counters or stored artifacts.

  htd zoo [--golden FILE] [--sizes 8,16,32] [--kinds comb,ctr,fsm]
          [--placement near-taps|corner|spread] [--dies N] [--pairs N]
          [--reps N] [--seed N] [--channels em,delay,power]
          [--metric solm|max|sum|l2] [--workers N] [--csv FILE]
          [--metrics FILE]
      Sweep a parametric trojan zoo (trigger kind × trigger size) against
      a golden population and print a detection-rate heat map (per
      channel, plus the fused column when several channels ran). Sizes
      are tap counts for comb/fsm triggers and counter widths for ctr.
      Reuses a stored golden artifact with --golden, otherwise
      characterizes in-process with the given campaign parameters. The
      heat map and CSV are bit-identical at any --workers value.

  htd train --out FILE [--golden FILE] [--sizes 8,16,32]
            [--kinds comb,ctr,fsm] [--holdout comb|ctr|fsm]
            [--placement near-taps|corner|spread] [--dies N] [--pairs N]
            [--reps N] [--seed N] [--channels em,delay,power]
            [--metric solm|max|sum|l2] [--iterations N] [--rate F]
            [--train-seed N] [--workers N] [--metrics FILE]
      Train a logistic classifier over per-channel detection scores and
      store it as a `classifier` artifact for `htd score --model`. The
      labelled set is built in-process: golden dies (label 0) plus every
      die of a zoo-generated trojan grid (label 1). --holdout keeps one
      trigger family out of training so the classifier is evaluated on
      trojans it never saw. Training is deterministic: fixed-iteration
      gradient descent seeded by --train-seed, invariant to sample
      order and --workers.

  htd fuse FILE FILE...
      Fuse two or more stored per-channel score artifacts (z-score sum).

  htd report FILE [--csv | --kv]
  htd report --metrics FILE [--counters]
      Render a stored report (aligned table, CSV, or key=value lines),
      or a run manifest written by --metrics (--counters prints only the
      deterministic counter section, one `name value` per line).

  htd serve [--addr HOST:PORT] [--queue-depth N] [--cache-bytes N]
            [--result-cache N] [--workers N] [--faults FILE]
            [--max-retries N] [--allow-degraded] [--metrics FILE]
            [--metrics-every N] [--trace FILE]
      Serve scoring over TCP (see DESIGN.md §serve for the protocol).
      Clients name a stored golden artifact by server-side path and a
      suspect token; responses embed the byte-identical report `htd
      score` writes offline, at any --workers value. Requests batch by
      golden content digest; parsed goldens stay hot in an LRU bounded by
      --cache-bytes, finished reports memoize in a --result-cache entry
      LRU (0 disables). Past --queue-depth waiting requests, new ones
      are shed with an explicit `busy` response. Prints `serving on
      HOST:PORT` once bound (port 0 picks a free port) and runs until a
      client sends `shutdown`. --metrics rewrites a run manifest every
      --metrics-every scored requests (and once at shutdown). --trace
      exports the span tree of the whole serve run as Chrome trace-event
      JSON at shutdown; every request's spans (accept → queue → batch →
      score → respond) are tagged with its request id — the one the
      client sent on the wire, or a server-assigned `srv-N`.

  htd top --addr HOST:PORT [--interval-ms N] [--iterations K] [--plain]
      Poll a running serve instance's `stats` verb into a refreshing
      live table: uptime, queue depth, workers, request/batch counters
      and cache hit rates. --iterations K stops after K polls (0 = until
      the server goes away); --plain prints one `name value` block per
      poll with no screen control, for scripts and tests.

  htd bench --serve --golden FILE[,FILE...] [--addr A[,A...]]
            [--suspects ht1,ht2,...] [--requests N] [--clients N]
            [--json FILE] [--dump FILE] [--shutdown]
      Drive one or more serve instances and report throughput plus
      latency percentiles. With several --addr instances, requests
      shard by plan-digest modulus. --dump saves the first response's
      embedded report (for fixture diffing), --json writes the
      measurements, --shutdown stops every instance afterwards.
      Latency percentiles come from the shared log2 histogram
      (bucket-granular upper bounds, the same derivation --metrics
      manifests use).

  htd bench diff OLD NEW [--gate PCT]
      Structurally compare two run manifests (--metrics output) or two
      bench measurement files (bench --json output). Deterministic
      fields — counters, plan digest, command, request mix — must be
      identical; observational timings are ignored unless --gate PCT
      sets a noise band (new may exceed old by at most PCT percent).
      Exit 4 on any regression, 0 when within tolerance. CI diffs the
      committed baselines under tests/fixtures/ this way.

  htd diff FILE FILE
      Compare two stored artifacts of the same kind. Golden artifacts
      diff by campaign plan digest (printed for both sides — the serve
      wire/shard key); reports print content digests and then diff
      row by row.

  htd version [--json]
      Print binary version, store format version and enabled features.

EXIT CODES:
  0  success (for diff: the reports match)
  1  diff: the reports differ
  2  error (bad usage, malformed artifact, I/O or campaign failure)
  3  score: a channel's drop rate exceeded --max-drop-rate
  4  bench diff: a counter or gated timing regressed
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("htd: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let Some((cmd, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        return Ok(ExitCode::from(2));
    };
    match cmd.as_str() {
        "characterize" => characterize(rest),
        "score" => score(rest),
        "train" => train(rest),
        "zoo" => zoo(rest),
        "serve" => serve(rest),
        "bench" => bench(rest),
        "top" => top(rest),
        "fuse" => fuse(rest),
        "report" => report(rest),
        "diff" => diff(rest),
        "version" | "--version" | "-V" => version(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}` (see `htd help`)").into()),
    }
}

// ---------------------------------------------------------------------------
// Option parsing (hand-rolled: the container has no argument-parser crate).

struct Opts {
    positional: Vec<String>,
    values: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Opts {
    fn parse(args: &[String], valued: &[&str], boolean: &[&str]) -> Result<Opts, String> {
        let mut opts = Opts {
            positional: Vec::new(),
            values: Vec::new(),
            switches: Vec::new(),
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if boolean.contains(&name) {
                    opts.switches.push(name.to_string());
                } else if valued.contains(&name) {
                    let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                    opts.values.push((name.to_string(), value.clone()));
                } else {
                    return Err(format!("unknown flag --{name}"));
                }
            } else {
                opts.positional.push(arg.clone());
            }
        }
        Ok(opts)
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("--{name} is required"))
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|n| n == name)
    }
}

fn parse_num<T: std::str::FromStr>(name: &str, token: &str) -> Result<T, String> {
    token
        .parse()
        .map_err(|_| format!("--{name}: bad number `{token}`"))
}

fn parse_hex16(name: &str, token: &str) -> Result<[u8; 16], String> {
    let err = || format!("--{name}: `{token}` must be 32 hex digits");
    if token.len() != 32 || !token.is_ascii() {
        return Err(err());
    }
    let mut block = [0u8; 16];
    for (i, out) in block.iter_mut().enumerate() {
        *out = u8::from_str_radix(&token[2 * i..2 * i + 2], 16).map_err(|_| err())?;
    }
    Ok(block)
}

fn engine_for(opts: &Opts) -> Result<Engine, String> {
    match opts.get("workers") {
        None => Ok(Engine::auto()),
        Some(token) => {
            let n: usize = parse_num("workers", token)?;
            Ok(if n == 0 {
                Engine::auto()
            } else {
                Engine::with_workers(n)
            })
        }
    }
}

fn channel_specs(csv: &str, metric: TraceMetric) -> Result<Vec<ChannelSpec>, String> {
    let mut specs = Vec::new();
    for name in csv.split(',').filter(|s| !s.is_empty()) {
        specs.push(match name {
            "em" => ChannelSpec::Em(metric),
            "power" => ChannelSpec::Power(metric),
            "delay" => ChannelSpec::Delay,
            other => return Err(format!("unknown channel `{other}` (em, power, delay)")),
        });
    }
    if specs.is_empty() {
        return Err("--channels selected no channels".to_string());
    }
    Ok(specs)
}

fn trojan_specs(csv: &str) -> Result<Vec<TrojanSpec>, String> {
    let mut specs = Vec::new();
    for name in csv.split(',').filter(|s| !s.is_empty()) {
        if name.eq_ignore_ascii_case("sweep") {
            specs.extend(TrojanSpec::size_sweep());
        } else if let Some(spec) = TrojanSpec::from_token(name) {
            specs.push(spec);
        } else {
            return Err(format!(
                "unknown trojan `{name}` (ht1, ht2, ht3, ht-comb, ht-seq, stealth, sweep)"
            ));
        }
    }
    if specs.is_empty() {
        return Err("--trojans selected no trojans".to_string());
    }
    Ok(specs)
}

/// The fault plan and retry policy shared by `characterize` and `score`:
/// `--faults FILE` replays a stored plan (default: no faults),
/// `--max-retries N` bounds per-die retries, `--allow-degraded` lets the
/// campaign drop what stays faulted instead of erroring out.
fn fault_opts(
    opts: &Opts,
    obs: &Obs,
) -> Result<(FaultPlan, RetryPolicy), Box<dyn std::error::Error>> {
    let faults = match opts.get("faults") {
        None => FaultPlan::none(),
        Some(path) => htd_store::load_with(path, obs)?,
    };
    let policy = RetryPolicy {
        max_retries: parse_num("max-retries", opts.get("max-retries").unwrap_or("0"))?,
        allow_degraded: opts.has("allow-degraded"),
    };
    Ok((faults, policy))
}

/// A filesystem-safe slug of a channel or trojan label.
fn slug(label: &str) -> String {
    let mut s: String = label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect();
    while s.contains("--") {
        s = s.replace("--", "-");
    }
    s.trim_matches('-').to_string()
}

// ---------------------------------------------------------------------------
// Run manifests (--metrics).

/// Provenance stamped into manifests and `htd version`.
fn tool_info() -> ToolInfo {
    ToolInfo {
        name: "htd".to_string(),
        version: env!("CARGO_PKG_VERSION").to_string(),
        format_version: u64::from(htd_store::FORMAT_VERSION),
        features: [
            "delay", "em", "power", "faults", "metrics", "reffree", "salvage", "serve", "top",
            "trace", "train", "zoo",
        ]
        .iter()
        .map(|f| f.to_string())
        .collect(),
    }
}

/// The tool section as standalone JSON (`htd version --json`).
fn tool_info_json(info: &ToolInfo) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::Str(info.name.clone())),
        ("version".to_string(), Json::Str(info.version.clone())),
        (
            "format_version".to_string(),
            Json::UInt(info.format_version),
        ),
        (
            "features".to_string(),
            Json::Arr(info.features.iter().map(|f| Json::Str(f.clone())).collect()),
        ),
    ])
}

/// The observability handle for a run plus the output paths it feeds:
/// tracing when `--trace` was given (a tracing recorder also serves
/// `--metrics`), recording when only `--metrics` was, disabled
/// otherwise. Returns `(obs, metrics_path, trace_path)`.
fn metrics_obs(opts: &Opts) -> (Obs, Option<String>, Option<String>) {
    let metrics = opts.get("metrics").map(str::to_string);
    let trace = opts.get("trace").map(str::to_string);
    let obs = if trace.is_some() {
        Obs::recording_traced()
    } else if metrics.is_some() {
        Obs::recording()
    } else {
        Obs::noop()
    };
    (obs, metrics, trace)
}

/// Writes the Chrome trace-event export of a completed run (`--trace`).
fn write_trace(path: &str, obs: &Obs) -> Result<(), Box<dyn std::error::Error>> {
    let json = obs
        .trace_json()
        .ok_or("--trace: the run's recorder was not tracing")?;
    std::fs::write(path, json).map_err(|e| Error::io(path, e))?;
    println!("wrote {path}");
    Ok(())
}

/// Mirrors the pipeline's health ledger into the manifest's (core-free)
/// record type.
fn health_records(health: &[ChannelHealth]) -> Vec<HealthRecord> {
    health
        .iter()
        .map(|h| HealthRecord {
            channel: h.channel.clone(),
            attempted: h.attempted as u64,
            retried: h.retried as u64,
            dropped: h.dropped as u64,
            reps_attempted: h.reps_attempted as u64,
            reps_dropped: h.reps_dropped as u64,
            lost: h.lost,
        })
        .collect()
}

/// The inverse of [`health_records`], for rendering a manifest's health
/// section through the existing [`health_table`].
fn health_from_records(records: &[HealthRecord]) -> Vec<ChannelHealth> {
    records
        .iter()
        .map(|r| ChannelHealth {
            channel: r.channel.clone(),
            attempted: r.attempted as usize,
            retried: r.retried as usize,
            dropped: r.dropped as usize,
            reps_attempted: r.reps_attempted as usize,
            reps_dropped: r.reps_dropped as usize,
            lost: r.lost,
        })
        .collect()
}

/// Writes the run manifest for a completed `characterize`/`score` run.
fn write_manifest(
    path: &str,
    command: &str,
    engine: &Engine,
    plan: &CampaignPlan,
    obs: &Obs,
    health: &[ChannelHealth],
) -> Result<(), Box<dyn std::error::Error>> {
    let snapshot = obs.snapshot().unwrap_or_default();
    let manifest = RunManifest::new(
        tool_info(),
        command,
        engine.workers(),
        &htd_store::plan_digest_hex(plan),
        &snapshot,
        health_records(health),
    );
    std::fs::write(path, manifest.to_pretty()).map_err(|e| Error::io(path, e))?;
    println!("wrote {path}");
    Ok(())
}

// ---------------------------------------------------------------------------
// Subcommands.

fn characterize(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let opts = Opts::parse(
        args,
        &[
            "out",
            "mode",
            "model",
            "dies",
            "pairs",
            "reps",
            "seed",
            "channels",
            "metric",
            "pt",
            "key",
            "workers",
            "fits-dir",
            "faults",
            "max-retries",
            "metrics",
            "trace",
        ],
        &["allow-degraded"],
    )?;
    let out = opts.require("out")?.to_string();
    let mode = opts.get("mode").unwrap_or("golden");
    if !matches!(mode, "golden" | "learned" | "reference-free" | "reffree") {
        return Err(
            format!("--mode: unknown mode `{mode}` (golden, reference-free, learned)").into(),
        );
    }
    let dies: usize = parse_num("dies", opts.get("dies").unwrap_or("8"))?;
    let pairs: usize = parse_num("pairs", opts.get("pairs").unwrap_or("10"))?;
    let reps: usize = parse_num("reps", opts.get("reps").unwrap_or("3"))?;
    let seed: u64 = parse_num("seed", opts.get("seed").unwrap_or("24301"))?;
    let metric = opts.get("metric").unwrap_or("solm");
    let metric = TraceMetric::from_token(metric)
        .ok_or_else(|| format!("--metric: unknown metric `{metric}` (solm, max, sum, l2)"))?;
    let specs = channel_specs(opts.get("channels").unwrap_or("em,delay"), metric)?;
    let pt = parse_hex16("pt", opts.get("pt").unwrap_or(&"42".repeat(16)))?;
    let key = parse_hex16("key", opts.get("key").unwrap_or(&"0f".repeat(16)))?;
    let (obs, metrics_path, trace_path) = metrics_obs(&opts);
    let engine = engine_for(&opts)?.with_obs(obs.clone());
    let (faults, policy) = fault_opts(&opts, &obs)?;

    let lab = Lab::paper();
    let plan = CampaignPlan::with_random_pairs(dies, pairs, reps, pt, key, seed);
    let channels: Vec<Box<dyn Channel>> = specs.iter().map(ChannelSpec::build).collect();
    let refs: Vec<&dyn Channel> = channels.iter().map(Box::as_ref).collect();

    if matches!(mode, "reference-free" | "reffree") {
        let charac = characterize_reffree_faulted(&engine, &lab, &plan, &refs, &faults, &policy)?;
        for lost in &charac.lost {
            eprintln!(
                "htd: channel {} lost during characterization ({} calibration attempt(s))",
                lost.channel, lost.attempted
            );
        }
        let mut next_state = 0;
        let surviving: Vec<ChannelSpec> = specs
            .into_iter()
            .filter(|spec| {
                let keep = charac
                    .states
                    .get(next_state)
                    .is_some_and(|s| s.channel == spec.name());
                if keep {
                    next_state += 1;
                }
                keep
            })
            .collect();
        let artifact = ReferenceFreeArtifact::new(surviving, charac)?;
        if let Some(dir) = opts.get("fits-dir") {
            std::fs::create_dir_all(dir).map_err(|e| Error::io(dir, e))?;
            for state in &artifact.characterization().states {
                let path =
                    std::path::Path::new(dir).join(format!("{}.fit.htd", slug(&state.channel)));
                htd_store::save_with(
                    &path,
                    &ChannelFit {
                        channel: state.channel.clone(),
                        fit: Gaussian::new(state.fit.mean, state.fit.std)?,
                    },
                    &obs,
                )?;
                println!("wrote {}", path.display());
            }
        }
        htd_store::save_with(&out, &artifact, &obs)?;
        let names: Vec<&str> = artifact
            .characterization()
            .states
            .iter()
            .map(|s| s.channel.as_str())
            .collect();
        println!(
            "characterized {dies} dies reference-free over {} channel(s) [{}] → {out}",
            names.len(),
            names.join(", "),
        );
        if let Some(path) = metrics_path {
            let charac = artifact.characterization();
            let health: Vec<ChannelHealth> = charac
                .states
                .iter()
                .map(|s| s.health.clone())
                .chain(charac.lost.iter().cloned())
                .collect();
            write_manifest(&path, "characterize", &engine, &charac.plan, &obs, &health)?;
        }
        if let Some(path) = &trace_path {
            write_trace(path, &obs)?;
        }
        return Ok(ExitCode::SUCCESS);
    }

    let charac = characterize_campaign_faulted(&engine, &lab, &plan, &refs, &faults, &policy)?;
    for lost in &charac.lost {
        eprintln!(
            "htd: channel {} lost during characterization ({} calibration attempt(s))",
            lost.channel, lost.attempted
        );
    }
    // Lost channels drop out of `states` but keep their spot in `lost`;
    // keep the spec list in lockstep with the surviving states.
    let mut next_state = 0;
    let surviving: Vec<ChannelSpec> = specs
        .into_iter()
        .filter(|spec| {
            let keep = charac
                .states
                .get(next_state)
                .is_some_and(|s| s.channel == spec.name());
            if keep {
                next_state += 1;
            }
            keep
        })
        .collect();
    let artifact = GoldenArtifact::new(surviving, charac)?;

    // `--mode learned` ships the same golden artifact; the classifier is
    // applied at scoring time, so all there is to pin down here is that
    // a named model actually matches this campaign's channel set.
    if let Some(path) = opts.get("model") {
        let model: ClassifierModel = htd_store::load_with(path, &obs)?;
        let names: Vec<&str> = artifact
            .characterization()
            .states
            .iter()
            .map(|s| s.channel.as_str())
            .collect();
        if model
            .features
            .iter()
            .map(String::as_str)
            .ne(names.iter().copied())
        {
            return Err(format!(
                "--model {path}: classifier features [{}] do not match the channel set [{}]",
                model.features.join(", "),
                names.join(", ")
            )
            .into());
        }
        println!("model {path} matches channel set [{}]", names.join(", "));
    }

    if let Some(dir) = opts.get("fits-dir") {
        std::fs::create_dir_all(dir).map_err(|e| Error::io(dir, e))?;
        for state in &artifact.characterization().states {
            let fit =
                Gaussian::fit(&state.scores).map_err(|source| Error::DegeneratePopulation {
                    channel: state.channel.clone(),
                    samples: state.scores.len(),
                    source,
                })?;
            let path = std::path::Path::new(dir).join(format!("{}.fit.htd", slug(&state.channel)));
            htd_store::save_with(
                &path,
                &ChannelFit {
                    channel: state.channel.clone(),
                    fit,
                },
                &obs,
            )?;
            println!("wrote {}", path.display());
        }
    }

    htd_store::save_with(&out, &artifact, &obs)?;
    let names: Vec<&str> = artifact
        .characterization()
        .states
        .iter()
        .map(|s| s.channel.as_str())
        .collect();
    println!(
        "characterized {dies} golden dies over {} channel(s) [{}] → {out}",
        names.len(),
        names.join(", "),
    );
    if let Some(path) = metrics_path {
        let charac = artifact.characterization();
        let health: Vec<ChannelHealth> = charac
            .states
            .iter()
            .map(|s| s.health.clone())
            .chain(charac.lost.iter().cloned())
            .collect();
        write_manifest(&path, "characterize", &engine, &charac.plan, &obs, &health)?;
    }
    if let Some(path) = &trace_path {
        write_trace(path, &obs)?;
    }
    Ok(ExitCode::SUCCESS)
}

fn score(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let opts = Opts::parse(
        args,
        &[
            "golden",
            "model",
            "trojans",
            "report",
            "csv",
            "kv",
            "scores-dir",
            "workers",
            "faults",
            "max-retries",
            "max-drop-rate",
            "metrics",
            "trace",
        ],
        &["allow-degraded"],
    )?;
    let golden_path = opts.require("golden")?;
    let specs = trojan_specs(opts.get("trojans").unwrap_or("ht1,ht2,ht3"))?;
    let (obs, metrics_path, trace_path) = metrics_obs(&opts);
    let engine = engine_for(&opts)?.with_obs(obs.clone());
    let (faults, policy) = fault_opts(&opts, &obs)?;
    let max_drop_rate: f64 = parse_num("max-drop-rate", opts.get("max-drop-rate").unwrap_or("1"))?;

    let model: Option<ClassifierModel> = match opts.get("model") {
        None => None,
        Some(path) => Some(htd_store::load_with(path, &obs)?),
    };
    let lab = Lab::paper();

    // The artifact's kind picks the scoring mode. The sniff uses a plain
    // (uncounted) read so the golden-path store.read counters stay
    // byte-identical with earlier releases; the counted load below is
    // the authoritative parse.
    let sniffed = std::fs::read_to_string(golden_path).map_err(|e| Error::io(golden_path, e))?;
    let (campaign, plan): (ScoredCampaign, CampaignPlan) =
        if sniff_kind(&sniffed) == Some(ReferenceFreeArtifact::KIND) {
            let artifact: ReferenceFreeArtifact = if policy.allow_degraded {
                let salvaged =
                    htd_store::load_salvage_with::<ReferenceFreeArtifact>(golden_path, &obs)?;
                if salvaged.recovered {
                    eprintln!(
                        "htd: salvaged {golden_path} ({} damaged line(s) dropped)",
                        salvaged.dropped_lines
                    );
                }
                salvaged.artifact
            } else {
                htd_store::load_with(golden_path, &obs)?
            };
            let channels = artifact.build_channels();
            let refs: Vec<&dyn Channel> = channels.iter().map(Box::as_ref).collect();
            let charac = artifact.characterization();
            let plan = charac.plan.clone();
            let campaign = score_reffree_campaign(
                &engine,
                &lab,
                charac,
                &specs,
                &refs,
                &faults,
                &policy,
                model.as_ref(),
            )?;
            (campaign, plan)
        } else {
            // Under --allow-degraded a damaged golden artifact is
            // salvaged: the surviving channel blocks are kept and the
            // read is flagged, instead of the whole file being rejected
            // for one bad line.
            let artifact: GoldenArtifact = if policy.allow_degraded {
                let salvaged = htd_store::load_salvage_with::<GoldenArtifact>(golden_path, &obs)?;
                if salvaged.recovered {
                    eprintln!(
                        "htd: salvaged {golden_path} ({} damaged line(s) dropped)",
                        salvaged.dropped_lines
                    );
                }
                salvaged.artifact
            } else {
                htd_store::load_with(golden_path, &obs)?
            };
            let channels = artifact.build_channels();
            let refs: Vec<&dyn Channel> = channels.iter().map(Box::as_ref).collect();
            let charac = artifact.characterization();
            let plan = charac.plan.clone();
            let campaign = score_campaign_faulted_with_model(
                &engine,
                &lab,
                charac,
                &specs,
                &refs,
                &faults,
                &policy,
                model.as_ref(),
            )?;
            (campaign, plan)
        };
    let report = &campaign.report;

    if let Some(dir) = opts.get("scores-dir") {
        std::fs::create_dir_all(dir).map_err(|e| Error::io(dir, e))?;
        for design in &campaign.designs {
            for set in &design.scored {
                let path = std::path::Path::new(dir).join(format!(
                    "{}.{}.scores.htd",
                    slug(&design.name),
                    slug(&set.channel)
                ));
                htd_store::save_with(&path, set, &obs)?;
                println!("wrote {}", path.display());
            }
        }
    }

    let table = multi_channel_table(report);
    print!("{table}");
    if !report.health.is_empty() {
        println!("channel health:");
        print!("{}", health_table(&report.health));
    }
    if let Some(path) = opts.get("csv") {
        std::fs::write(path, table.to_csv()).map_err(|e| Error::io(path, e))?;
        println!("wrote {path}");
    }
    if let Some(path) = opts.get("kv") {
        std::fs::write(path, table.to_kv()).map_err(|e| Error::io(path, e))?;
        println!("wrote {path}");
    }
    if let Some(path) = opts.get("report") {
        htd_store::save_with(path, report, &obs)?;
        println!("wrote {path}");
    }
    if let Some(path) = &metrics_path {
        write_manifest(path, "score", &engine, &plan, &obs, &report.health)?;
    }
    if let Some(path) = &trace_path {
        write_trace(path, &obs)?;
    }
    let worst = report
        .health
        .iter()
        .map(htd_core::resilience::ChannelHealth::drop_rate)
        .fold(0.0, f64::max);
    if worst > max_drop_rate {
        eprintln!(
            "htd: worst channel drop rate {worst:.3} exceeds --max-drop-rate {max_drop_rate}"
        );
        return Ok(ExitCode::from(3));
    }
    Ok(ExitCode::SUCCESS)
}

fn train(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let opts = Opts::parse(
        args,
        &[
            "out",
            "golden",
            "sizes",
            "kinds",
            "holdout",
            "placement",
            "dies",
            "pairs",
            "reps",
            "seed",
            "channels",
            "metric",
            "iterations",
            "rate",
            "train-seed",
            "workers",
            "metrics",
        ],
        &[],
    )?;
    let out = opts.require("out")?.to_string();
    let cfg = zoo_config(&opts)?;
    let (train_specs, held_out) = match opts.get("holdout") {
        None => (cfg.generate()?, Vec::new()),
        Some(tag) => {
            let kind = ZooTrigger::from_tag(tag).ok_or_else(|| {
                format!("--holdout: unknown trigger kind `{tag}` (comb, ctr, fsm)")
            })?;
            cfg.split_holdout(kind)?
        }
    };
    if train_specs.is_empty() {
        return Err("--holdout left no training trojans".into());
    }

    let (obs, metrics_path, _) = metrics_obs(&opts);
    let engine = engine_for(&opts)?.with_obs(obs.clone());
    let lab = Lab::paper();
    // Training campaigns run fault-free and strict: every die survives,
    // so golden and infected feature rows line up one-to-one with dies.
    let faults = FaultPlan::none();
    let policy = RetryPolicy {
        max_retries: 0,
        allow_degraded: false,
    };

    // Golden side: a stored artifact, or a fresh in-process campaign
    // (same defaults as `htd zoo`).
    let stored: Option<GoldenArtifact> = match opts.get("golden") {
        Some(path) => Some(htd_store::load_with(path, &obs)?),
        None => None,
    };
    let (channels, fresh): (Vec<Box<dyn Channel>>, Option<GoldenCharacterization>) = match &stored {
        Some(artifact) => (artifact.build_channels(), None),
        None => {
            let dies: usize = parse_num("dies", opts.get("dies").unwrap_or("6"))?;
            let pairs: usize = parse_num("pairs", opts.get("pairs").unwrap_or("2"))?;
            let reps: usize = parse_num("reps", opts.get("reps").unwrap_or("2"))?;
            let seed: u64 = parse_num("seed", opts.get("seed").unwrap_or("24301"))?;
            let metric = opts.get("metric").unwrap_or("solm");
            let metric = TraceMetric::from_token(metric).ok_or_else(|| {
                format!("--metric: unknown metric `{metric}` (solm, max, sum, l2)")
            })?;
            let specs_ch = channel_specs(opts.get("channels").unwrap_or("em,delay"), metric)?;
            let channels: Vec<Box<dyn Channel>> = specs_ch.iter().map(ChannelSpec::build).collect();
            let pt = parse_hex16("pt", &"42".repeat(16))?;
            let key = parse_hex16("key", &"0f".repeat(16))?;
            let plan = CampaignPlan::with_random_pairs(dies, pairs, reps, pt, key, seed);
            let refs: Vec<&dyn Channel> = channels.iter().map(Box::as_ref).collect();
            let charac =
                characterize_campaign_faulted(&engine, &lab, &plan, &refs, &faults, &policy)?;
            (channels, Some(charac))
        }
    };
    let charac: &GoldenCharacterization = stored
        .as_ref()
        .map(GoldenArtifact::characterization)
        .or(fresh.as_ref())
        .expect("either a stored or a fresh characterization exists");

    let refs: Vec<&dyn Channel> = channels.iter().map(Box::as_ref).collect();
    let campaign =
        score_campaign_faulted(&engine, &lab, charac, &train_specs, &refs, &faults, &policy)?;

    // Labelled samples: one feature row per die — golden dies label 0,
    // every die of every training trojan label 1. The trainer itself
    // canonicalises sample order, so assembly order is free.
    let n_dies = charac.plan.n_dies;
    let features: Vec<String> = charac.states.iter().map(|s| s.channel.clone()).collect();
    let mut samples: Vec<(Vec<f64>, bool)> = Vec::new();
    let golden_masked: Vec<(&[usize], &[f64])> = charac
        .states
        .iter()
        .map(|s| (s.kept.as_slice(), s.scores.as_slice()))
        .collect();
    for row in masked_feature_rows(&golden_masked, n_dies) {
        samples.push((row, false));
    }
    for design in &campaign.designs {
        let kept: Vec<Vec<usize>> = design
            .scored
            .iter()
            .map(|set| (0..set.infected.len()).collect())
            .collect();
        let masked: Vec<(&[usize], &[f64])> = design
            .scored
            .iter()
            .zip(&kept)
            .map(|(set, k)| (k.as_slice(), set.infected.as_slice()))
            .collect();
        for row in masked_feature_rows(&masked, n_dies) {
            samples.push((row, true));
        }
    }

    let defaults = TrainConfig::default();
    let config = TrainConfig {
        seed: parse_num("train-seed", opts.get("train-seed").unwrap_or("2015"))?,
        iterations: parse_num(
            "iterations",
            opts.get("iterations")
                .unwrap_or(&defaults.iterations.to_string()),
        )?,
        rate: parse_num(
            "rate",
            opts.get("rate").unwrap_or(&defaults.rate.to_string()),
        )?,
    };
    // Recorded once on the main thread, so worker-invariant by
    // construction.
    obs.add("train.designs", campaign.designs.len() as u64);
    obs.add("train.samples", samples.len() as u64);
    obs.add("train.iterations", config.iterations as u64);

    let model = train_logistic(&features, &samples, &config)?;
    htd_store::save_with(&out, &model, &obs)?;
    println!(
        "trained classifier on {} sample(s) over {} design(s), {} feature(s) [{}] → {out}",
        samples.len(),
        campaign.designs.len(),
        features.len(),
        features.join(", "),
    );
    if !held_out.is_empty() {
        let names: Vec<&str> = held_out.iter().map(|s| s.name.as_str()).collect();
        println!("held out: {}", names.join(", "));
    }
    if let Some(path) = &metrics_path {
        write_manifest(
            path,
            "train",
            &engine,
            &charac.plan,
            &obs,
            &campaign.report.health,
        )?;
    }
    Ok(ExitCode::SUCCESS)
}

/// Trigger size of a zoo spec for the heat map's `size` column: tap
/// count for comparator/state-machine/stealth triggers, counter width
/// for the sequential counter.
fn trigger_size(spec: &TrojanSpec) -> usize {
    match spec.trigger {
        Trigger::CombinationalAllOnes { taps }
        | Trigger::StealthProbe { taps }
        | Trigger::StateMachine { taps, .. } => taps,
        Trigger::SequentialCounter { width, .. } => width,
    }
}

/// The zoo grid shared by `htd zoo` and `htd train`: `--sizes`,
/// `--kinds` and `--placement` with the same defaults in both commands.
fn zoo_config(opts: &Opts) -> Result<ZooConfig, Box<dyn std::error::Error>> {
    let sizes = opts
        .get("sizes")
        .unwrap_or("8,16,32")
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| parse_num::<usize>("sizes", s))
        .collect::<Result<Vec<_>, _>>()?;
    let kinds = opts
        .get("kinds")
        .unwrap_or("comb,ctr,fsm")
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|tag| {
            ZooTrigger::from_tag(tag)
                .ok_or_else(|| format!("--kinds: unknown trigger kind `{tag}` (comb, ctr, fsm)"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let placement = match opts.get("placement").unwrap_or("near-taps") {
        "near-taps" | "near" => PlacementStrategy::NearTaps,
        "corner" => PlacementStrategy::Corner,
        "spread" => PlacementStrategy::Spread,
        other => {
            return Err(format!(
                "--placement: unknown strategy `{other}` (near-taps, corner, spread)"
            )
            .into())
        }
    };
    Ok(ZooConfig {
        sizes,
        kinds,
        payload: Payload::default(),
        placement,
    })
}

fn zoo(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let opts = Opts::parse(
        args,
        &[
            "golden",
            "sizes",
            "kinds",
            "placement",
            "dies",
            "pairs",
            "reps",
            "seed",
            "channels",
            "metric",
            "workers",
            "csv",
            "metrics",
        ],
        &[],
    )?;
    let cfg = zoo_config(&opts)?;
    let specs = cfg.generate()?;

    let (obs, metrics_path, _) = metrics_obs(&opts);
    let engine = engine_for(&opts)?.with_obs(obs.clone());
    let lab = Lab::paper();
    let faults = FaultPlan::none();
    let policy = RetryPolicy {
        max_retries: 0,
        allow_degraded: false,
    };

    // Golden side: a stored artifact, or a fresh in-process campaign.
    let stored: Option<GoldenArtifact> = match opts.get("golden") {
        Some(path) => Some(htd_store::load_with(path, &obs)?),
        None => None,
    };
    let (channels, fresh): (Vec<Box<dyn Channel>>, Option<GoldenCharacterization>) = match &stored {
        Some(artifact) => (artifact.build_channels(), None),
        None => {
            let dies: usize = parse_num("dies", opts.get("dies").unwrap_or("6"))?;
            let pairs: usize = parse_num("pairs", opts.get("pairs").unwrap_or("2"))?;
            let reps: usize = parse_num("reps", opts.get("reps").unwrap_or("2"))?;
            let seed: u64 = parse_num("seed", opts.get("seed").unwrap_or("24301"))?;
            let metric = opts.get("metric").unwrap_or("solm");
            let metric = TraceMetric::from_token(metric).ok_or_else(|| {
                format!("--metric: unknown metric `{metric}` (solm, max, sum, l2)")
            })?;
            let specs_ch = channel_specs(opts.get("channels").unwrap_or("em,delay"), metric)?;
            let channels: Vec<Box<dyn Channel>> = specs_ch.iter().map(ChannelSpec::build).collect();
            let pt = parse_hex16("pt", &"42".repeat(16))?;
            let key = parse_hex16("key", &"0f".repeat(16))?;
            let plan = CampaignPlan::with_random_pairs(dies, pairs, reps, pt, key, seed);
            let refs: Vec<&dyn Channel> = channels.iter().map(Box::as_ref).collect();
            let charac =
                characterize_campaign_faulted(&engine, &lab, &plan, &refs, &faults, &policy)?;
            (channels, Some(charac))
        }
    };
    let charac: &GoldenCharacterization = stored
        .as_ref()
        .map(GoldenArtifact::characterization)
        .or(fresh.as_ref())
        .expect("either a stored or a fresh characterization exists");

    // Per-zoo-point counters, recorded once on the main thread so they
    // are worker-invariant by construction.
    obs.add("zoo.points", specs.len() as u64);
    for &kind in &cfg.kinds {
        obs.add(&format!("zoo.kind.{}", kind.tag()), cfg.sizes.len() as u64);
    }

    let refs: Vec<&dyn Channel> = channels.iter().map(Box::as_ref).collect();
    let campaign = score_campaign_faulted(&engine, &lab, charac, &specs, &refs, &faults, &policy)?;
    let report = &campaign.report;

    // Heat map: one row per zoo point, one detection-rate column per
    // channel (plus the fused column when several channels ran).
    let mut header: Vec<String> = vec!["trojan".into(), "size".into()];
    header.extend(report.channel_names.iter().cloned());
    let has_fused = report.rows.iter().any(|r| r.fused.is_some());
    if has_fused {
        header.push("fused".into());
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    for (spec, row) in specs.iter().zip(&report.rows) {
        let mut cells = vec![row.name.clone(), trigger_size(spec).to_string()];
        for c in &row.channels {
            cells.push(pct(1.0 - c.analytic_fn_rate));
        }
        if has_fused {
            cells.push(
                row.fused
                    .as_ref()
                    .map(|c| pct(1.0 - c.analytic_fn_rate))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        table.push_row(&cells);
    }
    println!(
        "zoo: {} point(s), detection rate (1 − analytic FN rate, Eq. 5) per channel:",
        specs.len()
    );
    print!("{table}");
    if let Some(path) = opts.get("csv") {
        std::fs::write(path, table.to_csv()).map_err(|e| Error::io(path, e))?;
        println!("wrote {path}");
    }
    if let Some(path) = &metrics_path {
        write_manifest(path, "zoo", &engine, &charac.plan, &obs, &report.health)?;
    }
    Ok(ExitCode::SUCCESS)
}

fn serve(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let opts = Opts::parse(
        args,
        &[
            "addr",
            "queue-depth",
            "cache-bytes",
            "result-cache",
            "workers",
            "faults",
            "max-retries",
            "metrics",
            "metrics-every",
            "trace",
        ],
        &["allow-degraded"],
    )?;
    let (obs, metrics_path, trace_path) = metrics_obs(&opts);
    let (faults, policy) = fault_opts(&opts, &obs)?;
    let defaults = ServeConfig::default();
    let config = ServeConfig {
        addr: opts.get("addr").unwrap_or("127.0.0.1:0").to_string(),
        queue_depth: parse_num(
            "queue-depth",
            opts.get("queue-depth")
                .unwrap_or(&defaults.queue_depth.to_string()),
        )?,
        cache_bytes: parse_num(
            "cache-bytes",
            opts.get("cache-bytes")
                .unwrap_or(&defaults.cache_bytes.to_string()),
        )?,
        result_cache: parse_num(
            "result-cache",
            opts.get("result-cache")
                .unwrap_or(&defaults.result_cache.to_string()),
        )?,
        workers: parse_num("workers", opts.get("workers").unwrap_or("0"))?,
        faults,
        policy,
        tool: tool_info(),
        manifest: metrics_path
            .map(|path| -> Result<ManifestConfig, String> {
                Ok(ManifestConfig {
                    path: path.into(),
                    every: parse_num("metrics-every", opts.get("metrics-every").unwrap_or("256"))?,
                    tool: tool_info(),
                })
            })
            .transpose()?,
    };
    let report = htd_serve::serve(config, &obs, |addr| {
        // Flushed before blocking: the line is the startup handshake
        // scripts and tests poll for (port 0 resolves here).
        println!("serving on {addr}");
        use std::io::Write as _;
        std::io::stdout().flush().ok();
    })?;
    println!(
        "served {} request(s) in {} batch(es): {} ok, {} error, {} busy",
        report.requests,
        report.batches,
        report.responses_ok,
        report.responses_error,
        report.responses_busy
    );
    if let Some(path) = &trace_path {
        write_trace(path, &obs)?;
    }
    Ok(ExitCode::SUCCESS)
}

/// One benched request's routing: which shard, which golden path, which
/// suspect token.
struct BenchPlan {
    shard: usize,
    golden: String,
    suspect: String,
}

fn bench(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    if args.first().map(String::as_str) == Some("diff") {
        return bench_diff(&args[1..]);
    }
    let opts = Opts::parse(
        args,
        &[
            "addr", "golden", "suspects", "requests", "clients", "json", "dump",
        ],
        &["serve", "shutdown"],
    )?;
    if !opts.has("serve") {
        return Err("bench has two modes: --serve and diff (see `htd help`)".into());
    }
    let addrs: Vec<String> = opts
        .get("addr")
        .unwrap_or("127.0.0.1:7140")
        .split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if addrs.is_empty() {
        return Err("--addr selected no instances".into());
    }
    let goldens: Vec<String> = opts
        .require("golden")?
        .split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if goldens.is_empty() {
        return Err("--golden selected no artifacts".into());
    }
    let suspects: Vec<String> = opts
        .get("suspects")
        .unwrap_or("ht1,ht2,ht3")
        .split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if suspects.is_empty() {
        return Err("--suspects selected no suspects".into());
    }
    let requests: usize = parse_num("requests", opts.get("requests").unwrap_or("100"))?;
    let clients: usize = parse_num::<usize>("clients", opts.get("clients").unwrap_or("4"))?.max(1);

    // Shard routing needs each golden's plan digest; load every named
    // artifact once, client-side, and pin its shard by digest modulus —
    // the same key the server groups batches by, so one golden's
    // requests always land where its caches are warm.
    let shard_of: Vec<(String, usize, String)> = goldens
        .iter()
        .map(|path| -> Result<_, Error> {
            let artifact: GoldenArtifact = htd_store::load(path)?;
            let digest = htd_store::plan_digest(&artifact.characterization().plan);
            Ok((
                path.clone(),
                (digest % addrs.len() as u64) as usize,
                format!("fnv1a64:{digest:016x}"),
            ))
        })
        .collect::<Result<_, _>>()?;
    for (path, shard, digest) in &shard_of {
        println!(
            "golden {path} (plan {digest}) → shard {shard} [{}]",
            addrs[*shard]
        );
    }

    // Deterministic request mix: golden and suspect both rotate.
    let mix: Vec<BenchPlan> = (0..requests)
        .map(|i| {
            let (path, shard, _) = &shard_of[i % shard_of.len()];
            BenchPlan {
                shard: *shard,
                golden: path.clone(),
                suspect: suspects[i % suspects.len()].clone(),
            }
        })
        .collect();

    if let Some(path) = opts.get("dump") {
        let (golden_path, shard, _) = &shard_of[0];
        let mut client = htd_serve::Client::connect(addrs[*shard].as_str())?;
        let response = client.call(&htd_serve::Request::Score {
            golden: golden_path.clone(),
            suspect: suspects[0].clone(),
            model: None,
            request: None,
        })?;
        let htd_serve::Response::Score { report, .. } = response else {
            return Err(format!("dump request failed: {response:?}").into());
        };
        std::fs::write(path, report).map_err(|e| Error::io(path, e))?;
        println!("wrote {path}");
    }

    // Fan the mix across client threads round-robin; each thread opens
    // its own connection per shard and retries shed requests.
    let started = std::time::Instant::now();
    let mut handles = Vec::new();
    for c in 0..clients {
        let work: Vec<(usize, String, String)> = mix
            .iter()
            .enumerate()
            .filter(|(i, _)| i % clients == c)
            .map(|(_, p)| (p.shard, p.golden.clone(), p.suspect.clone()))
            .collect();
        let addrs = addrs.clone();
        handles.push(std::thread::spawn(move || -> Result<_, String> {
            let mut conns: Vec<Option<htd_serve::Client>> =
                (0..addrs.len()).map(|_| None).collect();
            let mut latencies_ns: Vec<u64> = Vec::with_capacity(work.len());
            let (mut ok, mut errors, mut busy) = (0u64, 0u64, 0u64);
            for (shard, golden, suspect) in work {
                let conn = match &mut conns[shard] {
                    Some(conn) => conn,
                    slot => slot.insert(
                        htd_serve::Client::connect(addrs[shard].as_str())
                            .map_err(|e| format!("{}: {e}", addrs[shard]))?,
                    ),
                };
                let request = htd_serve::Request::Score {
                    golden,
                    suspect,
                    model: None,
                    request: None,
                };
                let t0 = std::time::Instant::now();
                loop {
                    match conn.call(&request).map_err(|e| e.to_string())? {
                        htd_serve::Response::Score { .. } => {
                            ok += 1;
                            break;
                        }
                        htd_serve::Response::Busy { .. } => {
                            busy += 1;
                            std::thread::yield_now();
                        }
                        htd_serve::Response::Error { .. } => {
                            errors += 1;
                            break;
                        }
                        htd_serve::Response::Done => {
                            return Err("server answered a score with a bare ok".into())
                        }
                        htd_serve::Response::Stats { .. } => {
                            return Err("server answered a score with stats".into())
                        }
                    }
                }
                latencies_ns.push(t0.elapsed().as_nanos() as u64);
            }
            Ok((latencies_ns, ok, errors, busy))
        }));
    }
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(requests);
    let (mut ok, mut errors, mut busy) = (0u64, 0u64, 0u64);
    for handle in handles {
        let (lat, o, e, b) = handle.join().expect("bench client panicked")?;
        latencies_ns.extend(lat);
        ok += o;
        errors += e;
        busy += b;
    }
    let elapsed = started.elapsed();

    // Percentiles come from the shared log2 histogram — the same
    // bucket-granular derivation `--metrics` manifests use — so bench
    // numbers and manifest timings are directly comparable.
    let mut hist = htd_obs::Histogram::new();
    for &ns in &latencies_ns {
        hist.record(ns);
    }
    let (p50, p99) = (hist.percentile(0.50), hist.percentile(0.99));
    let per_sec = if elapsed.as_secs_f64() > 0.0 {
        ok as f64 / elapsed.as_secs_f64()
    } else {
        0.0
    };
    println!(
        "bench --serve: {requests} request(s), {clients} client(s), {} shard(s)",
        addrs.len()
    );
    println!(
        "  {ok} ok, {errors} error, {busy} busy retries in {:.3} s → {per_sec:.0} scores/sec",
        elapsed.as_secs_f64()
    );
    println!(
        "  latency p50 {:.3} ms, p99 {:.3} ms",
        p50 as f64 / 1e6,
        p99 as f64 / 1e6
    );

    if let Some(path) = opts.get("json") {
        let json = Json::Obj(vec![
            ("bench".to_string(), Json::Str("serve".to_string())),
            ("requests".to_string(), Json::UInt(requests as u64)),
            ("clients".to_string(), Json::UInt(clients as u64)),
            ("shards".to_string(), Json::UInt(addrs.len() as u64)),
            ("ok".to_string(), Json::UInt(ok)),
            ("errors".to_string(), Json::UInt(errors)),
            ("busy_retries".to_string(), Json::UInt(busy)),
            (
                "elapsed_ms".to_string(),
                Json::Float(elapsed.as_secs_f64() * 1e3),
            ),
            ("scores_per_sec".to_string(), Json::Float(per_sec)),
            ("p50_ms".to_string(), Json::Float(p50 as f64 / 1e6)),
            ("p99_ms".to_string(), Json::Float(p99 as f64 / 1e6)),
        ]);
        std::fs::write(path, json.to_pretty()).map_err(|e| Error::io(path, e))?;
        println!("wrote {path}");
    }

    if opts.has("shutdown") {
        for addr in &addrs {
            let mut client = htd_serve::Client::connect(addr.as_str())?;
            client.call(&htd_serve::Request::Shutdown)?;
        }
        println!("sent shutdown to {} instance(s)", addrs.len());
    }
    if errors > 0 {
        return Ok(ExitCode::from(1));
    }
    Ok(ExitCode::SUCCESS)
}

/// Finds a counter by name in a manifest; absent counters read 0 (a
/// counter that never fired is never serialized).
fn counter(run: &RunManifest, name: &str) -> u64 {
    run.counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

/// `hits / (hits + misses)` as a percent string, `-` before any lookup.
fn hit_rate(hits: u64, misses: u64) -> String {
    let total = hits + misses;
    if total == 0 {
        return "-".to_string();
    }
    format!("{:.1}%", 100.0 * hits as f64 / total as f64)
}

fn top(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let opts = Opts::parse(args, &["addr", "interval-ms", "iterations"], &["plain"])?;
    let addr = opts.require("addr")?;
    let interval_ms: u64 = parse_num("interval-ms", opts.get("interval-ms").unwrap_or("1000"))?;
    let iterations: u64 = parse_num("iterations", opts.get("iterations").unwrap_or("0"))?;
    let plain = opts.has("plain");
    let mut client = htd_serve::Client::connect(addr)?;
    let mut polled = 0u64;
    loop {
        let response = client.call(&htd_serve::Request::Stats)?;
        let htd_serve::Response::Stats {
            uptime_ns,
            queue,
            manifest,
        } = response
        else {
            return Err(format!("{addr}: expected a stats response, got {response:?}").into());
        };
        let run =
            RunManifest::parse(&manifest).map_err(|e| format!("{addr}: stats manifest: {e}"))?;
        polled += 1;
        if plain {
            println!("uptime_ns {uptime_ns}");
            println!("queue {queue}");
            println!("workers {}", run.workers);
            print!("{}", run.counters_text());
            println!();
        } else {
            // Home the cursor and clear to the end instead of wiping
            // the whole screen: no flicker at refresh rates.
            print!("\x1b[H\x1b[J");
            println!(
                "htd top — {addr} ({} {}, poll {polled})",
                run.tool.name, run.tool.version
            );
            println!(
                "uptime {:.1} s   queue {queue}   workers {}",
                uptime_ns as f64 / 1e9,
                run.workers
            );
            println!(
                "requests {} in {} batch(es): {} ok, {} error, {} busy",
                counter(&run, "serve.requests"),
                counter(&run, "serve.batches"),
                counter(&run, "serve.responses.ok"),
                counter(&run, "serve.responses.error"),
                counter(&run, "serve.responses.busy"),
            );
            println!(
                "golden cache {} hit   result cache {} hit   stats polls {}",
                hit_rate(
                    counter(&run, "store.cache.hit"),
                    counter(&run, "store.cache.miss")
                ),
                hit_rate(
                    counter(&run, "serve.cache.result.hit"),
                    counter(&run, "serve.cache.result.miss")
                ),
                counter(&run, "serve.stats.requests"),
            );
        }
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        if iterations != 0 && polled >= iterations {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------------
// bench diff (the perf-regression gate).

/// A file `bench diff` understands: a `--metrics` run manifest or a
/// `bench --json` measurement file, sniffed by top-level key.
enum BenchFile {
    Manifest(Box<RunManifest>),
    Bench(Vec<(String, Json)>),
}

fn load_bench_file(path: &str) -> Result<BenchFile, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path).map_err(|e| Error::io(path, e))?;
    let json = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let Json::Obj(fields) = &json else {
        return Err(format!("{path}: expected a JSON object").into());
    };
    if fields.iter().any(|(k, _)| k == "manifest_version") {
        let manifest = RunManifest::from_json(&json).map_err(|e| format!("{path}: {e}"))?;
        return Ok(BenchFile::Manifest(Box::new(manifest)));
    }
    if fields.iter().any(|(k, _)| k == "bench") {
        let Json::Obj(fields) = json else {
            unreachable!("matched above")
        };
        return Ok(BenchFile::Bench(fields));
    }
    Err(format!("{path}: neither a run manifest nor a bench measurement file").into())
}

/// The numeric value of a JSON field, whichever way the writer kept it.
fn json_num(value: &Json) -> Option<f64> {
    match value {
        Json::UInt(n) => Some(*n as f64),
        Json::Float(x) => Some(*x),
        _ => None,
    }
}

/// Deterministic sections must be identical; timings only bound by the
/// `--gate` noise band. Every regression is one human-readable line.
fn diff_manifests(old: &RunManifest, new: &RunManifest, gate: Option<f64>) -> Vec<String> {
    let mut out = Vec::new();
    if old.manifest_version != new.manifest_version {
        out.push(format!(
            "manifest_version: {} vs {}",
            old.manifest_version, new.manifest_version
        ));
    }
    if old.command != new.command {
        out.push(format!("command: `{}` vs `{}`", old.command, new.command));
    }
    if old.plan_digest != new.plan_digest {
        out.push(format!(
            "plan digest: {} vs {}",
            old.plan_digest, new.plan_digest
        ));
    }
    // Counters are the deterministic contract: the name set and every
    // value must match exactly. (tool/workers/timings/occupancy are
    // observational or provenance and never gate by themselves.)
    for (name, old_value) in &old.counters {
        match new.counters.iter().find(|(n, _)| n == name) {
            None => out.push(format!("counter {name} disappeared (was {old_value})")),
            Some((_, new_value)) if new_value != old_value => {
                out.push(format!("counter {name}: {old_value} vs {new_value}"));
            }
            Some(_) => {}
        }
    }
    for (name, new_value) in &new.counters {
        if !old.counters.iter().any(|(n, _)| n == name) {
            out.push(format!("counter {name} appeared ({new_value})"));
        }
    }
    if old.health != new.health {
        out.push(format!(
            "health: {} vs {} record(s), or their counts differ",
            old.health.len(),
            new.health.len()
        ));
    }
    if let Some(pct) = gate {
        let band = 1.0 + pct / 100.0;
        for t in &old.timings {
            let Some(n) = new.timings.iter().find(|n| n.stage == t.stage) else {
                continue; // vanished stages already show as counter drift
            };
            let bound = t.mean_ns as f64 * band;
            if n.mean_ns as f64 > bound {
                out.push(format!(
                    "timing {}: mean {} ns vs {} ns (> {pct}% over baseline)",
                    t.stage, t.mean_ns, n.mean_ns
                ));
            }
        }
    }
    out
}

/// Bench measurement files: the request mix and outcome counts are
/// deterministic; throughput and latency only gate with `--gate`.
fn diff_bench_json(
    old: &[(String, Json)],
    new: &[(String, Json)],
    gate: Option<f64>,
) -> Vec<String> {
    let field = |fields: &[(String, Json)], name: &str| -> Option<Json> {
        fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
    };
    let mut out = Vec::new();
    for name in ["bench", "requests", "clients", "shards", "ok", "errors"] {
        let (a, b) = (field(old, name), field(new, name));
        if a != b {
            out.push(format!("{name}: {a:?} vs {b:?}"));
        }
    }
    if let Some(pct) = gate {
        let band = 1.0 + pct / 100.0;
        // Larger-is-worse latencies bound above, throughput below.
        for name in ["elapsed_ms", "p50_ms", "p99_ms"] {
            if let (Some(a), Some(b)) = (
                field(old, name).as_ref().and_then(json_num),
                field(new, name).as_ref().and_then(json_num),
            ) {
                if b > a * band {
                    out.push(format!("{name}: {a:.3} vs {b:.3} (> {pct}% over baseline)"));
                }
            }
        }
        if let (Some(a), Some(b)) = (
            field(old, "scores_per_sec").as_ref().and_then(json_num),
            field(new, "scores_per_sec").as_ref().and_then(json_num),
        ) {
            if b < a / band {
                out.push(format!(
                    "scores_per_sec: {a:.0} vs {b:.0} (> {pct}% under baseline)"
                ));
            }
        }
    }
    out
}

fn bench_diff(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let opts = Opts::parse(args, &["gate"], &[])?;
    let [old_path, new_path] = opts.positional.as_slice() else {
        return Err("bench diff needs exactly two files (OLD NEW)".into());
    };
    let gate: Option<f64> = opts.get("gate").map(|t| parse_num("gate", t)).transpose()?;
    if gate.is_some_and(|pct| !pct.is_finite() || pct < 0.0) {
        return Err("--gate: the noise band must be a non-negative percentage".into());
    }
    let regressions = match (load_bench_file(old_path)?, load_bench_file(new_path)?) {
        (BenchFile::Manifest(old), BenchFile::Manifest(new)) => diff_manifests(&old, &new, gate),
        (BenchFile::Bench(old), BenchFile::Bench(new)) => diff_bench_json(&old, &new, gate),
        _ => return Err("cannot diff a run manifest against a bench measurement file".into()),
    };
    if regressions.is_empty() {
        println!("bench diff: {old_path} vs {new_path}: no regression");
        return Ok(ExitCode::SUCCESS);
    }
    for r in &regressions {
        println!("regression: {r}");
    }
    println!("bench diff: {} regression(s)", regressions.len());
    Ok(ExitCode::from(4))
}

fn fuse(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let opts = Opts::parse(args, &[], &[])?;
    if opts.positional.len() < 2 {
        return Err("fuse needs at least two score artifacts".into());
    }
    let sets = opts
        .positional
        .iter()
        .map(htd_store::load::<ScoredChannel>)
        .collect::<Result<Vec<_>, _>>()?;
    let (per_channel, fused) = fuse_scored_channels(&sets)?;
    let mut table = Table::new(&["channel", "µ", "σ", "FN rate", "FN emp", "FP emp"]);
    for r in per_channel.iter().chain([&fused]) {
        table.push_row(&[
            r.channel.clone(),
            format!("{:.3}", r.mu),
            format!("{:.3}", r.sigma),
            pct(r.analytic_fn_rate),
            pct(r.empirical_fn_rate),
            pct(r.empirical_fp_rate),
        ]);
    }
    print!("{table}");
    Ok(ExitCode::SUCCESS)
}

fn report(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let opts = Opts::parse(args, &["metrics"], &["csv", "kv", "counters"])?;
    if let Some(path) = opts.get("metrics") {
        if !opts.positional.is_empty() {
            return Err("report --metrics takes no report artifact".into());
        }
        return report_metrics(path, opts.has("counters"));
    }
    let [path] = opts.positional.as_slice() else {
        return Err("report needs exactly one report artifact".into());
    };
    let report: MultiChannelReport = htd_store::load(path)?;
    let table = multi_channel_table(&report);
    if opts.has("csv") {
        print!("{}", table.to_csv());
    } else if opts.has("kv") {
        print!("{}", table.to_kv());
    } else {
        print!("{table}");
        if !report.health.is_empty() {
            println!("channel health:");
            print!("{}", health_table(&report.health));
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Renders a run manifest: the full human tables, or (with
/// `--counters`) just the deterministic counter section as `name value`
/// lines — the form CI diffs across worker counts and machines.
fn report_metrics(path: &str, counters_only: bool) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path).map_err(|e| Error::io(path, e))?;
    let manifest = RunManifest::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    if counters_only {
        print!("{}", manifest.counters_text());
        return Ok(ExitCode::SUCCESS);
    }
    println!(
        "run: {} {} (store format {}), command `{}`, {} worker(s)",
        manifest.tool.name,
        manifest.tool.version,
        manifest.tool.format_version,
        manifest.command,
        manifest.workers
    );
    println!("plan: {}", manifest.plan_digest);

    let mut counters = Table::new(&["counter", "value"]);
    for (name, value) in &manifest.counters {
        counters.push_row(&[name.clone(), value.to_string()]);
    }
    println!("counters (deterministic):");
    print!("{counters}");

    let ms = |ns: u64| format!("{:.3}", ns as f64 / 1e6);
    let mut timings = Table::new(&["stage", "count", "total ms", "mean ms", "max ms"]);
    for t in &manifest.timings {
        timings.push_row(&[
            t.stage.clone(),
            t.count.to_string(),
            ms(t.total_ns),
            ms(t.mean_ns),
            ms(t.max_ns),
        ]);
    }
    println!("timings (observational):");
    print!("{timings}");

    if !manifest.occupancy.is_empty() {
        let mut occ = Table::new(&["workers", "items per slot"]);
        for o in &manifest.occupancy {
            let items: Vec<String> = o.items.iter().map(u64::to_string).collect();
            occ.push_row(&[o.workers.to_string(), items.join(" ")]);
        }
        println!("occupancy (observational):");
        print!("{occ}");
    }

    if !manifest.health.is_empty() {
        println!("channel health:");
        print!("{}", health_table(&health_from_records(&manifest.health)));
    }
    Ok(ExitCode::SUCCESS)
}

fn version(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let opts = Opts::parse(args, &[], &["json"])?;
    let info = tool_info();
    if opts.has("json") {
        print!("{}", tool_info_json(&info).to_pretty());
    } else {
        println!(
            "htd {} (store format {}, features: {})",
            info.version,
            info.format_version,
            info.features.join(", ")
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn diff(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let opts = Opts::parse(args, &[], &[])?;
    let [path_a, path_b] = opts.positional.as_slice() else {
        return Err("diff needs exactly two artifacts".into());
    };
    let text_a = std::fs::read_to_string(path_a).map_err(|e| Error::io(path_a, e))?;
    let text_b = std::fs::read_to_string(path_b).map_err(|e| Error::io(path_b, e))?;
    let (kind_a, kind_b) = (sniff_kind(&text_a), sniff_kind(&text_b));
    if kind_a != kind_b {
        return Err(format!(
            "cannot diff a `{}` against a `{}`",
            kind_a.unwrap_or("?"),
            kind_b.unwrap_or("?")
        )
        .into());
    }

    // Golden artifacts diff by identity of their campaign plan — the
    // digest printed here is the serve wire/shard key, so two goldens
    // with the same line land on the same scoring instance (the serve
    // caches themselves key by artifact content, which the row diff
    // below distinguishes).
    if kind_a == Some("golden") {
        let a: GoldenArtifact = htd_store::from_text_at(&text_a, path_a)?;
        let b: GoldenArtifact = htd_store::from_text_at(&text_b, path_b)?;
        println!(
            "plan {path_a}: {}",
            htd_store::plan_digest_hex(&a.characterization().plan)
        );
        println!(
            "plan {path_b}: {}",
            htd_store::plan_digest_hex(&b.characterization().plan)
        );
        if a == b {
            println!("artifacts match");
            return Ok(ExitCode::SUCCESS);
        }
        if a.characterization().plan != b.characterization().plan {
            println!("campaign plans differ");
        } else {
            println!("same plan, different characterizations");
        }
        return Ok(ExitCode::from(1));
    }

    let a: MultiChannelReport = htd_store::from_text_at(&text_a, path_a)?;
    let b: MultiChannelReport = htd_store::from_text_at(&text_b, path_b)?;
    println!(
        "content {path_a}: fnv1a64:{:016x}",
        htd_store::fnv1a64(text_a.as_bytes())
    );
    println!(
        "content {path_b}: fnv1a64:{:016x}",
        htd_store::fnv1a64(text_b.as_bytes())
    );
    let differences = report_differences(&a, &b);
    if differences.is_empty() {
        println!("reports match");
        return Ok(ExitCode::SUCCESS);
    }
    for d in &differences {
        println!("{d}");
    }
    Ok(ExitCode::from(1))
}

/// Human-readable differences between two reports; empty when identical.
fn report_differences(a: &MultiChannelReport, b: &MultiChannelReport) -> Vec<String> {
    let mut out = Vec::new();
    if a.n_dies != b.n_dies {
        out.push(format!("die count: {} vs {}", a.n_dies, b.n_dies));
    }
    if a.channel_names != b.channel_names {
        out.push(format!(
            "channels: [{}] vs [{}]",
            a.channel_names.join(", "),
            b.channel_names.join(", ")
        ));
    }
    if a.rows.len() != b.rows.len() {
        out.push(format!("row count: {} vs {}", a.rows.len(), b.rows.len()));
    }
    if a.health != b.health {
        out.push(format!(
            "health: {} vs {} record(s), or their counters differ",
            a.health.len(),
            b.health.len()
        ));
    }
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        if ra.name != rb.name {
            out.push(format!("row name: `{}` vs `{}`", ra.name, rb.name));
        } else if ra != rb {
            out.push(format!("row `{}` differs", ra.name));
        }
    }
    out
}
