//! Timing engine: delay annotation, static timing analysis, timed event
//! simulation and the clock-glitch measurement of the paper's Section III.
//!
//! The pipeline mirrors a hardware timing flow:
//!
//! 1. [`DelayAnnotation::annotate`] stamps every cell and net of a *placed*
//!    netlist with a delay — intrinsic cell delay × process variation,
//!    plus a routed-wire delay from placement geometry, plus any
//!    trojan-induced increments registered later
//!    ([`DelayAnnotation::add_net_delay_ps`]).
//! 2. [`Sta`] computes worst-case arrival times and critical paths
//!    (data-independent upper bounds, used to aim the glitch sweep).
//! 3. [`EventSimulator`] replays one clock cycle with transport delays,
//!    yielding each net's **data-dependent settling time** and the full
//!    toggle stream (which the EM crate turns into emanation traces).
//! 4. [`GlitchSweep`] converts settling times into the paper's measurement:
//!    the clock period shrinks in 35 ps steps until each observed bit
//!    faults; the step index at fault onset *is* the delay estimate
//!    (Fig. 2), blurred by the per-measurement noise `dM` of Eq. (2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod annotate;
mod compiled;
mod eventsim;
mod glitch;
mod sta;

pub use annotate::DelayAnnotation;
pub use compiled::{CompiledSimulator, CompiledTiming};
pub use eventsim::{EventSimulator, TimedRun, Toggle};
pub use glitch::{FaultOnset, GlitchParams, GlitchSweep};
pub use sta::{CriticalPath, Sta};
