//! Compiled timed simulation: the hot-path twin of [`EventSimulator`].
//!
//! [`EventSimulator`](crate::EventSimulator) walks the netlist object graph
//! on every event — driver lookups, cell-kind matches, re-reading every
//! input of every sink LUT. That is the right reference semantics, but it
//! is also the inner loop of every EM/power acquisition (13 cycles × ~86 k
//! events per trace), so this module flattens one `(netlist, annotation)`
//! pair into [`CompiledTiming`] — CSR sink lists with the per-sink delays
//! pre-added — and replays cycles over it with
//! [`CompiledSimulator::clock_cycle`].
//!
//! # Determinism contract
//!
//! The compiled replay is **bit-for-bit identical** to
//! [`EventSimulator::clock_cycle`](crate::EventSimulator::clock_cycle):
//! same toggle stream (times, nets, values, order), same
//! `last_transition_ps`, same `settle_ps`, down to the f64 bit pattern.
//! Three things make that hold:
//!
//! * **Arithmetic association is preserved.** Event times are computed as
//!   `(t + cell_delay) + net_delay` — the same two-add order as the
//!   reference — with both delays read from the same annotation.
//! * **Tie order is preserved.** Events are ordered by
//!   `(time, sequence number)` exactly like the reference heap. Skipping
//!   provably-redundant pushes (see below) renumbers later events but
//!   never reorders surviving ones, because sequence numbers are assigned
//!   in push order in both implementations.
//! * **Only no-op events are elided.** The reference drops an event at pop
//!   time when the net already carries the scheduled value. Deliveries to
//!   any net are causal (each LUT has one fixed `cell + output-net`
//!   latency), so the value a net will hold when an event pops is exactly
//!   the value of the *last scheduled* event for that net — which the
//!   simulator tracks in `scheduled`. An event whose value equals it would
//!   be filtered at pop time in the reference; not pushing it at all
//!   yields the same toggle stream.
//!
//! The event queue is a calendar of time buckets of width
//! `min_sink_latency / 16` (a sixteenth of the smallest
//! `cell + output-net` delay in the design — any width at most the
//! minimum latency works). An event scheduled while draining bucket `b`
//! lands at `t + latency ≥ t + 16·width`, i.e. in a strictly later bucket — except
//! when float rounding of the bucket index says otherwise, in which case
//! the event goes through a (nearly always empty) overflow heap that is
//! merged during the drain. Each bucket is sorted once; events carry a
//! precomputed `u64` key that maps `f64::total_cmp` order onto `u64`
//! ordering, so the sort comparator never touches a float. The narrow
//! width keeps buckets small (a handful of events, not hundreds), which
//! keeps those sorts out of the profile.
//!
//! `tests` pin compiled-vs-reference equality on every toy topology of the
//! reference test suite; `htd-core` pins it again on the full AES design.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use htd_netlist::{CellKind, NetId, Netlist};

use crate::eventsim::{TimedRun, Toggle};
use crate::DelayAnnotation;

/// A compact scheduled event: the toggling net and its new value are
/// packed into one word, and `seq` reproduces the reference tie order.
/// The event time is stored as its [`time_key`] image rather than an
/// `f64`, so every comparison — bucket sorts and the overflow heap — is
/// a raw `u64` compare instead of a float transform per operand.
#[derive(Debug, Clone, Copy)]
struct Event {
    /// `time_key(time_ps)` — same ordering as `f64::total_cmp`.
    key: u64,
    seq: u32,
    /// `net_index << 1 | new_value`.
    net_val: u32,
}

impl Event {
    fn time_ps(self) -> f64 {
        time_from_key(self.key)
    }

    fn net(self) -> usize {
        (self.net_val >> 1) as usize
    }

    fn value(self) -> bool {
        self.net_val & 1 == 1
    }
}

/// Maps an f64 to a `u64` key with the same ordering as `f64::total_cmp`.
#[inline]
fn time_key(t: f64) -> u64 {
    let bits = t.to_bits() as i64;
    (((bits >> 63) as u64 >> 1) | 1 << 63) ^ bits as u64
}

/// Inverse of [`time_key`]: recovers the exact f64 bit pattern.
#[inline]
fn time_from_key(key: u64) -> f64 {
    let bits = if key & 1 << 63 != 0 {
        key ^ 1 << 63
    } else {
        !key
    };
    f64::from_bits(bits)
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.cmp(&other.key).then(self.seq.cmp(&other.seq))
    }
}

/// One flip-flop capture edge: `q` takes `d`'s sampled value, visible to
/// `q`'s sinks at `q_arrival_ps` (= `clk2q + net_delay(q)`).
#[derive(Debug, Clone, Copy)]
struct DffEdge {
    d: u32,
    q: u32,
    q_arrival_ps: f64,
}

/// One LUT sink of a net, packed so a delivery touches a single
/// sequential stream instead of five parallel arrays (CSR ranges are
/// 2–4 entries, so split arrays cost one cache line *each* per range).
#[derive(Debug, Clone, Copy)]
struct SinkRec {
    cell: u32,
    out_net: u32,
    pin: u8,
    cell_delay_ps: f64,
    out_delay_ps: f64,
}

/// A netlist and one delay annotation flattened for event replay: per-net
/// CSR lists of LUT sinks with their delays pre-fetched, per-cell LUT
/// truth tables, and the flip-flop capture list.
///
/// Compiling is cheap (~0.2 ms for the AES design) and pays for itself
/// within a single clock cycle; `htd-core` compiles once per programmed
/// device and replays every acquisition against it.
#[derive(Debug, Clone)]
pub struct CompiledTiming {
    n_nets: usize,
    n_cells: usize,
    /// CSR offsets: LUT sinks of net `n` are `sinks[sink_start[n]..sink_start[n + 1]]`.
    sink_start: Vec<u32>,
    sinks: Vec<SinkRec>,
    /// Raw truth-table bits per cell (0 for non-LUTs).
    lut_mask: Vec<u64>,
    /// CSR of LUT input nets, used to seed the per-cell input rows.
    lut_cells: Vec<u32>,
    lut_in_start: Vec<u32>,
    lut_in_net: Vec<u32>,
    dffs: Vec<DffEdge>,
    /// Per-net routed delay (for primary-input events).
    net_delay_ps: Vec<f64>,
    /// Smallest `cell + output-net` latency; the calendar bucket width
    /// is a fixed fraction of it.
    min_sink_latency_ps: f64,
}

impl CompiledTiming {
    /// Flattens `netlist` with `delays` into replayable form.
    ///
    /// # Panics
    ///
    /// Panics if the netlist exceeds the compact-event encoding
    /// (2³¹ nets) — far beyond any design this workspace elaborates.
    pub fn compile(netlist: &Netlist, delays: &DelayAnnotation) -> Self {
        let n_nets = netlist.net_count();
        let n_cells = netlist.cell_count();
        assert!(n_nets < (1 << 31), "netlist too large for compact events");
        let mut sink_start = vec![0u32; n_nets + 1];
        let mut lut_mask = vec![0u64; n_cells];
        let mut dffs = Vec::new();
        for (id, cell) in netlist.cells() {
            match cell.kind() {
                CellKind::Lut(mask) => {
                    lut_mask[id.index()] = mask.raw();
                    for &inp in cell.inputs() {
                        sink_start[inp.index() + 1] += 1;
                    }
                }
                CellKind::Dff => {
                    let d = cell.inputs()[0];
                    let q = cell.output().expect("dff drives q");
                    dffs.push(DffEdge {
                        d: d.index() as u32,
                        q: q.index() as u32,
                        q_arrival_ps: delays.clk2q_ps() + delays.net_delay_ps(q),
                    });
                }
                _ => {}
            }
        }
        for i in 0..n_nets {
            sink_start[i + 1] += sink_start[i];
        }
        let total = sink_start[n_nets] as usize;
        let mut sinks = vec![
            SinkRec {
                cell: 0,
                out_net: 0,
                pin: 0,
                cell_delay_ps: 0.0,
                out_delay_ps: 0.0,
            };
            total
        ];
        let mut cursor: Vec<u32> = sink_start[..n_nets].to_vec();
        let mut lut_cells = Vec::new();
        let mut lut_in_start = vec![0u32];
        let mut lut_in_net = Vec::new();
        for (id, cell) in netlist.cells() {
            if let CellKind::Lut(_) = cell.kind() {
                let out = cell.output().expect("lut drives a net");
                lut_cells.push(id.index() as u32);
                for (pin, &inp) in cell.inputs().iter().enumerate() {
                    let slot = cursor[inp.index()] as usize;
                    cursor[inp.index()] += 1;
                    sinks[slot] = SinkRec {
                        cell: id.index() as u32,
                        out_net: out.index() as u32,
                        pin: pin as u8,
                        cell_delay_ps: delays.cell_delay_ps(id),
                        out_delay_ps: delays.net_delay_ps(out),
                    };
                    lut_in_net.push(inp.index() as u32);
                }
                lut_in_start.push(lut_in_net.len() as u32);
            }
        }
        let min_sink_latency_ps = sinks
            .iter()
            .map(|s| s.cell_delay_ps + s.out_delay_ps)
            .fold(f64::INFINITY, f64::min);
        CompiledTiming {
            n_nets,
            n_cells,
            sink_start,
            sinks,
            lut_mask,
            lut_cells,
            lut_in_start,
            lut_in_net,
            dffs,
            net_delay_ps: (0..n_nets)
                .map(|i| delays.net_delay_ps(NetId::from_index(i)))
                .collect(),
            min_sink_latency_ps,
        }
    }

    /// Net count of the compiled netlist.
    pub fn net_count(&self) -> usize {
        self.n_nets
    }
}

/// Mutable per-cell state colocated with the (immutable) truth table:
/// one cache line serves both the input-row update and the LUT eval.
#[derive(Debug, Clone, Copy)]
struct CellState {
    /// Current LUT input row, updated incrementally per delivery.
    row: u64,
    /// The cell's truth-table bits (copied from the compiled tables).
    mask: u64,
}

/// Event-driven replay over a [`CompiledTiming`], bit-identical to
/// [`EventSimulator`](crate::EventSimulator) (see the module docs for the
/// argument). Scratch buffers (buckets, per-cell input rows, scheduled
/// values) persist across cycles, so steady-state cycles allocate only
/// the returned [`TimedRun`].
#[derive(Debug, Clone)]
pub struct CompiledSimulator<'a> {
    ct: &'a CompiledTiming,
    values: Vec<bool>,
    /// Per-cell LUT state (input row + truth table).
    cells: Vec<CellState>,
    /// Last scheduled value per net this cycle (the pop-time filter of the
    /// reference, applied at push time — see module docs).
    scheduled: Vec<bool>,
    pending_inputs: Vec<(NetId, bool)>,
    buckets: Vec<Vec<Event>>,
    drain: Vec<Event>,
    overflow: BinaryHeap<std::cmp::Reverse<Event>>,
    /// Toggle count of the previous cycle — the capacity hint that keeps
    /// steady-state cycles from re-growing the toggle vector.
    toggle_hint: usize,
}

impl<'a> CompiledSimulator<'a> {
    /// Starts from a settled snapshot of net values
    /// ([`htd_netlist::Simulator::snapshot`]).
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` does not match the compiled net count.
    pub fn from_snapshot(ct: &'a CompiledTiming, values: Vec<bool>) -> Self {
        assert_eq!(values.len(), ct.n_nets, "snapshot size mismatch");
        let mut cells = vec![CellState { row: 0, mask: 0 }; ct.n_cells];
        for (c, &mask) in ct.lut_mask.iter().enumerate() {
            cells[c].mask = mask;
        }
        for (i, &c) in ct.lut_cells.iter().enumerate() {
            let lo = ct.lut_in_start[i] as usize;
            let hi = ct.lut_in_start[i + 1] as usize;
            let mut row = 0u64;
            for (pin, &inp) in ct.lut_in_net[lo..hi].iter().enumerate() {
                row |= (values[inp as usize] as u64) << pin;
            }
            cells[c as usize].row = row;
        }
        CompiledSimulator {
            ct,
            scheduled: values.clone(),
            values,
            cells,
            pending_inputs: Vec::new(),
            buckets: Vec::new(),
            drain: Vec::new(),
            overflow: BinaryHeap::new(),
            toggle_hint: 0,
        }
    }

    /// Queues a primary-input change for the next clock cycle (same
    /// semantics as [`EventSimulator::set_input`](crate::EventSimulator::set_input)).
    pub fn set_input(&mut self, net: NetId, value: bool) {
        self.pending_inputs.push((net, value));
    }

    /// Current (sink-visible) value of a net.
    pub fn get(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    /// Runs one clock cycle and returns the timing record, bit-identical
    /// to the reference simulator's. State persists into the next cycle.
    pub fn clock_cycle(&mut self) -> TimedRun {
        let n_nets = self.ct.n_nets;
        let mut last_transition = vec![f64::NEG_INFINITY; n_nets];
        let mut toggles: Vec<Toggle> = Vec::with_capacity(self.toggle_hint + 64);
        let settle = self.cycle_core(|time_ps, net, new_value| {
            last_transition[net.index()] = time_ps;
            toggles.push(Toggle {
                time_ps,
                net,
                new_value,
            });
        });
        self.toggle_hint = toggles.len();
        TimedRun {
            last_transition_ps: last_transition,
            toggles,
            settle_ps: settle,
        }
    }

    /// Runs one clock cycle, streaming every toggle to `visit` (time in
    /// ps, net, new value) in delivery order — the same order and bit
    /// patterns as the [`Self::clock_cycle`] record — and returns the
    /// cycle's settle time. Skips materialising the `TimedRun` (a
    /// per-net vector plus a toggle vector per cycle), which is the
    /// difference between this and `clock_cycle` on the activity hot
    /// path where the caller only filters and re-buffers the toggles.
    pub fn clock_cycle_visit(&mut self, visit: impl FnMut(f64, NetId, bool)) -> f64 {
        self.cycle_core(visit)
    }

    /// The event replay shared by [`Self::clock_cycle`] and
    /// [`Self::clock_cycle_visit`]. Calls `visit` once per delivered
    /// toggle, in delivery (= reference) order; returns `settle_ps`.
    fn cycle_core(&mut self, mut visit: impl FnMut(f64, NetId, bool)) -> f64 {
        let ct = self.ct;
        let mut seq = 0u32;
        // Bucket width is a sixteenth of the smallest sink latency: any
        // width ≤ that latency keeps the "new events land in a strictly
        // later bucket" invariant, and narrower buckets mean the per-bucket
        // sorts run on a couple dozen events instead of hundreds (the
        // sorts dominate the replay otherwise; 1/16 measured best on the
        // AES design against 1/4, 1/8 and 1/32). Degenerate widths (no LUT sinks,
        // or a zero-latency annotation) fall back to inv_w = 0: everything
        // lands in bucket 0 and drains through the overflow heap, i.e.
        // plain heap order.
        let inv_w = if ct.min_sink_latency_ps.is_finite() && ct.min_sink_latency_ps > 0.0 {
            16.0 / ct.min_sink_latency_ps
        } else {
            0.0
        };
        self.scheduled.copy_from_slice(&self.values);

        let push_initial = |buckets: &mut Vec<Vec<Event>>, time_ps: f64, ev: Event| {
            let b = (time_ps * inv_w) as usize;
            if b >= buckets.len() {
                buckets.resize_with(b + 1, Vec::new);
            }
            buckets[b].push(ev);
        };
        // Flip-flop captures first, then primary inputs — the reference
        // push (and therefore tie) order.
        for &DffEdge { d, q, q_arrival_ps } in &ct.dffs {
            let d_val = self.values[d as usize];
            if d_val != self.values[q as usize] {
                push_initial(
                    &mut self.buckets,
                    q_arrival_ps,
                    Event {
                        key: time_key(q_arrival_ps),
                        seq,
                        net_val: q << 1 | d_val as u32,
                    },
                );
                self.scheduled[q as usize] = d_val;
                seq += 1;
            }
        }
        for (net, value) in self.pending_inputs.drain(..) {
            if value != self.scheduled[net.index()] {
                let t = ct.net_delay_ps[net.index()];
                push_initial(
                    &mut self.buckets,
                    t,
                    Event {
                        key: time_key(t),
                        seq,
                        net_val: (net.index() as u32) << 1 | value as u32,
                    },
                );
                self.scheduled[net.index()] = value;
                seq += 1;
            }
        }

        let mut settle = 0.0f64;
        let mut guard = 0usize;
        let mut b = 0usize;
        while b < self.buckets.len() || !self.overflow.is_empty() {
            if b < self.buckets.len() {
                std::mem::swap(&mut self.drain, &mut self.buckets[b]);
                // Buckets are tiny (a couple dozen events) and arrive in
                // `seq` order, so a plain insertion sort beats the
                // general-purpose sorter: ties (equal keys) never shift
                // because `seq` is already ascending, preserving the
                // reference (time, seq) order.
                let drain = &mut self.drain[..];
                for i in 1..drain.len() {
                    let e = drain[i];
                    let mut j = i;
                    while j > 0 && drain[j - 1].key > e.key {
                        drain[j] = drain[j - 1];
                        j -= 1;
                    }
                    drain[j] = e;
                }
            }
            let mut di = 0usize;
            loop {
                // Merge the sorted bucket with the overflow heap. The heap
                // is almost always empty — it only holds events whose
                // bucket index rounded down to the one being drained — so
                // the common case is a single predictable branch straight
                // into the sorted bucket slice.
                let ev = if self.overflow.is_empty() {
                    match self.drain.get(di) {
                        Some(&d) => {
                            di += 1;
                            d
                        }
                        None => break,
                    }
                } else {
                    match (self.drain.get(di), self.overflow.peek()) {
                        (None, None) => break,
                        (Some(&d), None) => {
                            di += 1;
                            d
                        }
                        (None, Some(&std::cmp::Reverse(o))) => {
                            if (o.time_ps() * inv_w) as usize > b {
                                break;
                            }
                            self.overflow.pop();
                            o
                        }
                        (Some(&d), Some(&std::cmp::Reverse(o))) => {
                            if o < d {
                                self.overflow.pop();
                                o
                            } else {
                                di += 1;
                                d
                            }
                        }
                    }
                };
                guard += 1;
                assert!(
                    guard < 50_000_000,
                    "event budget exceeded — combinational oscillation?"
                );
                let net = ev.net();
                let value = ev.value();
                let ev_time = ev.time_ps();
                debug_assert_ne!(self.values[net], value, "push-time filter missed a no-op");
                // Events arrive in non-decreasing time order, matching the
                // reference's post-sort stream.
                debug_assert!(ev_time >= settle || settle == 0.0);
                self.values[net] = value;
                settle = settle.max(ev_time);
                visit(ev_time, NetId::from_index(net), value);
                let lo = ct.sink_start[net] as usize;
                let hi = ct.sink_start[net + 1] as usize;
                for rec in &ct.sinks[lo..hi] {
                    let cell = &mut self.cells[rec.cell as usize];
                    let row = (cell.row & !(1u64 << rec.pin)) | ((value as u64) << rec.pin);
                    cell.row = row;
                    let out = rec.out_net as usize;
                    let out_val = (cell.mask >> row) & 1 == 1;
                    if out_val == self.scheduled[out] {
                        continue;
                    }
                    self.scheduled[out] = out_val;
                    // Same two-add association as the reference.
                    let t = (ev_time + rec.cell_delay_ps) + rec.out_delay_ps;
                    let evn = Event {
                        key: time_key(t),
                        seq,
                        net_val: (out as u32) << 1 | out_val as u32,
                    };
                    seq += 1;
                    let nb = (t * inv_w) as usize;
                    if nb <= b {
                        self.overflow.push(std::cmp::Reverse(evn));
                    } else {
                        if nb >= self.buckets.len() {
                            self.buckets.resize_with(nb + 1, Vec::new);
                        }
                        self.buckets[nb].push(evn);
                    }
                }
            }
            self.drain.clear();
            b += 1;
        }
        settle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventSimulator;

    /// Runs `cycles` clock cycles on both simulators from the same settled
    /// snapshot (with optional queued input changes before cycle 0) and
    /// asserts bit-identical `TimedRun`s.
    fn assert_bit_identical(
        nl: &Netlist,
        ann: &DelayAnnotation,
        snapshot: Vec<bool>,
        inputs: &[(NetId, bool)],
        cycles: usize,
    ) {
        let mut reference = EventSimulator::from_snapshot(nl, snapshot.clone());
        let ct = CompiledTiming::compile(nl, ann);
        let mut compiled = CompiledSimulator::from_snapshot(&ct, snapshot);
        for &(net, value) in inputs {
            reference.set_input(net, value);
            compiled.set_input(net, value);
        }
        for cycle in 0..cycles {
            let r = reference.clock_cycle(ann);
            let c = compiled.clock_cycle();
            assert_eq!(
                r.toggles.len(),
                c.toggles.len(),
                "cycle {cycle}: toggle count"
            );
            for (i, (a, b)) in r.toggles.iter().zip(&c.toggles).enumerate() {
                assert_eq!(
                    a.time_ps.to_bits(),
                    b.time_ps.to_bits(),
                    "cycle {cycle} #{i}"
                );
                assert_eq!(a.net, b.net, "cycle {cycle} toggle {i}: net");
                assert_eq!(a.new_value, b.new_value, "cycle {cycle} toggle {i}");
            }
            assert_eq!(
                r.settle_ps.to_bits(),
                c.settle_ps.to_bits(),
                "cycle {cycle}"
            );
            let bits = |v: &[f64]| v.iter().map(|t| t.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(&r.last_transition_ps),
                bits(&c.last_transition_ps),
                "cycle {cycle}: last transitions"
            );
        }
        // Final net state agrees too.
        for i in 0..nl.net_count() {
            let net = NetId::from_index(i);
            assert_eq!(reference.get(net), compiled.get(net), "net {net:?}");
        }
    }

    fn settled(nl: &Netlist, set: &[(NetId, bool)]) -> Vec<bool> {
        let mut fsim = nl.simulator().unwrap();
        for &(n, v) in set {
            fsim.set(n, v);
        }
        fsim.settle();
        fsim.snapshot()
    }

    #[test]
    fn matches_reference_on_chain() {
        let mut nl = Netlist::new("chain");
        let d = nl.add_input("d");
        let q = nl.add_dff(d, "r").unwrap();
        let a = nl.not_gate(q);
        let b = nl.not_gate(a);
        nl.add_output("b", b).unwrap();
        let ann = DelayAnnotation::uniform(&nl, 100.0, 50.0, 300.0, 80.0);
        let snap = settled(&nl, &[(d, true)]);
        assert_bit_identical(&nl, &ann, snap, &[], 3);
    }

    #[test]
    fn matches_reference_on_hazard_glitch() {
        let mut nl = Netlist::new("hazard");
        let d = nl.add_input("d");
        let q = nl.add_dff(d, "r").unwrap();
        let slow = nl.buf_gate(q);
        let y = nl.xor2(q, slow);
        nl.add_output("y", y).unwrap();
        let ann = DelayAnnotation::uniform(&nl, 100.0, 50.0, 300.0, 80.0);
        let snap = settled(&nl, &[(d, true)]);
        assert_bit_identical(&nl, &ann, snap, &[], 3);
    }

    #[test]
    fn matches_reference_on_reconvergent_race() {
        let mut nl = Netlist::new("race");
        let d = nl.add_input("d");
        let q = nl.add_dff(d, "r").unwrap();
        let slow_branch = nl.buf_gate(q);
        let fast_branch = nl.not_gate(q);
        let y = nl.and2(slow_branch, fast_branch);
        nl.add_output("y", y).unwrap();
        let mut ann = DelayAnnotation::uniform(&nl, 100.0, 50.0, 300.0, 80.0);
        ann.add_net_delay_ps(slow_branch, 5_000.0);
        let snap = settled(&nl, &[(d, true)]);
        assert_bit_identical(&nl, &ann, snap, &[], 3);
    }

    #[test]
    fn matches_reference_with_input_events_and_state() {
        // Toggle flip-flop plus a primary-input change on the first cycle.
        let mut nl = Netlist::new("t");
        let (dff, q) = nl.add_dff_uninit("r");
        let nq = nl.not_gate(q);
        nl.connect_dff_d(dff, nq).unwrap();
        let en = nl.add_input("en");
        let y = nl.and2(q, en);
        nl.add_output("y", y).unwrap();
        let ann = DelayAnnotation::uniform(&nl, 100.0, 50.0, 300.0, 80.0);
        let snap = settled(&nl, &[]);
        assert_bit_identical(&nl, &ann, snap, &[(en, true)], 5);
    }

    #[test]
    fn redundant_input_event_is_a_no_op_in_both() {
        // Setting an input to its current value must not toggle anything in
        // either implementation (the reference filters it at pop time, the
        // compiled path at push time).
        let mut nl = Netlist::new("noop");
        let a = nl.add_input("a");
        let y = nl.not_gate(a);
        nl.add_output("y", y).unwrap();
        let ann = DelayAnnotation::uniform(&nl, 100.0, 50.0, 300.0, 80.0);
        let snap = settled(&nl, &[]);
        assert_bit_identical(&nl, &ann, snap, &[(a, false)], 2);
    }

    #[test]
    fn zero_latency_annotation_degenerates_to_heap_order() {
        // All-zero delays force inv_w = 0 (every event in bucket 0, drained
        // via the overflow heap) and still match the reference bit for bit.
        let mut nl = Netlist::new("zero");
        let d = nl.add_input("d");
        let q = nl.add_dff(d, "r").unwrap();
        let a = nl.not_gate(q);
        let b = nl.xor2(a, q);
        nl.add_output("b", b).unwrap();
        let ann = DelayAnnotation::uniform(&nl, 0.0, 0.0, 0.0, 0.0);
        let snap = settled(&nl, &[(d, true)]);
        assert_bit_identical(&nl, &ann, snap, &[], 2);
    }

    #[test]
    fn time_key_orders_like_total_cmp() {
        let samples = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            -f64::MIN_POSITIVE,
            350.0,
            350.0000000001,
        ];
        for &x in &samples {
            for &y in &samples {
                assert_eq!(time_key(x).cmp(&time_key(y)), x.total_cmp(&y), "{x} vs {y}");
            }
            // The stored-key representation must round-trip exactly.
            assert_eq!(time_from_key(time_key(x)).to_bits(), x.to_bits(), "{x}");
        }
        let nan = f64::NAN;
        assert_eq!(time_from_key(time_key(nan)).to_bits(), nan.to_bits());
    }
}
