//! Static timing analysis: worst-case arrival times and critical paths.

use htd_netlist::{CellKind, NetId, Netlist, NetlistError};

use crate::DelayAnnotation;

/// A critical path: the worst-case timing arc from a launching source to an
/// endpoint net, as a net sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Nets along the path, source first.
    pub nets: Vec<NetId>,
    /// Arrival time at the endpoint, ps (including clock-to-Q).
    pub arrival_ps: f64,
}

/// Worst-case and best-case (data-independent) arrival times of every net.
///
/// Arrival of a flip-flop/port/constant output is `clk2q` (0 for consts);
/// max arrival of a LUT output is the max over inputs of
/// `arrival(in) + net_delay(in) + cell_delay`, and reading a net at a sink
/// adds its own net delay (the classical longest-path recurrence). Min
/// arrivals use the dual shortest-path recurrence and feed the hold-time
/// check.
#[derive(Debug, Clone)]
pub struct Sta {
    arrival_ps: Vec<f64>,
    min_arrival_ps: Vec<f64>,
}

impl Sta {
    /// Runs STA over the netlist with the given delays.
    ///
    /// # Errors
    ///
    /// Propagates levelization errors (combinational cycles).
    pub fn analyze(netlist: &Netlist, delays: &DelayAnnotation) -> Result<Self, NetlistError> {
        let levels = netlist.levelize()?;
        let mut arrival = vec![0.0f64; netlist.net_count()];
        let mut min_arrival = vec![0.0f64; netlist.net_count()];
        for (_, cell) in netlist.cells() {
            if let (CellKind::Dff, Some(q)) = (cell.kind(), cell.output()) {
                arrival[q.index()] = delays.clk2q_ps();
                min_arrival[q.index()] = delays.clk2q_ps();
            }
        }
        for &cell_id in levels.order() {
            let cell = netlist.cell(cell_id);
            let out = cell.output().expect("lut drives a net");
            let mut worst: f64 = 0.0;
            let mut best = f64::INFINITY;
            for &input in cell.inputs() {
                let net_d = delays.net_delay_ps(input);
                worst = worst.max(arrival[input.index()] + net_d);
                best = best.min(min_arrival[input.index()] + net_d);
            }
            if !best.is_finite() {
                best = 0.0; // zero-input LUTs cannot exist, defensive
            }
            arrival[out.index()] = worst + delays.cell_delay_ps(cell_id);
            min_arrival[out.index()] = best + delays.cell_delay_ps(cell_id);
        }
        Ok(Sta {
            arrival_ps: arrival,
            min_arrival_ps: min_arrival,
        })
    }

    /// Worst-case arrival time of `net`, ps.
    #[inline]
    pub fn arrival_ps(&self, net: NetId) -> f64 {
        self.arrival_ps[net.index()]
    }

    /// Best-case (earliest possible) arrival time of `net`, ps.
    #[inline]
    pub fn min_arrival_ps(&self, net: NetId) -> f64 {
        self.min_arrival_ps[net.index()]
    }

    /// Hold slack at the given endpoint nets (flip-flop `D` pins): the
    /// earliest data arrival minus the required hold window after the
    /// capturing edge. Negative slack means a hold violation — data races
    /// through in the same cycle it was launched.
    pub fn hold_slack_ps(
        &self,
        endpoints: &[NetId],
        delays: &DelayAnnotation,
        hold_ps: f64,
    ) -> f64 {
        endpoints
            .iter()
            .map(|&n| self.min_arrival_ps(n) + delays.net_delay_ps(n) - hold_ps)
            .fold(f64::INFINITY, f64::min)
    }

    /// Worst-case arrival over a set of endpoint nets — e.g. the 128
    /// state-register `D` pins. Includes the endpoints' own net delay.
    pub fn max_arrival_ps(
        &self,
        netlist: &Netlist,
        endpoints: &[NetId],
        delays: &DelayAnnotation,
    ) -> f64 {
        let _ = netlist;
        endpoints
            .iter()
            .map(|&n| self.arrival_ps(n) + delays.net_delay_ps(n))
            .fold(0.0, f64::max)
    }

    /// Minimum clock period meeting setup at the given endpoints, ps.
    pub fn min_period_ps(
        &self,
        netlist: &Netlist,
        endpoints: &[NetId],
        delays: &DelayAnnotation,
    ) -> f64 {
        self.max_arrival_ps(netlist, endpoints, delays) + delays.setup_ps()
    }

    /// Traces the critical path ending at `endpoint` by walking the
    /// worst-arrival predecessor chain backwards.
    pub fn critical_path(
        &self,
        netlist: &Netlist,
        delays: &DelayAnnotation,
        endpoint: NetId,
    ) -> CriticalPath {
        let mut nets = vec![endpoint];
        let mut current = endpoint;
        while let Some(driver) = netlist.net(current).driver() {
            let cell = netlist.cell(driver);
            if !matches!(cell.kind(), CellKind::Lut(_)) {
                break;
            }
            // Worst input arc.
            let worst = cell
                .inputs()
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    let ta = self.arrival_ps(a) + delays.net_delay_ps(a);
                    let tb = self.arrival_ps(b) + delays.net_delay_ps(b);
                    ta.partial_cmp(&tb).expect("finite arrivals")
                })
                .expect("lut has inputs");
            nets.push(worst);
            current = worst;
        }
        nets.reverse();
        CriticalPath {
            nets,
            arrival_ps: self.arrival_ps(endpoint),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_netlist::Netlist;

    /// Chain of n inverters between an input and an output.
    fn chain(n: usize) -> (Netlist, Vec<NetId>) {
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a");
        let mut nets = vec![a];
        let mut x = a;
        for _ in 0..n {
            x = nl.not_gate(x);
            nets.push(x);
        }
        nl.add_output("x", x).unwrap();
        (nl, nets)
    }

    #[test]
    fn arrival_accumulates_along_chain() {
        let (nl, nets) = chain(4);
        let ann = DelayAnnotation::uniform(&nl, 100.0, 50.0, 0.0, 80.0);
        let sta = Sta::analyze(&nl, &ann).unwrap();
        // Each stage adds 50 (input net) + 100 (LUT).
        for (i, &n) in nets.iter().enumerate() {
            assert_eq!(sta.arrival_ps(n), i as f64 * 150.0);
        }
        let end = *nets.last().unwrap();
        assert_eq!(
            sta.min_period_ps(&nl, &[end], &ann),
            4.0 * 150.0 + 50.0 + 80.0
        );
    }

    #[test]
    fn dff_sources_start_at_clk2q() {
        let mut nl = Netlist::new("t");
        let d = nl.add_input("d");
        let q = nl.add_dff(d, "r").unwrap();
        let y = nl.not_gate(q);
        nl.add_output("y", y).unwrap();
        let ann = DelayAnnotation::uniform(&nl, 100.0, 50.0, 300.0, 80.0);
        let sta = Sta::analyze(&nl, &ann).unwrap();
        assert_eq!(sta.arrival_ps(q), 300.0);
        assert_eq!(sta.arrival_ps(y), 300.0 + 50.0 + 100.0);
    }

    #[test]
    fn critical_path_follows_longest_branch() {
        let mut nl = Netlist::new("y");
        let a = nl.add_input("a");
        // Short branch: 1 LUT; long branch: 3 LUTs; then joined by an AND.
        let short = nl.not_gate(a);
        let l1 = nl.not_gate(a);
        let l2 = nl.not_gate(l1);
        let l3 = nl.not_gate(l2);
        let out = nl.and2(short, l3);
        nl.add_output("o", out).unwrap();
        let ann = DelayAnnotation::uniform(&nl, 100.0, 50.0, 0.0, 80.0);
        let sta = Sta::analyze(&nl, &ann).unwrap();
        let cp = sta.critical_path(&nl, &ann, out);
        assert_eq!(cp.nets.first(), Some(&a));
        assert!(cp.nets.contains(&l3));
        assert!(!cp.nets.contains(&short));
        assert_eq!(cp.arrival_ps, 4.0 * 150.0);
    }

    #[test]
    fn min_arrival_tracks_the_shortest_branch() {
        let mut nl = Netlist::new("y");
        let a = nl.add_input("a");
        let short = nl.not_gate(a);
        let l1 = nl.not_gate(a);
        let l2 = nl.not_gate(l1);
        let out = nl.and2(short, l2);
        nl.add_output("o", out).unwrap();
        let ann = DelayAnnotation::uniform(&nl, 100.0, 50.0, 0.0, 80.0);
        let sta = Sta::analyze(&nl, &ann).unwrap();
        // Short branch: 1 stage (150); long: 2 stages (300); AND adds 150.
        assert_eq!(sta.min_arrival_ps(out), 150.0 + 150.0);
        assert_eq!(sta.arrival_ps(out), 300.0 + 150.0);
        assert!(sta.min_arrival_ps(out) <= sta.arrival_ps(out));
    }

    #[test]
    fn hold_slack_detects_fast_paths() {
        let mut nl = Netlist::new("hold");
        let d = nl.add_input("d");
        let q = nl.add_dff(d, "r").unwrap();
        let fast = nl.buf_gate(q);
        let q2 = nl.add_dff(fast, "r2").unwrap();
        nl.add_output("q2", q2).unwrap();
        let ann = DelayAnnotation::uniform(&nl, 10.0, 5.0, 20.0, 80.0);
        let sta = Sta::analyze(&nl, &ann).unwrap();
        // D of r2 = fast net. Min arrival: clk2q(20) + 5 + 10 = 35; plus
        // its own net delay 5 = 40 at the pin.
        let endpoint = fast;
        assert!((sta.hold_slack_ps(&[endpoint], &ann, 30.0) - 10.0).abs() < 1e-9);
        // A 50 ps hold requirement is violated.
        assert!(sta.hold_slack_ps(&[endpoint], &ann, 50.0) < 0.0);
    }

    #[test]
    fn extra_net_delay_moves_the_critical_path() {
        let mut nl = Netlist::new("y");
        let a = nl.add_input("a");
        let p = nl.not_gate(a);
        let q = nl.not_gate(a);
        let out = nl.and2(p, q);
        nl.add_output("o", out).unwrap();
        let mut ann = DelayAnnotation::uniform(&nl, 100.0, 50.0, 0.0, 80.0);
        // Symmetric until q gets trojan-loaded.
        ann.add_net_delay_ps(q, 500.0);
        let sta = Sta::analyze(&nl, &ann).unwrap();
        let cp = sta.critical_path(&nl, &ann, out);
        assert!(cp.nets.contains(&q));
    }
}
