//! Timed event-driven simulation (transport delays).
//!
//! One [`EventSimulator::clock_cycle`] call replays a single clock period:
//! flip-flop outputs switch at `clk2q`, changes ripple through the LUT
//! network with annotated cell + net delays, and every net records the time
//! of its **last transition** — the data-dependent settling time that the
//! paper's clock-glitch attack measures, plus the full toggle stream that
//! the EM crate integrates into emanation traces.
//!
//! Transport-delay semantics deliberately let a LUT output toggle several
//! times within a cycle (glitches): real combinational logic does exactly
//! that, and those hazard toggles carry a large share of the EM signature.
//!
//! # Event semantics
//!
//! Events are *sink-visible* transitions: an event `(t, net, v)` means "at
//! time `t`, `net`'s value — as seen by its sinks — becomes `v`". A LUT
//! therefore evaluates exactly when an input arrives, and its output's
//! sink-visible event fires after `cell_delay + output_net_delay`. Because
//! that latency is constant per LUT, deliveries to any given LUT are
//! processed in causal order and the last scheduled event carries the final
//! value. (Net delays are lumped per net, so all sinks of a net see it at
//! the same time — the granularity at which the paper reasons about net
//! delays.)

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use htd_netlist::{CellKind, NetId, Netlist};

use crate::DelayAnnotation;

/// One net transition during a timed cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Toggle {
    /// Sink-visible transition time within the cycle, ps (0 = clock edge).
    pub time_ps: f64,
    /// The switching net.
    pub net: NetId,
    /// The value after the transition.
    pub new_value: bool,
}

/// Result of one timed clock cycle.
#[derive(Debug, Clone)]
pub struct TimedRun {
    /// Per net: sink-visible time of the last transition this cycle, or
    /// `f64::NEG_INFINITY` for nets that did not toggle.
    pub last_transition_ps: Vec<f64>,
    /// Every transition, in non-decreasing time order.
    pub toggles: Vec<Toggle>,
    /// Time of the final transition anywhere in the design, ps
    /// (0.0 if nothing toggled).
    pub settle_ps: f64,
}

impl TimedRun {
    /// Settling time of `net` at its sinks (e.g. a flip-flop `D` pin) —
    /// `None` if the net never toggled this cycle. Sink-visible times
    /// already include the net's routed delay.
    pub fn arrival_at_sinks_ps(&self, net: NetId, _delays: &DelayAnnotation) -> Option<f64> {
        let t = self.last_transition_ps[net.index()];
        if t == f64::NEG_INFINITY {
            None
        } else {
            Some(t)
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time_ps: f64,
    seq: u64,
    net: NetId,
    value: bool,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap via reversal at the call site; order by time then seq
        // for determinism.
        self.time_ps
            .total_cmp(&other.time_ps)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Event-driven timed simulator over a fixed netlist.
///
/// Create it from a settled functional-simulation snapshot
/// ([`htd_netlist::Simulator::snapshot`]), queue any primary-input changes,
/// then call [`EventSimulator::clock_cycle`] once per clock.
#[derive(Debug, Clone)]
pub struct EventSimulator<'a> {
    netlist: &'a Netlist,
    values: Vec<bool>,
    pending_inputs: Vec<(NetId, bool)>,
}

impl<'a> EventSimulator<'a> {
    /// Starts from a settled snapshot of net values.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` does not match the netlist's net count.
    pub fn from_snapshot(netlist: &'a Netlist, values: Vec<bool>) -> Self {
        assert_eq!(values.len(), netlist.net_count(), "snapshot size mismatch");
        EventSimulator {
            netlist,
            values,
            pending_inputs: Vec::new(),
        }
    }

    /// Queues a primary-input change: the new value becomes visible to the
    /// input net's sinks at its net delay past the next clock edge.
    pub fn set_input(&mut self, net: NetId, value: bool) {
        self.pending_inputs.push((net, value));
    }

    /// Current (sink-visible) value of a net.
    pub fn get(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    /// Runs one clock cycle with the given delays and returns the timing
    /// record. State (net values) persists into the next cycle.
    pub fn clock_cycle(&mut self, delays: &DelayAnnotation) -> TimedRun {
        let n_nets = self.netlist.net_count();
        let mut last_transition = vec![f64::NEG_INFINITY; n_nets];
        let mut toggles = Vec::new();
        let mut heap: BinaryHeap<std::cmp::Reverse<Event>> = BinaryHeap::new();
        let mut seq = 0u64;

        // Flip-flop capture: D is sampled at the edge; the new Q value
        // reaches the Q net's sinks at clk2q + net delay.
        for (_, cell) in self.netlist.cells() {
            if cell.kind() == CellKind::Dff {
                let d = cell.inputs()[0];
                let q = cell.output().expect("dff drives q");
                let d_val = self.values[d.index()];
                if d_val != self.values[q.index()] {
                    heap.push(std::cmp::Reverse(Event {
                        time_ps: delays.clk2q_ps() + delays.net_delay_ps(q),
                        seq,
                        net: q,
                        value: d_val,
                    }));
                    seq += 1;
                }
            }
        }
        // Primary-input changes land right after the edge.
        for (net, value) in self.pending_inputs.drain(..) {
            heap.push(std::cmp::Reverse(Event {
                time_ps: delays.net_delay_ps(net),
                seq,
                net,
                value,
            }));
            seq += 1;
        }

        let mut settle = 0.0f64;
        let mut guard = 0usize;
        while let Some(std::cmp::Reverse(ev)) = heap.pop() {
            guard += 1;
            assert!(
                guard < 50_000_000,
                "event budget exceeded — combinational oscillation?"
            );
            if self.values[ev.net.index()] == ev.value {
                continue;
            }
            self.values[ev.net.index()] = ev.value;
            last_transition[ev.net.index()] = ev.time_ps;
            settle = settle.max(ev.time_ps);
            toggles.push(Toggle {
                time_ps: ev.time_ps,
                net: ev.net,
                new_value: ev.value,
            });
            for &sink in self.netlist.net(ev.net).sinks() {
                let cell = self.netlist.cell(sink);
                if let CellKind::Lut(mask) = cell.kind() {
                    let mut row = 0u64;
                    for (pin, &inp) in cell.inputs().iter().enumerate() {
                        row |= (self.values[inp.index()] as u64) << pin;
                    }
                    let out_val = mask.eval_row(row);
                    let out = cell.output().expect("lut drives a net");
                    // Schedule unconditionally: the fixed per-LUT latency
                    // keeps deliveries causal, so the last event wins with
                    // the correct final value.
                    heap.push(std::cmp::Reverse(Event {
                        time_ps: ev.time_ps + delays.cell_delay_ps(sink) + delays.net_delay_ps(out),
                        seq,
                        net: out,
                        value: out_val,
                    }));
                    seq += 1;
                }
            }
        }
        toggles.sort_by(|a, b| a.time_ps.total_cmp(&b.time_ps));
        TimedRun {
            last_transition_ps: last_transition,
            toggles,
            settle_ps: settle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_netlist::Netlist;

    #[test]
    fn chain_settles_at_sum_of_delays() {
        let mut nl = Netlist::new("chain");
        let d = nl.add_input("d");
        let q = nl.add_dff(d, "r").unwrap();
        let a = nl.not_gate(q);
        let b = nl.not_gate(a);
        nl.add_output("b", b).unwrap();
        let ann = DelayAnnotation::uniform(&nl, 100.0, 50.0, 300.0, 80.0);
        let mut fsim = nl.simulator().unwrap();
        fsim.set(d, true);
        fsim.settle();
        let mut esim = EventSimulator::from_snapshot(&nl, fsim.snapshot());
        let run = esim.clock_cycle(&ann);
        // Q visible at 300+50 = 350; a at 350+100+50 = 500; b at 650.
        assert_eq!(run.last_transition_ps[q.index()], 350.0);
        assert_eq!(run.last_transition_ps[a.index()], 500.0);
        assert_eq!(run.last_transition_ps[b.index()], 650.0);
        assert_eq!(run.settle_ps, 650.0);
        assert_eq!(run.arrival_at_sinks_ps(b, &ann), Some(650.0));
        assert_eq!(run.toggles.len(), 3);
    }

    #[test]
    fn no_change_means_no_toggles() {
        let mut nl = Netlist::new("idle");
        let d = nl.add_input("d");
        let q = nl.add_dff(d, "r").unwrap();
        nl.add_output("q", q).unwrap();
        let ann = DelayAnnotation::uniform(&nl, 100.0, 50.0, 300.0, 80.0);
        let fsim = nl.simulator().unwrap();
        let mut esim = EventSimulator::from_snapshot(&nl, fsim.snapshot());
        let run = esim.clock_cycle(&ann);
        assert!(run.toggles.is_empty());
        assert_eq!(run.settle_ps, 0.0);
        assert_eq!(run.arrival_at_sinks_ps(q, &ann), None);
    }

    #[test]
    fn hazard_glitch_is_recorded() {
        // y = a XOR a' where a' is a delayed copy: a rising edge produces a
        // transient pulse on y (classic hazard).
        let mut nl = Netlist::new("hazard");
        let d = nl.add_input("d");
        let q = nl.add_dff(d, "r").unwrap();
        let slow = nl.buf_gate(q); // extra stage = extra delay
        let y = nl.xor2(q, slow);
        nl.add_output("y", y).unwrap();
        let ann = DelayAnnotation::uniform(&nl, 100.0, 50.0, 300.0, 80.0);
        let mut fsim = nl.simulator().unwrap();
        fsim.set(d, true);
        fsim.settle();
        let mut esim = EventSimulator::from_snapshot(&nl, fsim.snapshot());
        let run = esim.clock_cycle(&ann);
        // y toggles twice: up when q arrives, back down when slow arrives.
        let y_toggles: Vec<_> = run.toggles.iter().filter(|t| t.net == y).collect();
        assert_eq!(y_toggles.len(), 2);
        assert!(y_toggles[0].new_value);
        assert!(!y_toggles[1].new_value);
        // Final value matches functional sim.
        fsim.clock();
        assert_eq!(esim.get(y), fsim.get(y));
    }

    #[test]
    fn unequal_net_delays_still_converge_to_functional_values() {
        // Two reconvergent branches with very different net delays feeding
        // one AND: the final value must match the zero-delay simulation
        // regardless of delivery order (regression test for the stale-event
        // race fixed by sink-visible semantics).
        let mut nl = Netlist::new("race");
        let d = nl.add_input("d");
        let q = nl.add_dff(d, "r").unwrap();
        let slow_branch = nl.buf_gate(q);
        let fast_branch = nl.not_gate(q);
        let y = nl.and2(slow_branch, fast_branch);
        nl.add_output("y", y).unwrap();
        let mut ann = DelayAnnotation::uniform(&nl, 100.0, 50.0, 300.0, 80.0);
        // Make the slow branch's net extremely slow.
        ann.add_net_delay_ps(slow_branch, 5_000.0);
        let mut fsim = nl.simulator().unwrap();
        fsim.set(d, true);
        fsim.settle();
        let mut esim = EventSimulator::from_snapshot(&nl, fsim.snapshot());
        esim.clock_cycle(&ann);
        fsim.clock();
        assert_eq!(esim.get(y), fsim.get(y));
        assert_eq!(esim.get(slow_branch), fsim.get(slow_branch));
    }

    #[test]
    fn input_events_propagate_from_their_net_delay() {
        let mut nl = Netlist::new("in");
        let a = nl.add_input("a");
        let y = nl.not_gate(a);
        nl.add_output("y", y).unwrap();
        let ann = DelayAnnotation::uniform(&nl, 100.0, 50.0, 300.0, 80.0);
        let mut fsim = nl.simulator().unwrap();
        fsim.settle(); // y = !a = true in the settled snapshot
        let mut esim = EventSimulator::from_snapshot(&nl, fsim.snapshot());
        esim.set_input(a, true);
        let run = esim.clock_cycle(&ann);
        assert_eq!(run.last_transition_ps[a.index()], 50.0);
        assert_eq!(run.last_transition_ps[y.index()], 200.0);
        assert!(!esim.get(y));
    }

    #[test]
    fn multi_cycle_state_persists() {
        // Toggle flip-flop via inverter feedback.
        let mut nl = Netlist::new("t");
        let (dff, q) = nl.add_dff_uninit("r");
        let nq = nl.not_gate(q);
        nl.connect_dff_d(dff, nq).unwrap();
        nl.add_output("q", q).unwrap();
        let ann = DelayAnnotation::uniform(&nl, 100.0, 50.0, 300.0, 80.0);
        let mut fsim = nl.simulator().unwrap();
        fsim.settle();
        let mut esim = EventSimulator::from_snapshot(&nl, fsim.snapshot());
        for cycle in 0..5 {
            let run = esim.clock_cycle(&ann);
            fsim.clock();
            assert_eq!(esim.get(q), fsim.get(q), "cycle {cycle}");
            assert!(!run.toggles.is_empty());
        }
    }
}
