//! Delay annotation of a placed netlist.

use htd_fabric::{DieVariation, Placement, Technology};
use htd_netlist::{CellId, CellKind, NetId, Netlist};

/// Per-cell and per-net delays of one placed design on one (virtual) die —
/// the paper's `dS + dPV` terms of Eq. (2), with a slot for the trojan's
/// `dHT` increments of Eq. (3).
///
/// Net delays are lumped (one value per net, covering the driver-to-sink
/// route and fan-out loading); this matches the granularity at which the
/// paper reasons about "the delay of a net".
#[derive(Debug, Clone)]
pub struct DelayAnnotation {
    cell_delay_ps: Vec<f64>,
    net_delay_ps: Vec<f64>,
    extra_net_delay_ps: Vec<f64>,
    clk2q_ps: f64,
    setup_ps: f64,
    measurement_noise_ps: f64,
}

impl DelayAnnotation {
    /// Computes delays for `netlist` as placed by `placement`, using the
    /// `tech` parameters perturbed by the die's process variation.
    ///
    /// Unplaced combinational cells (possible only for designs built
    /// outside the placement flow) get nominal delays.
    pub fn annotate(
        netlist: &Netlist,
        placement: &Placement,
        tech: &Technology,
        die: &DieVariation,
    ) -> Self {
        let mut cell_delay_ps = vec![0.0; netlist.cell_count()];
        for (id, cell) in netlist.cells() {
            if let CellKind::Lut(_) = cell.kind() {
                let pv = placement
                    .site_of(id)
                    .map(|s| die.delay_factor(s.slice))
                    .unwrap_or(1.0);
                cell_delay_ps[id.index()] = tech.lut_delay_ps * pv;
            }
        }
        let mut net_delay_ps = vec![0.0; netlist.net_count()];
        for (id, net) in netlist.nets() {
            let Some(driver) = net.driver() else { continue };
            if net.sinks().is_empty() {
                continue;
            }
            // Only nets driven by placed logic have routed delay; port and
            // constant drivers model top-level wiring with the base delay.
            let from = placement.site_of(driver);
            let mut dist_max = 0.0f64;
            if let Some(from) = from {
                for &sink in net.sinks() {
                    if let Some(to) = placement.site_of(sink) {
                        dist_max = dist_max.max(from.slice.euclidean(to.slice));
                    }
                }
            }
            let pv = from.map(|s| die.delay_factor(s.slice)).unwrap_or(1.0);
            // Sub-linear fan-out loading: routers buffer high-fan-out nets,
            // so the penalty grows like √fanout rather than linearly.
            let fanout_extra =
                ((net.fanout().saturating_sub(1)) as f64).sqrt() * tech.fanout_delay_ps;
            net_delay_ps[id.index()] =
                (tech.net_delay_base_ps + tech.net_delay_per_slice_ps * dist_max + fanout_extra)
                    * pv;
        }
        DelayAnnotation {
            cell_delay_ps,
            net_delay_ps,
            extra_net_delay_ps: vec![0.0; netlist.net_count()],
            clk2q_ps: tech.dff_clk2q_ps * die.global_delay_factor(),
            setup_ps: tech.dff_setup_ps * die.global_delay_factor(),
            measurement_noise_ps: tech.measurement_noise_ps,
        }
    }

    /// A nominal annotation with uniform delays — useful in unit tests that
    /// exercise the simulators without a placement.
    pub fn uniform(
        netlist: &Netlist,
        lut_ps: f64,
        net_ps: f64,
        clk2q_ps: f64,
        setup_ps: f64,
    ) -> Self {
        let mut cell_delay_ps = vec![0.0; netlist.cell_count()];
        for (id, cell) in netlist.cells() {
            if matches!(cell.kind(), CellKind::Lut(_)) {
                cell_delay_ps[id.index()] = lut_ps;
            }
        }
        DelayAnnotation {
            cell_delay_ps,
            net_delay_ps: vec![net_ps; netlist.net_count()],
            extra_net_delay_ps: vec![0.0; netlist.net_count()],
            clk2q_ps,
            setup_ps,
            measurement_noise_ps: 0.0,
        }
    }

    /// Intrinsic delay of a cell (LUTs only; everything else is 0).
    #[inline]
    pub fn cell_delay_ps(&self, cell: CellId) -> f64 {
        self.cell_delay_ps[cell.index()]
    }

    /// Total delay of a net, including trojan-induced increments.
    #[inline]
    pub fn net_delay_ps(&self, net: NetId) -> f64 {
        self.net_delay_ps[net.index()] + self.extra_net_delay_ps[net.index()]
    }

    /// Registers an additional delay on a net — the trojan coupling term
    /// `dHT` of the paper's Eq. (3).
    pub fn add_net_delay_ps(&mut self, net: NetId, ps: f64) {
        if net.index() >= self.extra_net_delay_ps.len() {
            self.extra_net_delay_ps.resize(net.index() + 1, 0.0);
            // Nets added after annotation (trojan nets) start nominal.
        }
        self.extra_net_delay_ps[net.index()] += ps;
    }

    /// The trojan-induced part of a net's delay.
    #[inline]
    pub fn extra_net_delay_ps(&self, net: NetId) -> f64 {
        self.extra_net_delay_ps
            .get(net.index())
            .copied()
            .unwrap_or(0.0)
    }

    /// Grows the tables to cover a netlist that gained cells/nets after
    /// annotation (trojan insertion); new entries get `default_net_ps` /
    /// `default_lut_ps`.
    pub fn extend_for(&mut self, netlist: &Netlist, default_lut_ps: f64, default_net_ps: f64) {
        while self.cell_delay_ps.len() < netlist.cell_count() {
            let id = CellId::from_index(self.cell_delay_ps.len());
            let is_lut = matches!(netlist.cell(id).kind(), CellKind::Lut(_));
            self.cell_delay_ps
                .push(if is_lut { default_lut_ps } else { 0.0 });
        }
        if self.net_delay_ps.len() < netlist.net_count() {
            self.net_delay_ps
                .resize(netlist.net_count(), default_net_ps);
            self.extra_net_delay_ps.resize(netlist.net_count(), 0.0);
        }
    }

    /// Flip-flop clock-to-Q delay on this die.
    pub fn clk2q_ps(&self) -> f64 {
        self.clk2q_ps
    }

    /// Flip-flop setup time on this die.
    pub fn setup_ps(&self) -> f64 {
        self.setup_ps
    }

    /// Standard deviation of the per-measurement noise `dM`.
    pub fn measurement_noise_ps(&self) -> f64 {
        self.measurement_noise_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_fabric::{Device, DeviceConfig, VariationModel};
    use htd_netlist::Netlist;

    fn toy() -> Netlist {
        let mut nl = Netlist::new("toy");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.xor2(a, b);
        let y = nl.not_gate(x);
        nl.add_output("y", y).unwrap();
        nl
    }

    #[test]
    fn annotation_scales_with_process_variation() {
        let nl = toy();
        let device = Device::new(DeviceConfig::new(8, 8));
        let placement = Placement::place(&nl, &device).unwrap();
        let tech = Technology::virtex5();
        let fast = DieVariation::generate(&VariationModel::none(), &device, 0);
        let ann = DelayAnnotation::annotate(&nl, &placement, &tech, &fast);
        let lut = nl
            .cells()
            .find(|(_, c)| c.kind().occupies_lut_site())
            .unwrap()
            .0;
        assert_eq!(ann.cell_delay_ps(lut), tech.lut_delay_ps);

        // A die with variation gives different (but bounded) delays.
        let varied = DieVariation::generate(&VariationModel::nm65(), &device, 9);
        let ann2 = DelayAnnotation::annotate(&nl, &placement, &tech, &varied);
        let d = ann2.cell_delay_ps(lut);
        assert!(d > tech.lut_delay_ps * 0.7 && d < tech.lut_delay_ps * 1.3);
        assert_ne!(d, tech.lut_delay_ps);
    }

    #[test]
    fn net_delay_includes_fanout_and_distance() {
        let mut nl = Netlist::new("fan");
        let a = nl.add_input("a");
        let x = nl.not_gate(a);
        // x drives 3 sinks.
        let _s1 = nl.not_gate(x);
        let _s2 = nl.not_gate(x);
        let _s3 = nl.not_gate(x);
        let device = Device::new(DeviceConfig::new(8, 8));
        let placement = Placement::place(&nl, &device).unwrap();
        let tech = Technology::virtex5();
        let die = DieVariation::generate(&VariationModel::none(), &device, 0);
        let ann = DelayAnnotation::annotate(&nl, &placement, &tech, &die);
        let d = ann.net_delay_ps(x);
        assert!(d >= tech.net_delay_base_ps + (2.0f64).sqrt() * tech.fanout_delay_ps);
    }

    #[test]
    fn extra_delay_accumulates_and_reads_back() {
        let nl = toy();
        let device = Device::new(DeviceConfig::new(8, 8));
        let placement = Placement::place(&nl, &device).unwrap();
        let die = DieVariation::generate(&VariationModel::none(), &device, 0);
        let mut ann = DelayAnnotation::annotate(&nl, &placement, &Technology::virtex5(), &die);
        let net = nl.input_nets()[0];
        let base = ann.net_delay_ps(net);
        ann.add_net_delay_ps(net, 100.0);
        ann.add_net_delay_ps(net, 50.0);
        assert_eq!(ann.net_delay_ps(net), base + 150.0);
        assert_eq!(ann.extra_net_delay_ps(net), 150.0);
    }

    #[test]
    fn extend_for_covers_new_cells() {
        let mut nl = toy();
        let device = Device::new(DeviceConfig::new(8, 8));
        let placement = Placement::place(&nl, &device).unwrap();
        let die = DieVariation::generate(&VariationModel::none(), &device, 0);
        let mut ann = DelayAnnotation::annotate(&nl, &placement, &Technology::virtex5(), &die);
        let a = nl.input_nets()[0];
        let t = nl.not_gate(a); // trojan-style addition
        ann.extend_for(&nl, 200.0, 350.0);
        let t_cell = nl.net(t).driver().unwrap();
        assert_eq!(ann.cell_delay_ps(t_cell), 200.0);
        assert_eq!(ann.net_delay_ps(t), 350.0);
    }
}
