//! The clock-glitch delay measurement (paper Section III, Fig. 2).
//!
//! The physical setup shortens the clock period feeding one round in 35 ps
//! steps; a bit whose data path has not settled `setup` before the early
//! edge samples a stale/meta-stable value and shows up as a fault in the
//! ciphertext. The **step index at which each bit first faults** is the
//! measurement: it encodes that bit's data-dependent path delay to within
//! one step plus the per-measurement noise `dM` of Eq. (2).
//!
//! This module reproduces exactly that readout from simulated settling
//! times. It is deliberately independent of AES — any set of observed
//! endpoints works.

use rand::RngCore;

use htd_fabric::variation::standard_normal;

/// Sweep parameters. The paper used 51 steps of 35 ps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlitchParams {
    /// Clock period at step 0 (the widest/safest glitch), ps.
    pub start_period_ps: f64,
    /// Period decrement per step, ps.
    pub step_ps: f64,
    /// Number of decrement steps performed.
    pub steps: u16,
    /// Flip-flop setup time, ps.
    pub setup_ps: f64,
    /// Standard deviation of the per-measurement noise `dM`, ps.
    pub noise_ps: f64,
}

impl GlitchParams {
    /// The paper's sweep (51 × 35 ps) aimed so that the slowest observed
    /// path (`max_required_ps` = settle + setup) faults a few steps into
    /// the sweep and the sweep floor still reaches ~1.7 ns below it.
    pub fn paper_sweep(max_required_ps: f64, setup_ps: f64, noise_ps: f64) -> Self {
        let step_ps = 35.0;
        GlitchParams {
            start_period_ps: max_required_ps + 3.0 * step_ps,
            step_ps,
            steps: 51,
            setup_ps,
            noise_ps,
        }
    }

    /// Whether the parameters describe a realisable sweep: finite,
    /// strictly positive start period and step, and a positive, finite
    /// setup time and noise level (zero noise allowed). Strict
    /// deserializers use this to reject corrupted calibration artifacts
    /// before they reach the measurement code.
    pub fn is_physical(&self) -> bool {
        self.start_period_ps.is_finite()
            && self.start_period_ps > 0.0
            && self.step_ps.is_finite()
            && self.step_ps > 0.0
            && self.setup_ps.is_finite()
            && self.setup_ps >= 0.0
            && self.noise_ps.is_finite()
            && self.noise_ps >= 0.0
    }

    /// The glitch period applied at `step`.
    pub fn period_at(&self, step: u16) -> f64 {
        self.start_period_ps - self.step_ps * step as f64
    }

    /// Converts a fault-onset step back into a delay estimate, ps: the
    /// first violating period (the true requirement lies within one step
    /// above it).
    pub fn delay_estimate_ps(&self, onset: u16) -> f64 {
        self.period_at(onset)
    }

    /// The numeric encoding of [`FaultOnset::Never`] in a mean-onset
    /// matrix: one step **past the end of the sweep** (`steps`).
    ///
    /// Genuine onsets are clamped to at most `steps - 1` by
    /// [`GlitchSweep::onset_for_required`], so this sentinel is distinct
    /// from every real measurement: a path that genuinely faults on the
    /// very last step is one `step_ps` "faster" than a path the sweep
    /// never reached.
    pub fn never_onset_steps(&self) -> f64 {
        f64::from(self.steps)
    }
}

/// Fault onset of one observed bit in one sweep repetition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOnset {
    /// The bit first faulted at this step index (0-based).
    Step(u16),
    /// The bit never faulted within the sweep (its path is faster than the
    /// sweep floor, or it did not toggle this cycle).
    Never,
}

impl FaultOnset {
    /// The step index, if the bit faulted.
    pub fn step(self) -> Option<u16> {
        match self {
            FaultOnset::Step(s) => Some(s),
            FaultOnset::Never => None,
        }
    }
}

/// One glitch sweep: maps settling times to fault onsets.
#[derive(Debug, Clone, Copy)]
pub struct GlitchSweep {
    params: GlitchParams,
}

impl GlitchSweep {
    /// Creates a sweep with the given parameters.
    pub fn new(params: GlitchParams) -> Self {
        GlitchSweep { params }
    }

    /// The sweep parameters.
    pub fn params(&self) -> &GlitchParams {
        &self.params
    }

    /// Runs one repetition of the full sweep over the observed bits.
    ///
    /// `settle_at_sink_ps[i]` is bit `i`'s settling time at its register's
    /// `D` pin (`None` if the bit did not toggle — such a bit can never
    /// violate setup and thus never faults). Each bit receives an
    /// independent `dM` noise draw per repetition, as in the paper's 10
    /// repeated experiments.
    pub fn fault_onsets<R: RngCore + ?Sized>(
        &self,
        settle_at_sink_ps: &[Option<f64>],
        rng: &mut R,
    ) -> Vec<FaultOnset> {
        settle_at_sink_ps
            .iter()
            .map(|&settle| {
                let Some(settle) = settle else {
                    return FaultOnset::Never;
                };
                let required =
                    settle + self.params.setup_ps + self.params.noise_ps * standard_normal(rng);
                self.onset_for_required(required)
            })
            .collect()
    }

    /// The onset step for a given required period (no noise) — the
    /// smallest step whose period undercuts the requirement.
    pub fn onset_for_required(&self, required_ps: f64) -> FaultOnset {
        if self.params.period_at(0) < required_ps {
            return FaultOnset::Step(0);
        }
        let floor = self.params.period_at(self.params.steps - 1);
        if floor >= required_ps {
            return FaultOnset::Never;
        }
        // period_at(k) < required  ⇔  k > (start - required) / step.
        let k =
            ((self.params.start_period_ps - required_ps) / self.params.step_ps).floor() as u16 + 1;
        FaultOnset::Step(k.min(self.params.steps - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> GlitchParams {
        GlitchParams {
            start_period_ps: 10_000.0,
            step_ps: 35.0,
            steps: 51,
            setup_ps: 180.0,
            noise_ps: 0.0,
        }
    }

    #[test]
    fn period_decreases_linearly() {
        let p = params();
        assert_eq!(p.period_at(0), 10_000.0);
        assert_eq!(p.period_at(1), 9_965.0);
        assert_eq!(p.period_at(50), 10_000.0 - 50.0 * 35.0);
    }

    #[test]
    fn onset_matches_linear_search() {
        let sweep = GlitchSweep::new(params());
        for required in [9_990.0, 9_965.1, 9_930.0, 8_260.0, 10_100.0, 8_100.0] {
            // Reference: first k with period < required.
            let mut want = FaultOnset::Never;
            for k in 0..51 {
                if sweep.params().period_at(k) < required {
                    want = FaultOnset::Step(k);
                    break;
                }
            }
            assert_eq!(
                sweep.onset_for_required(required),
                want,
                "required {required}"
            );
        }
    }

    #[test]
    fn slower_paths_fault_earlier() {
        let sweep = GlitchSweep::new(params());
        let mut rng = StdRng::seed_from_u64(1);
        let onsets = sweep.fault_onsets(
            &[Some(9_500.0), Some(9_000.0), Some(8_500.0), None],
            &mut rng,
        );
        let s: Vec<Option<u16>> = onsets.iter().map(|o| o.step()).collect();
        assert!(s[0].unwrap() < s[1].unwrap());
        assert!(s[1].unwrap() < s[2].unwrap());
        assert_eq!(s[3], None);
    }

    #[test]
    fn delay_estimate_inverts_onset_within_one_step() {
        let sweep = GlitchSweep::new(params());
        let required = 9_471.0;
        let FaultOnset::Step(k) = sweep.onset_for_required(required) else {
            panic!("must fault");
        };
        let est = sweep.params().delay_estimate_ps(k);
        assert!(est < required && est > required - 35.0 - 1e-9, "est {est}");
    }

    #[test]
    fn noise_jitters_the_onset_by_about_one_step() {
        let p = GlitchParams {
            noise_ps: 20.0,
            ..params()
        };
        let sweep = GlitchSweep::new(p);
        // Fixed-seed statistical check: the seed is pinned to a stream
        // that keeps the 200-draw extreme within ±3σ (the bound below is
        // a ~2/3-probability event per stream, so the pin matters).
        let mut rng = StdRng::seed_from_u64(1);
        // Requirement placed exactly between two steps.
        let settle = vec![Some(9_482.5 - p.setup_ps)];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            if let Some(s) = sweep.fault_onsets(&settle, &mut rng)[0].step() {
                seen.insert(s);
            }
        }
        assert!(seen.len() >= 2, "noise should straddle steps: {seen:?}");
        assert!(seen.len() <= 4, "noise too violent: {seen:?}");
    }

    #[test]
    fn never_sentinel_is_distinct_from_every_real_onset() {
        let p = params();
        let sweep = GlitchSweep::new(p);
        // A requirement just barely above the sweep floor faults exactly on
        // the last step; the clamp in onset_for_required keeps it at
        // steps - 1.
        let floor = p.period_at(p.steps - 1);
        assert_eq!(
            sweep.onset_for_required(floor + 0.5),
            FaultOnset::Step(p.steps - 1)
        );
        // A requirement below the floor never faults, and its numeric
        // encoding sits strictly past every genuine onset.
        assert_eq!(sweep.onset_for_required(floor - 0.5), FaultOnset::Never);
        assert_eq!(p.never_onset_steps(), f64::from(p.steps));
        for k in 0..p.steps {
            assert!(f64::from(k) < p.never_onset_steps());
        }
    }

    #[test]
    fn paper_sweep_covers_the_slowest_path() {
        let p = GlitchParams::paper_sweep(9_000.0, 180.0, 12.0);
        assert_eq!(p.steps, 51);
        assert_eq!(p.step_ps, 35.0);
        let sweep = GlitchSweep::new(p);
        // The slowest path faults a few steps in.
        let FaultOnset::Step(k) = sweep.onset_for_required(9_000.0) else {
            panic!("must fault within sweep");
        };
        assert!((2..=5).contains(&k), "k = {k}");
    }
}
