//! Property-based tests: on arbitrary random netlists, the timed event
//! simulator must agree with the zero-delay functional simulator, and STA
//! must upper-bound every observed settling time.

use htd_netlist::{LutMask, NetId, Netlist};
use htd_timing::{DelayAnnotation, EventSimulator, Sta};
use proptest::prelude::*;

/// Recipe for one random synchronous netlist.
#[derive(Debug, Clone)]
struct Recipe {
    n_inputs: usize,
    n_dffs: usize,
    luts: Vec<(u64, Vec<usize>)>, // (mask bits, input picks)
    dff_d_picks: Vec<usize>,
    stimulus: Vec<u64>, // input pattern per cycle
}

fn recipe() -> impl Strategy<Value = Recipe> {
    (1usize..=4, 0usize..=3).prop_flat_map(|(n_inputs, n_dffs)| {
        let luts = proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(0usize..64, 1..=4)),
            1..=14,
        );
        let dff_d = proptest::collection::vec(0usize..64, n_dffs);
        let stim = proptest::collection::vec(any::<u64>(), 1..=5);
        (Just(n_inputs), Just(n_dffs), luts, dff_d, stim).prop_map(
            |(n_inputs, n_dffs, luts, dff_d_picks, stimulus)| Recipe {
                n_inputs,
                n_dffs,
                luts,
                dff_d_picks,
                stimulus,
            },
        )
    })
}

/// Materialises a recipe into a valid netlist (picks indices modulo the
/// set of nets available so far — always acyclic by construction).
fn build(recipe: &Recipe) -> (Netlist, Vec<NetId>, Vec<NetId>) {
    let mut nl = Netlist::new("random");
    let inputs: Vec<NetId> = (0..recipe.n_inputs)
        .map(|i| nl.add_input(format!("in{i}")))
        .collect();
    let mut dff_cells = Vec::new();
    let mut nets: Vec<NetId> = inputs.clone();
    for i in 0..recipe.n_dffs {
        let (cell, q) = nl.add_dff_uninit(format!("r{i}"));
        dff_cells.push(cell);
        nets.push(q);
    }
    let mut observable = Vec::new();
    for (mask_bits, picks) in &recipe.luts {
        let ins: Vec<NetId> = picks.iter().map(|&p| nets[p % nets.len()]).collect();
        let mask = LutMask::new(ins.len(), *mask_bits).expect("≤6 inputs");
        let out = nl.add_lut(&ins, mask).expect("valid lut");
        nets.push(out);
        observable.push(out);
    }
    for (cell, pick) in dff_cells.iter().zip(&recipe.dff_d_picks) {
        nl.connect_dff_d(*cell, nets[pick % nets.len()])
            .expect("connects");
    }
    // Observe everything so nothing is trivially dead.
    for (i, &net) in observable.iter().enumerate() {
        nl.add_output(format!("o{i}"), net).expect("valid output");
    }
    (nl, inputs, observable)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After each clock cycle, every net value in the event simulator
    /// matches the functional simulator, for arbitrary circuits, delays
    /// and stimulus.
    #[test]
    fn event_sim_matches_functional(
        r in recipe(),
        lut_ps in 1.0f64..500.0,
        net_ps in 1.0f64..500.0,
        clk2q in 1.0f64..500.0,
    ) {
        let (nl, inputs, observable) = build(&r);
        let ann = DelayAnnotation::uniform(&nl, lut_ps, net_ps, clk2q, 50.0);
        let mut fsim = nl.simulator().expect("valid netlist");
        fsim.settle();
        let mut esim = EventSimulator::from_snapshot(&nl, fsim.snapshot());
        for &pattern in &r.stimulus {
            // Event-sim semantics: inputs queued with set_input become
            // visible just *after* the next edge, so the edge captures the
            // old values and the new inputs settle during the cycle. The
            // functional mirror is: clock first, then apply + settle.
            for (i, &inp) in inputs.iter().enumerate() {
                esim.set_input(inp, (pattern >> i) & 1 == 1);
            }
            esim.clock_cycle(&ann);
            fsim.clock();
            for (i, &inp) in inputs.iter().enumerate() {
                fsim.set(inp, (pattern >> i) & 1 == 1);
            }
            fsim.settle();
            for &net in &observable {
                prop_assert_eq!(esim.get(net), fsim.get(net), "net {}", net);
            }
        }
    }

    /// STA's worst-case arrival bounds every event-sim settling time.
    #[test]
    fn sta_bounds_every_settle(r in recipe()) {
        let (nl, inputs, observable) = build(&r);
        let ann = DelayAnnotation::uniform(&nl, 120.0, 60.0, 250.0, 80.0);
        let sta = Sta::analyze(&nl, &ann).expect("acyclic");
        let mut fsim = nl.simulator().expect("valid netlist");
        fsim.settle();
        let mut esim = EventSimulator::from_snapshot(&nl, fsim.snapshot());
        for (k, &pattern) in r.stimulus.iter().enumerate() {
            for (i, &inp) in inputs.iter().enumerate() {
                esim.set_input(inp, (pattern >> i) & 1 == 1);
            }
            let run = esim.clock_cycle(&ann);
            for &net in &observable {
                if let Some(t) = run.arrival_at_sinks_ps(net, &ann) {
                    let bound = sta.arrival_ps(net) + ann.net_delay_ps(net);
                    prop_assert!(
                        t <= bound + 1e-6,
                        "cycle {}: net {} settled at {} > bound {}",
                        k, net, t, bound
                    );
                }
            }
        }
    }

    /// The settle time reported equals the max over recorded toggles, and
    /// toggles are sorted by time.
    #[test]
    fn timed_run_invariants(r in recipe()) {
        let (nl, inputs, _) = build(&r);
        let ann = DelayAnnotation::uniform(&nl, 100.0, 50.0, 300.0, 80.0);
        let mut fsim = nl.simulator().expect("valid netlist");
        fsim.settle();
        let mut esim = EventSimulator::from_snapshot(&nl, fsim.snapshot());
        for &inp in &inputs {
            esim.set_input(inp, true);
        }
        let run = esim.clock_cycle(&ann);
        let max_toggle = run
            .toggles
            .iter()
            .map(|t| t.time_ps)
            .fold(0.0f64, f64::max);
        prop_assert_eq!(run.settle_ps, max_toggle.max(0.0));
        for w in run.toggles.windows(2) {
            prop_assert!(w[0].time_ps <= w[1].time_ps);
        }
        // Every toggle is also recorded as a last transition no earlier
        // than itself.
        for t in &run.toggles {
            prop_assert!(run.last_transition_ps[t.net.index()] >= t.time_ps);
        }
    }
}
