//! Timed simulation of the full AES-128 netlist: the event simulator must
//! agree functionally with the zero-delay simulator, and settling times
//! must behave like real path delays (data-dependent, PV-sensitive).

use htd_aes::structural::{AesNetlist, AesSim};
use htd_fabric::{Device, DeviceConfig, DieVariation, Placement, Technology, VariationModel};
use htd_timing::{DelayAnnotation, EventSimulator, GlitchParams, GlitchSweep, Sta};

fn setup() -> (AesNetlist, Placement, Device) {
    let aes = AesNetlist::generate().expect("AES generates");
    let device = Device::new(DeviceConfig::virtex5_lx30_scaled());
    let placement = Placement::place(aes.netlist(), &device).expect("AES fits");
    (aes, placement, device)
}

#[test]
fn timed_round10_matches_functional_ciphertext() {
    let (aes, placement, device) = setup();
    let die = DieVariation::generate(&VariationModel::none(), &device, 0);
    let ann = DelayAnnotation::annotate(aes.netlist(), &placement, &Technology::virtex5(), &die);

    let pt = *b"\x32\x43\xf6\xa8\x88\x5a\x30\x8d\x31\x31\x98\xa2\xe0\x37\x07\x34";
    let key = *b"\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7\x15\x88\x09\xcf\x4f\x3c";

    // Drive up to the edge that launches round 10: after 8 round steps
    // the state holds trace[8] and the counter reads 9; the next timed
    // cycle (edge E9) launches trace[9] and lets the round-10 logic settle
    // at the state D pins, and the edge after that (E10) captures the
    // ciphertext.
    let mut sim = AesSim::new(&aes).unwrap();
    sim.start(&pt, &key);
    for _ in 0..8 {
        sim.step_round();
    }
    assert_eq!(sim.round(), 9);
    let mut esim = EventSimulator::from_snapshot(aes.netlist(), sim.simulator().snapshot());
    let _round9_launch = esim.clock_cycle(&ann); // edge E9: round-10 logic settles
    let run = esim.clock_cycle(&ann); // edge E10: ciphertext captured
                                      // Timed final state equals the functional ciphertext.
    sim.step_round();
    sim.step_round();
    let want = sim.state();
    let mut got = [0u8; 16];
    for (i, &q) in aes.ciphertext().iter().enumerate() {
        if esim.get(q) {
            got[i / 8] |= 1 << (i % 8);
        }
    }
    assert_eq!(got, want);
    // The round actually produced activity and settled in a plausible span.
    assert!(run.toggles.len() > 500, "toggles {}", run.toggles.len());
    assert!(
        run.settle_ps > 1_000.0 && run.settle_ps < 20_000.0,
        "settle {}",
        run.settle_ps
    );
}

#[test]
fn settle_times_are_data_dependent() {
    let (aes, placement, device) = setup();
    let die = DieVariation::generate(&VariationModel::none(), &device, 0);
    let ann = DelayAnnotation::annotate(aes.netlist(), &placement, &Technology::virtex5(), &die);

    let settle_for = |pt: &[u8; 16], key: &[u8; 16]| -> Vec<Option<f64>> {
        let mut sim = AesSim::new(&aes).unwrap();
        sim.start(pt, key);
        for _ in 0..8 {
            sim.step_round();
        }
        let mut esim = EventSimulator::from_snapshot(aes.netlist(), sim.simulator().snapshot());
        let run = esim.clock_cycle(&ann); // edge E9: round-10 evaluation
        aes.state_d()
            .iter()
            .map(|&d| run.arrival_at_sinks_ps(d, &ann))
            .collect()
    };
    let count_diffs = |a: &[Option<f64>], b: &[Option<f64>]| {
        a.iter()
            .zip(b)
            .filter(|(x, y)| match (x, y) {
                (Some(x), Some(y)) => (x - y).abs() > 1.0,
                (None, None) => false,
                _ => true,
            })
            .count()
    };

    // Varying the full (P, K) pair — the paper's experimental unit —
    // re-routes most bits' last-arriving transition.
    let a = settle_for(&[0u8; 16], &[0x55u8; 16]);
    let b = settle_for(&[0xA7u8; 16], &[0xC3u8; 16]);
    let diffs_pk = count_diffs(&a, &b);
    assert!(
        diffs_pk > 64,
        "expected broad (P,K)-dependence, got {diffs_pk} differing bits"
    );

    // With the key fixed, bits whose settling is dominated by the
    // (plaintext-independent) key-schedule arrival legitimately coincide,
    // but plaintext data paths must still move a visible subset.
    let c = settle_for(&[0xA7u8; 16], &[0x55u8; 16]);
    let diffs_p = count_diffs(&a, &c);
    assert!(
        diffs_p >= 5,
        "expected plaintext-dependence on some bits, got {diffs_p}"
    );
}

#[test]
fn sta_bounds_event_sim() {
    let (aes, placement, device) = setup();
    let die = DieVariation::generate(&VariationModel::nm65(), &device, 3);
    let ann = DelayAnnotation::annotate(aes.netlist(), &placement, &Technology::virtex5(), &die);
    let sta = Sta::analyze(aes.netlist(), &ann).unwrap();
    let bound = sta.max_arrival_ps(aes.netlist(), aes.state_d(), &ann);

    let mut sim = AesSim::new(&aes).unwrap();
    sim.start(&[0x13u8; 16], &[0x37u8; 16]);
    for _ in 0..8 {
        sim.step_round();
    }
    let mut esim = EventSimulator::from_snapshot(aes.netlist(), sim.simulator().snapshot());
    let run = esim.clock_cycle(&ann);
    for &d in aes.state_d() {
        if let Some(t) = run.arrival_at_sinks_ps(d, &ann) {
            assert!(
                t <= bound + 1e-6,
                "event sim ({t}) exceeded STA bound ({bound})"
            );
        }
    }
}

#[test]
fn glitch_sweep_faults_slow_bits_first_on_aes() {
    let (aes, placement, device) = setup();
    let die = DieVariation::generate(&VariationModel::none(), &device, 0);
    let tech = Technology::virtex5();
    let ann = DelayAnnotation::annotate(aes.netlist(), &placement, &tech, &die);

    let mut sim = AesSim::new(&aes).unwrap();
    sim.start(&[0x01u8; 16], &[0xFEu8; 16]);
    for _ in 0..8 {
        sim.step_round();
    }
    let mut esim = EventSimulator::from_snapshot(aes.netlist(), sim.simulator().snapshot());
    let run = esim.clock_cycle(&ann);
    let settles: Vec<Option<f64>> = aes
        .state_d()
        .iter()
        .map(|&d| run.arrival_at_sinks_ps(d, &ann))
        .collect();
    let max_required = settles.iter().flatten().fold(0.0f64, |a, &b| a.max(b)) + tech.dff_setup_ps;
    let sweep = GlitchSweep::new(GlitchParams::paper_sweep(
        max_required,
        tech.dff_setup_ps,
        0.0,
    ));
    let mut rng = rand::rngs::mock::StepRng::new(0, 0);
    let onsets = sweep.fault_onsets(&settles, &mut rng);
    // The slowest bit faults earliest; every toggling bit slower than the
    // sweep floor faults somewhere in the 51 steps.
    let steps: Vec<_> = onsets.iter().filter_map(|o| o.step()).collect();
    assert!(!steps.is_empty());
    let min_step = *steps.iter().min().unwrap();
    assert!((2..=5).contains(&min_step), "min {min_step}");
    // Delay spread over the faulted bits is hundreds of ps (data paths
    // differ), visible as a spread of onset steps.
    let max_step = *steps.iter().max().unwrap();
    assert!(max_step > min_step + 3, "spread {min_step}..{max_step}");
}
