//! Parametric trojan zoo: deterministic families of [`TrojanSpec`]s for
//! the `htd zoo` detection-rate sweep.
//!
//! The zoo spans the paper's size axis (HT 1/2/3 are the same
//! combinational trigger at 32/64/128 taps) and adds the two other
//! trigger families of this crate — the encryption counter and the
//! consecutive-match state machine — so a single sweep produces a
//! trigger-kind × trigger-size grid. Generation is pure and
//! deterministic: the same [`ZooConfig`] always yields the same specs in
//! the same order, which is what lets `htd zoo` pin its output fixture
//! and stay worker-invariant.

use crate::{Payload, PlacementStrategy, Trigger, TrojanError, TrojanSpec};

/// Consecutive matching cycles required by zoo state-machine triggers.
///
/// Fixed rather than swept: it multiplies trigger rarity without changing
/// the footprint much, so sweeping it would mostly duplicate rows.
pub const ZOO_FSM_STATES: usize = 4;

/// The trigger families the zoo can sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZooTrigger {
    /// Combinational all-ones comparator over the tapped SubBytes bits
    /// (the paper's HT 1/2/3 family); size = tap count.
    Comparator,
    /// Per-encryption counter with an equality comparator (the paper's
    /// sequential trojan); size = counter width in bits (1..=64).
    Counter,
    /// Sequence-detector state machine over the tapped bits, firing after
    /// [`ZOO_FSM_STATES`] consecutive all-ones cycles; size = tap count.
    StateMachine,
}

impl ZooTrigger {
    /// Every family, in the fixed sweep order.
    pub const ALL: [ZooTrigger; 3] = [
        ZooTrigger::Comparator,
        ZooTrigger::Counter,
        ZooTrigger::StateMachine,
    ];

    /// Short tag used in generated spec names and report rows.
    pub fn tag(&self) -> &'static str {
        match self {
            ZooTrigger::Comparator => "comb",
            ZooTrigger::Counter => "ctr",
            ZooTrigger::StateMachine => "fsm",
        }
    }

    /// Parses a [`tag`](Self::tag) back into a family.
    pub fn from_tag(tag: &str) -> Option<ZooTrigger> {
        ZooTrigger::ALL.into_iter().find(|k| k.tag() == tag)
    }
}

/// A zoo sweep definition: trigger sizes × trigger families, sharing one
/// payload and one placement strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZooConfig {
    /// Trigger sizes to sweep: tap counts for [`ZooTrigger::Comparator`]
    /// and [`ZooTrigger::StateMachine`], counter widths for
    /// [`ZooTrigger::Counter`].
    pub sizes: Vec<usize>,
    /// Trigger families to sweep.
    pub kinds: Vec<ZooTrigger>,
    /// Payload shared by every generated spec.
    pub payload: Payload,
    /// Placement strategy shared by every generated spec.
    pub placement: PlacementStrategy,
}

impl Default for ZooConfig {
    /// A small three-sizes × three-families grid that fits every family's
    /// validity range.
    fn default() -> Self {
        ZooConfig {
            sizes: vec![8, 16, 32],
            kinds: ZooTrigger::ALL.to_vec(),
            payload: Payload::default(),
            placement: PlacementStrategy::default(),
        }
    }
}

impl ZooConfig {
    /// Generates the full size × family grid, sizes outer and families
    /// inner, in the order both appear in the config.
    ///
    /// # Errors
    ///
    /// Returns [`TrojanError::InvalidTrigger`] if any size is zero or a
    /// counter width exceeds 64; no partial grid is returned.
    pub fn generate(&self) -> Result<Vec<TrojanSpec>, TrojanError> {
        let mut specs = Vec::with_capacity(self.sizes.len() * self.kinds.len());
        for &size in &self.sizes {
            for &kind in &self.kinds {
                specs.push(self.spec(kind, size)?);
            }
        }
        Ok(specs)
    }

    /// Splits the grid into a training set and a held-out set by trigger
    /// family: every spec of the `holdout` family lands in the second
    /// list, everything else in the first, both in [`generate`] order.
    /// This is the labelled-set split `htd train` uses so the learned
    /// classifier is always evaluated on a trigger family it never saw.
    ///
    /// [`generate`]: Self::generate
    ///
    /// # Errors
    ///
    /// Same as [`generate`](Self::generate): the whole grid must be
    /// valid; no partial split is returned.
    pub fn split_holdout(
        &self,
        holdout: ZooTrigger,
    ) -> Result<(Vec<TrojanSpec>, Vec<TrojanSpec>), TrojanError> {
        let mut train = Vec::new();
        let mut held_out = Vec::new();
        for &size in &self.sizes {
            for &kind in &self.kinds {
                let spec = self.spec(kind, size)?;
                if kind == holdout {
                    held_out.push(spec);
                } else {
                    train.push(spec);
                }
            }
        }
        Ok((train, held_out))
    }

    /// Builds the spec for one grid point.
    ///
    /// # Errors
    ///
    /// Returns [`TrojanError::InvalidTrigger`] for a zero size or a
    /// counter width above 64.
    pub fn spec(&self, kind: ZooTrigger, size: usize) -> Result<TrojanSpec, TrojanError> {
        if size == 0 {
            return Err(TrojanError::InvalidTrigger {
                reason: "zoo trigger size must be positive",
            });
        }
        let trigger = match kind {
            ZooTrigger::Comparator => Trigger::CombinationalAllOnes { taps: size },
            ZooTrigger::Counter => {
                if size > 64 {
                    return Err(TrojanError::InvalidTrigger {
                        reason: "zoo counter width must be 1..=64",
                    });
                }
                // All-ones target: representable at every width and never
                // reached in any detection experiment.
                Trigger::SequentialCounter {
                    width: size,
                    target: u64::MAX >> (64 - size),
                }
            }
            ZooTrigger::StateMachine => Trigger::StateMachine {
                taps: size,
                states: ZOO_FSM_STATES,
            },
        };
        Ok(TrojanSpec {
            name: format!("zoo-{}-{}", kind.tag(), size),
            trigger,
            payload: self.payload,
            placement: self.placement,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_ordered() {
        let cfg = ZooConfig::default();
        let a = cfg.generate().unwrap();
        let b = cfg.generate().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 9);
        let names: Vec<&str> = a.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names[..3], ["zoo-comb-8", "zoo-ctr-8", "zoo-fsm-8"]);
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len(), "spec names must be unique");
    }

    #[test]
    fn invalid_grid_points_are_rejected_whole() {
        let cfg = ZooConfig {
            sizes: vec![8, 0],
            ..ZooConfig::default()
        };
        assert!(matches!(
            cfg.generate(),
            Err(TrojanError::InvalidTrigger { .. })
        ));
        let cfg = ZooConfig {
            sizes: vec![128],
            kinds: vec![ZooTrigger::Counter],
            ..ZooConfig::default()
        };
        assert!(matches!(
            cfg.generate(),
            Err(TrojanError::InvalidTrigger { .. })
        ));
    }

    #[test]
    fn holdout_split_partitions_the_grid_in_order() {
        let cfg = ZooConfig::default();
        let all = cfg.generate().unwrap();
        let (train, held_out) = cfg.split_holdout(ZooTrigger::Counter).unwrap();
        assert_eq!(train.len() + held_out.len(), all.len());
        assert!(train.iter().all(|s| !s.name.contains("-ctr-")));
        assert!(held_out.iter().all(|s| s.name.contains("-ctr-")));
        // Both halves preserve generation order.
        let mut merged: Vec<&TrojanSpec> = Vec::new();
        let (mut t, mut h) = (train.iter(), held_out.iter());
        let (mut tn, mut hn) = (t.next(), h.next());
        for spec in &all {
            if tn.is_some_and(|s| s == spec) {
                merged.push(tn.unwrap());
                tn = t.next();
            } else {
                assert_eq!(hn.unwrap(), spec);
                merged.push(hn.unwrap());
                hn = h.next();
            }
        }
        assert_eq!(merged.len(), all.len());
    }

    #[test]
    fn tags_round_trip() {
        for kind in ZooTrigger::ALL {
            assert_eq!(ZooTrigger::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(ZooTrigger::from_tag("nope"), None);
    }

    #[test]
    fn counter_targets_fit_their_width() {
        let cfg = ZooConfig::default();
        for width in [1usize, 8, 63, 64] {
            match cfg.spec(ZooTrigger::Counter, width).unwrap().trigger {
                Trigger::SequentialCounter { target, .. } => {
                    if width < 64 {
                        assert!(target < 1u64 << width);
                    }
                }
                other => panic!("unexpected trigger {other:?}"),
            }
        }
    }
}
