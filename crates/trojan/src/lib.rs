//! Hardware trojan models, layout-level insertion, and the parasitic
//! signatures a dormant trojan leaves behind.
//!
//! The crate reproduces Section II of the paper:
//!
//! * [`TrojanSpec`] describes a trojan: a [`Trigger`] (the paper's
//!   combinational all-ones detector over `k` SubBytes input signals, or a
//!   per-encryption counter with comparator) and a [`Payload`]
//!   (denial-of-service). Presets for the paper's five instances —
//!   HT-comb, HT-seq, HT 1/2/3 — are provided.
//! * [`insert`] performs the paper's FPGA-Editor-style insertion: trojan
//!   gates go into *unused* LUT/FF sites as close as possible to the nets
//!   they tap, and **no original cell or route is touched** (the golden and
//!   infected designs differ only by the added logic).
//! * [`apply_coupling`] adds the trojan's passive delay signature to a
//!   [`htd_timing::DelayAnnotation`]: the power-grid coupling term `dHT` of
//!   the paper's Eq. (3). (The *electrical load* signature on tapped nets
//!   needs no special handling — re-annotating the infected netlist sees
//!   the increased fan-out automatically, and the trigger's switching
//!   activity reaches the EM simulation through the ordinary event-driven
//!   toggle stream.)
//!
//! # Example
//!
//! ```
//! use htd_aes::AesNetlist;
//! use htd_fabric::{Device, DeviceConfig, Placement};
//! use htd_trojan::{insert, TrojanSpec};
//!
//! let mut aes = AesNetlist::generate()?;
//! let device = Device::new(DeviceConfig::virtex5_lx30_scaled());
//! let mut placement = Placement::place(aes.netlist(), &device)?;
//! let trojan = insert(&mut aes, &mut placement, &TrojanSpec::ht1())?;
//! assert_eq!(trojan.tapped_nets.len(), 32);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coupling;
mod error;
mod insert;
mod model;
mod zoo;

pub use coupling::apply_coupling;
pub use error::TrojanError;
pub use insert::{insert, InsertedTrojan};
pub use model::{Payload, PlacementStrategy, Trigger, TrojanSpec};
pub use zoo::{ZooConfig, ZooTrigger, ZOO_FSM_STATES};
