//! The trojan's passive delay signature through the shared power grid —
//! the `dHT` term of the paper's Eq. (3).
//!
//! Section III-B: *"Each implemented wire can be considered as a HT sensor.
//! Even if no logical connection exists between the design and the HT, both
//! share the same power grid inside the FPGA."* Every trojan cell loads the
//! power distribution network at its slice; every victim net sees a delay
//! increment that decays with distance to those slices.

use htd_fabric::{Placement, PowerGrid, Technology};
use htd_netlist::Netlist;
use htd_timing::DelayAnnotation;

use crate::InsertedTrojan;

/// Adds the passive delay signature of `trojan` to `annotation`:
///
/// 1. **Tap loading** — every net the trigger taps gains
///    [`Technology::tap_load_ps`]: splicing a route spur onto an existing
///    net adds real capacitance and wirelength. This is the dominant
///    effect, matching the large (up to ~1.4 ns) per-bit shifts of Fig. 3.
/// 2. **Power-grid coupling** — every net driven by a placed cell gains the
///    [`PowerGrid`] kernel summed over all trojan cells, so bigger trojans
///    shift more and near nets shift most (the paper's "every wire is a HT
///    sensor").
///
/// Call this on the *infected* device's annotation after
/// [`insert`](crate::insert); the golden device, having no trojan, gets no
/// shift.
pub fn apply_coupling(
    annotation: &mut DelayAnnotation,
    netlist: &Netlist,
    placement: &Placement,
    tech: &Technology,
    grid: &PowerGrid,
    trojan: &InsertedTrojan,
) {
    for &tap in &trojan.tapped_nets {
        annotation.add_net_delay_ps(tap, tech.tap_load_ps);
    }
    if trojan.slices.is_empty() {
        return;
    }
    for (net_id, net) in netlist.nets() {
        let Some(driver) = net.driver() else { continue };
        let Some(site) = placement.site_of(driver) else {
            continue;
        };
        let shift = grid.delay_shift_ps(site.slice, &trojan.slices);
        if shift > 0.0 {
            annotation.add_net_delay_ps(net_id, shift);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{insert, TrojanSpec};
    use htd_aes::AesNetlist;
    use htd_fabric::{Device, DeviceConfig, DieVariation, Technology, VariationModel};

    fn setup(spec: &TrojanSpec) -> (AesNetlist, Placement, InsertedTrojan) {
        let mut aes = AesNetlist::generate().unwrap();
        let device = Device::new(DeviceConfig::virtex5_lx30_scaled());
        let mut placement = Placement::place(aes.netlist(), &device).unwrap();
        let trojan = insert(&mut aes, &mut placement, spec).unwrap();
        (aes, placement, trojan)
    }

    #[test]
    fn coupling_shifts_every_placed_net() {
        let (aes, placement, trojan) = setup(&TrojanSpec::ht1());
        let device = *placement.device();
        let die = DieVariation::generate(&VariationModel::none(), &device, 0);
        let tech = Technology::virtex5();
        let mut ann = DelayAnnotation::annotate(aes.netlist(), &placement, &tech, &die);
        ann.extend_for(aes.netlist(), tech.lut_delay_ps, tech.net_delay_base_ps);
        apply_coupling(
            &mut ann,
            aes.netlist(),
            &placement,
            &tech,
            &PowerGrid::virtex5(),
            &trojan,
        );
        // Every state-register Q net got some positive shift.
        for &q in aes.subbytes_inputs() {
            assert!(ann.extra_net_delay_ps(q) > 0.0);
        }
    }

    #[test]
    fn bigger_trojans_shift_more() {
        let tech = Technology::virtex5();
        let grid = PowerGrid::virtex5();
        let mut shifts = Vec::new();
        for spec in TrojanSpec::size_sweep() {
            let (aes, placement, trojan) = setup(&spec);
            let device = *placement.device();
            let die = DieVariation::generate(&VariationModel::none(), &device, 0);
            let mut ann = DelayAnnotation::annotate(aes.netlist(), &placement, &tech, &die);
            ann.extend_for(aes.netlist(), tech.lut_delay_ps, tech.net_delay_base_ps);
            apply_coupling(&mut ann, aes.netlist(), &placement, &tech, &grid, &trojan);
            let total: f64 = aes
                .subbytes_inputs()
                .iter()
                .map(|&q| ann.extra_net_delay_ps(q))
                .sum();
            shifts.push(total);
        }
        assert!(shifts[0] < shifts[1] && shifts[1] < shifts[2], "{shifts:?}");
    }

    #[test]
    fn nets_near_the_trojan_shift_most() {
        let (aes, placement, trojan) = setup(&TrojanSpec::ht1());
        let device = *placement.device();
        let die = DieVariation::generate(&VariationModel::none(), &device, 0);
        let tech = Technology::virtex5();
        let grid = PowerGrid::virtex5();
        let mut ann = DelayAnnotation::annotate(aes.netlist(), &placement, &tech, &die);
        ann.extend_for(aes.netlist(), tech.lut_delay_ps, tech.net_delay_base_ps);
        apply_coupling(&mut ann, aes.netlist(), &placement, &tech, &grid, &trojan);
        // Pair up nets by distance of their drivers to the trojan centroid.
        let t0 = trojan.slices[0];
        let mut near = (f64::INFINITY, 0.0);
        let mut far = (0.0f64, 0.0);
        for (id, net) in aes.netlist().nets() {
            let Some(driver) = net.driver() else { continue };
            let Some(site) = placement.site_of(driver) else {
                continue;
            };
            let d = t0.euclidean(site.slice);
            let shift = ann.extra_net_delay_ps(id);
            if d < near.0 {
                near = (d, shift);
            }
            if d > far.0 {
                far = (d, shift);
            }
        }
        assert!(
            near.1 > far.1,
            "near shift {} should exceed far shift {}",
            near.1,
            far.1
        );
    }

    #[test]
    fn shifts_land_in_the_papers_range() {
        // Fig. 3 shows per-bit delay differences from tens of ps up to
        // ~1.4 ns for trojans of this size class.
        let (aes, placement, trojan) = setup(&TrojanSpec::ht_comb());
        let device = *placement.device();
        let die = DieVariation::generate(&VariationModel::none(), &device, 0);
        let tech = Technology::virtex5();
        let mut ann = DelayAnnotation::annotate(aes.netlist(), &placement, &tech, &die);
        ann.extend_for(aes.netlist(), tech.lut_delay_ps, tech.net_delay_base_ps);
        apply_coupling(
            &mut ann,
            aes.netlist(),
            &placement,
            &tech,
            &PowerGrid::virtex5(),
            &trojan,
        );
        let shifts: Vec<f64> = aes
            .subbytes_inputs()
            .iter()
            .map(|&q| ann.extra_net_delay_ps(q))
            .collect();
        let max = shifts.iter().cloned().fold(0.0, f64::max);
        let min = shifts.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max > 30.0, "max shift {max} too small to observe");
        assert!(max < 1_500.0, "max shift {max} unrealistically large");
        assert!(min > 0.0);
    }
}
