//! Layout-level trojan insertion (the paper's Section II-A flow).
//!
//! The insertion mimics the authors' FPGA Editor procedure: starting from
//! the *placed* golden design, trojan gates are added to **unused** sites
//! near their tap points. No original cell moves and no original route
//! changes; the infected design is the golden design plus extra logic —
//! precisely the attack model of an untrusted foundry editing a GDS.

use htd_aes::AesNetlist;
use htd_fabric::{Placement, Site, SiteKind, SliceCoord};
use htd_netlist::{CellId, CellKind, LutMask, NetId};

use crate::{Payload, PlacementStrategy, Trigger, TrojanError, TrojanSpec};

/// Record of an inserted trojan: its cells, taps and geometry.
#[derive(Debug, Clone)]
pub struct InsertedTrojan {
    /// The specification this instance was built from.
    pub spec: TrojanSpec,
    /// Every added cell (LUTs, flip-flops; port cells excluded).
    pub cells: Vec<CellId>,
    /// The pre-existing nets the trigger taps (their fan-out grew by the
    /// tap — the electrical-load part of the trojan's signature).
    pub tapped_nets: Vec<NetId>,
    /// The trigger output net (high = trojan fires).
    pub trigger_net: NetId,
    /// The payload output net (wired to the `ht_payload` port).
    pub payload_net: NetId,
    /// For [`Payload::LeakKey`]: the leak selector counter nets (LSB
    /// first); empty for other payloads.
    pub selector_nets: Vec<NetId>,
    /// Slice of every placed trojan cell (duplicates = several cells in
    /// one slice; used as coupling weights by
    /// [`apply_coupling`](crate::apply_coupling)).
    pub slices: Vec<SliceCoord>,
}

impl InsertedTrojan {
    /// Number of *distinct* slices the trojan occupies (the paper's area
    /// unit).
    pub fn distinct_slices(&self) -> usize {
        let mut s = self.slices.clone();
        s.sort();
        s.dedup();
        s.len()
    }

    /// Trojan area as a fraction of the device (cf. the paper's "0.19 % of
    /// slices in the FPGA").
    pub fn fraction_of_device(&self, placement: &Placement) -> f64 {
        self.distinct_slices() as f64 / placement.device().slice_count() as f64
    }

    /// Trojan area relative to a reference design's slice count (cf. the
    /// paper's "occupies 0.5 % of original AES").
    pub fn fraction_of_design(&self, design_slices: usize) -> f64 {
        self.distinct_slices() as f64 / design_slices as f64
    }
}

/// Inserts `spec` into a placed AES design.
///
/// On success the netlist gains the trigger/payload logic plus an
/// `ht_payload` output port, the placement gains sites for the new cells
/// (chosen nearest to the centroid of the tapped nets' drivers), and
/// nothing else changes.
///
/// # Errors
///
/// Returns [`TrojanError::NotEnoughTaps`] / [`TrojanError::InvalidTrigger`]
/// for bad specs and [`TrojanError::NoFreeSites`] if the device cannot host
/// the trojan.
pub fn insert(
    aes: &mut AesNetlist,
    placement: &mut Placement,
    spec: &TrojanSpec,
) -> Result<InsertedTrojan, TrojanError> {
    let cells_before = aes.netlist().cell_count();

    let (tapped_nets, trigger_net) = match spec.trigger {
        Trigger::CombinationalAllOnes { taps } => {
            if taps == 0 {
                return Err(TrojanError::InvalidTrigger {
                    reason: "combinational trigger needs at least one tap",
                });
            }
            let available = aes.subbytes_inputs().len();
            if taps > available {
                return Err(TrojanError::NotEnoughTaps {
                    requested: taps,
                    available,
                });
            }
            let tapped: Vec<NetId> = aes.subbytes_inputs()[..taps].to_vec();
            let nl = aes.netlist_mut();
            let trigger = nl.and_many(&tapped);
            (tapped, trigger)
        }
        Trigger::SequentialCounter { width, target } => {
            if width == 0 || width > 64 {
                return Err(TrojanError::InvalidTrigger {
                    reason: "counter width must be 1..=64",
                });
            }
            if width < 64 && target >= (1u64 << width) {
                return Err(TrojanError::InvalidTrigger {
                    reason: "comparator target exceeds counter range",
                });
            }
            let enable = aes.load();
            let nl = aes.netlist_mut();
            let trigger = build_counter_trigger(nl, enable, width, target)?;
            (vec![enable], trigger)
        }
        Trigger::StealthProbe { taps } => {
            if taps == 0 {
                return Err(TrojanError::InvalidTrigger {
                    reason: "stealth probe needs at least one tap",
                });
            }
            let available = aes.subbytes_inputs().len();
            if taps > available {
                return Err(TrojanError::NotEnoughTaps {
                    requested: taps,
                    available,
                });
            }
            let tapped: Vec<NetId> = aes.subbytes_inputs()[..taps].to_vec();
            let nl = aes.netlist_mut();
            // Constant-zero LUTs: real electrical loads, zero switching.
            let probes: Vec<NetId> = tapped
                .chunks(6)
                .enumerate()
                .map(|(i, group)| {
                    let mask = LutMask::new(group.len(), 0).expect("≤6-input mask");
                    nl.add_lut_named(group, mask, format!("ht_probe[{i}]"))
                })
                .collect::<Result<_, _>>()?;
            // The "trigger" is a constant-zero combine of the probes: it
            // can never fire and never toggles.
            let trigger = if probes.len() == 1 {
                probes[0]
            } else {
                let mask = LutMask::new(probes.len().min(6), 0).expect("≤6-input mask");
                nl.add_lut_named(&probes[..probes.len().min(6)], mask, "ht_probe_root")?
            };
            (tapped, trigger)
        }
        Trigger::StateMachine { taps, states } => {
            if taps == 0 {
                return Err(TrojanError::InvalidTrigger {
                    reason: "state-machine trigger needs at least one tap",
                });
            }
            if states == 0 || states > 31 {
                return Err(TrojanError::InvalidTrigger {
                    reason: "state-machine depth must be 1..=31",
                });
            }
            let available = aes.subbytes_inputs().len();
            if taps > available {
                return Err(TrojanError::NotEnoughTaps {
                    requested: taps,
                    available,
                });
            }
            let tapped: Vec<NetId> = aes.subbytes_inputs()[..taps].to_vec();
            let nl = aes.netlist_mut();
            let matched = nl.and_many(&tapped);
            let trigger = build_sequence_trigger(nl, matched, states)?;
            (tapped, trigger)
        }
    };

    // Payload. The paper never activates its payloads, and leaving the
    // victim logic untouched keeps the golden/infected functional
    // equivalence that the detection methods rely on — so both payloads
    // terminate on a dedicated `ht_payload` port.
    let (payload_net, selector_nets) = match spec.payload {
        Payload::DenialOfService => {
            let nl = aes.netlist_mut();
            let p = nl.buf_gate(trigger_net);
            nl.add_output("ht_payload", p)?;
            (p, Vec::new())
        }
        Payload::LeakKey => {
            let rk = aes.round_key_q().to_vec();
            let nl = aes.netlist_mut();
            // Arm latch: once the trigger fires, stay armed forever.
            let (arm_ff, armed) = nl.add_dff_uninit("ht_armed");
            let arm_d = nl.or2(trigger_net, armed);
            nl.connect_dff_d(arm_ff, arm_d)?;
            // 7-bit rotating selector, ticking while armed.
            let selector = build_gated_counter(nl, armed, 7, "ht_sel")?;
            // 128:1 key-bit mux tree + gate on the armed latch.
            let bit = mux_tree(nl, &selector, &rk)?;
            let p = nl.and2(armed, bit);
            nl.add_output("ht_payload", p)?;
            (p, selector)
        }
    };

    // ---- Place the new cells into unused sites near the taps ------------
    let nl = aes.netlist();
    let tap_drivers: Vec<CellId> = tapped_nets
        .iter()
        .filter_map(|&n| nl.net(n).driver())
        .collect();
    let centroid = placement
        .centroid(&tap_drivers)
        .unwrap_or(SliceCoord::new(0, 0));
    let target = match spec.placement {
        PlacementStrategy::NearTaps | PlacementStrategy::Spread => centroid,
        PlacementStrategy::Corner => SliceCoord::new(0, 0),
    };

    let new_cells: Vec<CellId> = (cells_before..nl.cell_count())
        .map(CellId::from_index)
        .filter(|&c| matches!(nl.cell(c).kind(), CellKind::Lut(_) | CellKind::Dff))
        .collect();
    let lut_count = new_cells
        .iter()
        .filter(|&&c| matches!(nl.cell(c).kind(), CellKind::Lut(_)))
        .count();
    let ff_count = new_cells.len() - lut_count;
    let free_luts = pick_sites(
        placement.nearest_free_sites(SiteKind::Lut, target),
        lut_count,
        spec.placement,
    );
    let free_ffs = pick_sites(
        placement.nearest_free_sites(SiteKind::Ff, target),
        ff_count,
        spec.placement,
    );
    let (mut next_lut, mut next_ff) = (0usize, 0usize);
    let mut slices = Vec::with_capacity(new_cells.len());
    for &cell in &new_cells {
        let site = match nl.cell(cell).kind() {
            CellKind::Lut(_) => {
                let s = free_luts.get(next_lut).ok_or(TrojanError::NoFreeSites)?;
                next_lut += 1;
                *s
            }
            CellKind::Dff => {
                let s = free_ffs.get(next_ff).ok_or(TrojanError::NoFreeSites)?;
                next_ff += 1;
                *s
            }
            _ => unreachable!("filtered to placeable kinds"),
        };
        placement.place_cell_at(nl, cell, site)?;
        slices.push(site.slice);
    }

    Ok(InsertedTrojan {
        spec: spec.clone(),
        cells: new_cells,
        tapped_nets,
        trigger_net,
        payload_net,
        selector_nets,
        slices,
    })
}

/// Chooses the sites to fill from a distance-ordered free-site list.
///
/// [`PlacementStrategy::NearTaps`] and [`PlacementStrategy::Corner`] pack
/// into the closest sites (the ordering already encodes the strategy via
/// the search origin); [`PlacementStrategy::Spread`] strides through the
/// list so consecutive cells land spaced apart.
fn pick_sites(free: Vec<Site>, needed: usize, strategy: PlacementStrategy) -> Vec<Site> {
    match strategy {
        PlacementStrategy::NearTaps | PlacementStrategy::Corner => free,
        PlacementStrategy::Spread => {
            if needed == 0 {
                return free;
            }
            let stride = (free.len() / needed).max(1);
            free.iter().step_by(stride).copied().collect()
        }
    }
}

/// Builds the sequence-detector state machine behind
/// [`Trigger::StateMachine`]: a saturating consecutive-match counter that
/// increments while `matched` is high (holding at `states`) and resets to
/// zero on any mismatch. Returns the comparator net `state == states`.
///
/// With `states ≤ 31` the counter needs at most five bits, so every
/// next-state bit fits one LUT6 over `[q₀..q_{w−1}, matched]`.
fn build_sequence_trigger(
    nl: &mut htd_netlist::Netlist,
    matched: NetId,
    states: usize,
) -> Result<NetId, TrojanError> {
    let width = (usize::BITS - states.leading_zeros()) as usize;
    let mut cells = Vec::with_capacity(width);
    let mut qs = Vec::with_capacity(width);
    for i in 0..width {
        let (c, q) = nl.add_dff_uninit(format!("ht_fsm[{i}]"));
        cells.push(c);
        qs.push(q);
    }
    for (i, &cell) in cells.iter().enumerate() {
        let mut inputs = qs.clone();
        inputs.push(matched);
        let mask = LutMask::from_fn(inputs.len(), move |r| {
            let matched = (r >> width) & 1 == 1;
            if !matched {
                return false; // any mismatch resets the count
            }
            let state = (r & ((1u64 << width) - 1)) as usize;
            let next = (state + 1).min(states);
            (next >> i) & 1 == 1
        });
        let d = nl.add_lut_named(&inputs, mask, format!("ht_fsm_next[{i}]"))?;
        nl.connect_dff_d(cell, d)?;
    }
    Ok(nl.eq_const(&qs, states as u64))
}

/// Builds an `enable`-gated up-counter of `width` bits plus an equality
/// comparator against `target`; returns the comparator (trigger) net.
fn build_counter_trigger(
    nl: &mut htd_netlist::Netlist,
    enable: NetId,
    width: usize,
    target: u64,
) -> Result<NetId, TrojanError> {
    let qs = build_gated_counter(nl, enable, width, "ht_ctr")?;
    Ok(nl.eq_const(&qs, target))
}

/// Builds an `enable`-gated up-counter and returns its `Q` nets (LSB
/// first).
///
/// The increment logic is packed the way a mapper would: bits in groups of
/// four share a group carry, each bit costing one LUT6
/// (`d = q ⊕ (carry ∧ lower-bits-of-group)` with the enable folded into the
/// group-0 carry).
fn build_gated_counter(
    nl: &mut htd_netlist::Netlist,
    enable: NetId,
    width: usize,
    name: &str,
) -> Result<Vec<NetId>, TrojanError> {
    // Create the flip-flops first so feedback can reference Q.
    let mut cells = Vec::with_capacity(width);
    let mut qs = Vec::with_capacity(width);
    for i in 0..width {
        let (c, q) = nl.add_dff_uninit(format!("{name}[{i}]"));
        cells.push(c);
        qs.push(q);
    }
    let mut carry = enable; // increment once per enabled cycle
    for (g, group) in qs.clone().chunks(4).enumerate() {
        let base = g * 4;
        for (i, &q) in group.iter().enumerate() {
            // Inputs: q, carry, then the lower bits of this group.
            let mut inputs = vec![q, carry];
            inputs.extend_from_slice(&group[..i]);
            let mask = LutMask::from_fn(inputs.len(), move |r| {
                let q = r & 1 == 1;
                let carry = r & 2 == 2;
                let lowers_all_one = {
                    let lower_bits = r >> 2;
                    let lower_count = i as u32;
                    lower_bits.count_ones() == lower_count
                };
                q ^ (carry && lowers_all_one)
            });
            let d = nl.add_lut_named(&inputs, mask, format!("{name}_inc[{}]", base + i))?;
            nl.connect_dff_d(cells[base + i], d)?;
        }
        // Group carry-out: carry ∧ all four group bits.
        let mut cin = vec![carry];
        cin.extend_from_slice(group);
        carry = nl.and_many(&cin);
    }
    Ok(qs)
}

/// Builds a wide mux selecting `data[sel]` with the given select bits (LSB
/// first); data is padded by repetition of its last element up to the
/// selectable size.
///
/// Packed the way a mapper would: two select bits per LUT6 level (4:1
/// muxes), with a final 2:1 stage for an odd select bit.
fn mux_tree(
    nl: &mut htd_netlist::Netlist,
    sel: &[NetId],
    data: &[NetId],
) -> Result<NetId, TrojanError> {
    if data.is_empty() {
        return Err(TrojanError::InvalidTrigger {
            reason: "mux tree needs at least one data input",
        });
    }
    let mut layer: Vec<NetId> = data.to_vec();
    let mut sel_idx = 0usize;
    while layer.len() > 1 {
        if sel_idx >= sel.len() {
            // Out of select bits: the remaining entries are unreachable;
            // keep the first.
            layer.truncate(1);
            break;
        }
        let remaining_sel = sel.len() - sel_idx;
        if remaining_sel >= 2 && layer.len() > 2 {
            while !layer.len().is_multiple_of(4) {
                layer.push(*layer.last().expect("non-empty layer"));
            }
            let s = [sel[sel_idx], sel[sel_idx + 1]];
            layer = layer
                .chunks(4)
                .map(|c| nl.mux4(s, [c[0], c[1], c[2], c[3]]))
                .collect();
            sel_idx += 2;
        } else {
            if !layer.len().is_multiple_of(2) {
                layer.push(*layer.last().expect("non-empty layer"));
            }
            let s = sel[sel_idx];
            layer = layer.chunks(2).map(|c| nl.mux2(s, c[0], c[1])).collect();
            sel_idx += 1;
        }
    }
    Ok(layer[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_aes::structural::AesSim;
    use htd_fabric::{Device, DeviceConfig};

    fn hex16(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for i in 0..16 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    fn placed_aes() -> (AesNetlist, Placement) {
        let aes = AesNetlist::generate().unwrap();
        let device = Device::new(DeviceConfig::virtex5_lx30_scaled());
        let placement = Placement::place(aes.netlist(), &device).unwrap();
        (aes, placement)
    }

    #[test]
    fn infected_aes_still_encrypts_correctly() {
        let (mut aes, mut placement) = placed_aes();
        insert(&mut aes, &mut placement, &TrojanSpec::ht_comb()).unwrap();
        let mut sim = AesSim::new(&aes).unwrap();
        let ct = sim.encrypt(
            &hex16("3243f6a8885a308d313198a2e0370734"),
            &hex16("2b7e151628aed2a6abf7158809cf4f3c"),
        );
        assert_eq!(ct, hex16("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn original_placement_is_untouched() {
        let (mut aes, mut placement) = placed_aes();
        let before: Vec<_> = aes
            .netlist()
            .cells()
            .map(|(id, _)| placement.site_of(id))
            .collect();
        insert(&mut aes, &mut placement, &TrojanSpec::ht3()).unwrap();
        for (i, site) in before.iter().enumerate() {
            assert_eq!(
                placement.site_of(CellId::from_index(i)),
                *site,
                "cell {i} moved"
            );
        }
    }

    #[test]
    fn tap_fanout_grows() {
        let (mut aes, mut placement) = placed_aes();
        let tap = aes.subbytes_inputs()[0];
        let fanout_before = aes.netlist().net(tap).fanout();
        let t = insert(&mut aes, &mut placement, &TrojanSpec::ht1()).unwrap();
        assert!(t.tapped_nets.contains(&tap));
        assert!(aes.netlist().net(tap).fanout() > fanout_before);
    }

    #[test]
    fn area_fractions_track_paper_sizes() {
        let (aes0, placement0) = placed_aes();
        let aes_slices = placement0.used_slices();
        let mut previous = 0.0;
        for spec in TrojanSpec::size_sweep() {
            let (mut aes, mut placement) = placed_aes();
            let t = insert(&mut aes, &mut placement, &spec).unwrap();
            let frac = t.fraction_of_design(aes_slices);
            assert!(
                frac > previous,
                "{} not larger than its predecessor",
                spec.name
            );
            previous = frac;
            // The paper's HT1/2/3 occupy 0.5/1.0/1.7 % of the AES.
            assert!(
                (0.002..0.03).contains(&frac),
                "{}: fraction {frac} out of expected band",
                spec.name
            );
        }
        let _ = aes0;
    }

    #[test]
    fn combinational_trigger_fires_only_on_all_ones() {
        let (mut aes, mut placement) = placed_aes();
        let t = insert(&mut aes, &mut placement, &TrojanSpec::ht1()).unwrap();
        let mut sim = aes.netlist().simulator().unwrap();
        // Force the state register (first 128 flip-flops in netlist order)
        // to all-ones on the tapped bits.
        let n_dffs = aes.netlist().dff_cells().count();
        let mut regs = vec![false; n_dffs];
        for r in regs.iter_mut().take(32) {
            *r = true;
        }
        sim.load_registers(&regs);
        assert!(sim.get(t.trigger_net), "trigger must fire on all-ones");
        assert!(sim.get(t.payload_net), "payload follows trigger");
        regs[7] = false;
        sim.load_registers(&regs);
        assert!(!sim.get(t.trigger_net), "one zero tap must disarm it");
    }

    #[test]
    fn sequential_trigger_counts_encryptions() {
        let (mut aes, mut placement) = placed_aes();
        let spec = TrojanSpec {
            name: "HT-seq-test".into(),
            trigger: Trigger::SequentialCounter {
                width: 8,
                target: 3,
            },
            payload: Payload::DenialOfService,
            placement: PlacementStrategy::NearTaps,
        };
        let t = insert(&mut aes, &mut placement, &spec).unwrap();
        let mut sim = AesSim::new(&aes).unwrap();
        let pt = [0u8; 16];
        let key = [1u8; 16];
        // The comparator fires while the counter holds 3, i.e. after the
        // third encryption's load pulse.
        let mut fired_after = None;
        for n in 1..=5 {
            sim.encrypt(&pt, &key);
            if sim.simulator().get(t.trigger_net) && fired_after.is_none() {
                fired_after = Some(n);
            }
        }
        assert_eq!(fired_after, Some(3));
    }

    #[test]
    fn mux_tree_selects_exactly() {
        use htd_netlist::Netlist;
        let mut nl = Netlist::new("mux");
        let data: Vec<_> = (0..128).map(|i| nl.add_input(format!("d{i}"))).collect();
        let sel: Vec<_> = (0..7).map(|i| nl.add_input(format!("s{i}"))).collect();
        let out = mux_tree(&mut nl, &sel, &data).unwrap();
        nl.add_output("o", out).unwrap();
        let mut sim = nl.simulator().unwrap();
        for probe in [0usize, 1, 2, 63, 64, 97, 127] {
            // One-hot the probed data bit and select it.
            for (i, &d) in data.iter().enumerate() {
                sim.set(d, i == probe);
            }
            sim.set_bus(&sel, probe as u128);
            sim.settle();
            assert!(sim.get(out), "did not select data[{probe}]");
            // And with the bit cleared, output goes low.
            sim.set(data[probe], false);
            sim.settle();
            assert!(!sim.get(out));
        }
    }

    #[test]
    fn leak_key_payload_serialises_the_round_key() {
        let (mut aes, mut placement) = placed_aes();
        let spec = TrojanSpec {
            name: "HT-leak".into(),
            trigger: Trigger::SequentialCounter {
                width: 4,
                target: 2,
            },
            payload: Payload::LeakKey,
            placement: PlacementStrategy::NearTaps,
        };
        let t = insert(&mut aes, &mut placement, &spec).unwrap();
        assert_eq!(t.selector_nets.len(), 7);
        let rk: Vec<_> = aes.round_key_q().to_vec();
        let mut sim = AesSim::new(&aes).unwrap();
        let pt = [9u8; 16];
        let key = [7u8; 16];
        sim.encrypt(&pt, &key); // counter = 1, dormant
        assert!(!sim.simulator().get(t.payload_net));
        sim.encrypt(&pt, &key); // counter = 2 -> trigger -> arms next edge
        let mut leaked = 0usize;
        for _ in 0..24 {
            sim.step_round();
            let s = sim.simulator().get_bus(&t.selector_nets) as usize;
            let expect = sim.simulator().get(rk[s % 128]);
            let got = sim.simulator().get(t.payload_net);
            assert_eq!(got, expect, "selector {s}");
            if got {
                leaked += 1;
            }
        }
        // The held round key rk10 is not all-zero: some bits leak high.
        assert!(leaked > 0, "no key bits observed on the leak channel");
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let (mut aes, mut placement) = placed_aes();
        let too_many = TrojanSpec {
            name: "x".into(),
            trigger: Trigger::CombinationalAllOnes { taps: 999 },
            payload: Payload::DenialOfService,
            placement: PlacementStrategy::NearTaps,
        };
        assert!(matches!(
            insert(&mut aes, &mut placement, &too_many),
            Err(TrojanError::NotEnoughTaps { .. })
        ));
        let zero = TrojanSpec {
            name: "x".into(),
            trigger: Trigger::CombinationalAllOnes { taps: 0 },
            payload: Payload::DenialOfService,
            placement: PlacementStrategy::NearTaps,
        };
        assert!(matches!(
            insert(&mut aes, &mut placement, &zero),
            Err(TrojanError::InvalidTrigger { .. })
        ));
        let bad_target = TrojanSpec {
            name: "x".into(),
            trigger: Trigger::SequentialCounter {
                width: 4,
                target: 100,
            },
            payload: Payload::DenialOfService,
            placement: PlacementStrategy::NearTaps,
        };
        assert!(matches!(
            insert(&mut aes, &mut placement, &bad_target),
            Err(TrojanError::InvalidTrigger { .. })
        ));
    }

    #[test]
    fn state_machine_trigger_needs_a_saturated_match_count() {
        let (mut aes, mut placement) = placed_aes();
        let spec = TrojanSpec {
            name: "HT-fsm-test".into(),
            trigger: Trigger::StateMachine { taps: 8, states: 3 },
            payload: Payload::DenialOfService,
            placement: PlacementStrategy::NearTaps,
        };
        let t = insert(&mut aes, &mut placement, &spec).unwrap();
        let mut sim = aes.netlist().simulator().unwrap();
        let n_dffs = aes.netlist().dff_cells().count();
        // Taps all-ones on the first eight state bits, FSM at state 0: the
        // match signal is high but the count has not saturated.
        let mut regs = vec![false; n_dffs];
        for r in regs.iter_mut().take(8) {
            *r = true;
        }
        sim.load_registers(&regs);
        assert!(!sim.get(t.trigger_net), "must not fire before saturation");
        // The two FSM flip-flops are the last DFFs added; encode the
        // saturated state (3 = 0b11) directly.
        regs[n_dffs - 2] = true;
        regs[n_dffs - 1] = true;
        sim.load_registers(&regs);
        assert!(sim.get(t.trigger_net), "fires once the count saturates");
        // A single low tap is a mismatch: one clock must reset the state.
        regs[3] = false;
        sim.load_registers(&regs);
        sim.clock();
        assert!(!sim.get(t.trigger_net), "mismatch must reset the counter");
    }

    #[test]
    fn placement_strategies_change_the_geometry() {
        let origin = SliceCoord::new(0, 0);
        let mean_to = |slices: &[SliceCoord], c: SliceCoord| -> f64 {
            slices.iter().map(|s| c.euclidean(*s)).sum::<f64>() / slices.len() as f64
        };
        let run = |strategy: PlacementStrategy| {
            let (mut aes, mut placement) = placed_aes();
            let spec = TrojanSpec {
                placement: strategy,
                ..TrojanSpec::ht1()
            };
            insert(&mut aes, &mut placement, &spec).unwrap()
        };
        let near = run(PlacementStrategy::NearTaps);
        let corner = run(PlacementStrategy::Corner);
        let spread = run(PlacementStrategy::Spread);
        // Corner fills the nearest free sites from the origin, so no other
        // strategy can sit closer to it on the same golden placement.
        assert!(
            mean_to(&corner.slices, origin) <= mean_to(&near.slices, origin),
            "corner cells not closer to the origin than near-taps cells"
        );
        // Spread strides through the free list, so the same cell count
        // lands on at least as many distinct slices.
        assert!(
            spread.distinct_slices() >= near.distinct_slices(),
            "spread did not spread: {} < {}",
            spread.distinct_slices(),
            near.distinct_slices()
        );
    }

    #[test]
    fn trojan_cells_cluster_near_taps() {
        let (mut aes, mut placement) = placed_aes();
        let t = insert(&mut aes, &mut placement, &TrojanSpec::ht1()).unwrap();
        // Centroid of the taps (state FFs).
        let drivers: Vec<CellId> = t
            .tapped_nets
            .iter()
            .filter_map(|&n| aes.netlist().net(n).driver())
            .collect();
        let c = placement.centroid(&drivers).unwrap();
        for s in &t.slices {
            assert!(
                c.euclidean(*s) < 20.0,
                "trojan cell at {s} far from taps at {c}"
            );
        }
    }
}
