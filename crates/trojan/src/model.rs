//! Trojan descriptors and the paper's five instances.

use std::fmt;

/// How the trojan decides to fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fires when `taps` SubBytes input signals are simultaneously '1'
    /// (the paper's combinational trigger; `taps` ∈ {32, 64, 128} for
    /// HT 1/2/3).
    CombinationalAllOnes {
        /// Number of SubBytes input bits monitored.
        taps: usize,
    },
    /// Fires when an internal counter of `width` bits — incremented once
    /// per AES encryption — reaches `target` (the paper's sequential
    /// trigger, 32 bits).
    SequentialCounter {
        /// Counter width in bits (1..=64).
        width: usize,
        /// Comparator constant.
        target: u64,
    },
    /// A *stealth probe* (extension beyond the paper): `taps` SubBytes
    /// inputs are wired to constant-zero LUTs whose outputs never toggle.
    /// The trojan has **no switching activity at all** — it only loads the
    /// tapped routes and the power grid — modelling a passive implant that
    /// records externally (e.g. an analog tap). Used by the
    /// `ablation_stealth` bench to show that the delay method still
    /// catches what the EM method cannot.
    StealthProbe {
        /// Number of SubBytes input bits tapped.
        taps: usize,
    },
    /// A sequence-detector state machine (zoo extension): fires only
    /// after the `taps` monitored SubBytes inputs have been
    /// simultaneously '1' for `states` *consecutive* clock cycles — a
    /// saturating match counter that resets on any mismatch. Rarer than
    /// the combinational trigger on the same taps by roughly the match
    /// probability raised to the `states` power.
    StateMachine {
        /// Number of SubBytes input bits monitored.
        taps: usize,
        /// Consecutive matching cycles required to fire (1..=31; the
        /// state counter plus the match signal must fit one LUT6).
        states: usize,
    },
}

/// Where the inserted trojan cells go on the fabric grid. The strategy
/// trades detectability axes: clustering near the taps maximises
/// timing/EM overlap with the victim cone, while spreading or banishing
/// the cells to a corner dilutes the local signature (at the cost of
/// longer tap routes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementStrategy {
    /// Fill the nearest free sites around the centroid of the tapped
    /// nets' drivers (the paper's FPGA-Editor procedure; the historical
    /// default).
    #[default]
    NearTaps,
    /// Fill the nearest free sites from the fabric origin (0, 0),
    /// regardless of where the taps are — maximum distance from the
    /// victim cone on typical placements.
    Corner,
    /// Stride through the free sites around the tap centroid so the
    /// cells land spaced apart instead of packed — dilutes the local
    /// coupling signature while keeping routes bounded.
    Spread,
}

/// What the trojan does when triggered. The paper's trojans deny service;
/// none is ever activated during the detection experiments. The key-leak
/// variant models the other classic payload class (the paper's ref. \[11\]:
/// trojans that "leak secret key via RS232 channels").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Payload {
    /// Denial of service: the payload signal would disrupt operation when
    /// asserted. It is brought out on a `ht_payload` port so tests can
    /// observe (and deliberately provoke) it.
    #[default]
    DenialOfService,
    /// Covert key exfiltration: once the trigger has fired, the payload
    /// port serialises the round-key register one bit per clock through a
    /// rotating selector (a compact model of a serial leak channel).
    /// Armed-state and selector flip-flops add to the trojan's footprint.
    LeakKey,
}

/// A full trojan description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrojanSpec {
    /// Human-readable name used in reports.
    pub name: String,
    /// Trigger definition.
    pub trigger: Trigger,
    /// Payload definition.
    pub payload: Payload,
    /// Fabric-grid placement strategy for the inserted cells.
    pub placement: PlacementStrategy,
}

impl TrojanSpec {
    /// The paper's combinational trojan (Section II-B): trigger on 32
    /// SubBytes input bits, DoS payload, 0.19 % of FPGA slices.
    pub fn ht_comb() -> Self {
        TrojanSpec {
            name: "HT-comb".into(),
            trigger: Trigger::CombinationalAllOnes { taps: 32 },
            payload: Payload::DenialOfService,
            placement: PlacementStrategy::NearTaps,
        }
    }

    /// The paper's sequential trojan (Section II-B): a 32-bit counter
    /// incremented per encryption with a comparator, 0.36 % of FPGA slices.
    pub fn ht_seq() -> Self {
        TrojanSpec {
            name: "HT-seq".into(),
            trigger: Trigger::SequentialCounter {
                width: 32,
                // Arbitrary distant activation count; never reached in any
                // experiment (the paper never activates its trojans).
                target: 0xDEAD_BEEF,
            },
            payload: Payload::DenialOfService,
            placement: PlacementStrategy::NearTaps,
        }
    }

    /// HT 1 (Section V-A): 2⁵ = 32 SubBytes inputs, ≈ 0.5 % of the AES.
    pub fn ht1() -> Self {
        TrojanSpec {
            name: "HT 1".into(),
            trigger: Trigger::CombinationalAllOnes { taps: 32 },
            payload: Payload::DenialOfService,
            placement: PlacementStrategy::NearTaps,
        }
    }

    /// HT 2 (Section V-A): 2⁶ = 64 SubBytes inputs, ≈ 1.0 % of the AES.
    pub fn ht2() -> Self {
        TrojanSpec {
            name: "HT 2".into(),
            trigger: Trigger::CombinationalAllOnes { taps: 64 },
            payload: Payload::DenialOfService,
            placement: PlacementStrategy::NearTaps,
        }
    }

    /// HT 3 (Section V-A): 2⁷ = 128 SubBytes inputs, ≈ 1.7 % of the AES.
    pub fn ht3() -> Self {
        TrojanSpec {
            name: "HT 3".into(),
            trigger: Trigger::CombinationalAllOnes { taps: 128 },
            payload: Payload::DenialOfService,
            placement: PlacementStrategy::NearTaps,
        }
    }

    /// The three size-sweep trojans of Section V (HT 1, HT 2, HT 3) in
    /// increasing-size order.
    pub fn size_sweep() -> Vec<TrojanSpec> {
        vec![Self::ht1(), Self::ht2(), Self::ht3()]
    }

    /// Resolves a single suspect token to its spec — the vocabulary the
    /// `htd` CLI and the serve protocol share (`ht1`, `ht2`, `ht3`,
    /// `ht-comb`/`comb`, `ht-seq`/`seq`, `stealth`, case-insensitive).
    /// Multi-spec tokens like `sweep` are a CLI-level convenience and
    /// deliberately not accepted here: a serve request names exactly one
    /// suspect.
    pub fn from_token(token: &str) -> Option<Self> {
        match token.to_ascii_lowercase().as_str() {
            "ht1" | "ht-1" => Some(Self::ht1()),
            "ht2" | "ht-2" => Some(Self::ht2()),
            "ht3" | "ht-3" => Some(Self::ht3()),
            "ht-comb" | "comb" => Some(Self::ht_comb()),
            "ht-seq" | "seq" => Some(Self::ht_seq()),
            "stealth" => Some(Self::stealth()),
            _ => None,
        }
    }

    /// A stealth load-only probe on 32 SubBytes inputs (extension; see
    /// [`Trigger::StealthProbe`]).
    pub fn stealth() -> Self {
        TrojanSpec {
            name: "HT-stealth".into(),
            trigger: Trigger::StealthProbe { taps: 32 },
            payload: Payload::DenialOfService,
            placement: PlacementStrategy::NearTaps,
        }
    }
}

impl fmt::Display for TrojanSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.trigger {
            Trigger::CombinationalAllOnes { taps } => {
                write!(f, "{} (combinational, {taps} taps)", self.name)
            }
            Trigger::SequentialCounter { width, .. } => {
                write!(f, "{} (sequential, {width}-bit counter)", self.name)
            }
            Trigger::StealthProbe { taps } => {
                write!(
                    f,
                    "{} (stealth probe, {taps} taps, no switching)",
                    self.name
                )
            }
            Trigger::StateMachine { taps, states } => {
                write!(
                    f,
                    "{} (state machine, {taps} taps × {states} cycles)",
                    self.name
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_parameters() {
        assert_eq!(
            TrojanSpec::ht1().trigger,
            Trigger::CombinationalAllOnes { taps: 32 }
        );
        assert_eq!(
            TrojanSpec::ht2().trigger,
            Trigger::CombinationalAllOnes { taps: 64 }
        );
        assert_eq!(
            TrojanSpec::ht3().trigger,
            Trigger::CombinationalAllOnes { taps: 128 }
        );
        match TrojanSpec::ht_seq().trigger {
            Trigger::SequentialCounter { width, .. } => assert_eq!(width, 32),
            _ => panic!("HT-seq must be sequential"),
        }
        assert_eq!(TrojanSpec::size_sweep().len(), 3);
    }

    #[test]
    fn display_is_informative() {
        assert!(TrojanSpec::ht2().to_string().contains("64 taps"));
        assert!(TrojanSpec::ht_seq().to_string().contains("32-bit counter"));
    }
}
