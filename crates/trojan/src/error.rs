//! Error type for trojan construction and insertion.

use std::error::Error;
use std::fmt;

use htd_fabric::FabricError;
use htd_netlist::NetlistError;

/// Errors reported by trojan insertion.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TrojanError {
    /// The trigger wants to tap more signals than the design exposes.
    NotEnoughTaps {
        /// Taps requested.
        requested: usize,
        /// Signals available.
        available: usize,
    },
    /// An invalid trigger parameter (zero taps, zero/oversized counter).
    InvalidTrigger {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The device has no free sites left for the trojan's cells.
    NoFreeSites,
    /// An underlying netlist operation failed.
    Netlist(NetlistError),
    /// An underlying placement operation failed.
    Fabric(FabricError),
}

impl fmt::Display for TrojanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrojanError::NotEnoughTaps {
                requested,
                available,
            } => {
                write!(
                    f,
                    "trigger taps {requested} signals but only {available} exist"
                )
            }
            TrojanError::InvalidTrigger { reason } => write!(f, "invalid trigger: {reason}"),
            TrojanError::NoFreeSites => write!(f, "no free sites available for trojan cells"),
            TrojanError::Netlist(e) => write!(f, "netlist error during insertion: {e}"),
            TrojanError::Fabric(e) => write!(f, "placement error during insertion: {e}"),
        }
    }
}

impl Error for TrojanError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TrojanError::Netlist(e) => Some(e),
            TrojanError::Fabric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for TrojanError {
    fn from(e: NetlistError) -> Self {
        TrojanError::Netlist(e)
    }
}

impl From<FabricError> for TrojanError {
    fn from(e: FabricError) -> Self {
        TrojanError::Fabric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: TrojanError = NetlistError::EmptyLut.into();
        assert!(e.to_string().contains("netlist"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TrojanError>();
    }
}
