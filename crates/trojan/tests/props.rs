//! Property-based tests for trojan insertion.

use std::sync::OnceLock;

use htd_aes::structural::AesSim;
use htd_aes::AesNetlist;
use htd_fabric::{Device, DeviceConfig, Placement};
use htd_trojan::{insert, Payload, PlacementStrategy, Trigger, TrojanSpec};
use proptest::prelude::*;

fn template() -> &'static (AesNetlist, Placement) {
    static T: OnceLock<(AesNetlist, Placement)> = OnceLock::new();
    T.get_or_init(|| {
        let aes = AesNetlist::generate().expect("generates");
        let device = Device::new(DeviceConfig::virtex5_lx30_scaled());
        let placement = Placement::place(aes.netlist(), &device).expect("fits");
        (aes, placement)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Combinational trojans of any tap count insert successfully, tap
    /// exactly the requested SubBytes inputs, and leave the cipher
    /// function untouched.
    #[test]
    fn any_tap_count_inserts_and_stays_dormant(taps in 1usize..=128) {
        let (aes0, placement0) = template();
        let mut aes = aes0.clone();
        let mut placement = placement0.clone();
        let spec = TrojanSpec {
            name: format!("ht-{taps}"),
            trigger: Trigger::CombinationalAllOnes { taps },
            payload: Payload::DenialOfService,
            placement: PlacementStrategy::NearTaps,
        };
        let trojan = insert(&mut aes, &mut placement, &spec).unwrap();
        prop_assert_eq!(trojan.tapped_nets.len(), taps);
        prop_assert!(!trojan.cells.is_empty());
        prop_assert!(trojan.distinct_slices() >= 1);
        // Function preserved on one vector (heavier equivalence is done in
        // the dedicated integration tests).
        let mut sim = AesSim::new(&aes).unwrap();
        let ct = sim.encrypt(&[0x42; 16], &[0x24; 16]);
        let mut ref_sim = AesSim::new(aes0).unwrap();
        prop_assert_eq!(ct, ref_sim.encrypt(&[0x42; 16], &[0x24; 16]));
    }

    /// The trigger fires exactly on the all-ones tap pattern, for any
    /// width.
    #[test]
    fn trigger_fires_only_on_all_ones(taps in 1usize..=64, flip in 0usize..64) {
        let (aes0, placement0) = template();
        let mut aes = aes0.clone();
        let mut placement = placement0.clone();
        let spec = TrojanSpec {
            name: "t".into(),
            trigger: Trigger::CombinationalAllOnes { taps },
            payload: Payload::DenialOfService,
            placement: PlacementStrategy::NearTaps,
        };
        let trojan = insert(&mut aes, &mut placement, &spec).unwrap();
        let mut sim = aes.netlist().simulator().unwrap();
        let n_dffs = aes.netlist().dff_cells().count();
        let mut regs = vec![false; n_dffs];
        for r in regs.iter_mut().take(taps) {
            *r = true;
        }
        sim.load_registers(&regs);
        prop_assert!(sim.get(trojan.trigger_net));
        // Clearing any single tapped bit disarms it.
        let victim = flip % taps;
        regs[victim] = false;
        sim.load_registers(&regs);
        prop_assert!(!sim.get(trojan.trigger_net));
    }

    /// Trojan area grows monotonically (weakly) with tap count.
    #[test]
    fn area_is_weakly_monotone(a in 1usize..=127) {
        let b = a + 1;
        let area_of = |taps: usize| {
            let (aes0, placement0) = template();
            let mut aes = aes0.clone();
            let mut placement = placement0.clone();
            let spec = TrojanSpec {
                name: "t".into(),
                trigger: Trigger::CombinationalAllOnes { taps },
                payload: Payload::DenialOfService,
                placement: PlacementStrategy::NearTaps,
            };
            insert(&mut aes, &mut placement, &spec).unwrap().cells.len()
        };
        prop_assert!(area_of(b) >= area_of(a));
    }

    /// Stealth probes of any size add zero-switching logic: after an
    /// encryption, the trigger net has never gone high.
    #[test]
    fn stealth_probe_never_asserts(taps in 1usize..=128) {
        let (aes0, placement0) = template();
        let mut aes = aes0.clone();
        let mut placement = placement0.clone();
        let spec = TrojanSpec {
            name: "s".into(),
            trigger: Trigger::StealthProbe { taps },
            payload: Payload::DenialOfService,
            placement: PlacementStrategy::NearTaps,
        };
        let trojan = insert(&mut aes, &mut placement, &spec).unwrap();
        let mut sim = AesSim::new(&aes).unwrap();
        sim.encrypt(&[0xFF; 16], &[0xFF; 16]);
        prop_assert!(!sim.simulator().get(trojan.trigger_net));
        prop_assert!(!sim.simulator().get(trojan.payload_net));
    }
}
