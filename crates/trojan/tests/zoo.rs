//! Every zoo-generated trojaned netlist must pass the structural lint
//! pipeline — the same gate `htd zoo` applies before characterizing a
//! grid point — and keep the AES functionally intact.

use htd_aes::AesNetlist;
use htd_fabric::{Device, DeviceConfig, Placement};
use htd_netlist::PassManager;
use htd_trojan::{insert, ZooConfig};

#[test]
fn zoo_grid_lints_clean_and_inserts_everywhere() {
    let cfg = ZooConfig::default();
    for spec in cfg.generate().expect("default grid is valid") {
        let mut aes = AesNetlist::generate().expect("generates");
        let device = Device::new(DeviceConfig::virtex5_lx30_scaled());
        let mut placement = Placement::place(aes.netlist(), &device).expect("places");
        let trojan = insert(&mut aes, &mut placement, &spec)
            .unwrap_or_else(|e| panic!("{}: insert failed: {e}", spec.name));
        assert!(!trojan.cells.is_empty(), "{}: no cells added", spec.name);
        let report = PassManager::lints()
            .run(aes.netlist())
            .unwrap_or_else(|e| panic!("{}: lints failed to run: {e}", spec.name));
        assert!(
            report.diagnostics.is_clean(),
            "{}: lints dirty: {:?}",
            spec.name,
            report.diagnostics.lints()
        );
    }
}
