//! Shared body blocks: the sub-grammars (campaign plan, calibration,
//! trace/matrix payloads, f64 lists) that both the single-kind artifacts
//! and the composite golden artifact embed, so every representation of a
//! value is written and parsed by exactly one function.

use htd_core::campaign::CampaignPlan;
use htd_core::channel::{Acquisition, Calibration, GoldenReference};
use htd_core::delay_detect::DelayMatrix;
use htd_core::Error;
use htd_em::Trace;
use htd_timing::GlitchParams;

use crate::format::{
    fmt_block, fmt_f64, parse_block, parse_f64, parse_u64, parse_usize, BodyWriter, Parser,
};

/// Samples per `s` continuation line.
const CHUNK: usize = 8;

/// Writes a counted f64 list: `<keyword> <n>` then `s` lines of up to
/// [`CHUNK`] values.
pub fn write_f64_list(w: &mut BodyWriter, keyword: &str, values: &[f64]) {
    w.line(format!("{keyword} {}", values.len()));
    for chunk in values.chunks(CHUNK) {
        let mut line = String::from("s");
        for v in chunk {
            line.push(' ');
            line.push_str(&fmt_f64(*v));
        }
        w.line(line);
    }
}

/// Parses a [`write_f64_list`] block.
///
/// # Errors
///
/// [`Error::Format`] on a wrong keyword, truncated list, wrong per-line
/// counts, or non-finite values.
pub fn parse_f64_list(p: &mut Parser<'_>, keyword: &str) -> Result<Vec<f64>, Error> {
    let rest = p.keyword_line(keyword)?;
    let n = parse_usize(rest.trim()).map_err(|e| p.error(e))?;
    let lines_needed = n.div_ceil(CHUNK);
    if lines_needed > p.remaining() {
        return Err(p.error(format!(
            "list of {n} values needs {lines_needed} sample lines but only {} remain",
            p.remaining()
        )));
    }
    let mut values = Vec::with_capacity(n);
    for _ in 0..lines_needed {
        let rest = p.keyword_line("s")?;
        let expected = CHUNK.min(n - values.len());
        let mut got = 0usize;
        for token in rest.split_whitespace() {
            values.push(parse_f64(token).map_err(|e| p.error(e))?);
            got += 1;
        }
        if got != expected {
            return Err(p.error(format!(
                "sample line holds {got} values, expected {expected}"
            )));
        }
    }
    Ok(values)
}

/// Writes a [`CampaignPlan`] block.
pub fn write_plan(w: &mut BodyWriter, plan: &CampaignPlan) {
    w.line(format!("dies {}", plan.n_dies));
    w.line(format!(
        "stimulus {} {}",
        fmt_block(&plan.pt),
        fmt_block(&plan.key)
    ));
    w.line(format!("repetitions {}", plan.repetitions));
    w.line(format!("seeds {} {}", plan.seed, plan.spec_stride));
    w.line(format!("pairs {}", plan.pairs.len()));
    for (pt, key) in &plan.pairs {
        w.line(format!("pair {} {}", fmt_block(pt), fmt_block(key)));
    }
}

/// Parses a [`write_plan`] block.
///
/// # Errors
///
/// [`Error::Format`] on any grammar or value violation.
pub fn parse_plan(p: &mut Parser<'_>) -> Result<CampaignPlan, Error> {
    let n_dies = parse_usize(p.keyword_line("dies")?.trim()).map_err(|e| p.error(e))?;
    let rest = p.keyword_line("stimulus")?;
    let (pt_tok, key_tok) = rest
        .split_once(' ')
        .ok_or_else(|| p.error("stimulus needs plaintext and key"))?;
    let pt = parse_block(pt_tok.trim()).map_err(|e| p.error(e))?;
    let key = parse_block(key_tok.trim()).map_err(|e| p.error(e))?;
    let repetitions = parse_usize(p.keyword_line("repetitions")?.trim()).map_err(|e| p.error(e))?;
    let rest = p.keyword_line("seeds")?;
    let (seed_tok, stride_tok) = rest
        .split_once(' ')
        .ok_or_else(|| p.error("seeds needs base and stride"))?;
    let seed = parse_u64(seed_tok.trim()).map_err(|e| p.error(e))?;
    let spec_stride = parse_u64(stride_tok.trim()).map_err(|e| p.error(e))?;
    let n_pairs = parse_usize(p.keyword_line("pairs")?.trim()).map_err(|e| p.error(e))?;
    if n_pairs > p.remaining() {
        return Err(p.error(format!(
            "plan declares {n_pairs} pairs but only {} lines remain",
            p.remaining()
        )));
    }
    let mut pairs = Vec::with_capacity(n_pairs);
    for _ in 0..n_pairs {
        let rest = p.keyword_line("pair")?;
        let (pt_tok, key_tok) = rest
            .split_once(' ')
            .ok_or_else(|| p.error("pair needs plaintext and key"))?;
        pairs.push((
            parse_block(pt_tok.trim()).map_err(|e| p.error(e))?,
            parse_block(key_tok.trim()).map_err(|e| p.error(e))?,
        ));
    }
    Ok(CampaignPlan {
        n_dies,
        pt,
        key,
        pairs,
        repetitions,
        seed,
        spec_stride,
    })
}

/// Writes a [`Calibration`] block.
pub fn write_calibration(w: &mut BodyWriter, calibration: &Calibration) {
    match calibration {
        Calibration::None => w.line("calibration none"),
        Calibration::Glitch(g) => w.line(format!(
            "calibration glitch {} {} {} {} {}",
            fmt_f64(g.start_period_ps),
            fmt_f64(g.step_ps),
            g.steps,
            fmt_f64(g.setup_ps),
            fmt_f64(g.noise_ps),
        )),
    }
}

/// Parses a [`write_calibration`] block, rejecting unphysical glitch
/// parameters ([`GlitchParams::is_physical`]).
///
/// # Errors
///
/// [`Error::Format`] on any grammar or value violation.
pub fn parse_calibration(p: &mut Parser<'_>) -> Result<Calibration, Error> {
    let rest = p.keyword_line("calibration")?;
    let mut words = rest.split_whitespace();
    match words.next() {
        Some("none") => {
            if words.next().is_some() {
                return Err(p.error("trailing tokens after `calibration none`"));
            }
            Ok(Calibration::None)
        }
        Some("glitch") => {
            let mut float = |what: &str| -> Result<f64, Error> {
                let token = words
                    .next()
                    .ok_or_else(|| p.error(format!("glitch calibration missing {what}")))?;
                parse_f64(token).map_err(|e| p.error(e))
            };
            let start_period_ps = float("start period")?;
            let step_ps = float("step")?;
            let steps_tok = words
                .next()
                .ok_or_else(|| p.error("glitch calibration missing step count"))?;
            let steps: u16 = steps_tok
                .parse()
                .map_err(|_| p.error(format!("bad step count `{steps_tok}`")))?;
            let mut float = |what: &str| -> Result<f64, Error> {
                let token = words
                    .next()
                    .ok_or_else(|| p.error(format!("glitch calibration missing {what}")))?;
                parse_f64(token).map_err(|e| p.error(e))
            };
            let setup_ps = float("setup time")?;
            let noise_ps = float("noise level")?;
            if words.next().is_some() {
                return Err(p.error("trailing tokens after glitch calibration"));
            }
            let params = GlitchParams {
                start_period_ps,
                step_ps,
                steps,
                setup_ps,
                noise_ps,
            };
            if !params.is_physical() {
                return Err(p.error("unphysical glitch calibration"));
            }
            Ok(Calibration::Glitch(params))
        }
        _ => Err(p.error("calibration must be `none` or `glitch`")),
    }
}

/// A trace-or-matrix payload, the shared shape of [`Acquisition`] and
/// [`GoldenReference`].
pub enum Payload {
    /// A sampled side-channel trace.
    Trace(Trace),
    /// A mean fault-onset matrix.
    Matrix(DelayMatrix),
}

impl From<Acquisition> for Payload {
    fn from(a: Acquisition) -> Self {
        match a {
            Acquisition::Trace(t) => Payload::Trace(t),
            Acquisition::Matrix(m) => Payload::Matrix(m),
        }
    }
}

impl From<GoldenReference> for Payload {
    fn from(r: GoldenReference) -> Self {
        match r {
            GoldenReference::MeanTrace(t) => Payload::Trace(t),
            GoldenReference::MeanMatrix(m) => Payload::Matrix(m),
        }
    }
}

impl Payload {
    /// This payload as an [`Acquisition`].
    pub fn into_acquisition(self) -> Acquisition {
        match self {
            Payload::Trace(t) => Acquisition::Trace(t),
            Payload::Matrix(m) => Acquisition::Matrix(m),
        }
    }

    /// This payload as a [`GoldenReference`].
    pub fn into_reference(self) -> GoldenReference {
        match self {
            Payload::Trace(t) => GoldenReference::MeanTrace(t),
            Payload::Matrix(m) => GoldenReference::MeanMatrix(m),
        }
    }
}

/// Writes a trace-or-matrix payload block.
pub fn write_payload(w: &mut BodyWriter, payload: &Payload) {
    match payload {
        Payload::Trace(t) => {
            w.line(format!("trace {}", fmt_f64(t.dt_ps())));
            write_f64_list(w, "samples", t.samples());
        }
        Payload::Matrix(m) => {
            let bits = m.mean_onset_steps.first().map(Vec::len).unwrap_or(0);
            w.line(format!("matrix {} {}", m.mean_onset_steps.len(), bits));
            for row in &m.mean_onset_steps {
                let mut line = String::from("m");
                for v in row {
                    line.push(' ');
                    line.push_str(&fmt_f64(*v));
                }
                w.line(line);
            }
        }
    }
}

/// Parses a [`write_payload`] block.
///
/// # Errors
///
/// [`Error::Format`] on any grammar violation, non-finite samples, a
/// non-positive trace time base, or ragged matrix rows.
pub fn parse_payload(p: &mut Parser<'_>) -> Result<Payload, Error> {
    let line = p.next_line()?;
    if let Some(rest) = line.strip_prefix("trace ") {
        let dt_ps = parse_f64(rest.trim()).map_err(|e| p.error(e))?;
        let samples = parse_f64_list(p, "samples")?;
        let trace = Trace::try_new(samples, dt_ps)
            .ok_or_else(|| p.error("trace needs a positive, finite time base"))?;
        return Ok(Payload::Trace(trace));
    }
    if let Some(rest) = line.strip_prefix("matrix ") {
        let (pairs_tok, bits_tok) = rest
            .trim()
            .split_once(' ')
            .ok_or_else(|| p.error("matrix needs pair and bit counts"))?;
        let n_pairs = parse_usize(pairs_tok).map_err(|e| p.error(e))?;
        let bits = parse_usize(bits_tok).map_err(|e| p.error(e))?;
        if n_pairs > p.remaining() {
            return Err(p.error(format!(
                "matrix declares {n_pairs} rows but only {} lines remain",
                p.remaining()
            )));
        }
        let mut rows = Vec::with_capacity(n_pairs);
        for _ in 0..n_pairs {
            let rest = p.keyword_line("m")?;
            let row = rest
                .split_whitespace()
                .map(|t| parse_f64(t).map_err(|e| p.error(e)))
                .collect::<Result<Vec<f64>, Error>>()?;
            if row.len() != bits {
                return Err(p.error(format!(
                    "matrix row holds {} values, expected {bits}",
                    row.len()
                )));
            }
            rows.push(row);
        }
        return Ok(Payload::Matrix(DelayMatrix {
            mean_onset_steps: rows,
        }));
    }
    Err(p.error(format!(
        "expected `trace` or `matrix` payload, found `{line}`"
    )))
}
