//! The artifact checksum: FNV-1a 64.
//!
//! The store needs a fast, dependency-free integrity check, not a
//! cryptographic one — artifacts are trusted inputs whose failure mode is
//! truncation or accidental corruption, and FNV-1a provably changes under
//! any single-byte substitution (xor with a differing byte changes the
//! state; multiplication by the odd FNV prime is a bijection mod 2⁶⁴, so
//! the difference survives every later step).

/// FNV-1a 64-bit offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// The FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn single_byte_substitutions_always_change_the_hash() {
        let base = b"htdstore 1 plan\ndies 6\n";
        let h = fnv1a64(base);
        for i in 0..base.len() {
            let mut corrupt = base.to_vec();
            corrupt[i] ^= 0x01;
            assert_ne!(fnv1a64(&corrupt), h, "byte {i}");
        }
    }
}
