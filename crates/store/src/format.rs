//! The line-oriented framing shared by every artifact kind: header,
//! body, checksum trailer, and the strict cursor the per-kind parsers
//! consume the body through.
//!
//! Every parse failure is an [`Error::Format`] carrying the artifact's
//! origin (file path or `"<memory>"`) and the 1-based offending line —
//! the store never panics on malformed input.

use htd_core::Error;

use crate::checksum::fnv1a64;

/// Format version written and accepted by this build. Bump on any
/// incompatible grammar change; parsers reject every other version.
pub const FORMAT_VERSION: u32 = 1;

/// Leading token of every artifact's first line.
pub const MAGIC: &str = "htdstore";

/// Origin label used when parsing from an in-memory string.
pub const IN_MEMORY: &str = "<memory>";

/// Body accumulator used by artifact writers.
#[derive(Debug, Default)]
pub struct BodyWriter {
    buf: String,
}

impl BodyWriter {
    /// An empty body.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one body line (without trailing newline).
    pub fn line(&mut self, line: impl AsRef<str>) {
        self.buf.push_str(line.as_ref());
        self.buf.push('\n');
    }

    /// The accumulated body text.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// Frames a body into the full artifact text: header line, body,
/// checksum trailer.
pub fn frame(kind: &str, body: &str) -> String {
    let mut text = format!("{MAGIC} {FORMAT_VERSION} {kind}\n{body}");
    let sum = fnv1a64(text.as_bytes());
    text.push_str(&format!("checksum fnv1a64 {sum:016x}\n"));
    text
}

/// Verifies the framing of `text` — trailing newline, checksum trailer,
/// header magic/version/kind — and returns the body lines (with their
/// 1-based line numbers) as a strict [`Parser`].
///
/// # Errors
///
/// [`Error::Format`] on any framing violation: missing trailer,
/// checksum mismatch, unsupported version, or wrong artifact kind.
pub fn unframe<'a>(text: &'a str, origin: &'a str, kind: &str) -> Result<Parser<'a>, Error> {
    if !text.ends_with('\n') {
        return Err(Error::format(
            origin,
            0,
            "truncated artifact: missing trailing newline",
        ));
    }
    let lines: Vec<&str> = text[..text.len() - 1].split('\n').collect();
    let last_lineno = lines.len();
    let Some((&trailer, body_lines)) = lines.split_last() else {
        return Err(Error::format(origin, 0, "empty artifact"));
    };
    let declared = trailer
        .strip_prefix("checksum fnv1a64 ")
        .ok_or_else(|| Error::format(origin, last_lineno, "missing `checksum fnv1a64` trailer"))?;
    // Lowercase-only: `from_str_radix` would accept `A`–`F`, letting a
    // case flip in the (uncovered) trailer line go unnoticed.
    let declared = (declared.len() == 16
        && declared
            .bytes()
            .all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')))
    .then(|| u64::from_str_radix(declared, 16).ok())
    .flatten()
    .ok_or_else(|| {
        Error::format(
            origin,
            last_lineno,
            "checksum must be 16 lowercase hex digits",
        )
    })?;
    let covered = &text[..text.len() - trailer.len() - 1];
    let actual = fnv1a64(covered.as_bytes());
    if actual != declared {
        return Err(Error::format(
            origin,
            last_lineno,
            format!(
                "checksum mismatch: artifact hashes to {actual:016x}, trailer says {declared:016x}"
            ),
        ));
    }

    let Some((&header, body_lines)) = body_lines.split_first() else {
        return Err(Error::format(origin, 0, "artifact has no header line"));
    };
    check_header(header, origin, kind)?;
    Ok(Parser {
        origin,
        lines: body_lines.to_vec(),
        pos: 0,
    })
}

/// Validates a `htdstore <version> <kind>` header line.
fn check_header(header: &str, origin: &str, kind: &str) -> Result<(), Error> {
    let mut words = header.split(' ');
    if words.next() != Some(MAGIC) {
        return Err(Error::format(origin, 1, format!("missing `{MAGIC}` magic")));
    }
    let version = words
        .next()
        .and_then(|v| v.parse::<u32>().ok())
        .ok_or_else(|| Error::format(origin, 1, "missing format version"))?;
    if version != FORMAT_VERSION {
        return Err(Error::format(
            origin,
            1,
            format!("unsupported format version {version} (this build reads {FORMAT_VERSION})"),
        ));
    }
    let actual_kind = words
        .next()
        .ok_or_else(|| Error::format(origin, 1, "missing artifact kind"))?;
    if words.next().is_some() {
        return Err(Error::format(
            origin,
            1,
            "trailing tokens after artifact kind",
        ));
    }
    if actual_kind != kind {
        return Err(Error::format(
            origin,
            1,
            format!("artifact is `{actual_kind}`, expected `{kind}`"),
        ));
    }
    Ok(())
}

/// Parses a trailer line's declared checksum, if the line is a
/// well-formed `checksum fnv1a64 <16 lowercase hex>` trailer.
fn trailer_checksum(line: &str) -> Option<u64> {
    let hex = line.strip_prefix("checksum fnv1a64 ")?;
    (hex.len() == 16 && hex.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')))
        .then(|| u64::from_str_radix(hex, 16).ok())
        .flatten()
}

/// A best-effort unframing for the salvage path: the header, the body
/// lines as a [`Parser`], and the trailer's declared checksum when a
/// well-formed trailer is present.
#[derive(Debug)]
pub struct SalvageFrame<'a> {
    /// The (validated) header line.
    pub header: &'a str,
    /// Cursor over the body lines.
    pub parser: Parser<'a>,
    /// The checksum the trailer declared, if the trailer survived.
    pub declared: Option<u64>,
}

/// Unframes `text` for salvage: the header must be intact (there is
/// nothing to salvage without knowing the kind and version), but the
/// checksum trailer is *optional* — a corrupt or missing trailer, or a
/// truncated final line, demotes the artifact to "recovered" instead of
/// rejecting it. The checksum is **not** verified here; the caller
/// re-verifies it over the lines it actually keeps.
///
/// # Errors
///
/// [`Error::Format`] when the artifact is empty or the header line is
/// damaged.
pub fn unframe_salvage<'a>(
    text: &'a str,
    origin: &'a str,
    kind: &str,
) -> Result<SalvageFrame<'a>, Error> {
    // A missing trailing newline means the last line was cut mid-write;
    // drop the partial fragment and salvage the complete lines.
    let complete = match text.rfind('\n') {
        Some(end) => &text[..end],
        None if text.is_empty() => return Err(Error::format(origin, 0, "empty artifact")),
        None => return Err(Error::format(origin, 1, "artifact has no complete lines")),
    };
    let mut lines: Vec<&str> = complete.split('\n').collect();
    let header = lines.remove(0);
    check_header(header, origin, kind)?;
    let declared = match lines.last().copied().and_then(trailer_checksum) {
        Some(sum) => {
            lines.pop();
            Some(sum)
        }
        None => None,
    };
    Ok(SalvageFrame {
        header,
        parser: Parser {
            origin,
            lines,
            pos: 0,
        },
        declared,
    })
}

/// A strict cursor over an artifact's body lines. Body line `i` (0-based
/// in the body) is file line `i + 2` (after the header).
#[derive(Debug)]
pub struct Parser<'a> {
    origin: &'a str,
    lines: Vec<&'a str>,
    pos: usize,
}

impl<'a> Parser<'a> {
    /// The 1-based file line number of the *next* line to be consumed
    /// (or of the end of the body once exhausted).
    pub fn lineno(&self) -> usize {
        self.pos + 2
    }

    /// A format error at the current position.
    pub fn error(&self, reason: impl Into<String>) -> Error {
        Error::format(self.origin, self.lineno().saturating_sub(1), reason)
    }

    /// Remaining unconsumed body lines.
    pub fn remaining(&self) -> usize {
        self.lines.len() - self.pos
    }

    /// The next body line without consuming it.
    pub fn peek(&self) -> Option<&'a str> {
        self.lines.get(self.pos).copied()
    }

    /// Consumes and returns the next body line.
    ///
    /// # Errors
    ///
    /// [`Error::Format`] when the body is exhausted.
    pub fn next_line(&mut self) -> Result<&'a str, Error> {
        let line = self.lines.get(self.pos).copied().ok_or_else(|| {
            Error::format(
                self.origin,
                self.lineno(),
                "unexpected end of artifact body",
            )
        })?;
        self.pos += 1;
        Ok(line)
    }

    /// Consumes the next line and strips a required `keyword ` prefix,
    /// returning the rest.
    ///
    /// # Errors
    ///
    /// [`Error::Format`] when the body is exhausted or the keyword does
    /// not match.
    pub fn keyword_line(&mut self, keyword: &str) -> Result<&'a str, Error> {
        let line = self.next_line()?;
        line.strip_prefix(keyword)
            .and_then(|rest| rest.strip_prefix(' ').or(rest.is_empty().then_some("")))
            .ok_or_else(|| self.error(format!("expected `{keyword}` line, found `{line}`")))
    }

    /// All body lines (consumed or not), for checksum re-verification.
    pub fn lines(&self) -> &[&'a str] {
        &self.lines
    }

    /// The current cursor position (a 0-based body-line index), for
    /// [`Parser::restore`] after a failed speculative parse.
    pub fn save(&self) -> usize {
        self.pos
    }

    /// Rewinds the cursor to a position from [`Parser::save`].
    pub fn restore(&mut self, pos: usize) {
        self.pos = pos.min(self.lines.len());
    }

    /// Consumes lines until the next line starts with `prefix` (or the
    /// body ends), returning the 0-based indices of the skipped lines.
    pub fn skip_to_prefix(&mut self, prefix: &str) -> Vec<usize> {
        let mut skipped = Vec::new();
        while let Some(line) = self.peek() {
            if line.starts_with(prefix) {
                break;
            }
            skipped.push(self.pos);
            self.pos += 1;
        }
        skipped
    }

    /// Asserts the whole body was consumed.
    ///
    /// # Errors
    ///
    /// [`Error::Format`] when unparsed lines remain.
    pub fn finish(&self) -> Result<(), Error> {
        if self.pos != self.lines.len() {
            return Err(Error::format(
                self.origin,
                self.lineno(),
                "trailing lines after artifact body",
            ));
        }
        Ok(())
    }
}

/// Serializes a finite `f64` so that parsing recovers the identical bit
/// pattern (Rust's shortest round-trip `Display`).
pub fn fmt_f64(x: f64) -> String {
    format!("{x}")
}

/// Parses a finite `f64` token.
///
/// # Errors
///
/// `Err(reason)` on unparsable or non-finite values (the store holds no
/// infinities or NaNs).
pub fn parse_f64(token: &str) -> Result<f64, String> {
    let x: f64 = token.parse().map_err(|_| format!("bad float `{token}`"))?;
    if !x.is_finite() {
        return Err(format!("non-finite float `{token}`"));
    }
    Ok(x)
}

/// Parses an unsigned integer token.
///
/// # Errors
///
/// `Err(reason)` on unparsable values.
pub fn parse_usize(token: &str) -> Result<usize, String> {
    token.parse().map_err(|_| format!("bad count `{token}`"))
}

/// Parses a `u64` token.
///
/// # Errors
///
/// `Err(reason)` on unparsable values.
pub fn parse_u64(token: &str) -> Result<u64, String> {
    token.parse().map_err(|_| format!("bad integer `{token}`"))
}

/// Hex-encodes a 16-byte block (plaintext / key).
pub fn fmt_block(block: &[u8; 16]) -> String {
    let mut s = String::with_capacity(32);
    for b in block {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Parses a 32-hex-digit 16-byte block.
///
/// # Errors
///
/// `Err(reason)` on bad length or non-hex digits.
pub fn parse_block(token: &str) -> Result<[u8; 16], String> {
    if token.len() != 32 || !token.is_ascii() {
        return Err(format!("block `{token}` must be 32 hex digits"));
    }
    let mut block = [0u8; 16];
    for (i, out) in block.iter_mut().enumerate() {
        *out = u8::from_str_radix(&token[2 * i..2 * i + 2], 16)
            .map_err(|_| format!("block `{token}` must be 32 hex digits"))?;
    }
    Ok(block)
}

/// Quotes a string for single-line embedding (netlist-serde escaping
/// rules: `"`, `\` and newlines are escaped).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a quoted string at the start of `s`; returns `(content, rest)`.
pub fn unquote(s: &str) -> Option<(String, &str)> {
    let s = s.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, e)) => out.push(e),
                None => return None,
            },
            '"' => return Some((out, &s[i + 1..])),
            c => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for x in [
            0.0,
            -0.0,
            1.0,
            -1.5,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            135.20218460648155,
            1e-300,
        ] {
            let s = fmt_f64(x);
            let back = parse_f64(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s}");
        }
        assert!(parse_f64("inf").is_err());
        assert!(parse_f64("NaN").is_err());
        assert!(parse_f64("1.0x").is_err());
    }

    #[test]
    fn blocks_roundtrip() {
        let block: [u8; 16] = core::array::from_fn(|i| (i * 17) as u8);
        let s = fmt_block(&block);
        assert_eq!(parse_block(&s).unwrap(), block);
        assert!(parse_block("00").is_err());
        assert!(parse_block("zz112233445566778899aabbccddeeff").is_err());
    }

    #[test]
    fn quoting_roundtrips() {
        for s in ["plain", "with \"quotes\"", "back\\slash", "new\nline", ""] {
            let q = quote(s);
            let (back, rest) = unquote(&q).unwrap();
            assert_eq!(back, s);
            assert_eq!(rest, "");
        }
        assert!(unquote("no quote").is_none());
        assert!(unquote("\"unterminated").is_none());
    }

    #[test]
    fn framing_detects_tampering() {
        let text = frame("plan", "dies 6\n");
        assert!(unframe(&text, IN_MEMORY, "plan").is_ok());
        // Wrong kind.
        assert!(unframe(&text, IN_MEMORY, "report").is_err());
        // Flipped body byte.
        let tampered = text.replace("dies 6", "dies 7");
        assert!(matches!(
            unframe(&tampered, IN_MEMORY, "plan"),
            Err(Error::Format { .. })
        ));
        // Unsupported version.
        let v2 = frame("plan", "dies 6\n").replace("htdstore 1", "htdstore 2");
        assert!(unframe(&v2, IN_MEMORY, "plan").is_err());
        // Missing trailer.
        assert!(unframe("htdstore 1 plan\n", IN_MEMORY, "plan").is_err());
    }
}
