//! # htd-store — the durable artifact store
//!
//! A versioned, checksummed, line-oriented text format for every durable
//! value in the detection pipeline: campaign plans, calibrations,
//! acquisitions, golden references, per-channel Gaussian fits, scored
//! channel populations, rendered multi-channel reports, and the composite
//! golden characterization that lets `htd score` run against a population
//! that was characterized once, possibly in another process, on another
//! day.
//!
//! Every artifact is framed the same way:
//!
//! ```text
//! htdstore 1 <kind>
//! <kind-specific body lines>
//! checksum fnv1a64 <16 hex digits>
//! ```
//!
//! The checksum covers every byte before the trailer line, so truncation,
//! bit flips and hand edits are all rejected before any body line is
//! interpreted. Floats are written with Rust's shortest round-trip
//! `Display`, so a load always reproduces bit-identical values — scoring
//! against a loaded golden artifact equals scoring in-memory, exactly.
//!
//! Parsers are strict and total: every malformed input yields an
//! [`Error::Format`] carrying the origin (path or `"<memory>"`) and the
//! 1-based offending line; the store never panics on bad input.
//!
//! ```
//! use htd_core::prelude::*;
//! let plan = CampaignPlan::traces(6, [0u8; 16], [1u8; 16], 42);
//! let text = htd_store::to_text(&plan);
//! let back: CampaignPlan = htd_store::from_text(&text).unwrap();
//! assert_eq!(back, plan);
//! ```

mod blocks;
mod checksum;
mod format;
mod kinds;

pub use checksum::fnv1a64;
pub use format::{quote, unquote, FORMAT_VERSION, IN_MEMORY, MAGIC};
pub use kinds::{Artifact, ChannelFit, GoldenArtifact, ReferenceFreeArtifact};

/// The `classifier` artifact: a trained logistic-regression model,
/// re-exported under its store-facing name so consumers (CLI, serve) can
/// speak about it without depending on `htd-stats` directly.
pub use htd_stats::logistic::LogisticModel as ClassifierModel;

use htd_core::channel::Channel;
use htd_core::{CampaignPlan, Error};

use format::{frame, unframe, BodyWriter};

/// The artifact kind declared on a store file's header line, if the
/// header is even shaped like one. This is a *sniff*, not a validation —
/// full framing and checksum checks happen at load; use it only to
/// decide which loader to dispatch to.
pub fn sniff_kind(text: &str) -> Option<&str> {
    let header = text.lines().next()?;
    let mut words = header.split(' ');
    (words.next() == Some(MAGIC))
        .then(|| words.nth(1))
        .flatten()
}

/// Either artifact kind `htd score` / `htd serve` can score a suspect
/// against: the golden characterization or its reference-free
/// counterpart. Dispatch is by the header's kind token, so one loader
/// serves both modes.
#[derive(Debug, Clone, PartialEq)]
pub enum ScorableArtifact {
    /// A `golden` artifact (golden-reference mode).
    Golden(GoldenArtifact),
    /// A `reffree` artifact (reference-free mode).
    ReferenceFree(ReferenceFreeArtifact),
}

impl ScorableArtifact {
    /// Parses whichever scorable kind `text` declares, labelling errors
    /// with `origin`. Unknown kinds fall through to the golden parser so
    /// its kind mismatch carries the diagnostic.
    ///
    /// # Errors
    ///
    /// [`Error::Format`] on any framing, checksum, grammar or value
    /// violation of the declared kind.
    pub fn from_text_at(text: &str, origin: &str) -> Result<Self, Error> {
        match sniff_kind(text) {
            Some(ReferenceFreeArtifact::KIND) => {
                Ok(ScorableArtifact::ReferenceFree(from_text_at(text, origin)?))
            }
            _ => Ok(ScorableArtifact::Golden(from_text_at(text, origin)?)),
        }
    }

    /// The campaign plan behind either kind.
    pub fn plan(&self) -> &CampaignPlan {
        match self {
            ScorableArtifact::Golden(a) => &a.characterization().plan,
            ScorableArtifact::ReferenceFree(a) => &a.characterization().plan,
        }
    }

    /// Rebuilds the live channels the stored specs describe, in order.
    pub fn build_channels(&self) -> Vec<Box<dyn Channel>> {
        match self {
            ScorableArtifact::Golden(a) => a.build_channels(),
            ScorableArtifact::ReferenceFree(a) => a.build_channels(),
        }
    }
}

/// FNV-1a digest of a campaign plan's store text: the canonical identity
/// of a campaign across the pipeline. Run manifests stamp it, the serve
/// cache keys golden artifacts by it, and the shard router partitions
/// suspects with it (`plan_digest(plan) % shards`), so every consumer
/// shares this one implementation.
pub fn plan_digest(plan: &CampaignPlan) -> u64 {
    fnv1a64(to_text(plan).as_bytes())
}

/// [`plan_digest`] rendered in the form manifests and the serve protocol
/// print: `fnv1a64:<16 lowercase hex digits>`.
pub fn plan_digest_hex(plan: &CampaignPlan) -> String {
    format!("fnv1a64:{:016x}", plan_digest(plan))
}

/// Renders an artifact to its full framed text.
pub fn to_text<A: Artifact>(artifact: &A) -> String {
    let mut w = BodyWriter::new();
    artifact.write_body(&mut w);
    frame(A::KIND, &w.finish())
}

/// Parses an artifact from framed text produced by [`to_text`], labelling
/// any error with the in-memory origin.
///
/// # Errors
///
/// [`Error::Format`] on any framing, checksum, version, kind, grammar or
/// value violation.
pub fn from_text<A: Artifact>(text: &str) -> Result<A, Error> {
    from_text_at(text, IN_MEMORY)
}

/// [`from_text`] with an explicit origin label for error messages.
///
/// # Errors
///
/// [`Error::Format`] on any framing, checksum, version, kind, grammar or
/// value violation.
pub fn from_text_at<A: Artifact>(text: &str, origin: &str) -> Result<A, Error> {
    let mut p = unframe(text, origin, A::KIND)?;
    let artifact = A::parse_body(&mut p)?;
    p.finish()?;
    Ok(artifact)
}

/// Writes an artifact to `path`.
///
/// # Errors
///
/// [`Error::Io`] carrying the path on any filesystem failure.
pub fn save<A: Artifact>(path: impl AsRef<std::path::Path>, artifact: &A) -> Result<(), Error> {
    save_with(path, artifact, &htd_obs::Obs::noop())
}

/// [`save`] with store-I/O observability: records a `store.write` span
/// plus `store.write.files` / `store.write.bytes` counters. The written
/// bytes are the artifact's deterministic store text, so the byte
/// counter is as reproducible as the artifact itself.
///
/// # Errors
///
/// [`Error::Io`] carrying the path on any filesystem failure.
pub fn save_with<A: Artifact>(
    path: impl AsRef<std::path::Path>,
    artifact: &A,
    obs: &htd_obs::Obs,
) -> Result<(), Error> {
    let _span = obs.span("store.write");
    let path = path.as_ref();
    let text = to_text(artifact);
    obs.incr("store.write.files");
    obs.add("store.write.bytes", text.len() as u64);
    std::fs::write(path, text).map_err(|e| Error::io(path, e))
}

/// Reads an artifact from `path`.
///
/// # Errors
///
/// [`Error::Io`] on filesystem failure; [`Error::Format`] (carrying the
/// path and line) on any malformed content.
pub fn load<A: Artifact>(path: impl AsRef<std::path::Path>) -> Result<A, Error> {
    load_with(path, &htd_obs::Obs::noop())
}

/// [`load`] with store-I/O observability: records a `store.read` span
/// plus `store.read.files` / `store.read.bytes` counters.
///
/// # Errors
///
/// [`Error::Io`] on filesystem failure; [`Error::Format`] (carrying the
/// path and line) on any malformed content.
pub fn load_with<A: Artifact>(
    path: impl AsRef<std::path::Path>,
    obs: &htd_obs::Obs,
) -> Result<A, Error> {
    let _span = obs.span("store.read");
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| Error::io(path, e))?;
    obs.incr("store.read.files");
    obs.add("store.read.bytes", text.len() as u64);
    from_text_at(&text, &path.display().to_string())
}

/// An artifact read back by the salvage path, with its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Salvaged<A> {
    /// The recovered value.
    pub artifact: A,
    /// `false` only when **nothing** was dropped *and* the checksum
    /// trailer re-verified over exactly the kept lines — i.e. the file is
    /// pristine. Dropped lines, a missing or malformed trailer, and even
    /// a parseable bit-flip that stales the checksum all set this flag,
    /// so a salvaged artifact can never masquerade as a pristine one.
    pub recovered: bool,
    /// Number of body lines dropped to recover the value.
    pub dropped_lines: usize,
}

/// Best-effort parse of a (possibly damaged) artifact: the header must
/// be intact, but a corrupt or truncated body is recovered block by
/// block where the kind supports it (see
/// [`Artifact::parse_body_salvage`]), and the checksum trailer is
/// re-verified over only the kept lines to decide pristine vs recovered.
///
/// # Errors
///
/// [`Error::Format`] when the header is damaged or not even a partial
/// value survives.
pub fn from_text_salvage<A: Artifact>(text: &str) -> Result<Salvaged<A>, Error> {
    from_text_salvage_at(text, IN_MEMORY)
}

/// [`from_text_salvage`] with an explicit origin label for errors.
///
/// # Errors
///
/// [`Error::Format`] when the header is damaged or not even a partial
/// value survives.
pub fn from_text_salvage_at<A: Artifact>(text: &str, origin: &str) -> Result<Salvaged<A>, Error> {
    let mut fr = format::unframe_salvage(text, origin, A::KIND)?;
    let (artifact, mut dropped) = A::parse_body_salvage(&mut fr.parser)?;
    // Whatever the kind's parser left unconsumed did not make it into
    // the value: it counts as dropped, and poisons the checksum below.
    while fr.parser.peek().is_some() {
        dropped.push(fr.parser.save());
        let _ = fr.parser.next_line();
    }
    dropped.sort_unstable();
    dropped.dedup();
    // Re-verify the trailer over exactly the lines that were kept. Only
    // a file with every line kept *and* a matching checksum is pristine;
    // in particular a bit-flip that still parses stales the checksum and
    // is reported as recovered.
    let recovered = match fr.declared {
        None => true,
        Some(declared) => {
            let mut covered = String::with_capacity(text.len());
            covered.push_str(fr.header);
            covered.push('\n');
            let mut next_dropped = dropped.iter().copied().peekable();
            for (i, line) in fr.parser.lines().iter().enumerate() {
                if next_dropped.peek() == Some(&i) {
                    next_dropped.next();
                    continue;
                }
                covered.push_str(line);
                covered.push('\n');
            }
            fnv1a64(covered.as_bytes()) != declared
        }
    };
    Ok(Salvaged {
        artifact,
        recovered,
        dropped_lines: dropped.len(),
    })
}

/// Reads an artifact from `path` through the salvage path.
///
/// # Errors
///
/// [`Error::Io`] on filesystem failure; [`Error::Format`] when the
/// header is damaged or not even a partial value survives.
pub fn load_salvage<A: Artifact>(path: impl AsRef<std::path::Path>) -> Result<Salvaged<A>, Error> {
    load_salvage_with(path, &htd_obs::Obs::noop())
}

/// [`load_salvage`] with store-I/O observability: counts like
/// [`load_with`], plus `store.read.salvaged` when the file was not
/// pristine.
///
/// # Errors
///
/// [`Error::Io`] on filesystem failure; [`Error::Format`] when the
/// header is damaged or not even a partial value survives.
pub fn load_salvage_with<A: Artifact>(
    path: impl AsRef<std::path::Path>,
    obs: &htd_obs::Obs,
) -> Result<Salvaged<A>, Error> {
    let _span = obs.span("store.read");
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| Error::io(path, e))?;
    obs.incr("store.read.files");
    obs.add("store.read.bytes", text.len() as u64);
    let salvaged = from_text_salvage_at(&text, &path.display().to_string())?;
    if salvaged.recovered {
        obs.incr("store.read.salvaged");
    }
    Ok(salvaged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_core::campaign::CampaignPlan;
    use htd_core::channel::{Acquisition, Calibration, ChannelSpec, GoldenReference};
    use htd_core::delay_detect::DelayMatrix;
    use htd_core::em_detect::TraceMetric;
    use htd_core::fusion::{
        ChannelResult, ChannelState, GoldenCharacterization, MultiChannelReport, MultiChannelRow,
        ScoredChannel,
    };
    use htd_core::resilience::ChannelHealth;
    use htd_em::Trace;
    use htd_faults::FaultPlan;
    use htd_stats::Gaussian;
    use htd_timing::GlitchParams;

    fn sample_plan() -> CampaignPlan {
        CampaignPlan::with_random_pairs(6, 2, 3, [0x13; 16], [0x7f; 16], 42)
    }

    fn sample_glitch() -> GlitchParams {
        GlitchParams {
            start_period_ps: 5200.0,
            step_ps: 25.0,
            steps: 96,
            setup_ps: 180.0,
            noise_ps: 12.5,
        }
    }

    fn roundtrip<A: Artifact + PartialEq + std::fmt::Debug>(artifact: &A) {
        let text = to_text(artifact);
        let back: A = from_text(&text).unwrap();
        assert_eq!(&back, artifact, "round-trip of {}:\n{text}", A::KIND);
    }

    #[test]
    fn every_kind_roundtrips() {
        roundtrip(&sample_plan());
        roundtrip(&Calibration::None);
        roundtrip(&Calibration::Glitch(sample_glitch()));
        roundtrip(&Acquisition::Trace(Trace::new(
            vec![0.25, -1.5, 1.0 / 3.0, 0.0],
            125.0,
        )));
        roundtrip(&Acquisition::Matrix(DelayMatrix {
            mean_onset_steps: vec![vec![4.5, 6.0], vec![5.25, 7.125]],
        }));
        roundtrip(&GoldenReference::MeanTrace(Trace::new(
            vec![0.5; 17],
            125.0,
        )));
        roundtrip(&GoldenReference::MeanMatrix(DelayMatrix {
            mean_onset_steps: vec![vec![3.0; 4]; 2],
        }));
        roundtrip(&ChannelFit {
            channel: "EM".to_string(),
            fit: Gaussian::new(300261.7222222223, 1234.5).unwrap(),
        });
        roundtrip(&ScoredChannel {
            channel: "delay".to_string(),
            golden: (0..19).map(|i| f64::from(i) * 0.37).collect(),
            infected: vec![8.5, 9.25, 10.0],
        });
    }

    /// The plan digest is pinned to a literal value: the serve wire
    /// identity, shard assignment (`digest % shards`) and manifest
    /// provenance all depend on it never drifting across releases. A
    /// change here is a shard-invalidation event and must be deliberate.
    #[test]
    fn plan_digest_is_pinned() {
        let plan = CampaignPlan::with_random_pairs(6, 2, 3, [0x13; 16], [0x7f; 16], 42);
        let digest = plan_digest(&plan);
        assert_eq!(digest, fnv1a64(to_text(&plan).as_bytes()));
        assert_eq!(digest, 0x56beaff94e0d743d);
        assert_eq!(plan_digest_hex(&plan), "fnv1a64:56beaff94e0d743d");
    }

    #[test]
    fn report_roundtrips_including_quoting_edge_cases() {
        let result = |channel: &str| ChannelResult {
            channel: channel.to_string(),
            mu: 12.5,
            sigma: 1.0 / 3.0,
            analytic_fn_rate: 1e-9,
            empirical_fn_rate: 0.0,
            empirical_fp_rate: 0.125,
        };
        let report = MultiChannelReport {
            rows: vec![
                MultiChannelRow {
                    name: "ht with \"quotes\"\nand a newline".to_string(),
                    size_fraction: 0.0123,
                    channels: vec![result("EM"), result("delay")],
                    fused: Some(result("fused")),
                },
                MultiChannelRow {
                    name: "ht-seq".to_string(),
                    size_fraction: 0.5,
                    channels: vec![result("EM")],
                    fused: None,
                },
            ],
            n_dies: 20,
            channel_names: vec!["EM".to_string(), "delay".to_string()],
            health: vec![],
        };
        roundtrip(&report);

        // A degraded report carries its health section through the store.
        let mut health = ChannelHealth::pristine("EM \"scope\"", 20);
        health.retried = 3;
        health.dropped = 2;
        let mut lost = ChannelHealth::pristine("delay", 4);
        lost.lost = true;
        let degraded = MultiChannelReport {
            health: vec![health, lost],
            ..report
        };
        roundtrip(&degraded);
    }

    #[test]
    fn fault_plans_roundtrip_and_reject_bad_rates() {
        roundtrip(&FaultPlan::none());
        roundtrip(&FaultPlan {
            seed: u64::MAX,
            acquire_rate: 0.2,
            rep_rate: 1.0 / 3.0,
            calibrate_rate: 0.0,
            store_rate: 1.0,
        });
        let bad = frame("faultplan", "seed 0\nrates 0 1.5 0 0\n");
        let err = from_text::<FaultPlan>(&bad).unwrap_err();
        assert!(err.to_string().contains("outside [0, 1]"), "{err}");
    }

    #[test]
    fn golden_artifact_roundtrips_and_rebuilds_channels() {
        let plan = sample_plan();
        let charac = GoldenCharacterization {
            plan: plan.clone(),
            states: vec![
                ChannelState::pristine(
                    "EM",
                    Calibration::None,
                    GoldenReference::MeanTrace(Trace::new(vec![0.25; 9], 125.0)),
                    (0..plan.n_dies).map(|i| i as f64 * 1.5).collect(),
                ),
                ChannelState::pristine(
                    "delay",
                    Calibration::Glitch(sample_glitch()),
                    GoldenReference::MeanMatrix(DelayMatrix {
                        mean_onset_steps: vec![vec![4.0; 3]; 2],
                    }),
                    (0..plan.n_dies).map(|i| 40.0 - i as f64).collect(),
                ),
            ],
            lost: vec![],
        };
        let artifact = GoldenArtifact::new(
            vec![
                ChannelSpec::Em(TraceMetric::SumOfLocalMaxima),
                ChannelSpec::Delay,
            ],
            charac,
        )
        .unwrap();
        roundtrip(&artifact);
        let channels = artifact.build_channels();
        assert_eq!(channels.len(), 2);
        assert_eq!(channels[0].name(), "EM");
        assert_eq!(channels[1].name(), "delay");
    }

    #[test]
    fn golden_artifact_rejects_mismatched_specs() {
        let plan = sample_plan();
        let state = ChannelState::pristine(
            "EM",
            Calibration::None,
            GoldenReference::MeanTrace(Trace::new(vec![0.0; 4], 125.0)),
            vec![0.0; plan.n_dies],
        );
        let charac = GoldenCharacterization {
            plan: plan.clone(),
            states: vec![state.clone()],
            lost: vec![],
        };
        // Wrong channel name for the spec.
        assert!(GoldenArtifact::new(vec![ChannelSpec::Delay], charac.clone()).is_err());
        // Wrong spec count.
        assert!(GoldenArtifact::new(
            vec![
                ChannelSpec::Em(TraceMetric::SumOfLocalMaxima),
                ChannelSpec::Delay
            ],
            charac,
        )
        .is_err());
        // Score count disagreeing with the kept-die count.
        let short = GoldenCharacterization {
            plan,
            states: vec![ChannelState {
                scores: vec![0.0; 2],
                ..state
            }],
            lost: vec![],
        };
        assert!(
            GoldenArtifact::new(vec![ChannelSpec::Em(TraceMetric::SumOfLocalMaxima)], short)
                .is_err()
        );
    }

    #[test]
    fn wrong_kind_and_tampering_are_rejected_with_context() {
        let plan = sample_plan();
        let text = to_text(&plan);
        // Parsing a plan as a calibration names the kind mismatch.
        let err = from_text::<Calibration>(&text).unwrap_err();
        assert!(err.to_string().contains("expected `calibration`"), "{err}");
        // A flipped digit fails the checksum before any body parsing.
        let tampered = text.replacen("dies 6", "dies 8", 1);
        let err = from_text::<CampaignPlan>(&tampered).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        // Errors carry the origin label.
        assert!(err.to_string().starts_with(IN_MEMORY), "{err}");
    }

    #[test]
    fn truncation_never_panics() {
        let plan = sample_plan();
        let text = to_text(&plan);
        for cut in 0..text.len() {
            assert!(
                from_text::<CampaignPlan>(&text[..cut]).is_err(),
                "prefix of {cut} bytes must not parse"
            );
        }
    }

    #[test]
    fn save_and_load_roundtrip_through_the_filesystem() {
        let dir = std::env::temp_dir().join("htd-store-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plan.htd");
        let plan = sample_plan();
        save(&path, &plan).unwrap();
        let back: CampaignPlan = load(&path).unwrap();
        assert_eq!(back, plan);
        // Loading a missing file is an Io error carrying the path.
        let missing = dir.join("does-not-exist.htd");
        let err = load::<CampaignPlan>(&missing).unwrap_err();
        assert!(matches!(err, Error::Io { .. }), "{err}");
        assert!(err.to_string().contains("does-not-exist.htd"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
