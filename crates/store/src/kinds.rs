//! The [`Artifact`] trait and its implementation for every storable
//! kind: campaign plans, calibrations, acquisitions, golden references,
//! per-channel Gaussian fits, scored channels, rendered reports, and the
//! composite golden characterization.

use htd_core::campaign::CampaignPlan;
use htd_core::channel::{Acquisition, Calibration, Channel, ChannelSpec, GoldenReference};
use htd_core::fusion::{
    ChannelResult, ChannelState, GoldenCharacterization, MultiChannelReport, MultiChannelRow,
    ScoredChannel,
};
use htd_core::Error;
use htd_stats::Gaussian;

use crate::blocks::{
    parse_calibration, parse_f64_list, parse_payload, parse_plan, write_calibration,
    write_f64_list, write_payload, write_plan,
};
use crate::format::{fmt_f64, parse_f64, parse_usize, quote, unquote, BodyWriter, Parser};

/// A value with a durable text representation in the artifact store.
///
/// `write_body` and `parse_body` are exact inverses over the body lines;
/// the framing (header, checksum trailer) is handled by the store's
/// [`to_text`](crate::to_text) / [`from_text`](crate::from_text).
pub trait Artifact: Sized {
    /// The kind token written into the artifact header.
    const KIND: &'static str;

    /// Appends this value's body lines.
    fn write_body(&self, w: &mut BodyWriter);

    /// Parses a body written by [`Artifact::write_body`]. The caller
    /// checks that the body is fully consumed.
    ///
    /// # Errors
    ///
    /// [`Error::Format`] on any grammar or value violation.
    fn parse_body(p: &mut Parser<'_>) -> Result<Self, Error>;
}

impl Artifact for CampaignPlan {
    const KIND: &'static str = "plan";

    fn write_body(&self, w: &mut BodyWriter) {
        write_plan(w, self);
    }

    fn parse_body(p: &mut Parser<'_>) -> Result<Self, Error> {
        parse_plan(p)
    }
}

impl Artifact for Calibration {
    const KIND: &'static str = "calibration";

    fn write_body(&self, w: &mut BodyWriter) {
        write_calibration(w, self);
    }

    fn parse_body(p: &mut Parser<'_>) -> Result<Self, Error> {
        parse_calibration(p)
    }
}

impl Artifact for Acquisition {
    const KIND: &'static str = "acquisition";

    fn write_body(&self, w: &mut BodyWriter) {
        write_payload(w, &self.clone().into());
    }

    fn parse_body(p: &mut Parser<'_>) -> Result<Self, Error> {
        Ok(parse_payload(p)?.into_acquisition())
    }
}

impl Artifact for GoldenReference {
    const KIND: &'static str = "reference";

    fn write_body(&self, w: &mut BodyWriter) {
        write_payload(w, &self.clone().into());
    }

    fn parse_body(p: &mut Parser<'_>) -> Result<Self, Error> {
        Ok(parse_payload(p)?.into_reference())
    }
}

/// One channel's golden-population Gaussian fit, labelled so fits from
/// several channels can live side by side on disk.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelFit {
    /// The channel's label.
    pub channel: String,
    /// The Gaussian fitted to the channel's golden scores.
    pub fit: Gaussian,
}

impl Artifact for ChannelFit {
    const KIND: &'static str = "fit";

    fn write_body(&self, w: &mut BodyWriter) {
        w.line(format!("channel {}", quote(&self.channel)));
        w.line(format!(
            "gaussian {} {}",
            fmt_f64(self.fit.mean()),
            fmt_f64(self.fit.std())
        ));
    }

    fn parse_body(p: &mut Parser<'_>) -> Result<Self, Error> {
        let channel = parse_channel_label(p)?;
        let rest = p.keyword_line("gaussian")?;
        let (mean_tok, std_tok) = rest
            .split_once(' ')
            .ok_or_else(|| p.error("gaussian needs mean and standard deviation"))?;
        let mean = parse_f64(mean_tok.trim()).map_err(|e| p.error(e))?;
        let std = parse_f64(std_tok.trim()).map_err(|e| p.error(e))?;
        let fit =
            Gaussian::new(mean, std).map_err(|e| p.error(format!("bad gaussian fit: {e}")))?;
        Ok(ChannelFit { channel, fit })
    }
}

impl Artifact for ScoredChannel {
    const KIND: &'static str = "scores";

    fn write_body(&self, w: &mut BodyWriter) {
        w.line(format!("channel {}", quote(&self.channel)));
        write_f64_list(w, "golden", &self.golden);
        write_f64_list(w, "infected", &self.infected);
    }

    fn parse_body(p: &mut Parser<'_>) -> Result<Self, Error> {
        let channel = parse_channel_label(p)?;
        let golden = parse_f64_list(p, "golden")?;
        let infected = parse_f64_list(p, "infected")?;
        Ok(ScoredChannel {
            channel,
            golden,
            infected,
        })
    }
}

impl Artifact for MultiChannelReport {
    const KIND: &'static str = "report";

    fn write_body(&self, w: &mut BodyWriter) {
        w.line(format!("dies {}", self.n_dies));
        w.line(format!("channels {}", self.channel_names.len()));
        for name in &self.channel_names {
            w.line(format!("channel {}", quote(name)));
        }
        w.line(format!("rows {}", self.rows.len()));
        for row in &self.rows {
            w.line(format!(
                "row {} {} {} {}",
                quote(&row.name),
                fmt_f64(row.size_fraction),
                row.channels.len(),
                usize::from(row.fused.is_some()),
            ));
            for r in &row.channels {
                write_result(w, "result", r);
            }
            if let Some(fused) = &row.fused {
                write_result(w, "fused", fused);
            }
        }
    }

    fn parse_body(p: &mut Parser<'_>) -> Result<Self, Error> {
        let n_dies = parse_usize(p.keyword_line("dies")?.trim()).map_err(|e| p.error(e))?;
        let n_channels = parse_usize(p.keyword_line("channels")?.trim()).map_err(|e| p.error(e))?;
        if n_channels > p.remaining() {
            return Err(p.error(format!(
                "report declares {n_channels} channels but only {} lines remain",
                p.remaining()
            )));
        }
        let mut channel_names = Vec::with_capacity(n_channels);
        for _ in 0..n_channels {
            channel_names.push(parse_channel_label(p)?);
        }
        let n_rows = parse_usize(p.keyword_line("rows")?.trim()).map_err(|e| p.error(e))?;
        if n_rows > p.remaining() {
            return Err(p.error(format!(
                "report declares {n_rows} rows but only {} lines remain",
                p.remaining()
            )));
        }
        let mut rows = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            let rest = p.keyword_line("row")?;
            let (name, rest) =
                unquote(rest).ok_or_else(|| p.error("row needs a quoted trojan name"))?;
            let mut words = rest.split_whitespace();
            let size_fraction = parse_f64(
                words
                    .next()
                    .ok_or_else(|| p.error("row missing size fraction"))?,
            )
            .map_err(|e| p.error(e))?;
            let n_results = parse_usize(
                words
                    .next()
                    .ok_or_else(|| p.error("row missing result count"))?,
            )
            .map_err(|e| p.error(e))?;
            let fused_flag = match words.next() {
                Some("0") => false,
                Some("1") => true,
                _ => return Err(p.error("row fused flag must be 0 or 1")),
            };
            if words.next().is_some() {
                return Err(p.error("trailing tokens after row header"));
            }
            if n_results > p.remaining() {
                return Err(p.error(format!(
                    "row declares {n_results} results but only {} lines remain",
                    p.remaining()
                )));
            }
            let mut channels = Vec::with_capacity(n_results);
            for _ in 0..n_results {
                channels.push(parse_result(p, "result")?);
            }
            let fused = fused_flag.then(|| parse_result(p, "fused")).transpose()?;
            rows.push(MultiChannelRow {
                name,
                size_fraction,
                channels,
                fused,
            });
        }
        Ok(MultiChannelReport {
            rows,
            n_dies,
            channel_names,
        })
    }
}

/// The composite golden artifact: the channel construction recipes plus
/// the full [`GoldenCharacterization`]. Loading one is everything `htd
/// score` needs — no re-measurement, no out-of-band channel knowledge.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenArtifact {
    specs: Vec<ChannelSpec>,
    charac: GoldenCharacterization,
}

impl GoldenArtifact {
    /// Binds channel specs to a characterization they produced.
    ///
    /// # Errors
    ///
    /// [`Error::ChannelShapeMismatch`] when the spec list does not match
    /// the characterization's channel states (count or name order), or
    /// when a state's golden-score count differs from the plan's die
    /// count.
    pub fn new(specs: Vec<ChannelSpec>, charac: GoldenCharacterization) -> Result<Self, Error> {
        if specs.len() != charac.states.len() {
            return Err(Error::ChannelShapeMismatch {
                channel: format!("{} spec(s)", specs.len()),
                expected: "one spec per characterized channel",
            });
        }
        for (spec, state) in specs.iter().zip(&charac.states) {
            if spec.name() != state.channel {
                return Err(Error::ChannelShapeMismatch {
                    channel: state.channel.clone(),
                    expected: "spec order matching channel execution order",
                });
            }
            if state.scores.len() != charac.plan.n_dies {
                return Err(Error::ChannelShapeMismatch {
                    channel: state.channel.clone(),
                    expected: "one golden score per die",
                });
            }
        }
        Ok(GoldenArtifact { specs, charac })
    }

    /// The channel construction recipes, in execution order.
    pub fn specs(&self) -> &[ChannelSpec] {
        &self.specs
    }

    /// The stored characterization.
    pub fn characterization(&self) -> &GoldenCharacterization {
        &self.charac
    }

    /// Consumes the artifact into its characterization.
    pub fn into_characterization(self) -> GoldenCharacterization {
        self.charac
    }

    /// Rebuilds the live channels the stored specs describe, in order.
    pub fn build_channels(&self) -> Vec<Box<dyn Channel>> {
        self.specs.iter().map(ChannelSpec::build).collect()
    }
}

impl Artifact for GoldenArtifact {
    const KIND: &'static str = "golden";

    fn write_body(&self, w: &mut BodyWriter) {
        write_plan(w, &self.charac.plan);
        w.line(format!("channels {}", self.specs.len()));
        for (spec, state) in self.specs.iter().zip(&self.charac.states) {
            w.line(format!("channel {}", spec.token()));
            write_calibration(w, &state.calibration);
            write_payload(w, &state.reference.clone().into());
            write_f64_list(w, "scores", &state.scores);
        }
    }

    fn parse_body(p: &mut Parser<'_>) -> Result<Self, Error> {
        let plan = parse_plan(p)?;
        let n_channels = parse_usize(p.keyword_line("channels")?.trim()).map_err(|e| p.error(e))?;
        if n_channels > p.remaining() {
            return Err(p.error(format!(
                "golden artifact declares {n_channels} channels but only {} lines remain",
                p.remaining()
            )));
        }
        let mut specs = Vec::with_capacity(n_channels);
        let mut states = Vec::with_capacity(n_channels);
        for _ in 0..n_channels {
            let token = p.keyword_line("channel")?;
            let spec = ChannelSpec::from_token(token)
                .ok_or_else(|| p.error(format!("unknown channel spec `{token}`")))?;
            let calibration = parse_calibration(p)?;
            let reference = parse_payload(p)?.into_reference();
            let scores = parse_f64_list(p, "scores")?;
            states.push(ChannelState {
                channel: spec.name().to_string(),
                calibration,
                reference,
                scores,
            });
            specs.push(spec);
        }
        GoldenArtifact::new(specs, GoldenCharacterization { plan, states })
            .map_err(|e| p.error(format!("inconsistent golden artifact: {e}")))
    }
}

/// Writes one [`ChannelResult`] line under `keyword`.
fn write_result(w: &mut BodyWriter, keyword: &str, r: &ChannelResult) {
    w.line(format!(
        "{keyword} {} {} {} {} {} {}",
        quote(&r.channel),
        fmt_f64(r.mu),
        fmt_f64(r.sigma),
        fmt_f64(r.analytic_fn_rate),
        fmt_f64(r.empirical_fn_rate),
        fmt_f64(r.empirical_fp_rate),
    ));
}

/// Parses a [`write_result`] line.
fn parse_result(p: &mut Parser<'_>, keyword: &str) -> Result<ChannelResult, Error> {
    let rest = p.keyword_line(keyword)?;
    let (channel, rest) =
        unquote(rest).ok_or_else(|| p.error(format!("{keyword} needs a quoted channel label")))?;
    let mut values = [0.0f64; 5];
    let mut words = rest.split_whitespace();
    for v in &mut values {
        let token = words
            .next()
            .ok_or_else(|| p.error(format!("{keyword} needs five statistics")))?;
        *v = parse_f64(token).map_err(|e| p.error(e))?;
    }
    if words.next().is_some() {
        return Err(p.error(format!("trailing tokens after {keyword} statistics")));
    }
    let [mu, sigma, analytic_fn_rate, empirical_fn_rate, empirical_fp_rate] = values;
    Ok(ChannelResult {
        channel,
        mu,
        sigma,
        analytic_fn_rate,
        empirical_fn_rate,
        empirical_fp_rate,
    })
}

/// Parses a `channel "<label>"` line.
fn parse_channel_label(p: &mut Parser<'_>) -> Result<String, Error> {
    let rest = p.keyword_line("channel")?;
    let (label, tail) = unquote(rest).ok_or_else(|| p.error("channel needs a quoted label"))?;
    if !tail.trim().is_empty() {
        return Err(p.error("trailing tokens after channel label"));
    }
    Ok(label)
}
