//! The [`Artifact`] trait and its implementation for every storable
//! kind: campaign plans, calibrations, acquisitions, golden references,
//! per-channel Gaussian fits, scored channels, rendered reports, and the
//! composite golden characterization.

use htd_core::campaign::CampaignPlan;
use htd_core::channel::{Acquisition, Calibration, Channel, ChannelSpec, GoldenReference};
use htd_core::fusion::{
    ChannelResult, ChannelState, GoldenCharacterization, MultiChannelReport, MultiChannelRow,
    ScoredChannel,
};
use htd_core::reffree::{ReferenceFreeCharacterization, ReferenceFreeFit, ReferenceFreeState};
use htd_core::resilience::ChannelHealth;
use htd_core::Error;
use htd_faults::FaultPlan;
use htd_stats::logistic::LogisticModel;
use htd_stats::Gaussian;

use crate::blocks::{
    parse_calibration, parse_f64_list, parse_payload, parse_plan, write_calibration,
    write_f64_list, write_payload, write_plan,
};
use crate::format::{
    fmt_f64, parse_f64, parse_u64, parse_usize, quote, unquote, BodyWriter, Parser,
};

/// A value with a durable text representation in the artifact store.
///
/// `write_body` and `parse_body` are exact inverses over the body lines;
/// the framing (header, checksum trailer) is handled by the store's
/// [`to_text`](crate::to_text) / [`from_text`](crate::from_text).
pub trait Artifact: Sized {
    /// The kind token written into the artifact header.
    const KIND: &'static str;

    /// Appends this value's body lines.
    fn write_body(&self, w: &mut BodyWriter);

    /// Parses a body written by [`Artifact::write_body`]. The caller
    /// checks that the body is fully consumed.
    ///
    /// # Errors
    ///
    /// [`Error::Format`] on any grammar or value violation.
    fn parse_body(p: &mut Parser<'_>) -> Result<Self, Error>;

    /// Best-effort variant of [`Artifact::parse_body`] for the salvage
    /// reader: recovers what it can from a damaged body, returning the
    /// value plus the 0-based body-line indices it had to drop. The
    /// default is fully strict — any damage fails the parse and nothing
    /// is ever dropped; kinds with block-structured bodies override this
    /// to skip corrupt blocks.
    ///
    /// # Errors
    ///
    /// [`Error::Format`] when not even a partial value can be recovered.
    fn parse_body_salvage(p: &mut Parser<'_>) -> Result<(Self, Vec<usize>), Error> {
        Ok((Self::parse_body(p)?, Vec::new()))
    }
}

impl Artifact for FaultPlan {
    const KIND: &'static str = "faultplan";

    fn write_body(&self, w: &mut BodyWriter) {
        w.line(format!("seed {}", self.seed));
        w.line(format!(
            "rates {} {} {} {}",
            fmt_f64(self.acquire_rate),
            fmt_f64(self.rep_rate),
            fmt_f64(self.calibrate_rate),
            fmt_f64(self.store_rate),
        ));
    }

    fn parse_body(p: &mut Parser<'_>) -> Result<Self, Error> {
        let seed = parse_u64(p.keyword_line("seed")?.trim()).map_err(|e| p.error(e))?;
        let rest = p.keyword_line("rates")?;
        let mut rates = [0.0f64; 4];
        let mut words = rest.split_whitespace();
        for r in &mut rates {
            let token = words.next().ok_or_else(|| {
                p.error("rates needs acquire, rep, calibrate and store probabilities")
            })?;
            *r = parse_f64(token).map_err(|e| p.error(e))?;
            if !(0.0..=1.0).contains(r) {
                return Err(p.error(format!("rate {} outside [0, 1]", fmt_f64(*r))));
            }
        }
        if words.next().is_some() {
            return Err(p.error("trailing tokens after rates"));
        }
        let [acquire_rate, rep_rate, calibrate_rate, store_rate] = rates;
        Ok(FaultPlan {
            seed,
            acquire_rate,
            rep_rate,
            calibrate_rate,
            store_rate,
        })
    }
}

impl Artifact for CampaignPlan {
    const KIND: &'static str = "plan";

    fn write_body(&self, w: &mut BodyWriter) {
        write_plan(w, self);
    }

    fn parse_body(p: &mut Parser<'_>) -> Result<Self, Error> {
        parse_plan(p)
    }
}

impl Artifact for Calibration {
    const KIND: &'static str = "calibration";

    fn write_body(&self, w: &mut BodyWriter) {
        write_calibration(w, self);
    }

    fn parse_body(p: &mut Parser<'_>) -> Result<Self, Error> {
        parse_calibration(p)
    }
}

impl Artifact for Acquisition {
    const KIND: &'static str = "acquisition";

    fn write_body(&self, w: &mut BodyWriter) {
        write_payload(w, &self.clone().into());
    }

    fn parse_body(p: &mut Parser<'_>) -> Result<Self, Error> {
        Ok(parse_payload(p)?.into_acquisition())
    }
}

impl Artifact for GoldenReference {
    const KIND: &'static str = "reference";

    fn write_body(&self, w: &mut BodyWriter) {
        write_payload(w, &self.clone().into());
    }

    fn parse_body(p: &mut Parser<'_>) -> Result<Self, Error> {
        Ok(parse_payload(p)?.into_reference())
    }
}

/// One channel's golden-population Gaussian fit, labelled so fits from
/// several channels can live side by side on disk.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelFit {
    /// The channel's label.
    pub channel: String,
    /// The Gaussian fitted to the channel's golden scores.
    pub fit: Gaussian,
}

impl Artifact for ChannelFit {
    const KIND: &'static str = "fit";

    fn write_body(&self, w: &mut BodyWriter) {
        w.line(format!("channel {}", quote(&self.channel)));
        w.line(format!(
            "gaussian {} {}",
            fmt_f64(self.fit.mean()),
            fmt_f64(self.fit.std())
        ));
    }

    fn parse_body(p: &mut Parser<'_>) -> Result<Self, Error> {
        let channel = parse_channel_label(p)?;
        let rest = p.keyword_line("gaussian")?;
        let (mean_tok, std_tok) = rest
            .split_once(' ')
            .ok_or_else(|| p.error("gaussian needs mean and standard deviation"))?;
        let mean = parse_f64(mean_tok.trim()).map_err(|e| p.error(e))?;
        let std = parse_f64(std_tok.trim()).map_err(|e| p.error(e))?;
        let fit =
            Gaussian::new(mean, std).map_err(|e| p.error(format!("bad gaussian fit: {e}")))?;
        Ok(ChannelFit { channel, fit })
    }
}

impl Artifact for ScoredChannel {
    const KIND: &'static str = "scores";

    fn write_body(&self, w: &mut BodyWriter) {
        w.line(format!("channel {}", quote(&self.channel)));
        write_f64_list(w, "golden", &self.golden);
        write_f64_list(w, "infected", &self.infected);
    }

    fn parse_body(p: &mut Parser<'_>) -> Result<Self, Error> {
        let channel = parse_channel_label(p)?;
        let golden = parse_f64_list(p, "golden")?;
        let infected = parse_f64_list(p, "infected")?;
        Ok(ScoredChannel {
            channel,
            golden,
            infected,
        })
    }
}

impl Artifact for MultiChannelReport {
    const KIND: &'static str = "report";

    fn write_body(&self, w: &mut BodyWriter) {
        w.line(format!("dies {}", self.n_dies));
        w.line(format!("channels {}", self.channel_names.len()));
        for name in &self.channel_names {
            w.line(format!("channel {}", quote(name)));
        }
        w.line(format!("rows {}", self.rows.len()));
        for row in &self.rows {
            w.line(format!(
                "row {} {} {} {}",
                quote(&row.name),
                fmt_f64(row.size_fraction),
                row.channels.len(),
                usize::from(row.fused.is_some()),
            ));
            for r in &row.channels {
                write_result(w, "result", r);
            }
            if let Some(fused) = &row.fused {
                write_result(w, "fused", fused);
            }
        }
        // The health section only exists for degraded campaigns, so
        // pristine reports keep their historical byte layout.
        if !self.health.is_empty() {
            w.line(format!("health {}", self.health.len()));
            for h in &self.health {
                write_health(w, h);
            }
        }
    }

    fn parse_body(p: &mut Parser<'_>) -> Result<Self, Error> {
        let n_dies = parse_usize(p.keyword_line("dies")?.trim()).map_err(|e| p.error(e))?;
        let n_channels = parse_usize(p.keyword_line("channels")?.trim()).map_err(|e| p.error(e))?;
        if n_channels > p.remaining() {
            return Err(p.error(format!(
                "report declares {n_channels} channels but only {} lines remain",
                p.remaining()
            )));
        }
        let mut channel_names = Vec::with_capacity(n_channels);
        for _ in 0..n_channels {
            channel_names.push(parse_channel_label(p)?);
        }
        let n_rows = parse_usize(p.keyword_line("rows")?.trim()).map_err(|e| p.error(e))?;
        if n_rows > p.remaining() {
            return Err(p.error(format!(
                "report declares {n_rows} rows but only {} lines remain",
                p.remaining()
            )));
        }
        let mut rows = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            let rest = p.keyword_line("row")?;
            let (name, rest) =
                unquote(rest).ok_or_else(|| p.error("row needs a quoted trojan name"))?;
            let mut words = rest.split_whitespace();
            let size_fraction = parse_f64(
                words
                    .next()
                    .ok_or_else(|| p.error("row missing size fraction"))?,
            )
            .map_err(|e| p.error(e))?;
            let n_results = parse_usize(
                words
                    .next()
                    .ok_or_else(|| p.error("row missing result count"))?,
            )
            .map_err(|e| p.error(e))?;
            let fused_flag = match words.next() {
                Some("0") => false,
                Some("1") => true,
                _ => return Err(p.error("row fused flag must be 0 or 1")),
            };
            if words.next().is_some() {
                return Err(p.error("trailing tokens after row header"));
            }
            if n_results > p.remaining() {
                return Err(p.error(format!(
                    "row declares {n_results} results but only {} lines remain",
                    p.remaining()
                )));
            }
            let mut channels = Vec::with_capacity(n_results);
            for _ in 0..n_results {
                channels.push(parse_result(p, "result")?);
            }
            let fused = fused_flag.then(|| parse_result(p, "fused")).transpose()?;
            rows.push(MultiChannelRow {
                name,
                size_fraction,
                channels,
                fused,
            });
        }
        let mut health = Vec::new();
        if p.peek().is_some_and(|l| l.starts_with("health ")) {
            let n = parse_usize(p.keyword_line("health")?.trim()).map_err(|e| p.error(e))?;
            if n > p.remaining() {
                return Err(p.error(format!(
                    "health declares {n} channels but only {} lines remain",
                    p.remaining()
                )));
            }
            for _ in 0..n {
                health.push(parse_health(p)?);
            }
        }
        Ok(MultiChannelReport {
            rows,
            n_dies,
            channel_names,
            health,
        })
    }
}

/// The composite golden artifact: the channel construction recipes plus
/// the full [`GoldenCharacterization`]. Loading one is everything `htd
/// score` needs — no re-measurement, no out-of-band channel knowledge.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenArtifact {
    specs: Vec<ChannelSpec>,
    charac: GoldenCharacterization,
}

impl GoldenArtifact {
    /// Binds channel specs to a characterization they produced.
    ///
    /// # Errors
    ///
    /// [`Error::ChannelShapeMismatch`] when the spec list does not match
    /// the characterization's channel states (count or name order), when
    /// a state's golden-score count differs from its kept-die count,
    /// when the kept dies are not a strictly ascending subset of the
    /// plan's dies (at least two of them), or when a surviving state is
    /// marked lost.
    pub fn new(specs: Vec<ChannelSpec>, charac: GoldenCharacterization) -> Result<Self, Error> {
        if specs.len() != charac.states.len() {
            return Err(Error::ChannelShapeMismatch {
                channel: format!("{} spec(s)", specs.len()),
                expected: "one spec per characterized channel",
            });
        }
        for (spec, state) in specs.iter().zip(&charac.states) {
            if spec.name() != state.channel {
                return Err(Error::ChannelShapeMismatch {
                    channel: state.channel.clone(),
                    expected: "spec order matching channel execution order",
                });
            }
            if state.kept.len() != state.scores.len() {
                return Err(Error::ChannelShapeMismatch {
                    channel: state.channel.clone(),
                    expected: "one golden score per kept die",
                });
            }
            if state.kept.len() < 2 {
                return Err(Error::ChannelShapeMismatch {
                    channel: state.channel.clone(),
                    expected: "at least two kept dies",
                });
            }
            let ascending = state.kept.windows(2).all(|w| w[0] < w[1]);
            let in_plan = state.kept.last().is_none_or(|&k| k < charac.plan.n_dies);
            if !ascending || !in_plan {
                return Err(Error::ChannelShapeMismatch {
                    channel: state.channel.clone(),
                    expected: "kept dies strictly ascending within the plan",
                });
            }
            if state.health.lost {
                return Err(Error::ChannelShapeMismatch {
                    channel: state.channel.clone(),
                    expected: "surviving states only (lost channels go in `lost`)",
                });
            }
        }
        Ok(GoldenArtifact { specs, charac })
    }

    /// The channel construction recipes, in execution order.
    pub fn specs(&self) -> &[ChannelSpec] {
        &self.specs
    }

    /// The stored characterization.
    pub fn characterization(&self) -> &GoldenCharacterization {
        &self.charac
    }

    /// Consumes the artifact into its characterization.
    pub fn into_characterization(self) -> GoldenCharacterization {
        self.charac
    }

    /// Rebuilds the live channels the stored specs describe, in order.
    pub fn build_channels(&self) -> Vec<Box<dyn Channel>> {
        self.specs.iter().map(ChannelSpec::build).collect()
    }
}

impl Artifact for GoldenArtifact {
    const KIND: &'static str = "golden";

    fn write_body(&self, w: &mut BodyWriter) {
        write_plan(w, &self.charac.plan);
        w.line(format!("channels {}", self.specs.len()));
        for (spec, state) in self.specs.iter().zip(&self.charac.states) {
            w.line(format!("channel {}", spec.token()));
            write_calibration(w, &state.calibration);
            write_payload(w, &state.reference.clone().into());
            write_f64_list(w, "scores", &state.scores);
            // Degradation markers are only written when present, keeping
            // pristine artifacts on their historical byte layout.
            if state.kept.iter().copied().ne(0..state.scores.len()) {
                let mut line = format!("kept {}", state.kept.len());
                for &k in &state.kept {
                    line.push_str(&format!(" {k}"));
                }
                w.line(line);
            }
            if !state.health.is_pristine(state.scores.len()) {
                write_health(w, &state.health);
            }
        }
        if !self.charac.lost.is_empty() {
            w.line(format!("lost {}", self.charac.lost.len()));
            for h in &self.charac.lost {
                write_health(w, h);
            }
        }
    }

    fn parse_body(p: &mut Parser<'_>) -> Result<Self, Error> {
        let plan = parse_plan(p)?;
        let n_channels = parse_usize(p.keyword_line("channels")?.trim()).map_err(|e| p.error(e))?;
        if n_channels > p.remaining() {
            return Err(p.error(format!(
                "golden artifact declares {n_channels} channels but only {} lines remain",
                p.remaining()
            )));
        }
        let mut specs = Vec::with_capacity(n_channels);
        let mut states = Vec::with_capacity(n_channels);
        for _ in 0..n_channels {
            let (spec, state) = parse_channel_block(p)?;
            states.push(state);
            specs.push(spec);
        }
        let lost = parse_lost_section(p)?;
        GoldenArtifact::new(specs, GoldenCharacterization { plan, states, lost })
            .map_err(|e| p.error(format!("inconsistent golden artifact: {e}")))
    }

    /// Golden bodies are block-structured (one block per channel), so a
    /// corrupt line costs only its own block: the reader rewinds to the
    /// block boundary, drops it, and resyncs at the next `channel ` line.
    fn parse_body_salvage(p: &mut Parser<'_>) -> Result<(Self, Vec<usize>), Error> {
        let mut dropped = Vec::new();
        let plan = parse_plan(p)?;
        let n_channels = parse_usize(p.keyword_line("channels")?.trim()).map_err(|e| p.error(e))?;
        let mut specs = Vec::new();
        let mut states = Vec::new();
        while specs.len() < n_channels {
            match p.peek() {
                None => break,
                Some(l) if l.starts_with("lost ") => break,
                Some(_) => {}
            }
            let mark = p.save();
            match parse_channel_block(p) {
                Ok((spec, state)) => {
                    specs.push(spec);
                    states.push(state);
                }
                Err(_) => {
                    p.restore(mark);
                    dropped.push(p.save());
                    let _ = p.next_line();
                    dropped.extend(p.skip_to_prefix("channel "));
                }
            }
        }
        let mark = p.save();
        let lost = match parse_lost_section(p) {
            Ok(lost) => lost,
            Err(_) => {
                p.restore(mark);
                while p.peek().is_some() {
                    dropped.push(p.save());
                    let _ = p.next_line();
                }
                Vec::new()
            }
        };
        if states.is_empty() {
            return Err(p.error("no channel block survived salvage"));
        }
        let artifact = GoldenArtifact::new(specs, GoldenCharacterization { plan, states, lost })
            .map_err(|e| p.error(format!("inconsistent golden artifact: {e}")))?;
        Ok((artifact, dropped))
    }
}

/// Parses one golden channel block: the spec token, calibration,
/// reference payload, scores, and the optional degradation markers
/// (`kept`, `channel-health`) whose absence reconstructs a pristine
/// state exactly.
fn parse_channel_block(p: &mut Parser<'_>) -> Result<(ChannelSpec, ChannelState), Error> {
    let token = p.keyword_line("channel")?;
    let spec = ChannelSpec::from_token(token)
        .ok_or_else(|| p.error(format!("unknown channel spec `{token}`")))?;
    let calibration = parse_calibration(p)?;
    let reference = parse_payload(p)?.into_reference();
    let scores = parse_f64_list(p, "scores")?;
    let kept = if p.peek().is_some_and(|l| l.starts_with("kept ")) {
        let rest = p.keyword_line("kept")?;
        let mut words = rest.split_whitespace();
        let n = parse_usize(words.next().ok_or_else(|| p.error("kept needs a count"))?)
            .map_err(|e| p.error(e))?;
        let kept: Vec<usize> = words
            .map(parse_usize)
            .collect::<Result<_, _>>()
            .map_err(|e| p.error(e))?;
        if kept.len() != n {
            return Err(p.error(format!("kept declares {n} dies but lists {}", kept.len())));
        }
        kept
    } else {
        (0..scores.len()).collect()
    };
    let health = if p.peek().is_some_and(|l| l.starts_with("channel-health ")) {
        parse_health(p)?
    } else {
        ChannelHealth::pristine(spec.name(), scores.len())
    };
    let state = ChannelState {
        channel: spec.name().to_string(),
        calibration,
        reference,
        scores,
        kept,
        health,
    };
    Ok((spec, state))
}

/// Parses the optional trailing `lost` section of a golden body.
fn parse_lost_section(p: &mut Parser<'_>) -> Result<Vec<ChannelHealth>, Error> {
    if !p.peek().is_some_and(|l| l.starts_with("lost ")) {
        return Ok(Vec::new());
    }
    let n = parse_usize(p.keyword_line("lost")?.trim()).map_err(|e| p.error(e))?;
    if n > p.remaining() {
        return Err(p.error(format!(
            "lost declares {n} channels but only {} lines remain",
            p.remaining()
        )));
    }
    (0..n).map(|_| parse_health(p)).collect()
}

/// Writes one [`ChannelHealth`] record as a `channel-health` line.
fn write_health(w: &mut BodyWriter, h: &ChannelHealth) {
    w.line(format!(
        "channel-health {} {} {} {} {} {} {}",
        quote(&h.channel),
        h.attempted,
        h.retried,
        h.dropped,
        h.reps_attempted,
        h.reps_dropped,
        usize::from(h.lost),
    ));
}

/// Parses a [`write_health`] line.
fn parse_health(p: &mut Parser<'_>) -> Result<ChannelHealth, Error> {
    let rest = p.keyword_line("channel-health")?;
    let (channel, rest) =
        unquote(rest).ok_or_else(|| p.error("channel-health needs a quoted channel label"))?;
    let mut values = [0usize; 5];
    let mut words = rest.split_whitespace();
    for v in &mut values {
        let token = words
            .next()
            .ok_or_else(|| p.error("channel-health needs five counters and a lost flag"))?;
        *v = parse_usize(token).map_err(|e| p.error(e))?;
    }
    let lost = match words.next() {
        Some("0") => false,
        Some("1") => true,
        _ => return Err(p.error("channel-health lost flag must be 0 or 1")),
    };
    if words.next().is_some() {
        return Err(p.error("trailing tokens after channel-health"));
    }
    let [attempted, retried, dropped, reps_attempted, reps_dropped] = values;
    Ok(ChannelHealth {
        channel,
        attempted,
        retried,
        dropped,
        reps_attempted,
        reps_dropped,
        lost,
    })
}

/// Writes one [`ChannelResult`] line under `keyword`.
fn write_result(w: &mut BodyWriter, keyword: &str, r: &ChannelResult) {
    w.line(format!(
        "{keyword} {} {} {} {} {} {}",
        quote(&r.channel),
        fmt_f64(r.mu),
        fmt_f64(r.sigma),
        fmt_f64(r.analytic_fn_rate),
        fmt_f64(r.empirical_fn_rate),
        fmt_f64(r.empirical_fp_rate),
    ));
}

/// Parses a [`write_result`] line.
fn parse_result(p: &mut Parser<'_>, keyword: &str) -> Result<ChannelResult, Error> {
    let rest = p.keyword_line(keyword)?;
    let (channel, rest) =
        unquote(rest).ok_or_else(|| p.error(format!("{keyword} needs a quoted channel label")))?;
    let mut values = [0.0f64; 5];
    let mut words = rest.split_whitespace();
    for v in &mut values {
        let token = words
            .next()
            .ok_or_else(|| p.error(format!("{keyword} needs five statistics")))?;
        *v = parse_f64(token).map_err(|e| p.error(e))?;
    }
    if words.next().is_some() {
        return Err(p.error(format!("trailing tokens after {keyword} statistics")));
    }
    let [mu, sigma, analytic_fn_rate, empirical_fn_rate, empirical_fp_rate] = values;
    Ok(ChannelResult {
        channel,
        mu,
        sigma,
        analytic_fn_rate,
        empirical_fn_rate,
        empirical_fp_rate,
    })
}

impl Artifact for LogisticModel {
    const KIND: &'static str = "classifier";

    fn write_body(&self, w: &mut BodyWriter) {
        w.line(format!("channels {}", self.features.len()));
        for (((name, weight), mean), std) in self
            .features
            .iter()
            .zip(&self.weights)
            .zip(&self.means)
            .zip(&self.stds)
        {
            w.line(format!(
                "channel {} {} {} {}",
                quote(name),
                fmt_f64(*weight),
                fmt_f64(*mean),
                fmt_f64(*std),
            ));
        }
        w.line(format!("bias {}", fmt_f64(self.bias)));
        w.line(format!(
            "trained {} {} {}",
            self.seed,
            self.iterations,
            fmt_f64(self.rate),
        ));
    }

    fn parse_body(p: &mut Parser<'_>) -> Result<Self, Error> {
        let n = parse_usize(p.keyword_line("channels")?.trim()).map_err(|e| p.error(e))?;
        if n == 0 {
            return Err(p.error("classifier needs at least one feature channel"));
        }
        if n > p.remaining() {
            return Err(p.error(format!(
                "classifier declares {n} channels but only {} lines remain",
                p.remaining()
            )));
        }
        let mut model = LogisticModel {
            features: Vec::with_capacity(n),
            bias: 0.0,
            weights: Vec::with_capacity(n),
            means: Vec::with_capacity(n),
            stds: Vec::with_capacity(n),
            seed: 0,
            iterations: 0,
            rate: 0.0,
        };
        for _ in 0..n {
            push_classifier_feature(p, &mut model)?;
        }
        parse_classifier_trailer(p, &mut model)?;
        Ok(model)
    }

    /// Classifier bodies are one line per feature, so a corrupt feature
    /// line costs only itself: the reader drops it and resyncs on the
    /// next line, then parses the `bias`/`trained` trailer strictly.
    fn parse_body_salvage(p: &mut Parser<'_>) -> Result<(Self, Vec<usize>), Error> {
        let mut dropped = Vec::new();
        let n = parse_usize(p.keyword_line("channels")?.trim()).map_err(|e| p.error(e))?;
        let mut model = LogisticModel {
            features: Vec::new(),
            bias: 0.0,
            weights: Vec::new(),
            means: Vec::new(),
            stds: Vec::new(),
            seed: 0,
            iterations: 0,
            rate: 0.0,
        };
        while model.features.len() < n {
            match p.peek() {
                None => break,
                Some(l) if l.starts_with("bias ") => break,
                Some(_) => {}
            }
            let mark = p.save();
            if push_classifier_feature(p, &mut model).is_err() {
                p.restore(mark);
                dropped.push(p.save());
                let _ = p.next_line();
            }
        }
        if model.features.is_empty() {
            return Err(p.error("no classifier feature survived salvage"));
        }
        parse_classifier_trailer(p, &mut model)?;
        Ok((model, dropped))
    }
}

/// Parses one `channel "<name>" <weight> <mean> <std>` classifier
/// feature line into `model`.
fn push_classifier_feature(p: &mut Parser<'_>, model: &mut LogisticModel) -> Result<(), Error> {
    let rest = p.keyword_line("channel")?;
    let (name, rest) =
        unquote(rest).ok_or_else(|| p.error("classifier channel needs a quoted name"))?;
    let mut values = [0.0f64; 3];
    let mut words = rest.split_whitespace();
    for v in &mut values {
        let token = words
            .next()
            .ok_or_else(|| p.error("classifier channel needs weight, mean and std"))?;
        *v = parse_f64(token).map_err(|e| p.error(e))?;
    }
    if words.next().is_some() {
        return Err(p.error("trailing tokens after classifier channel"));
    }
    let [weight, mean, std] = values;
    if std <= 0.0 {
        return Err(p.error(format!(
            "classifier std must be positive, got {}",
            fmt_f64(std)
        )));
    }
    model.features.push(name);
    model.weights.push(weight);
    model.means.push(mean);
    model.stds.push(std);
    Ok(())
}

/// Parses the strict `bias` + `trained` trailer of a classifier body.
fn parse_classifier_trailer(p: &mut Parser<'_>, model: &mut LogisticModel) -> Result<(), Error> {
    model.bias = parse_f64(p.keyword_line("bias")?.trim()).map_err(|e| p.error(e))?;
    let rest = p.keyword_line("trained")?;
    let mut words = rest.split_whitespace();
    model.seed = parse_u64(
        words
            .next()
            .ok_or_else(|| p.error("trained needs seed, iterations and rate"))?,
    )
    .map_err(|e| p.error(e))?;
    model.iterations = parse_usize(
        words
            .next()
            .ok_or_else(|| p.error("trained needs seed, iterations and rate"))?,
    )
    .map_err(|e| p.error(e))?;
    model.rate = parse_f64(
        words
            .next()
            .ok_or_else(|| p.error("trained needs seed, iterations and rate"))?,
    )
    .map_err(|e| p.error(e))?;
    if words.next().is_some() {
        return Err(p.error("trailing tokens after trained parameters"));
    }
    if model.rate <= 0.0 {
        return Err(p.error(format!(
            "training rate must be positive, got {}",
            fmt_f64(model.rate)
        )));
    }
    Ok(())
}

/// The composite reference-free artifact: the channel recipes plus the
/// full [`ReferenceFreeCharacterization`]. Loading one is everything
/// `htd score` needs to score a suspect lot without any golden
/// reference — per channel only the calibration, the baseline
/// self-scores and their fit travel; no reference payload exists.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceFreeArtifact {
    specs: Vec<ChannelSpec>,
    charac: ReferenceFreeCharacterization,
}

impl ReferenceFreeArtifact {
    /// Binds channel specs to a reference-free characterization they
    /// produced.
    ///
    /// # Errors
    ///
    /// [`Error::ChannelShapeMismatch`] when the spec list does not match
    /// the characterization's states (count or name order), when a
    /// state's self-score count differs from its kept-die count or its
    /// fit's die count, when the kept dies are not a strictly ascending
    /// subset of the plan's dies (at least two of them), when a fit's
    /// spread is not positive, or when a surviving state is marked lost.
    pub fn new(
        specs: Vec<ChannelSpec>,
        charac: ReferenceFreeCharacterization,
    ) -> Result<Self, Error> {
        if specs.len() != charac.states.len() {
            return Err(Error::ChannelShapeMismatch {
                channel: format!("{} spec(s)", specs.len()),
                expected: "one spec per characterized channel",
            });
        }
        for (spec, state) in specs.iter().zip(&charac.states) {
            if spec.name() != state.channel {
                return Err(Error::ChannelShapeMismatch {
                    channel: state.channel.clone(),
                    expected: "spec order matching channel execution order",
                });
            }
            if state.kept.len() != state.self_scores.len()
                || state.fit.n_dies != state.self_scores.len()
            {
                return Err(Error::ChannelShapeMismatch {
                    channel: state.channel.clone(),
                    expected: "one self-score per kept die, matching the fit",
                });
            }
            if state.kept.len() < 2 {
                return Err(Error::ChannelShapeMismatch {
                    channel: state.channel.clone(),
                    expected: "at least two kept dies",
                });
            }
            let ascending = state.kept.windows(2).all(|w| w[0] < w[1]);
            let in_plan = state.kept.last().is_none_or(|&k| k < charac.plan.n_dies);
            if !ascending || !in_plan {
                return Err(Error::ChannelShapeMismatch {
                    channel: state.channel.clone(),
                    expected: "kept dies strictly ascending within the plan",
                });
            }
            if !(state.fit.std > 0.0 && state.fit.std.is_finite() && state.fit.mean.is_finite()) {
                return Err(Error::ChannelShapeMismatch {
                    channel: state.channel.clone(),
                    expected: "a finite baseline fit with positive spread",
                });
            }
            if state.health.lost {
                return Err(Error::ChannelShapeMismatch {
                    channel: state.channel.clone(),
                    expected: "surviving states only (lost channels go in `lost`)",
                });
            }
        }
        Ok(ReferenceFreeArtifact { specs, charac })
    }

    /// The channel construction recipes, in execution order.
    pub fn specs(&self) -> &[ChannelSpec] {
        &self.specs
    }

    /// The stored characterization.
    pub fn characterization(&self) -> &ReferenceFreeCharacterization {
        &self.charac
    }

    /// Consumes the artifact into its characterization.
    pub fn into_characterization(self) -> ReferenceFreeCharacterization {
        self.charac
    }

    /// Rebuilds the live channels the stored specs describe, in order.
    pub fn build_channels(&self) -> Vec<Box<dyn Channel>> {
        self.specs.iter().map(ChannelSpec::build).collect()
    }
}

impl Artifact for ReferenceFreeArtifact {
    const KIND: &'static str = "reffree";

    fn write_body(&self, w: &mut BodyWriter) {
        write_plan(w, &self.charac.plan);
        w.line(format!("channels {}", self.specs.len()));
        for (spec, state) in self.specs.iter().zip(&self.charac.states) {
            w.line(format!("channel {}", spec.token()));
            write_calibration(w, &state.calibration);
            w.line(format!(
                "reffree-fit {} {} {}",
                fmt_f64(state.fit.mean),
                fmt_f64(state.fit.std),
                state.fit.n_dies,
            ));
            write_f64_list(w, "scores", &state.self_scores);
            if state.kept.iter().copied().ne(0..state.self_scores.len()) {
                let mut line = format!("kept {}", state.kept.len());
                for &k in &state.kept {
                    line.push_str(&format!(" {k}"));
                }
                w.line(line);
            }
            if !state.health.is_pristine(state.self_scores.len()) {
                write_health(w, &state.health);
            }
        }
        if !self.charac.lost.is_empty() {
            w.line(format!("lost {}", self.charac.lost.len()));
            for h in &self.charac.lost {
                write_health(w, h);
            }
        }
    }

    fn parse_body(p: &mut Parser<'_>) -> Result<Self, Error> {
        let plan = parse_plan(p)?;
        let n_channels = parse_usize(p.keyword_line("channels")?.trim()).map_err(|e| p.error(e))?;
        if n_channels > p.remaining() {
            return Err(p.error(format!(
                "reference-free artifact declares {n_channels} channels but only {} lines remain",
                p.remaining()
            )));
        }
        let mut specs = Vec::with_capacity(n_channels);
        let mut states = Vec::with_capacity(n_channels);
        for _ in 0..n_channels {
            let (spec, state) = parse_reffree_block(p)?;
            states.push(state);
            specs.push(spec);
        }
        let lost = parse_lost_section(p)?;
        ReferenceFreeArtifact::new(specs, ReferenceFreeCharacterization { plan, states, lost })
            .map_err(|e| p.error(format!("inconsistent reference-free artifact: {e}")))
    }

    /// Reference-free bodies share the golden artifact's block structure
    /// (one block per channel), so salvage drops a corrupt block and
    /// resyncs at the next `channel ` line.
    fn parse_body_salvage(p: &mut Parser<'_>) -> Result<(Self, Vec<usize>), Error> {
        let mut dropped = Vec::new();
        let plan = parse_plan(p)?;
        let n_channels = parse_usize(p.keyword_line("channels")?.trim()).map_err(|e| p.error(e))?;
        let mut specs = Vec::new();
        let mut states = Vec::new();
        while specs.len() < n_channels {
            match p.peek() {
                None => break,
                Some(l) if l.starts_with("lost ") => break,
                Some(_) => {}
            }
            let mark = p.save();
            match parse_reffree_block(p) {
                Ok((spec, state)) => {
                    specs.push(spec);
                    states.push(state);
                }
                Err(_) => {
                    p.restore(mark);
                    dropped.push(p.save());
                    let _ = p.next_line();
                    dropped.extend(p.skip_to_prefix("channel "));
                }
            }
        }
        let mark = p.save();
        let lost = match parse_lost_section(p) {
            Ok(lost) => lost,
            Err(_) => {
                p.restore(mark);
                while p.peek().is_some() {
                    dropped.push(p.save());
                    let _ = p.next_line();
                }
                Vec::new()
            }
        };
        if states.is_empty() {
            return Err(p.error("no channel block survived salvage"));
        }
        let artifact =
            ReferenceFreeArtifact::new(specs, ReferenceFreeCharacterization { plan, states, lost })
                .map_err(|e| p.error(format!("inconsistent reference-free artifact: {e}")))?;
        Ok((artifact, dropped))
    }
}

/// Parses one reference-free channel block: the spec token, calibration,
/// baseline fit, self-scores, and the optional degradation markers.
fn parse_reffree_block(p: &mut Parser<'_>) -> Result<(ChannelSpec, ReferenceFreeState), Error> {
    let token = p.keyword_line("channel")?;
    let spec = ChannelSpec::from_token(token)
        .ok_or_else(|| p.error(format!("unknown channel spec `{token}`")))?;
    let calibration = parse_calibration(p)?;
    let rest = p.keyword_line("reffree-fit")?;
    let mut words = rest.split_whitespace();
    let mean = parse_f64(
        words
            .next()
            .ok_or_else(|| p.error("reffree-fit needs mean, std and die count"))?,
    )
    .map_err(|e| p.error(e))?;
    let std = parse_f64(
        words
            .next()
            .ok_or_else(|| p.error("reffree-fit needs mean, std and die count"))?,
    )
    .map_err(|e| p.error(e))?;
    let n_dies = parse_usize(
        words
            .next()
            .ok_or_else(|| p.error("reffree-fit needs mean, std and die count"))?,
    )
    .map_err(|e| p.error(e))?;
    if words.next().is_some() {
        return Err(p.error("trailing tokens after reffree-fit"));
    }
    let self_scores = parse_f64_list(p, "scores")?;
    let kept = if p.peek().is_some_and(|l| l.starts_with("kept ")) {
        let rest = p.keyword_line("kept")?;
        let mut words = rest.split_whitespace();
        let n = parse_usize(words.next().ok_or_else(|| p.error("kept needs a count"))?)
            .map_err(|e| p.error(e))?;
        let kept: Vec<usize> = words
            .map(parse_usize)
            .collect::<Result<_, _>>()
            .map_err(|e| p.error(e))?;
        if kept.len() != n {
            return Err(p.error(format!("kept declares {n} dies but lists {}", kept.len())));
        }
        kept
    } else {
        (0..self_scores.len()).collect()
    };
    let health = if p.peek().is_some_and(|l| l.starts_with("channel-health ")) {
        parse_health(p)?
    } else {
        ChannelHealth::pristine(spec.name(), self_scores.len())
    };
    let state = ReferenceFreeState {
        channel: spec.name().to_string(),
        calibration,
        self_scores,
        fit: ReferenceFreeFit { mean, std, n_dies },
        kept,
        health,
    };
    Ok((spec, state))
}

/// Parses a `channel "<label>"` line.
fn parse_channel_label(p: &mut Parser<'_>) -> Result<String, Error> {
    let rest = p.keyword_line("channel")?;
    let (label, tail) = unquote(rest).ok_or_else(|| p.error("channel needs a quoted label"))?;
    if !tail.trim().is_empty() {
        return Err(p.error("trailing tokens after channel label"));
    }
    Ok(label)
}
