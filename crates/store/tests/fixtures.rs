//! Format-stability tests: every artifact kind has a golden fixture file
//! checked in under `tests/fixtures/` at the repository root. Rendering
//! the fixture's in-memory value must reproduce the stored bytes exactly,
//! and parsing the stored bytes must reproduce the value — so any change
//! to the grammar, the float formatting, the checksum, or the header is
//! caught here and forces a deliberate `FORMAT_VERSION` decision.
//!
//! To regenerate after an intentional format change:
//!
//! ```sh
//! cargo test -p htd-store --test fixtures -- --ignored regenerate
//! ```

use std::path::PathBuf;

use htd_core::campaign::CampaignPlan;
use htd_core::channel::{Acquisition, Calibration, ChannelSpec, GoldenReference};
use htd_core::delay_detect::DelayMatrix;
use htd_core::em_detect::TraceMetric;
use htd_core::fusion::{
    ChannelResult, ChannelState, GoldenCharacterization, MultiChannelReport, MultiChannelRow,
    ScoredChannel,
};
use htd_core::reffree::{ReferenceFreeCharacterization, ReferenceFreeFit, ReferenceFreeState};
use htd_core::resilience::ChannelHealth;
use htd_em::Trace;
use htd_faults::FaultPlan;
use htd_stats::Gaussian;
use htd_store::{Artifact, ChannelFit, ClassifierModel, GoldenArtifact, ReferenceFreeArtifact};
use htd_timing::GlitchParams;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures")
}

fn glitch() -> GlitchParams {
    GlitchParams {
        start_period_ps: 5200.0,
        step_ps: 25.0,
        steps: 96,
        setup_ps: 180.0,
        noise_ps: 12.5,
    }
}

fn plan() -> CampaignPlan {
    CampaignPlan::with_random_pairs(4, 2, 2, [0x42; 16], [0x0f; 16], 7)
}

fn trace() -> Trace {
    Trace::new(vec![0.5, -1.25, 1.0 / 3.0, 300261.7222222223], 125.0)
}

fn matrix() -> DelayMatrix {
    DelayMatrix {
        mean_onset_steps: vec![vec![4.5, 6.0], vec![5.25, 7.125]],
    }
}

fn result(channel: &str, mu: f64) -> ChannelResult {
    ChannelResult {
        channel: channel.to_string(),
        mu,
        sigma: 1.0 / 3.0,
        analytic_fn_rate: 1e-9,
        empirical_fn_rate: 0.0,
        empirical_fp_rate: 0.125,
    }
}

fn report() -> MultiChannelReport {
    MultiChannelReport {
        rows: vec![MultiChannelRow {
            name: "HT \"fixture\"".to_string(),
            size_fraction: 0.0123,
            channels: vec![result("EM", 12.5), result("delay", 135.078)],
            fused: Some(result("fused", 3.245)),
        }],
        n_dies: 4,
        channel_names: vec!["EM".to_string(), "delay".to_string()],
        health: vec![],
    }
}

fn golden() -> GoldenArtifact {
    GoldenArtifact::new(
        vec![
            ChannelSpec::Em(TraceMetric::SumOfLocalMaxima),
            ChannelSpec::Delay,
        ],
        GoldenCharacterization {
            plan: plan(),
            states: vec![
                ChannelState::pristine(
                    "EM",
                    Calibration::None,
                    GoldenReference::MeanTrace(trace()),
                    vec![1.0, 2.5, -3.0, 0.125],
                ),
                ChannelState::pristine(
                    "delay",
                    Calibration::Glitch(glitch()),
                    GoldenReference::MeanMatrix(matrix()),
                    vec![40.0, 41.5, 39.0, 40.25],
                ),
            ],
            lost: vec![],
        },
    )
    .unwrap()
}

fn classifier() -> ClassifierModel {
    ClassifierModel {
        features: vec!["EM".to_string(), "delay".to_string()],
        bias: -0.125,
        weights: vec![1.5, -2.25],
        means: vec![300261.7222222223, 40.5],
        stds: vec![1234.5, 1.0 / 3.0],
        seed: 2015,
        iterations: 200,
        rate: 0.5,
    }
}

fn reffree() -> ReferenceFreeArtifact {
    let states = vec![
        ReferenceFreeState {
            channel: "EM".to_string(),
            calibration: Calibration::None,
            self_scores: vec![1.0, 2.5, -3.0, 0.125],
            fit: ReferenceFreeFit {
                mean: 0.15625,
                std: 2.0078,
                n_dies: 4,
            },
            kept: vec![0, 1, 2, 3],
            health: ChannelHealth::pristine("EM", 4),
        },
        ReferenceFreeState {
            channel: "delay".to_string(),
            calibration: Calibration::Glitch(glitch()),
            self_scores: vec![40.0, 39.0, 40.25],
            fit: ReferenceFreeFit {
                mean: 39.75,
                std: 0.5401,
                n_dies: 3,
            },
            kept: vec![0, 2, 3],
            health: {
                let mut h = ChannelHealth::pristine("delay", 4);
                h.dropped = 1;
                h
            },
        },
    ];
    ReferenceFreeArtifact::new(
        vec![
            ChannelSpec::Em(TraceMetric::SumOfLocalMaxima),
            ChannelSpec::Delay,
        ],
        ReferenceFreeCharacterization {
            plan: plan(),
            states,
            lost: vec![],
        },
    )
    .unwrap()
}

fn faultplan() -> FaultPlan {
    FaultPlan {
        seed: 7,
        acquire_rate: 0.2,
        rep_rate: 0.1,
        calibrate_rate: 0.0,
        store_rate: 0.0,
    }
}

fn check<A: Artifact + PartialEq + std::fmt::Debug>(value: &A) {
    let path = fixture_dir().join(format!("{}.htd", A::KIND));
    let stored = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run the regenerate test",
            path.display()
        )
    });
    assert_eq!(
        htd_store::to_text(value),
        stored,
        "`{}` format drifted from {} — if intentional, bump FORMAT_VERSION and regenerate",
        A::KIND,
        path.display(),
    );
    let parsed: A = htd_store::from_text(&stored).expect("fixture must parse");
    assert_eq!(
        &parsed,
        value,
        "fixture {} parses to a different value",
        path.display()
    );
}

#[test]
fn stored_fixtures_are_stable() {
    check(&plan());
    check(&Calibration::Glitch(glitch()));
    check(&Acquisition::Trace(trace()));
    check(&GoldenReference::MeanMatrix(matrix()));
    check(&ChannelFit {
        channel: "EM".to_string(),
        fit: Gaussian::new(300261.7222222223, 1234.5).unwrap(),
    });
    check(&ScoredChannel {
        channel: "delay".to_string(),
        golden: vec![40.0, 41.5, 39.0, 40.25],
        infected: vec![1142.076, 1138.5, 1151.0, 1147.25],
    });
    check(&report());
    check(&golden());
    check(&faultplan());
    check(&classifier());
    check(&reffree());
}

/// Rewrites every fixture from the current format. Run only after a
/// deliberate format change, together with a `FORMAT_VERSION` review.
#[test]
#[ignore = "regenerates the checked-in fixtures"]
fn regenerate() {
    let dir = fixture_dir();
    std::fs::create_dir_all(&dir).unwrap();
    fn write<A: Artifact>(dir: &std::path::Path, value: &A) {
        let path = dir.join(format!("{}.htd", A::KIND));
        std::fs::write(&path, htd_store::to_text(value)).unwrap();
        println!("wrote {}", path.display());
    }
    write(&dir, &plan());
    write(&dir, &Calibration::Glitch(glitch()));
    write(&dir, &Acquisition::Trace(trace()));
    write(&dir, &GoldenReference::MeanMatrix(matrix()));
    write(
        &dir,
        &ChannelFit {
            channel: "EM".to_string(),
            fit: Gaussian::new(300261.7222222223, 1234.5).unwrap(),
        },
    );
    write(
        &dir,
        &ScoredChannel {
            channel: "delay".to_string(),
            golden: vec![40.0, 41.5, 39.0, 40.25],
            infected: vec![1142.076, 1138.5, 1151.0, 1147.25],
        },
    );
    write(&dir, &report());
    write(&dir, &golden());
    write(&dir, &faultplan());
    write(&dir, &classifier());
    write(&dir, &reffree());
}
