//! Corruption, truncation and salvage tests for the two scoring-mode
//! artifact kinds PR 9 adds: `classifier` (trained logistic-regression
//! weights) and `reffree` (reference-free baseline characterization).
//! Both must uphold the store's contract — strict reads reject every
//! bit flip and truncation, never panic, and the salvage reader
//! recovers what survives without ever passing damage off as pristine.

use htd_core::campaign::CampaignPlan;
use htd_core::channel::{Calibration, ChannelSpec};
use htd_core::em_detect::TraceMetric;
use htd_core::reffree::{ReferenceFreeCharacterization, ReferenceFreeFit, ReferenceFreeState};
use htd_core::resilience::ChannelHealth;
use htd_store::{
    from_text, from_text_salvage, sniff_kind, to_text, ClassifierModel, ReferenceFreeArtifact,
    ScorableArtifact,
};
use htd_timing::GlitchParams;
use proptest::prelude::*;

fn sample_classifier() -> ClassifierModel {
    ClassifierModel {
        features: vec!["EM".to_string(), "delay".to_string()],
        bias: -0.125,
        weights: vec![1.5, -2.25],
        means: vec![300261.7222222223, 40.5],
        stds: vec![1234.5, 1.0 / 3.0],
        seed: 2015,
        iterations: 200,
        rate: 0.5,
    }
}

fn sample_reffree() -> ReferenceFreeArtifact {
    let plan = CampaignPlan::with_random_pairs(4, 2, 2, [0x42; 16], [0x0f; 16], 7);
    let states = vec![
        ReferenceFreeState {
            channel: "EM".to_string(),
            calibration: Calibration::None,
            self_scores: vec![1.0, 2.5, -3.0, 0.125],
            fit: ReferenceFreeFit {
                mean: 0.15625,
                std: 2.0078,
                n_dies: 4,
            },
            kept: vec![0, 1, 2, 3],
            health: ChannelHealth::pristine("EM", 4),
        },
        ReferenceFreeState {
            channel: "delay".to_string(),
            calibration: Calibration::Glitch(GlitchParams {
                start_period_ps: 5200.0,
                step_ps: 25.0,
                steps: 96,
                setup_ps: 180.0,
                noise_ps: 12.5,
            }),
            self_scores: vec![40.0, 39.0, 40.25],
            fit: ReferenceFreeFit {
                mean: 39.75,
                std: 0.5401,
                n_dies: 3,
            },
            kept: vec![0, 2, 3],
            health: {
                let mut h = ChannelHealth::pristine("delay", 4);
                h.dropped = 1;
                h
            },
        },
    ];
    ReferenceFreeArtifact::new(
        vec![
            ChannelSpec::Em(TraceMetric::SumOfLocalMaxima),
            ChannelSpec::Delay,
        ],
        ReferenceFreeCharacterization {
            plan,
            states,
            lost: vec![],
        },
    )
    .unwrap()
}

// ---------------------------------------------------------------------------
// Strict reads: exhaustive truncation and bit-flip rejection.

#[test]
fn every_classifier_truncation_is_rejected() {
    let text = to_text(&sample_classifier());
    for cut in 0..text.len() {
        if !text.is_char_boundary(cut) {
            continue;
        }
        assert!(
            from_text::<ClassifierModel>(&text[..cut]).is_err(),
            "prefix of {cut} bytes parsed"
        );
    }
}

#[test]
fn every_classifier_bit_flip_is_rejected() {
    let text = to_text(&sample_classifier());
    for pos in 0..text.len() {
        for bit in 0..8 {
            let mut bytes = text.clone().into_bytes();
            bytes[pos] ^= 1 << bit;
            let Ok(corrupt) = String::from_utf8(bytes) else {
                continue;
            };
            assert!(
                from_text::<ClassifierModel>(&corrupt).is_err(),
                "flip of bit {bit} at byte {pos} parsed"
            );
        }
    }
}

#[test]
fn every_reffree_truncation_is_rejected() {
    let text = to_text(&sample_reffree());
    for cut in 0..text.len() {
        if !text.is_char_boundary(cut) {
            continue;
        }
        assert!(
            from_text::<ReferenceFreeArtifact>(&text[..cut]).is_err(),
            "prefix of {cut} bytes parsed"
        );
    }
}

#[test]
fn every_reffree_bit_flip_is_rejected() {
    let text = to_text(&sample_reffree());
    for pos in 0..text.len() {
        for bit in 0..8 {
            let mut bytes = text.clone().into_bytes();
            bytes[pos] ^= 1 << bit;
            let Ok(corrupt) = String::from_utf8(bytes) else {
                continue;
            };
            assert!(
                from_text::<ReferenceFreeArtifact>(&corrupt).is_err(),
                "flip of bit {bit} at byte {pos} parsed"
            );
        }
    }
}

/// Replaces the first hex digit of the checksum trailer with a
/// different valid digit, yielding a well-formed but stale trailer.
fn stale_trailer(text: &str) -> String {
    let at = text.rfind("checksum fnv1a64 ").expect("trailer") + "checksum fnv1a64 ".len();
    let old = text.as_bytes()[at];
    let new = if old == b'0' { '1' } else { '0' };
    let mut s = text.to_string();
    s.replace_range(at..at + 1, &new.to_string());
    s
}

/// A corrupted checksum trailer is rejected even though the body is
/// pristine: the trailer is part of the trust boundary.
#[test]
fn a_stale_trailer_is_rejected_for_both_kinds() {
    let corrupt = stale_trailer(&to_text(&sample_classifier()));
    assert!(from_text::<ClassifierModel>(&corrupt).is_err());
    // Salvage re-verifies over kept lines, so it demotes, never launders.
    let s = from_text_salvage::<ClassifierModel>(&corrupt).unwrap();
    assert!(s.recovered, "stale trailer must demote the read");

    let corrupt = stale_trailer(&to_text(&sample_reffree()));
    assert!(from_text::<ReferenceFreeArtifact>(&corrupt).is_err());
    let s = from_text_salvage::<ReferenceFreeArtifact>(&corrupt).unwrap();
    assert!(s.recovered);
}

// ---------------------------------------------------------------------------
// Salvage: recover what survives, mark the read `recovered`.

#[test]
fn salvage_reads_past_a_corrupt_classifier_feature_line() {
    let model = sample_classifier();
    let text = to_text(&model);
    // Garble the EM feature line; the delay feature and the trailer
    // survive, and the dropped line costs only itself.
    assert!(text.contains("channel \"EM\""), "{text}");
    let corrupt = text.replace("channel \"EM\"", "channel #!EM");
    assert!(from_text::<ClassifierModel>(&corrupt).is_err());
    let s = from_text_salvage::<ClassifierModel>(&corrupt).unwrap();
    assert!(s.recovered);
    assert_eq!(s.dropped_lines, 1);
    assert_eq!(s.artifact.features, vec!["delay".to_string()]);
    assert_eq!(s.artifact.weights, vec![-2.25]);
    assert_eq!(s.artifact.bias, model.bias);
    assert_eq!(s.artifact.seed, model.seed);
}

#[test]
fn a_classifier_with_no_surviving_feature_errors() {
    let text = to_text(&sample_classifier());
    let corrupt = text
        .replace("channel \"EM\"", "chan#el EM")
        .replace("channel \"delay\"", "chan#el delay");
    assert!(from_text_salvage::<ClassifierModel>(&corrupt).is_err());
}

#[test]
fn a_corrupt_classifier_trailer_is_never_salvaged() {
    // The bias/trained trailer is strict: a model with made-up
    // hyper-parameters is worse than no model.
    let text = to_text(&sample_classifier());
    let corrupt = text.replace("bias ", "bi#s ");
    assert!(from_text_salvage::<ClassifierModel>(&corrupt).is_err());
}

#[test]
fn salvage_drops_a_corrupt_reffree_block_and_keeps_the_other() {
    let text = to_text(&sample_reffree());
    // Garble the EM block's fit line; the delay block survives with its
    // degraded kept-set intact.
    let corrupt = text.replacen("reffree-fit ", "reffree-f#t ", 1);
    assert!(from_text::<ReferenceFreeArtifact>(&corrupt).is_err());
    let s = from_text_salvage::<ReferenceFreeArtifact>(&corrupt).unwrap();
    assert!(s.recovered);
    assert!(s.dropped_lines > 0);
    let charac = s.artifact.characterization();
    assert_eq!(charac.states.len(), 1, "only the delay channel survives");
    assert_eq!(charac.states[0].channel, "delay");
    assert_eq!(charac.states[0].kept, vec![0, 2, 3]);
    assert_eq!(s.artifact.specs(), &[ChannelSpec::Delay]);
}

#[test]
fn reffree_truncation_keeps_the_complete_leading_blocks() {
    let text = to_text(&sample_reffree());
    // Cut mid-way through the delay block: EM is complete, delay and
    // the trailer are gone.
    let cut = text.find("glitch").expect("delay calibration line");
    let s = from_text_salvage::<ReferenceFreeArtifact>(&text[..cut]).unwrap();
    assert!(s.recovered, "no trailer means no pristine claim");
    let charac = s.artifact.characterization();
    assert_eq!(charac.states.len(), 1);
    assert_eq!(charac.states[0].channel, "EM");
}

#[test]
fn pristine_files_of_both_kinds_salvage_as_not_recovered() {
    let s = from_text_salvage::<ClassifierModel>(&to_text(&sample_classifier())).unwrap();
    assert!(!s.recovered);
    assert_eq!(s.dropped_lines, 0);
    assert_eq!(s.artifact, sample_classifier());

    let s = from_text_salvage::<ReferenceFreeArtifact>(&to_text(&sample_reffree())).unwrap();
    assert!(!s.recovered);
    assert_eq!(s.dropped_lines, 0);
    assert_eq!(s.artifact, sample_reffree());
}

// ---------------------------------------------------------------------------
// Kind dispatch: sniffing and the scorable-artifact wrapper.

#[test]
fn sniff_kind_distinguishes_the_scoring_artifacts() {
    assert_eq!(sniff_kind(&to_text(&sample_reffree())), Some("reffree"));
    assert_eq!(
        sniff_kind(&to_text(&sample_classifier())),
        Some("classifier")
    );
    assert_eq!(sniff_kind("not a store file"), None);
}

#[test]
fn scorable_artifact_parses_reffree_by_kind() {
    let text = to_text(&sample_reffree());
    let scorable = ScorableArtifact::from_text_at(&text, "test").unwrap();
    match &scorable {
        ScorableArtifact::ReferenceFree(a) => {
            assert_eq!(a.characterization().plan.n_dies, 4);
            assert_eq!(scorable.plan(), &a.characterization().plan);
        }
        ScorableArtifact::Golden(_) => panic!("reffree text parsed as golden"),
    }
    // A classifier is not scorable: it must be rejected, not misread.
    assert!(ScorableArtifact::from_text_at(&to_text(&sample_classifier()), "test").is_err());
}

// ---------------------------------------------------------------------------
// Round-trip exactness: classifier weights survive the store format bit
// for bit over arbitrary values (satellite of the trainer determinism
// contract — a model that drifts through persistence breaks replay).

fn finite() -> std::ops::Range<f64> {
    -1.0e9..1.0e9
}

fn classifier_strategy() -> impl Strategy<Value = ClassifierModel> {
    (1usize..5)
        .prop_flat_map(|d| {
            (
                proptest::collection::vec("[a-zEM\"\\\\\n µσ]{0,12}", d..=d),
                proptest::collection::vec(finite(), d..=d),
                proptest::collection::vec(finite(), d..=d),
                proptest::collection::vec(0.001f64..1.0e6, d..=d),
                (finite(), any::<u64>(), 0usize..10_000, 0.001f64..10.0),
            )
        })
        .prop_map(
            |(features, weights, means, stds, (bias, seed, iterations, rate))| ClassifierModel {
                features,
                bias,
                weights,
                means,
                stds,
                seed,
                iterations,
                rate,
            },
        )
}

proptest! {
    #[test]
    fn classifier_roundtrips_exactly(model in classifier_strategy()) {
        let text = to_text(&model);
        let back = from_text::<ClassifierModel>(&text).expect(&text);
        prop_assert_eq!(back.bias.to_bits(), model.bias.to_bits());
        for (a, b) in back.weights.iter().zip(&model.weights) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in back.means.iter().zip(&model.means) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in back.stds.iter().zip(&model.stds) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(back.rate.to_bits(), model.rate.to_bits());
        prop_assert_eq!(&back, &model, "artifact text:\n{}", text);
    }

    /// Random truncations of arbitrary classifier artifacts always
    /// error, never panic.
    #[test]
    fn truncated_classifiers_error(model in classifier_strategy(), cut in any::<u64>()) {
        let text = to_text(&model);
        let cut = (cut % text.len() as u64) as usize;
        let cut = (0..=cut).rev().find(|&i| text.is_char_boundary(i)).unwrap();
        prop_assert!(from_text::<ClassifierModel>(&text[..cut]).is_err());
    }

    /// Random single-bit flips of arbitrary classifiers always error (or
    /// stop being UTF-8 at all).
    #[test]
    fn bit_flipped_classifiers_error(model in classifier_strategy(), pos in any::<u64>(), bit in 0usize..8) {
        let mut bytes = to_text(&model).into_bytes();
        let pos = (pos % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        if let Ok(text) = String::from_utf8(bytes) {
            prop_assert!(from_text::<ClassifierModel>(&text).is_err());
        }
    }
}

/// The reference-free artifact round-trips its exact value, including
/// the degraded kept-set and the baseline fit.
#[test]
fn reffree_roundtrips_exactly() {
    let artifact = sample_reffree();
    let text = to_text(&artifact);
    let back = from_text::<ReferenceFreeArtifact>(&text).expect(&text);
    assert_eq!(back, artifact);
    let s0 = &back.characterization().states[0];
    assert_eq!(s0.fit.mean.to_bits(), 0.15625f64.to_bits());
    assert_eq!(s0.fit.n_dies, 4);
}
