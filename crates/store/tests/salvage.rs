//! Salvage-reader tests: recovering what survives of a damaged golden
//! artifact, while making it impossible for a salvaged file to pass as
//! pristine — the checksum trailer is re-verified over exactly the kept
//! lines, so dropped blocks, truncation, *and* parseable bit-flips all
//! mark the result `recovered`.

use htd_core::campaign::CampaignPlan;
use htd_core::channel::{Calibration, ChannelSpec, GoldenReference};
use htd_core::delay_detect::DelayMatrix;
use htd_core::em_detect::TraceMetric;
use htd_core::fusion::{ChannelState, GoldenCharacterization};
use htd_em::Trace;
use htd_faults::{FaultPlan, FaultSite};
use htd_store::{from_text, from_text_salvage, to_text, GoldenArtifact};
use htd_timing::GlitchParams;

fn sample_golden() -> GoldenArtifact {
    let plan = CampaignPlan::with_random_pairs(4, 2, 2, [0x42; 16], [0x0f; 16], 7);
    let states = vec![
        ChannelState::pristine(
            "EM",
            Calibration::None,
            GoldenReference::MeanTrace(Trace::new(vec![0.5, -1.25, 1.0 / 3.0], 125.0)),
            vec![1.0, 2.5, -3.0, 0.125],
        ),
        ChannelState::pristine(
            "delay",
            Calibration::Glitch(GlitchParams {
                start_period_ps: 5200.0,
                step_ps: 25.0,
                steps: 96,
                setup_ps: 180.0,
                noise_ps: 12.5,
            }),
            GoldenReference::MeanMatrix(DelayMatrix {
                mean_onset_steps: vec![vec![4.5, 6.0], vec![5.25, 7.125]],
            }),
            vec![40.0, 41.5, 39.0, 40.25],
        ),
    ];
    GoldenArtifact::new(
        vec![
            ChannelSpec::Em(TraceMetric::SumOfLocalMaxima),
            ChannelSpec::Delay,
        ],
        GoldenCharacterization {
            plan,
            states,
            lost: vec![],
        },
    )
    .unwrap()
}

#[test]
fn pristine_files_salvage_as_not_recovered() {
    let artifact = sample_golden();
    let text = to_text(&artifact);
    let s = from_text_salvage::<GoldenArtifact>(&text).unwrap();
    assert!(!s.recovered, "untouched file must read as pristine");
    assert_eq!(s.dropped_lines, 0);
    assert_eq!(s.artifact, artifact);
}

#[test]
fn a_parseable_bit_flip_cannot_masquerade_as_pristine() {
    let text = to_text(&sample_golden());
    // Flip one score digit: the line still parses, but the checksum
    // (re-verified over the kept lines) is stale.
    assert!(text.contains("s 1 2.5 -3 0.125"), "{text}");
    let flipped = text.replace("s 1 2.5 -3 0.125", "s 1 2.5 -3 0.135");
    assert!(from_text::<GoldenArtifact>(&flipped).is_err());
    let s = from_text_salvage::<GoldenArtifact>(&flipped).unwrap();
    assert!(s.recovered, "stale checksum must demote the read");
    assert_eq!(s.dropped_lines, 0);
    assert_eq!(s.artifact.characterization().states[0].scores[3], 0.135);
}

#[test]
fn a_corrupt_block_is_dropped_and_the_other_channel_survives() {
    let text = to_text(&sample_golden());
    // Garble the EM channel's reference payload line.
    let corrupt = text.replace("trace 125", "trace #!garbage");
    assert!(from_text::<GoldenArtifact>(&corrupt).is_err());
    let s = from_text_salvage::<GoldenArtifact>(&corrupt).unwrap();
    assert!(s.recovered);
    assert!(s.dropped_lines > 0);
    let charac = s.artifact.characterization();
    assert_eq!(charac.states.len(), 1, "only the delay channel survives");
    assert_eq!(charac.states[0].channel, "delay");
    assert_eq!(s.artifact.specs(), &[ChannelSpec::Delay]);
}

#[test]
fn truncation_keeps_the_complete_leading_blocks() {
    let text = to_text(&sample_golden());
    // Cut mid-way through the delay block: the EM block is complete, the
    // delay block (and the trailer) are gone.
    let cut = text.find("matrix 2 2").expect("delay reference line");
    let s = from_text_salvage::<GoldenArtifact>(&text[..cut]).unwrap();
    assert!(s.recovered, "no trailer means no pristine claim");
    let charac = s.artifact.characterization();
    assert_eq!(charac.states.len(), 1);
    assert_eq!(charac.states[0].channel, "EM");
}

#[test]
fn damaged_headers_and_hopeless_bodies_still_error() {
    let text = to_text(&sample_golden());
    // Header damage is unrecoverable (kind/version unknown).
    let bad_header = text.replacen("htdstore", "htdst0re", 1);
    assert!(from_text_salvage::<GoldenArtifact>(&bad_header).is_err());
    // A body where no channel block survives is an error, not an empty
    // artifact.
    let no_blocks = text
        .replace("channel em", "chan#el em")
        .replace("channel delay", "chan#el delay");
    assert!(from_text_salvage::<GoldenArtifact>(&no_blocks).is_err());
    // Kinds without a salvage override stay fully strict.
    let plan = CampaignPlan::with_random_pairs(4, 2, 2, [0x42; 16], [0x0f; 16], 7);
    let plan_text = to_text(&plan);
    let s = from_text_salvage::<CampaignPlan>(&plan_text).unwrap();
    assert!(!s.recovered);
    let tampered = plan_text.replacen("dies 4", "dies x", 1);
    assert!(from_text_salvage::<CampaignPlan>(&tampered).is_err());
}

#[test]
fn faultplan_store_site_picks_the_lines_to_corrupt() {
    // The StoreRead site drives *which* stored lines a corruption
    // harness damages — deterministically, so the seed search below is
    // stable run to run. Only channel-block lines are candidates (the
    // plan prefix is required reading even for the salvage parser).
    let text = to_text(&sample_golden());
    let lines: Vec<&str> = text.lines().collect();
    let first_block = lines
        .iter()
        .position(|l| l.starts_with("channel "))
        .expect("a channel block");
    let mut salvaged = None;
    for seed in 0..1000 {
        let fp = FaultPlan {
            seed,
            acquire_rate: 0.0,
            rep_rate: 0.0,
            calibrate_rate: 0.0,
            store_rate: 0.25,
        };
        let corrupt: Vec<String> = lines
            .iter()
            .enumerate()
            .map(|(i, line)| {
                if i >= first_block
                    && i + 1 < lines.len()
                    && fp.fires(FaultSite::StoreRead, &[i as u64])
                {
                    format!("#corrupt#{line}")
                } else {
                    (*line).to_string()
                }
            })
            .collect();
        let n_corrupt = corrupt
            .iter()
            .filter(|l| l.starts_with("#corrupt#"))
            .count();
        if n_corrupt == 0 {
            continue;
        }
        let damaged = corrupt.join("\n") + "\n";
        if let Ok(s) = from_text_salvage::<GoldenArtifact>(&damaged) {
            salvaged = Some((n_corrupt, s));
            break;
        }
    }
    let (n_corrupt, s) = salvaged.expect("some seed leaves a salvageable artifact");
    assert!(s.recovered);
    assert!(s.dropped_lines >= n_corrupt);
    assert!(!s.artifact.characterization().states.is_empty());
}
