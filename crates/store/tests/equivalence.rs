//! The store's headline guarantee (the PR's acceptance criterion):
//! scoring a suspect population against a golden-reference artifact that
//! went through disk — characterize → save → load → score — produces
//! bit-identical per-die scores and FN rates to the all-in-memory
//! `multi_channel_experiment` on the same `CampaignPlan`, at worker
//! counts 1 and N.

use htd_core::channel::{Channel, ChannelSpec};
use htd_core::em_detect::TraceMetric;
use htd_core::fusion::{
    characterize_campaign_with, multi_channel_experiment_with, score_campaign_with,
    score_design_with,
};
use htd_core::{CampaignPlan, Engine, Lab};
use htd_store::GoldenArtifact;
use htd_trojan::TrojanSpec;

fn specs() -> Vec<ChannelSpec> {
    vec![
        ChannelSpec::Em(TraceMetric::SumOfLocalMaxima),
        ChannelSpec::Delay,
    ]
}

#[test]
fn scoring_a_loaded_artifact_is_bit_identical_to_the_in_memory_experiment() {
    let lab = Lab::paper();
    let plan = CampaignPlan::with_random_pairs(6, 3, 2, [0x42; 16], [0x0f; 16], 0xA5A5);
    let trojans = [TrojanSpec::ht1(), TrojanSpec::ht3()];
    let channel_specs = specs();
    let channels: Vec<Box<dyn Channel>> = channel_specs.iter().map(ChannelSpec::build).collect();
    let refs: Vec<&dyn Channel> = channels.iter().map(Box::as_ref).collect();

    // The all-in-memory reference run.
    let in_memory =
        multi_channel_experiment_with(&Engine::serial(), &lab, &plan, &trojans, &refs).unwrap();

    // Characterize once, round-trip the artifact through disk.
    let charac = characterize_campaign_with(&Engine::serial(), &lab, &plan, &refs).unwrap();
    let path = std::env::temp_dir().join(format!("htd-equivalence-{}.htd", std::process::id()));
    htd_store::save(&path, &GoldenArtifact::new(channel_specs, charac).unwrap()).unwrap();
    let loaded: GoldenArtifact = htd_store::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // The loaded artifact rebuilds its own channels.
    let rebuilt = loaded.build_channels();
    let rebuilt_refs: Vec<&dyn Channel> = rebuilt.iter().map(Box::as_ref).collect();
    let charac = loaded.characterization();

    // Stored golden state is bit-identical (per-die golden scores included).
    for (state, name) in charac.states.iter().zip(["EM", "delay"]) {
        assert_eq!(state.channel, name);
        assert_eq!(state.scores.len(), plan.n_dies);
    }

    for workers in [1usize, 4] {
        let engine = Engine::with_workers(workers);
        let scored = score_campaign_with(&engine, &lab, charac, &trojans, &rebuilt_refs).unwrap();
        // Full-report equality covers every µ, σ, analytic FN rate and
        // empirical FN/FP rate of every channel and the fused rows.
        assert_eq!(scored, in_memory, "workers = {workers}");

        // Per-die suspect scores, not just fitted summaries.
        for (s, spec) in trojans.iter().enumerate() {
            let (_, sets) =
                score_design_with(&engine, &lab, charac, s, spec, &rebuilt_refs).unwrap();
            let (_, reference_sets) =
                score_design_with(&Engine::serial(), &lab, charac, s, spec, &rebuilt_refs).unwrap();
            for (a, b) in sets.iter().zip(&reference_sets) {
                assert_eq!(a.golden, b.golden, "workers = {workers}");
                assert_eq!(a.infected, b.infected, "workers = {workers}");
            }
        }
    }
}
