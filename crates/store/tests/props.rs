//! Property-based tests of the artifact format: round-trip identity for
//! every artifact kind over arbitrary values, and total rejection of
//! corrupted input — every truncation and every bit flip must yield an
//! `Err`, never a panic, never a silently wrong value.

use htd_core::campaign::CampaignPlan;
use htd_core::channel::{Acquisition, Calibration, ChannelSpec, GoldenReference};
use htd_core::delay_detect::DelayMatrix;
use htd_core::em_detect::TraceMetric;
use htd_core::fusion::{
    ChannelResult, ChannelState, GoldenCharacterization, MultiChannelReport, MultiChannelRow,
    ScoredChannel,
};
use htd_core::resilience::ChannelHealth;
use htd_em::Trace;
use htd_faults::FaultPlan;
use htd_stats::Gaussian;
use htd_store::{from_text, to_text, ChannelFit, GoldenArtifact};
use htd_timing::GlitchParams;
use proptest::prelude::*;

fn finite() -> std::ops::Range<f64> {
    -1.0e9..1.0e9
}

/// Labels stressing the quoting rules: quotes, backslashes, newlines.
fn label() -> impl Strategy<Value = String> {
    "[a-zEM\"\\\\\n µσ]{0,12}"
}

fn plan_strategy() -> impl Strategy<Value = CampaignPlan> {
    (
        (2usize..12, any::<[u8; 16]>(), any::<[u8; 16]>()),
        (
            proptest::collection::vec((any::<[u8; 16]>(), any::<[u8; 16]>()), 0..4),
            0usize..4,
            any::<u64>(),
            any::<u64>(),
        ),
    )
        .prop_map(
            |((n_dies, pt, key), (pairs, repetitions, seed, spec_stride))| CampaignPlan {
                n_dies,
                pt,
                key,
                pairs,
                repetitions,
                seed,
                spec_stride,
            },
        )
}

fn calibration_strategy() -> impl Strategy<Value = Calibration> {
    (
        0usize..2,
        (
            1.0f64..20_000.0,
            0.1f64..200.0,
            1usize..200,
            0.0f64..500.0,
            0.0f64..50.0,
        ),
    )
        .prop_map(|(sel, (start, step, steps, setup, noise))| {
            if sel == 0 {
                Calibration::None
            } else {
                Calibration::Glitch(GlitchParams {
                    start_period_ps: start,
                    step_ps: step,
                    steps: steps as u16,
                    setup_ps: setup,
                    noise_ps: noise,
                })
            }
        })
}

fn trace_strategy() -> impl Strategy<Value = Trace> {
    (proptest::collection::vec(finite(), 0..40), 1.0f64..1000.0)
        .prop_map(|(samples, dt)| Trace::new(samples, dt))
}

/// Rectangular matrices (ragged rows are a format error by design).
fn matrix_strategy() -> impl Strategy<Value = DelayMatrix> {
    proptest::collection::vec(proptest::collection::vec(finite(), 1..5), 0..4).prop_map(|rows| {
        let bits = rows.iter().map(Vec::len).min().unwrap_or(0);
        DelayMatrix {
            mean_onset_steps: rows
                .into_iter()
                .map(|mut r| {
                    r.truncate(bits);
                    r
                })
                .collect(),
        }
    })
}

fn result_strategy() -> impl Strategy<Value = ChannelResult> {
    (
        label(),
        (
            finite(),
            0.001f64..1.0e6,
            0.0f64..1.0,
            0.0f64..1.0,
            0.0f64..1.0,
        ),
    )
        .prop_map(|(channel, (mu, sigma, a, e, f))| ChannelResult {
            channel,
            mu,
            sigma,
            analytic_fn_rate: a,
            empirical_fn_rate: e,
            empirical_fp_rate: f,
        })
}

fn health_strategy() -> impl Strategy<Value = ChannelHealth> {
    (
        label(),
        (
            0usize..100,
            0usize..100,
            0usize..100,
            0usize..1000,
            0usize..1000,
        ),
        any::<bool>(),
    )
        .prop_map(
            |(channel, (attempted, retried, dropped, reps_attempted, reps_dropped), lost)| {
                ChannelHealth {
                    channel,
                    attempted,
                    retried,
                    dropped,
                    reps_attempted,
                    reps_dropped,
                    lost,
                }
            },
        )
}

fn fault_plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        (0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0),
    )
        .prop_map(
            |(seed, (acquire_rate, rep_rate, calibrate_rate, store_rate))| FaultPlan {
                seed,
                acquire_rate,
                rep_rate,
                calibrate_rate,
                store_rate,
            },
        )
}

fn report_strategy() -> impl Strategy<Value = MultiChannelReport> {
    let row = (
        (label(), 0.0f64..1.0),
        proptest::collection::vec(result_strategy(), 0..3),
        (0usize..2, result_strategy()),
    )
        .prop_map(
            |((name, size_fraction), channels, (has_fused, fused))| MultiChannelRow {
                name,
                size_fraction,
                channels,
                fused: (has_fused == 1).then_some(fused),
            },
        );
    (
        proptest::collection::vec(row, 0..3),
        2usize..20,
        proptest::collection::vec(label(), 0..3),
        proptest::collection::vec(health_strategy(), 0..3),
    )
        .prop_map(|(rows, n_dies, channel_names, health)| MultiChannelReport {
            rows,
            n_dies,
            channel_names,
            health,
        })
}

fn golden_strategy() -> impl Strategy<Value = GoldenArtifact> {
    plan_strategy().prop_flat_map(|plan| {
        let n = plan.n_dies;
        (
            Just(plan),
            proptest::collection::vec(
                (
                    (0usize..3, calibration_strategy()),
                    trace_strategy(),
                    matrix_strategy(),
                    proptest::collection::vec(finite(), n..n + 1),
                    proptest::collection::vec(any::<bool>(), n..n + 1),
                ),
                1..4,
            ),
            proptest::collection::vec(health_strategy(), 0..2),
        )
            .prop_map(|(plan, chans, mut lost)| {
                let n = plan.n_dies;
                let mut specs = Vec::new();
                let mut states = Vec::new();
                for ((sel, calibration), trace, matrix, scores, mask) in chans {
                    let spec = match sel {
                        0 => ChannelSpec::Em(TraceMetric::SumOfLocalMaxima),
                        1 => ChannelSpec::Power(TraceMetric::MaxPoint),
                        _ => ChannelSpec::Delay,
                    };
                    let reference = if matches!(spec, ChannelSpec::Delay) {
                        GoldenReference::MeanMatrix(matrix)
                    } else {
                        GoldenReference::MeanTrace(trace)
                    };
                    // Drop a random subset of dies (keeping at least two)
                    // so degraded kept/health markers round-trip too.
                    let kept: Vec<usize> = (0..n).filter(|&j| mask[j]).collect();
                    let (kept, scores) = if kept.len() < 2 {
                        ((0..n).collect::<Vec<_>>(), scores)
                    } else {
                        let scores = kept.iter().map(|&j| scores[j]).collect();
                        (kept, scores)
                    };
                    let mut health = ChannelHealth::pristine(spec.name(), n);
                    health.dropped = n - kept.len();
                    states.push(ChannelState {
                        channel: spec.name().to_string(),
                        calibration,
                        reference,
                        scores,
                        kept,
                        health,
                    });
                    specs.push(spec);
                }
                for h in &mut lost {
                    h.lost = true;
                }
                GoldenArtifact::new(specs, GoldenCharacterization { plan, states, lost })
                    .expect("strategy builds consistent artifacts")
            })
    })
}

/// Round-trip identity: parsing a rendered artifact recovers the exact
/// value, bit-for-bit on every float.
macro_rules! assert_roundtrip {
    ($ty:ty, $value:expr) => {{
        let value: $ty = $value;
        let text = to_text(&value);
        let back = from_text::<$ty>(&text).expect(&text);
        prop_assert_eq!(&back, &value, "artifact text:\n{}", text);
    }};
}

proptest! {
    #[test]
    fn plan_roundtrips(plan in plan_strategy()) {
        assert_roundtrip!(CampaignPlan, plan);
    }

    #[test]
    fn calibration_roundtrips(cal in calibration_strategy()) {
        assert_roundtrip!(Calibration, cal);
    }

    #[test]
    fn acquisition_roundtrips(sel in 0usize..2, t in trace_strategy(), m in matrix_strategy()) {
        if sel == 0 {
            assert_roundtrip!(Acquisition, Acquisition::Trace(t));
        } else {
            assert_roundtrip!(Acquisition, Acquisition::Matrix(m));
        }
    }

    #[test]
    fn reference_roundtrips(sel in 0usize..2, t in trace_strategy(), m in matrix_strategy()) {
        if sel == 0 {
            assert_roundtrip!(GoldenReference, GoldenReference::MeanTrace(t));
        } else {
            assert_roundtrip!(GoldenReference, GoldenReference::MeanMatrix(m));
        }
    }

    #[test]
    fn fit_roundtrips(channel in label(), mean in finite(), std in 0.001f64..1.0e6) {
        assert_roundtrip!(ChannelFit, ChannelFit { channel, fit: Gaussian::new(mean, std).unwrap() });
    }

    #[test]
    fn scores_roundtrip(
        channel in label(),
        golden in proptest::collection::vec(finite(), 0..30),
        infected in proptest::collection::vec(finite(), 0..30),
    ) {
        assert_roundtrip!(ScoredChannel, ScoredChannel { channel, golden, infected });
    }

    #[test]
    fn report_roundtrips(report in report_strategy()) {
        assert_roundtrip!(MultiChannelReport, report);
    }

    #[test]
    fn golden_roundtrips(artifact in golden_strategy()) {
        assert_roundtrip!(GoldenArtifact, artifact);
    }

    #[test]
    fn fault_plans_roundtrip(plan in fault_plan_strategy()) {
        assert_roundtrip!(FaultPlan, plan);
    }

    /// Random truncations of arbitrary golden artifacts always error.
    #[test]
    fn truncated_golden_artifacts_error(artifact in golden_strategy(), cut in any::<u64>()) {
        let text = to_text(&artifact);
        let cut = (cut % text.len() as u64) as usize;
        let cut = (0..=cut).rev().find(|&i| text.is_char_boundary(i)).unwrap();
        prop_assert!(from_text::<GoldenArtifact>(&text[..cut]).is_err());
    }

    /// Random single-bit flips of arbitrary reports always error (or stop
    /// being UTF-8 at all).
    #[test]
    fn bit_flipped_reports_error(report in report_strategy(), pos in any::<u64>(), bit in 0usize..8) {
        let mut bytes = to_text(&report).into_bytes();
        let pos = (pos % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        if let Ok(text) = String::from_utf8(bytes) {
            prop_assert!(from_text::<MultiChannelReport>(&text).is_err());
        }
    }
}

/// A fixed, multi-channel golden artifact exercising every block type.
fn sample_golden() -> GoldenArtifact {
    let plan = CampaignPlan::with_random_pairs(4, 2, 2, [0x42; 16], [0x0f; 16], 7);
    let states = vec![
        ChannelState::pristine(
            "EM",
            Calibration::None,
            GoldenReference::MeanTrace(Trace::new(vec![0.5, -1.25, 1.0 / 3.0], 125.0)),
            vec![1.0, 2.5, -3.0, 0.125],
        ),
        ChannelState::pristine(
            "delay",
            Calibration::Glitch(GlitchParams {
                start_period_ps: 5200.0,
                step_ps: 25.0,
                steps: 96,
                setup_ps: 180.0,
                noise_ps: 12.5,
            }),
            GoldenReference::MeanMatrix(DelayMatrix {
                mean_onset_steps: vec![vec![4.5, 6.0], vec![5.25, 7.125]],
            }),
            vec![40.0, 41.5, 39.0, 40.25],
        ),
    ];
    GoldenArtifact::new(
        vec![
            ChannelSpec::Em(TraceMetric::SumOfLocalMaxima),
            ChannelSpec::Delay,
        ],
        GoldenCharacterization {
            plan,
            states,
            lost: vec![],
        },
    )
    .unwrap()
}

/// Every possible truncation of a representative artifact is rejected.
#[test]
fn every_truncation_is_rejected() {
    let text = to_text(&sample_golden());
    for cut in 0..text.len() {
        if !text.is_char_boundary(cut) {
            continue;
        }
        assert!(
            from_text::<GoldenArtifact>(&text[..cut]).is_err(),
            "prefix of {cut} bytes parsed"
        );
    }
}

/// Every possible single-bit flip of a representative artifact is
/// rejected (the FNV-1a trailer catches every single-byte substitution).
#[test]
fn every_bit_flip_is_rejected() {
    let text = to_text(&sample_golden());
    for pos in 0..text.len() {
        for bit in 0..8 {
            let mut bytes = text.clone().into_bytes();
            bytes[pos] ^= 1 << bit;
            let Ok(corrupt) = String::from_utf8(bytes) else {
                continue;
            };
            assert!(
                from_text::<GoldenArtifact>(&corrupt).is_err(),
                "flip of bit {bit} at byte {pos} parsed"
            );
        }
    }
}
